// Runtime CPU feature detection and SIMD-tier dispatch policy.
//
// The bit-parallel lane kernels (logic/lane_kernels.h) exist in up to
// three implementations — AVX2 (x86-64), NEON (aarch64), and the
// portable uint64 path — all bit-identical by the Evaluator's
// bit-locality contract. Which one runs is decided ONCE per process,
// here:
//
//   * detected_tier()  — what the hardware supports (cpuid / arch);
//   * active_tier()    — detected_tier() unless overridden by the
//                        AMBIT_FORCE_SCALAR environment variable
//                        (any value other than "" or "0" forces the
//                        u64 path — how CI exercises every dispatch
//                        arm on one machine) or by force_tier().
//
// force_tier() exists so one process can benchmark/test both arms
// (bench_batch_eval's SIMD-vs-u64 section, the lane-kernel equivalence
// suite); it is a test/bench hook, not a production knob — production
// overrides go through the environment variable.
#pragma once

namespace ambit::cpu {

/// The dispatch tiers, ordered from portable to widest. A tier is only
/// ever active when the running CPU supports it.
enum class SimdTier {
  kScalar,  ///< portable uint64 lane sweeps (always available)
  kNeon,    ///< 128-bit NEON (aarch64 baseline)
  kAvx2,    ///< 256-bit AVX2 (x86-64, detected at runtime)
};

/// Human-readable tier name ("scalar", "neon", "avx2") for bench
/// tables, logs, and skip messages.
const char* tier_name(SimdTier tier);

/// The widest tier this machine can execute, detected once (cpuid on
/// x86-64, compile-time architecture elsewhere). Never consults the
/// environment.
SimdTier detected_tier();

/// The tier the lane kernels dispatch on: detected_tier(), downgraded
/// to kScalar when the AMBIT_FORCE_SCALAR environment variable is set
/// to anything but "" or "0" at first use, or whatever force_tier()
/// last installed.
SimdTier active_tier();

/// Overrides active_tier() for the rest of the process (clamped to
/// detected_tier(): asking for AVX2 on a non-AVX2 host installs the
/// scalar tier instead and returns the tier actually installed).
/// Test/bench hook — not thread-safe against concurrent evaluation;
/// call it from a single thread before spawning evaluators.
SimdTier force_tier(SimdTier tier);

}  // namespace ambit::cpu
