#include "util/log.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ambit::logs {

namespace {

// The sink and threshold are process-wide. The atomic threshold makes
// the below-threshold fast path a single relaxed load; the mutex only
// guards actual emission (formatting happens outside it, the final
// fwrite inside).
std::atomic<int> g_threshold{static_cast<int>(Level::kInfo)};
Mutex g_sink_mutex{LockRank::kLogSink};
std::FILE* g_sink AMBIT_GUARDED_BY(g_sink_mutex) = nullptr;  // nullptr = stderr

/// True when the value can go on the wire bare (no spaces, quotes,
/// '=' or control bytes that would break key=value tokenization).
bool bare_safe(const std::string& value) {
  if (value.empty()) {
    return false;
  }
  for (const char c : value) {
    if (c <= ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) >= 0x7f) {
      return false;
    }
  }
  return true;
}

void append_value(std::string& out, const std::string& value) {
  if (bare_safe(value)) {
    out += value;
    return;
  }
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// ISO-8601 UTC with milliseconds, e.g. 2026-08-08T12:34:56.789Z.
std::string wall_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
#ifdef _WIN32
  gmtime_s(&utc, &secs);
#else
  gmtime_r(&secs, &utc);
#endif
  char buf[96];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

Level threshold() { return static_cast<Level>(g_threshold.load()); }

void set_threshold(Level level) { g_threshold.store(static_cast<int>(level)); }

std::optional<Level> parse_level(std::string_view text) {
  if (text == "debug") {
    return Level::kDebug;
  }
  if (text == "info") {
    return Level::kInfo;
  }
  if (text == "warn") {
    return Level::kWarn;
  }
  if (text == "error") {
    return Level::kError;
  }
  if (text == "off") {
    return Level::kOff;
  }
  return std::nullopt;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

bool set_file(const std::string& path) {
  std::FILE* next = nullptr;
  if (!path.empty()) {
    next = std::fopen(path.c_str(), "ae");  // append + close-on-exec
    if (next == nullptr) {
      return false;
    }
  }
  const MutexLock lock(g_sink_mutex);
  if (g_sink != nullptr) {
    std::fclose(g_sink);
  }
  g_sink = next;
  return true;
}

namespace {

void emit(Level level, std::string_view event, const Field* fields,
          std::size_t num_fields) {
  if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed) ||
      level == Level::kOff) {
    return;
  }
  std::string line;
  line.reserve(96);
  line += "ts=";
  line += wall_timestamp();
  line += " mono_us=";
  line += std::to_string(metrics::monotonic_us());
  line += " level=";
  line += level_name(level);
  line += " event=";
  line.append(event.data(), event.size());
  for (std::size_t i = 0; i < num_fields; ++i) {
    const auto& [key, value] = fields[i];
    line += ' ';
    line.append(key.data(), key.size());
    line += '=';
    append_value(line, value);
  }
  line += '\n';
  const MutexLock lock(g_sink_mutex);
  std::FILE* sink = g_sink != nullptr ? g_sink : stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

}  // namespace

void write(Level level, std::string_view event,
           std::initializer_list<Field> fields) {
  emit(level, event, fields.begin(), fields.size());
}

bool RateLimiter::allow() {
  const std::uint64_t now = metrics::monotonic_us();
  std::uint64_t last = last_allowed_us_.load(std::memory_order_relaxed);
  for (;;) {
    if (last != 0 && now - last < min_interval_us_) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Claim the slot; a racing thread that wins makes US the
    // suppressed one, which keeps the count exact.
    if (last_allowed_us_.compare_exchange_weak(last, now,
                                               std::memory_order_relaxed)) {
      return true;
    }
  }
}

void warn_rate_limited(RateLimiter& limiter, std::string_view event,
                       std::initializer_list<Field> fields) {
  if (!limiter.allow()) {
    return;
  }
  const std::uint64_t suppressed = limiter.take_suppressed();
  if (suppressed == 0) {
    write(Level::kWarn, event, fields);
    return;
  }
  // Rebuild the field list with the overflow count appended (cold path
  // — one emitted record per interval).
  std::vector<Field> extended(fields);
  extended.emplace_back("suppressed", std::to_string(suppressed));
  emit(Level::kWarn, event, extended.data(), extended.size());
}

}  // namespace ambit::logs
