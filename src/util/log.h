// Leveled structured logging for the long-running tools.
//
// ambit_serve runs for days; when a connection is dropped or a request
// crawls, the operator needs machine-parseable evidence, not printf
// archaeology. Every log line is one record of key=value pairs:
//
//   ts=2026-08-08T12:34:56.789Z mono_us=8211437 level=info
//       event=conn.accept conn=17 transport=tcp      (one line on the wire)
//
// Contract:
//   * `ts` is wall-clock UTC (for correlating with other systems),
//     `mono_us` is the monotonic clock (for computing durations —
//     wall clocks step, monotonic ones do not).
//   * `level` is one of debug|info|warn|error; records below the
//     configured threshold are dropped before any formatting work.
//   * Values containing spaces, quotes or '=' are double-quoted with
//     backslash escapes; everything else is emitted bare. Keys are
//     caller-controlled literals and are emitted as-is.
//   * One line per record, written with a single buffered fwrite under
//     a mutex — concurrent connection threads never interleave bytes.
//   * The sink is stderr by default; set_file() redirects to a path
//     (append mode). The tools expose both knobs as --log-level and
//     --log-file.
//
// The hot-path discipline differs from metrics.h: logging is NOT
// compiled out (operators need it precisely in production), it is
// rate-limitable instead. RateLimiter caps a noisy call site (e.g.
// malformed-frame warnings under a fuzzing client) to one record per
// interval and folds the overflow into a suppressed=<n> key on the
// next emitted record, so bursts cost almost nothing and still leave
// an accurate count in the log.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ambit::logs {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold-only: silences everything
};

/// Current threshold; records below it are dropped. Default: kInfo.
Level threshold();
void set_threshold(Level level);

/// Parses "debug" | "info" | "warn" | "error" | "off" (the --log-level
/// argument); nullopt on anything else.
std::optional<Level> parse_level(std::string_view text);

/// Spelled-out name for a level ("info", ...).
const char* level_name(Level level);

/// Redirects the sink to `path` (append mode); empty restores stderr.
/// Returns false (sink unchanged) when the file cannot be opened.
bool set_file(const std::string& path);

/// One key=value field. Values are strings; use the fields() helpers
/// below for numbers.
using Field = std::pair<std::string_view, std::string>;

/// Emits one record at `level` with the given event name and fields.
/// Thread-safe; a no-op (no formatting) below the threshold.
void write(Level level, std::string_view event,
           std::initializer_list<Field> fields);

inline void debug(std::string_view event, std::initializer_list<Field> f = {}) {
  write(Level::kDebug, event, f);
}
inline void info(std::string_view event, std::initializer_list<Field> f = {}) {
  write(Level::kInfo, event, f);
}
inline void warn(std::string_view event, std::initializer_list<Field> f = {}) {
  write(Level::kWarn, event, f);
}
inline void error(std::string_view event, std::initializer_list<Field> f = {}) {
  write(Level::kError, event, f);
}

/// Token-bucket-of-one for noisy call sites: allow() is true at most
/// once per `min_interval_us`; denied calls are counted and the next
/// allowed record should carry take_suppressed() as suppressed=<n>.
/// Lock-free — safe to share across connection threads.
class RateLimiter {
 public:
  explicit RateLimiter(std::uint64_t min_interval_us)
      : min_interval_us_(min_interval_us) {}

  /// True when enough time has passed since the last allowed call.
  bool allow();

  /// Returns the number of suppressed calls since the last drain and
  /// resets it.
  std::uint64_t take_suppressed() {
    return suppressed_.exchange(0, std::memory_order_relaxed);
  }

 private:
  const std::uint64_t min_interval_us_;
  std::atomic<std::uint64_t> last_allowed_us_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

/// warn() through a RateLimiter: emits at most one record per the
/// limiter's interval, appending suppressed=<n> when calls were
/// dropped since the last emitted record.
void warn_rate_limited(RateLimiter& limiter, std::string_view event,
                       std::initializer_list<Field> fields);

}  // namespace ambit::logs
