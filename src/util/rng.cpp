#include "util/rng.h"

#include "util/error.h"

namespace ambit {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream) {
  // Scramble the stream index through one SplitMix64 round and fold it
  // into the root seed; Rng's constructor then expands the combined
  // value as usual. stream(s, 0) is deliberately NOT Rng(s): a family
  // member never collides with the plain sequential generator.
  std::uint64_t sm = stream;
  const std::uint64_t scrambled = splitmix64(sm);
  return Rng(seed ^ scrambled);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below bound must be positive");
  // Rejection sampling: draw until the value falls in the largest
  // multiple of `bound` that fits in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t value = next_u64();
  while (value >= limit) {
    value = next_u64();
  }
  return value % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::next_in requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  return next_double() < p;
}

}  // namespace ambit
