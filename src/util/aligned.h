// A minimal over-aligned allocator for std::vector backing stores.
//
// PatternBatch keeps its word array in a vector with 64-byte-aligned
// storage (logic/lane_kernels.h, kLaneAlignment) so the SIMD lane
// kernels start from a cache-line boundary. Note this aligns only the
// BASE pointer: interior lane pointers at `base + signal * words` are
// aligned only when the stride cooperates, which is why the kernels
// are loadu/storeu-only — the allocator is a throughput nicety, the
// unaligned-access contract is the correctness rule.
#pragma once

#include <cstddef>
#include <new>

namespace ambit {

/// std::allocator drop-in that over-aligns every allocation to `Align`
/// bytes (must be a power of two and >= alignof(T)).
template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;

  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  AlignedAllocator() = default;
  template <typename U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace ambit
