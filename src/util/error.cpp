#include "util/error.h"

namespace ambit {

void check(bool condition, std::string_view message) {
  if (!condition) {
    throw Error(std::string(message));
  }
}

void require(bool condition, std::string_view message) {
  if (!condition) {
    throw Error("internal invariant violated: " + std::string(message));
  }
}

}  // namespace ambit
