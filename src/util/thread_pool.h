// A fixed-size worker pool with a chunked parallel_for.
//
// AMBIT's bit-parallel kernels (core/evaluator.h) already squeeze 64
// patterns into every machine word; the remaining axis of parallelism
// is ACROSS words, and the lanes are embarrassingly parallel: no kernel
// carries state between words of a PatternBatch lane. ThreadPool
// exploits that with the smallest possible surface — parallel_for over
// an index range, split into contiguous chunks, executed by a fixed set
// of workers that live as long as the pool.
//
// Guarantees relied on by the callers:
//   * the chunk partition depends only on (range, grain, num_workers) —
//     never on scheduling — so any per-chunk determinism (e.g. the
//     per-trial RNG streams of fault/yield.cpp) survives threading;
//   * exceptions thrown by the body are captured and the FIRST one is
//     rethrown on the calling thread after every chunk has finished, so
//     a throwing worker cannot leave the pool wedged;
//   * parallel_for is safe for CONCURRENT CALLERS: each call carries
//     its own completion state, so the connection threads of the serve
//     front door (serve/server.h) can all shard their evaluations
//     through the one shared session pool at once — calls interleave
//     in the task queue but each blocks only on its own chunks;
//   * a pool with zero workers degrades to an inline sequential loop,
//     which keeps single-core containers and TSan runs cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ambit {

/// Fixed set of worker threads executing chunked index ranges.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means "run everything inline on
  /// the calling thread" (still a valid pool, just sequential).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Applies `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) into contiguous chunks of at least `grain` indices
  /// (the last chunk may be smaller). Blocks until every chunk is done;
  /// rethrows the first exception any chunk raised. The partition is a
  /// pure function of the arguments and num_workers(), so work
  /// assignment is reproducible run to run.
  void parallel_for(
      std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
      const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// Enqueues one fire-and-forget task for a worker to run. Unlike
  /// parallel_for this never blocks: the serve event loop dispatches
  /// request evaluation through it so the loop thread keeps polling
  /// while workers sweep. Exceptions a task throws are swallowed — a
  /// submitted task owns its own error reporting, exactly like a
  /// connection-thread body. A zero-worker pool runs the task inline
  /// before returning. Tasks may call parallel_for (or submit) on this
  /// same pool: see on_worker_thread() below for why that cannot
  /// deadlock.
  void submit(std::function<void()> task);

  /// True when the calling thread is one of THIS pool's workers.
  /// parallel_for uses it to run nested calls inline: a submitted task
  /// that shards through its own pool would otherwise park a worker on
  /// the join latch waiting for chunks that are queued BEHIND other
  /// submitted tasks — with every worker parked the same way, nothing
  /// would ever run them. Inline nesting trades sharding of that one
  /// call for a hard no-deadlock guarantee (concurrency still comes
  /// from the other workers running other tasks).
  bool on_worker_thread() const;

  /// Worker count for "use the machine": the AMBIT_THREADS environment
  /// variable when set and positive, else std::thread::hardware_concurrency.
  static int default_workers();

  /// Observability snapshots (relaxed; maintained only when the
  /// metrics layer is compiled in — see util/metrics.h — and always 0
  /// otherwise). Chunks enqueued but not yet picked up by a worker:
  std::int64_t queued_tasks() const {
    return queued_.load(std::memory_order_relaxed);
  }
  /// Workers currently executing a chunk:
  std::int64_t busy_workers() const {
    return busy_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  Mutex mutex_{LockRank::kThreadPool};
  CondVar work_ready_;
  std::queue<std::function<void()>> tasks_ AMBIT_GUARDED_BY(mutex_);
  bool stopping_ AMBIT_GUARDED_BY(mutex_) = false;
  // Written only by the constructor, before any worker exists; const
  // thereafter (num_workers reads it unlocked from any thread).
  std::vector<std::thread> workers_;
  std::atomic<std::int64_t> queued_{0};
  std::atomic<std::int64_t> busy_{0};
};

}  // namespace ambit
