// AMBIT_CHECK — compiled-in internal invariant assertions.
//
// The documented contracts of the hot data structures (PatternBatch
// tail-mask cleanliness, the Evaluator width/shape contract, word-
// aligned sharding — see docs/ARCHITECTURE.md) are cheap to state but
// easy to rot: nothing in a release build executes them. AMBIT_CHECK
// turns them into machine-checked assertions:
//
//   AMBIT_CHECK(condition, "message");
//
// When AMBIT_ENABLE_INVARIANTS is defined (the AMBIT_ENABLE_INVARIANTS
// CMake option, forced ON in AMBIT_SANITIZE builds), a failed check
// prints "<file>:<line>: AMBIT_CHECK failed: <condition>: <message>" to
// stderr and calls std::abort() — deterministic, death-testable
// (tests/invariant_test.cpp), and fatal under CI sanitizers. When the
// option is off, the condition is NOT evaluated (zero cost on hot
// paths) but is still compiled against (sizeof of an unevaluated
// operand), so a check cannot bit-rot out of the build.
//
// AMBIT_CHECK is for "this cannot happen" internal invariants only.
// External input keeps going through ambit::check()/require()
// (util/error.h), which throw and are part of normal control flow.
#pragma once

#include <string_view>

namespace ambit {

/// True when AMBIT_CHECK assertions are compiled in — lets tests skip
/// (or assert on) the invariant layer's presence explicitly.
constexpr bool invariants_enabled() {
#ifdef AMBIT_ENABLE_INVARIANTS
  return true;
#else
  return false;
#endif
}

namespace detail {

/// Prints the failure report to stderr and aborts. Out of line so the
/// macro's cold path is one call.
[[noreturn]] void invariant_failure(const char* condition, const char* file,
                                    int line, std::string_view message);

}  // namespace detail
}  // namespace ambit

#ifdef AMBIT_ENABLE_INVARIANTS
#define AMBIT_CHECK(condition, message)                                \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::ambit::detail::invariant_failure(#condition, __FILE__,         \
                                         __LINE__, (message));         \
    }                                                                  \
  } while (false)
#else
#define AMBIT_CHECK(condition, message)        \
  do {                                         \
    (void)sizeof((condition));                 \
    (void)sizeof((message));                   \
  } while (false)
#endif
