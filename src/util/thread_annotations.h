// Clang Thread Safety Analysis attribute macros.
//
// Every lock invariant in this repo — "circuits_ is guarded by the
// registry mutex", "reap_locked requires the connection-registry lock",
// "the registry lock is never held across LOAD/EVAL" — used to live in
// comments, enforced only by review and by whichever interleavings TSan
// happened to see. These macros turn the same statements into compiler-
// checked contracts: under Clang, -Wthread-safety (enabled for every
// Clang build by the top-level CMakeLists.txt, fatal with AMBIT_WERROR)
// rejects any access to an AMBIT_GUARDED_BY member without its
// capability held and any call to an AMBIT_REQUIRES function without
// the named lock. Under other compilers the macros expand to nothing,
// so gcc builds are unaffected.
//
// The vocabulary is the standard capability-analysis set (the same
// names Abseil exports, prefixed to stay out of other libraries' way):
//
//   AMBIT_CAPABILITY("mutex")   on a lockable type (ambit::Mutex)
//   AMBIT_SCOPED_CAPABILITY     on an RAII lock type (ambit::MutexLock)
//   AMBIT_GUARDED_BY(mu)        on data: access requires mu held
//   AMBIT_PT_GUARDED_BY(mu)     on a pointer: the POINTEE requires mu
//   AMBIT_REQUIRES(mu, ...)     on a function: caller must hold mu
//   AMBIT_ACQUIRE(mu, ...)      on a function: acquires mu, not held on
//                               entry, held on return
//   AMBIT_RELEASE(mu, ...)      on a function: releases mu
//   AMBIT_TRY_ACQUIRE(ok, mu)   on a function: acquires mu iff it
//                               returns `ok`
//   AMBIT_EXCLUDES(mu, ...)     on a function: caller must NOT hold mu
//                               (the machine-checked form of "never
//                               held across ...")
//   AMBIT_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   AMBIT_RETURN_CAPABILITY(mu) on an accessor returning a reference to
//                               the capability mu
//   AMBIT_ACQUIRED_BEFORE/AFTER declared static acquisition order
//   AMBIT_NO_THREAD_SAFETY_ANALYSIS  opt one function out (justify it)
//
// The dynamic counterpart — rank checking that catches lock-order
// inversions TSA's intraprocedural view cannot see — lives in
// util/mutex.h (LockRank). The canonical lock hierarchy is documented
// once, in docs/CONCURRENCY.md.
#pragma once

// clang and gcc both define __GNUC__; only clang implements the
// capability attributes, so the gate is __clang__ alone.
#if defined(__clang__) && !defined(SWIG)
#define AMBIT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AMBIT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define AMBIT_CAPABILITY(x) AMBIT_THREAD_ANNOTATION(capability(x))

#define AMBIT_SCOPED_CAPABILITY AMBIT_THREAD_ANNOTATION(scoped_lockable)

#define AMBIT_GUARDED_BY(x) AMBIT_THREAD_ANNOTATION(guarded_by(x))

#define AMBIT_PT_GUARDED_BY(x) AMBIT_THREAD_ANNOTATION(pt_guarded_by(x))

#define AMBIT_ACQUIRED_BEFORE(...) \
  AMBIT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define AMBIT_ACQUIRED_AFTER(...) \
  AMBIT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define AMBIT_REQUIRES(...) \
  AMBIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define AMBIT_REQUIRES_SHARED(...) \
  AMBIT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define AMBIT_ACQUIRE(...) \
  AMBIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define AMBIT_RELEASE(...) \
  AMBIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define AMBIT_TRY_ACQUIRE(...) \
  AMBIT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define AMBIT_EXCLUDES(...) AMBIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define AMBIT_ASSERT_CAPABILITY(x) \
  AMBIT_THREAD_ANNOTATION(assert_capability(x))

#define AMBIT_RETURN_CAPABILITY(x) AMBIT_THREAD_ANNOTATION(lock_returned(x))

#define AMBIT_NO_THREAD_SAFETY_ANALYSIS \
  AMBIT_THREAD_ANNOTATION(no_thread_safety_analysis)
