#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace ambit {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.emplace_back(text.substr(start, i - start));
    }
  }
  return tokens;
}

std::vector<std::string> split_on(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double ratio, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.*f%%", digits, ratio * 100.0);
  return buffer;
}

}  // namespace ambit
