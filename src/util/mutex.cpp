#include "util/mutex.h"

#include <string>

#include "util/check.h"

namespace ambit {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kCoalesce:
      return "coalesce";
    case LockRank::kSessionRegistry:
      return "session-registry";
    case LockRank::kCircuitVerify:
      return "circuit-verify";
    case LockRank::kCircuitSim:
      return "circuit-sim";
    case LockRank::kConnectionRegistry:
      return "connection-registry";
    case LockRank::kEventLoop:
      return "event-loop";
    case LockRank::kThreadPool:
      return "thread-pool";
    case LockRank::kPoolJoin:
      return "pool-join";
    case LockRank::kMetricsRegistry:
      return "metrics-registry";
    case LockRank::kLogSink:
      return "log-sink";
    case LockRank::kTest:
      return "test";
  }
  return "unknown";
}

#ifdef AMBIT_ENABLE_INVARIANTS

namespace {

/// The calling thread's held-lock stack: the ranks (and identities) of
/// every Mutex it currently holds, bottom to top. Fixed capacity — the
/// deepest legal chain in the hierarchy is a handful of locks, so 32
/// slots overflowing is itself a violation worth aborting on.
struct HeldLockStack {
  static constexpr int kCapacity = 32;
  const Mutex* held[kCapacity] = {};
  int depth = 0;
};

thread_local HeldLockStack t_held;

[[noreturn]] void rank_violation(const Mutex& acquiring,
                                 const Mutex& holding) {
  const bool same = acquiring.rank() == holding.rank();
  std::string message;
  message += same ? (&acquiring == &holding
                         ? "recursive acquisition of the same mutex"
                         : "same-rank lock acquisition")
                  : "out-of-rank lock acquisition";
  message += ": acquiring ";
  message += lock_rank_name(acquiring.rank());
  message += " (rank ";
  message += std::to_string(static_cast<int>(acquiring.rank()));
  message += ") while holding ";
  message += lock_rank_name(holding.rank());
  message += " (rank ";
  message += std::to_string(static_cast<int>(holding.rank()));
  message += "); locks must be acquired in strictly increasing rank "
             "order (docs/CONCURRENCY.md)";
  detail::invariant_failure("lock rank order", __FILE__, __LINE__, message);
}

}  // namespace

int held_lock_depth() { return t_held.depth; }

void Mutex::rank_check() const {
  if (t_held.depth > 0) {
    const Mutex* top = t_held.held[t_held.depth - 1];
    if (rank_ <= top->rank_) {
      rank_violation(*this, *top);
    }
  }
  if (t_held.depth >= HeldLockStack::kCapacity) {
    detail::invariant_failure("lock stack depth", __FILE__, __LINE__,
                              "held-lock stack overflow: a thread holds "
                              "more than 32 mutexes at once");
  }
}

void Mutex::rank_push() const { t_held.held[t_held.depth++] = this; }

void Mutex::rank_pop() const {
  // Locks release in LIFO order everywhere in this repo (RAII scopes),
  // but tolerate an out-of-order release: remove the TOPMOST entry for
  // this mutex. A release of a mutex this thread does not hold is a
  // hard bug.
  for (int i = t_held.depth - 1; i >= 0; --i) {
    if (t_held.held[i] == this) {
      for (int j = i; j + 1 < t_held.depth; ++j) {
        t_held.held[j] = t_held.held[j + 1];
      }
      --t_held.depth;
      return;
    }
  }
  detail::invariant_failure("lock release", __FILE__, __LINE__,
                            "released a mutex the calling thread does not "
                            "hold");
}

#else

int held_lock_depth() { return 0; }

#endif  // AMBIT_ENABLE_INVARIANTS

}  // namespace ambit
