// Small string utilities used by the file parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ambit {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits `text` on runs of ASCII whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view text);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> split_on(std::string_view text, char sep);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Formats `value` with `digits` digits after the decimal point.
std::string format_double(double value, int digits);

/// Formats a ratio as a signed percentage string, e.g. "-21.1%".
std::string format_percent(double ratio, int digits = 1);

}  // namespace ambit
