#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ambit::metrics {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(), [&head](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

/// Label names: [a-zA-Z_][a-zA-Z0-9_]* (no colon, per the spec).
bool valid_label_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(), [&head](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

/// Label VALUES escape backslash, double-quote and newline; HELP text
/// escapes backslash and newline (text format 0.0.4 rules).
std::string escape_value(const std::string& raw, bool escape_quote) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        if (escape_quote) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders {a="x",b="y"} with an optional extra label appended (the
/// histogram `le` bound); empty string when there are no labels at all.
std::string render_labels(const Labels& labels, const std::string& extra_name,
                          const std::string& extra_value) {
  if (labels.empty() && extra_name.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += k + "=\"" + escape_value(v, /*escape_quote=*/true) + "\"";
  }
  if (!extra_name.empty()) {
    if (!first) {
      out += ',';
    }
    out += extra_name + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

void validate_labels(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    (void)v;
    check(valid_label_name(k), "metrics: invalid label name '" + k + "'");
  }
}

}  // namespace

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  check(!bounds_.empty(), "Histogram: needs at least one finite bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    check(bounds_[i - 1] < bounds_[i],
          "Histogram: bucket bounds must be strictly increasing");
  }
}

std::vector<std::uint64_t> Histogram::default_latency_bounds_us() {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(27);
  for (int p = 0; p <= 26; ++p) {
    bounds.push_back(std::uint64_t{1} << p);
  }
  return bounds;
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> +Inf
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return counts;
}

std::uint64_t Histogram::quantile(double q) const {
  check(q > 0.0 && q <= 1.0, "Histogram::quantile: q must be in (0, 1]");
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  // Rank of the q-quantile sample, 1-based: ceil(q * total).
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds_.size() ? bounds_[i] : max_observed();
    }
  }
  return max_observed();  // unreachable; keeps the compiler satisfied
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Family& Registry::family_locked(const std::string& name,
                                          const std::string& help, Type type) {
  check(valid_metric_name(name), "metrics: invalid metric name '" + name + "'");
  const auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.type = type;
    fam.help = help;
  } else {
    check(fam.type == type,
          "metrics: metric '" + name + "' re-registered with a different type");
  }
  return fam;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  validate_labels(labels);
  const MutexLock lock(mutex_);
  Family& fam = family_locked(name, help, Type::kCounter);
  for (auto& [child_labels, child] : fam.counters) {
    if (child_labels == labels) {
      return child;
    }
  }
  fam.counters.emplace_back(std::piecewise_construct,
                            std::forward_as_tuple(labels),
                            std::forward_as_tuple());
  return fam.counters.back().second;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  validate_labels(labels);
  const MutexLock lock(mutex_);
  Family& fam = family_locked(name, help, Type::kGauge);
  for (auto& [child_labels, child] : fam.gauges) {
    if (child_labels == labels) {
      return child;
    }
  }
  fam.gauges.emplace_back(std::piecewise_construct,
                          std::forward_as_tuple(labels),
                          std::forward_as_tuple());
  return fam.gauges.back().second;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<std::uint64_t> bounds,
                               const Labels& labels) {
  validate_labels(labels);
  const MutexLock lock(mutex_);
  Family& fam = family_locked(name, help, Type::kHistogram);
  for (auto& [child_labels, child] : fam.histograms) {
    if (child_labels == labels) {
      return child;
    }
  }
  fam.histograms.emplace_back(std::piecewise_construct,
                              std::forward_as_tuple(labels),
                              std::forward_as_tuple(std::move(bounds)));
  return fam.histograms.back().second;
}

const Counter* Registry::find_counter(const std::string& name,
                                      const Labels& labels) const {
  const MutexLock lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kCounter) {
    return nullptr;
  }
  for (const auto& [child_labels, child] : it->second.counters) {
    if (child_labels == labels) {
      return &child;
    }
  }
  return nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name,
                                  const Labels& labels) const {
  const MutexLock lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kGauge) {
    return nullptr;
  }
  for (const auto& [child_labels, child] : it->second.gauges) {
    if (child_labels == labels) {
      return &child;
    }
  }
  return nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
  const MutexLock lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kHistogram) {
    return nullptr;
  }
  for (const auto& [child_labels, child] : it->second.histograms) {
    if (child_labels == labels) {
      return &child;
    }
  }
  return nullptr;
}

std::string Registry::prometheus_text() const {
  const MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + escape_value(fam.help, false) + "\n";
    switch (fam.type) {
      case Type::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, child] : fam.counters) {
          out += name + render_labels(labels, "", "") + " " +
                 std::to_string(child.value()) + "\n";
        }
        break;
      case Type::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, child] : fam.gauges) {
          out += name + render_labels(labels, "", "") + " " +
                 std::to_string(child.value()) + "\n";
        }
        break;
      case Type::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, child] : fam.histograms) {
          const std::vector<std::uint64_t> counts = child.bucket_counts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < child.bounds().size(); ++i) {
            cumulative += counts[i];
            out += name + "_bucket" +
                   render_labels(labels, "le",
                                 std::to_string(child.bounds()[i])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += name + "_bucket" + render_labels(labels, "le", "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          // _count comes from the SAME bucket snapshot, so the +Inf
          // cumulative always equals _count even mid-storm (the lint
          // tests assert exactly that).
          out += name + "_sum" + render_labels(labels, "", "") + " " +
                 std::to_string(child.sum()) + "\n";
          out += name + "_count" + render_labels(labels, "", "") + " " +
                 std::to_string(cumulative) + "\n";
        }
        break;
    }
  }
  return out;
}

// --- Phase tracing ---------------------------------------------------------

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kParse:
      return "parse";
    case Phase::kCoalesceWait:
      return "coalesce_wait";
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kEvaluate:
      return "evaluate";
    case Phase::kSerialize:
      return "serialize";
  }
  return "unknown";
}

namespace {
thread_local PhaseTrace* g_current_trace = nullptr;
}  // namespace

PhaseTrace* current_trace() { return g_current_trace; }

TraceScope::TraceScope(PhaseTrace* trace) : previous_(g_current_trace) {
  g_current_trace = trace;
}

TraceScope::~TraceScope() { g_current_trace = previous_; }

}  // namespace ambit::metrics
