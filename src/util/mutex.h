// ambit::Mutex / MutexLock / CondVar — the repo's ONLY locking
// primitives, annotated for Clang Thread Safety Analysis and ranked
// for dynamic lock-order checking.
//
// Raw std::mutex is banned outside this file (enforced by
// scripts/check_concurrency.py) for two reasons:
//
//   1. Static: ambit::Mutex carries AMBIT_CAPABILITY, so every piece of
//      state it protects can be AMBIT_GUARDED_BY it and every helper
//      that expects it held can say AMBIT_REQUIRES it
//      (util/thread_annotations.h). Under Clang, -Wthread-safety turns
//      a missed lock into a compile error; std::mutex offers none of
//      that.
//
//   2. Dynamic: every Mutex declares a LockRank from the ONE canonical
//      lock hierarchy (docs/CONCURRENCY.md). In AMBIT_ENABLE_INVARIANTS
//      builds each thread keeps a stack of the ranks it holds, and any
//      acquisition that is not STRICTLY above the top of the stack
//      aborts immediately with both ranks named — a lock-order /
//      deadlock detector that fires on the FIRST out-of-order
//      acquisition, unlike TSan, which needs an actual deadlock (or a
//      lucky pair of inverted acquisitions) to happen at runtime.
//      Release builds pay nothing: the hooks compile to empty inline
//      functions, exactly like AMBIT_CHECK (util/check.h).
//
// The rank rule also forbids acquiring two locks of the SAME rank at
// once, which makes recursive locking (a guaranteed self-deadlock on
// std::mutex) abort deterministically instead of hanging, and keeps
// sibling instances — e.g. the per-circuit verify mutexes — from ever
// nesting.
//
// CondVar deliberately exposes only single-shot wait/wait_until, no
// predicate overloads: a predicate lambda is analyzed by TSA as a
// separate function that does NOT hold the lock, so guarded reads
// inside it would need suppressions. Callers write the standard
//
//     while (!condition) cv.wait(lock);
//
// loop instead, which TSA checks end to end (the loop body lives in
// the frame that holds the capability).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace ambit {

/// The canonical lock hierarchy — on any one thread, locks may only be
/// acquired in STRICTLY INCREASING rank order. The table with the
/// reasoning behind each edge lives in docs/CONCURRENCY.md; new
/// mutexes add a value here AND a row there. Gaps between values are
/// deliberate room for future locks.
enum class LockRank : int {
  /// serve::CoalescingQueue::mutex_ — group map + fusion counters.
  /// Outermost: held at the serve front door, released before any
  /// Session work.
  kCoalesce = 10,
  /// serve::Session::mutex_ — the circuit registry. Held for lookups
  /// and (un)registrations only, never across LOAD/EVAL/verify work.
  kSessionRegistry = 20,
  /// serve::LoadedCircuit::verify_mutex — per-circuit verify cache.
  /// Held across the exhaustive sweep, which shards through the
  /// ThreadPool, so it must rank below kThreadPool.
  kCircuitVerify = 30,
  /// serve::LoadedCircuit::sim_mutex — per-circuit simulator build.
  kCircuitSim = 35,
  /// The serve ConnectionRegistry (server.cpp) — slots, live fds,
  /// thread handles.
  kConnectionRegistry = 40,
  /// serve::EventLoop's completion queue (serve/event_loop.cpp): the
  /// one lock shared between the epoll loop thread and the pool
  /// workers posting finished request results back to it. Leaf on the
  /// worker side — a worker posts a completion holding nothing else.
  kEventLoop = 45,
  /// ThreadPool::mutex_ — the task queue. Acquired while a caller may
  /// hold kCircuitVerify (VERIFY's sharded sweep).
  kThreadPool = 50,
  /// ThreadPool's per-parallel_for completion latch (Join::m).
  kPoolJoin = 60,
  /// metrics::Registry::mutex_ — registration + exposition snapshots.
  kMetricsRegistry = 70,
  /// util/log.cpp sink mutex. Near-leaf: logging must be callable from
  /// almost anywhere, so almost everything ranks below it.
  kLogSink = 80,
  /// Scratch rank for tests and tools; nothing in src/ uses it, so a
  /// test holding it can acquire no production lock (by design).
  kTest = 100,
};

/// Printable name of a rank ("coalesce", "session-registry", ...),
/// used in lock-order violation reports and tests.
const char* lock_rank_name(LockRank rank);

/// Depth of the calling thread's held-lock stack. Always 0 when
/// AMBIT_ENABLE_INVARIANTS is off (the stack is not maintained).
int held_lock_depth();

/// A standard mutex with a TSA capability and a declared rank.
/// Prefer MutexLock for RAII scopes; lock()/unlock() exist for the
/// rare manually-paired case.
class AMBIT_CAPABILITY("mutex") Mutex {
 public:
  constexpr explicit Mutex(LockRank rank) noexcept : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AMBIT_ACQUIRE() {
    rank_check();
    raw_.lock();
    rank_push();
  }

  void unlock() AMBIT_RELEASE() {
    raw_.unlock();
    rank_pop();
  }

  LockRank rank() const { return rank_; }

 private:
  friend class MutexLock;

  // The dynamic lock-order detector (mutex.cpp). rank_check aborts —
  // BEFORE blocking on the raw mutex, so a real inversion reports
  // instead of deadlocking — unless this rank is strictly above every
  // rank the calling thread already holds.
#ifdef AMBIT_ENABLE_INVARIANTS
  void rank_check() const;
  void rank_push() const;
  void rank_pop() const;
#else
  void rank_check() const {}
  void rank_push() const {}
  void rank_pop() const {}
#endif

  std::mutex raw_;
  const LockRank rank_;
};

/// RAII lock scope over a Mutex — the std::lock_guard/unique_lock
/// replacement. Supports early unlock() (for "drop the lock, then do
/// slow work" sequences) and re-lock, and is the handle CondVar waits
/// through.
class AMBIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) AMBIT_ACQUIRE(mutex)
      : mutex_(&mutex), lock_(mutex.raw_, std::defer_lock) {
    mutex.rank_check();
    lock_.lock();
    mutex.rank_push();
  }

  ~MutexLock() AMBIT_RELEASE() {
    if (lock_.owns_lock()) {
      lock_.unlock();
      mutex_->rank_pop();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before end of scope (throws std::system_error if not
  /// held, exactly like std::unique_lock).
  void unlock() AMBIT_RELEASE() {
    lock_.unlock();
    mutex_->rank_pop();
  }

  /// Re-acquires after an early unlock(), re-running the rank check.
  void lock() AMBIT_ACQUIRE() {
    mutex_->rank_check();
    lock_.lock();
    mutex_->rank_push();
  }

 private:
  friend class CondVar;

  Mutex* mutex_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock. Single-shot waits only — see
/// the header comment for why there are no predicate overloads. A
/// thread blocked in wait() still logically holds the lock as far as
/// the rank stack is concerned (the wait re-acquires before
/// returning, and a blocked thread cannot acquire anything else), so
/// the detector needs no special case here.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock` and blocks until notified (or
  /// spuriously woken — callers loop on their condition).
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Same, with a deadline; returns std::cv_status::timeout when the
  /// deadline passed.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ambit
