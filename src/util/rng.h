// Deterministic pseudo-random number generation.
//
// Every stochastic algorithm in AMBIT (simulated annealing, Monte-Carlo
// yield, synthetic workload generation) draws from this RNG with an
// explicit seed so that all benches and tests are exactly reproducible
// across runs and platforms. The generator is xoshiro256** 1.0
// (Blackman & Vigna), chosen for statistical quality, tiny state and
// trivially portable semantics; <random> engines are avoided because
// their distributions are implementation-defined.
#pragma once

#include <cstdint>
#include <vector>

namespace ambit {

/// xoshiro256** deterministic random number generator.
class Rng {
 public:
  /// Seeds the generator; the full 256-bit state is expanded from the
  /// 64-bit seed with SplitMix64 as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// An independent deterministic stream: generator number `stream` of
  /// the family rooted at `seed`. The (seed, stream) pair is scrambled
  /// through a SplitMix64 round before the usual state expansion, so
  /// consecutive stream indices yield statistically independent
  /// sequences. Parallel Monte-Carlo code (fault/yield.cpp) gives trial
  /// t the generator stream(seed, t): the draw sequence then depends
  /// only on the trial index, never on which worker runs it or in what
  /// order, which is what keeps threaded sweeps bit-identical to
  /// sequential ones.
  static Rng stream(std::uint64_t seed, std::uint64_t stream);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling,
  /// so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability `p` of returning true.
  bool next_bool(double p = 0.5);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace ambit
