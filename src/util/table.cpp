#include "util/table.h"

#include <algorithm>

#include "util/error.h"

namespace ambit {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  check(!header_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(),
        "TextTable row arity does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() {
  rows_.emplace_back();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  }();

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) {
    out += row.empty() ? rule : render_row(row);
  }
  out += rule;
  return out;
}

}  // namespace ambit
