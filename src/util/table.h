// ASCII table rendering for benchmark reports.
//
// Every bench binary reproduces one of the paper's tables or figures and
// prints it in a fixed-width layout so that paper-vs-measured comparisons
// in EXPERIMENTS.md can be pasted verbatim.
#pragma once

#include <string>
#include <vector>

namespace ambit {

/// Column-aligned ASCII table builder.
///
/// Usage:
///   TextTable t({"Function", "Flash", "EEPROM", "CNFET"});
///   t.add_row({"max46", "34960", "87400", "27600"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with a header rule and outer borders.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  // A row with no cells encodes a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ambit
