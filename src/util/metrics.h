// Process-wide, lock-light metrics: counters, gauges, log-bucketed
// latency histograms, and Prometheus text-format exposition.
//
// The serve front door (src/serve/) needs production observability —
// per-verb request rates, latency distributions, connection lifecycle
// gauges — without taxing the request hot path it is measuring. The
// design splits cold registration from hot recording:
//
//   * Registration (Registry::counter/gauge/histogram) happens once at
//     startup, under a mutex, into deque-backed storage whose element
//     addresses are stable for the registry's lifetime. Callers keep
//     the returned reference and never touch the registry again.
//   * Recording (Counter::add, Gauge::set, Histogram::observe) is a
//     handful of relaxed atomic operations — no locks, no allocation,
//     no branches beyond the bucket search. Relaxed ordering is enough
//     because each sample is independent; exposition reads are
//     monotonic snapshots, the same contract Prometheus scrapes assume.
//   * Exposition (Registry::prometheus_text) walks the families under
//     the registration mutex (which only excludes concurrent
//     REGISTRATION — recording proceeds untouched) and renders the
//     text format 0.0.4 page: # HELP / # TYPE lines, escaped label
//     values, and for histograms the cumulative _bucket series with
//     the mandatory +Inf bound plus _sum and _count.
//
// Compile-out: configuring with -DAMBIT_METRICS=OFF removes every
// record call from the hot path the same way AMBIT_CHECK disappears
// under -DAMBIT_ENABLE_INVARIANTS=OFF (util/check.h) — the methods
// compile to nothing, `metrics_enabled()` lets tests skip exactness
// assertions, and the registry still builds (it just exposes zeros),
// so no caller needs an #ifdef.
//
// Histograms are fixed-bucket and log-spaced: bounds are chosen at
// registration (default: powers of two from 1 us to ~67 s), the bucket
// array is pre-sized, and observe() is a lower_bound over ~26 integers
// plus two relaxed adds — allocation-free and wait-free. Quantiles are
// exact in the histogram sense: quantile(q) returns the upper bound of
// the bucket containing the q-rank sample (the max observed value for
// the overflow bucket), which is the precision the bucket layout
// promises and what p50/p90/p99 dashboards consume.
//
// Per-request phase tracing rides the same header: a PhaseTrace is a
// fixed array of per-phase accumulators, installed for the current
// thread with TraceScope, and ScopedPhaseTimer adds elapsed time to
// the ambient trace (if any) on destruction. serve_line() uses it to
// attribute each request's latency to parse / coalesce-wait /
// pool-queue wait / evaluate / serialize and to dump slow requests.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ambit::metrics {

/// True when instrumentation is compiled in (-DAMBIT_METRICS=ON, the
/// default). When false every record call below is a no-op and tests
/// must not assert on recorded values.
constexpr bool metrics_enabled() {
#ifdef AMBIT_METRICS
  return true;
#else
  return false;
#endif
}

/// Microseconds on the monotonic clock — the time base every histogram
/// and phase trace in the repo records in.
inline std::uint64_t monotonic_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. add() is one relaxed
/// fetch_add; compiled out entirely under -DAMBIT_METRICS=OFF.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
#ifdef AMBIT_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (active connections, queue depth).
class Gauge {
 public:
  void set(std::int64_t v) {
#ifdef AMBIT_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void add(std::int64_t n = 1) {
#ifdef AMBIT_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  void sub(std::int64_t n = 1) { add(-n); }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket, log-spaced histogram. Bounds are set at registration;
/// observe() is allocation-free: a lower_bound over the bounds plus
/// relaxed adds into the pre-sized bucket array.
class Histogram {
 public:
  /// Upper bounds (inclusive, in recording units — microseconds by
  /// convention) for the finite buckets; one overflow (+Inf) bucket is
  /// appended implicitly. Bounds must be strictly increasing and
  /// non-empty.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Powers of two from 1 us to 2^26 us (~67 s): 27 finite buckets,
  /// ~2x resolution across nine decades — the default for latencies.
  static std::vector<std::uint64_t> default_latency_bounds_us();

  void observe(std::uint64_t value) {
#ifdef AMBIT_METRICS
    record(value);
#else
    (void)value;
#endif
  }

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max_observed() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the q-quantile sample
  /// (0 < q <= 1); the max observed value when that sample sits in the
  /// overflow bucket; 0 when the histogram is empty. Exact at bucket
  /// resolution by construction.
  std::uint64_t quantile(double q) const;

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Per-bucket counts (finite buckets then overflow), a relaxed
  /// snapshot — buckets may be mid-update relative to each other, which
  /// is the standard scrape contract.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  void record(std::uint64_t value);

  std::vector<std::uint64_t> bounds_;
  // bounds_.size() + 1 slots; the last is the overflow (+Inf) bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Label set attached to one registered metric, e.g. {{"verb","EVAL"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Owns metric families and renders the exposition page. One global()
/// instance serves production; tests and benches construct their own
/// for isolated, exactly-assertable counts. Registration is idempotent:
/// re-registering the same (name, labels) returns the same instance.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry.
  static Registry& global();

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<std::uint64_t> bounds,
                       const Labels& labels = {});

  /// Prometheus text format 0.0.4: families sorted by name, # HELP and
  /// # TYPE once per family, children in registration order.
  std::string prometheus_text() const;

  /// Lookup for tests and benches; nullptr when not registered.
  const Counter* find_counter(const std::string& name,
                              const Labels& labels = {}) const;
  const Gauge* find_gauge(const std::string& name,
                          const Labels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  const Labels& labels = {}) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  /// One metric family: a name, a type, and its labeled children in
  /// registration order. Children live in deques so the references
  /// handed out at registration stay valid forever.
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::deque<std::pair<Labels, Counter>> counters;
    std::deque<std::pair<Labels, Gauge>> gauges;
    std::deque<std::pair<Labels, Histogram>> histograms;
  };

  Family& family_locked(const std::string& name, const std::string& help,
                        Type type) AMBIT_REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kMetricsRegistry};
  // Ordered by name: exposition renders in deterministic sorted order.
  std::map<std::string, Family> families_ AMBIT_GUARDED_BY(mutex_);
};

// --- Per-request phase tracing ---------------------------------------------

/// The phases a serve request's wall time decomposes into.
enum class Phase : std::size_t {
  kParse = 0,         ///< request-line tokenizing + argument parsing
  kCoalesceWait = 1,  ///< leader window / follower future wait
  kQueueWait = 2,     ///< ThreadPool submission -> first chunk running
  kEvaluate = 3,      ///< kernel sweep (eval/sim/verify)
  kSerialize = 4,     ///< response formatting + payload write
};
inline constexpr std::size_t kNumPhases = 5;

/// Printable phase name ("parse", "coalesce_wait", ...), used both as
/// the Prometheus label value and in slow-request log lines.
const char* phase_name(Phase phase);

/// Accumulated microseconds per phase for one request. Plain data —
/// owned by the request's serving frame, written through the ambient
/// thread-local pointer by the RAII timers below.
struct PhaseTrace {
  std::array<std::uint64_t, kNumPhases> us{};

  void add(Phase phase, std::uint64_t elapsed_us) {
    us[static_cast<std::size_t>(phase)] += elapsed_us;
  }
  std::uint64_t get(Phase phase) const {
    return us[static_cast<std::size_t>(phase)];
  }
};

/// The calling thread's active trace, or nullptr when the current work
/// is not being traced (metrics off, tracing disabled, worker thread).
PhaseTrace* current_trace();

/// Installs `trace` as the calling thread's active trace for the scope;
/// restores the previous one on exit (scopes nest). Pass nullptr to
/// disable tracing for the scope.
class TraceScope {
 public:
  explicit TraceScope(PhaseTrace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  PhaseTrace* previous_;
};

/// Adds the scope's elapsed time to the ambient trace's `phase` slot.
/// Free when no trace is installed: one thread-local read, no clock
/// call. Compiled out entirely under -DAMBIT_METRICS=OFF.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase)
#ifdef AMBIT_METRICS
      : phase_(phase), trace_(current_trace()),
        start_us_(trace_ != nullptr ? monotonic_us() : 0) {
  }
#else
  {
    (void)phase;
  }
#endif

  ~ScopedPhaseTimer() {
#ifdef AMBIT_METRICS
    if (trace_ != nullptr) {
      trace_->add(phase_, monotonic_us() - start_us_);
    }
#endif
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
#ifdef AMBIT_METRICS
  Phase phase_;
  PhaseTrace* trace_;
  std::uint64_t start_us_;
#endif
};

}  // namespace ambit::metrics
