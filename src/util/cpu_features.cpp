#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ambit::cpu {

namespace {

SimdTier detect() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  // __builtin_cpu_supports runs cpuid once under the hood and is
  // available on both gcc and clang for x86-64.
  if (__builtin_cpu_supports("avx2")) {
    return SimdTier::kAvx2;
  }
#endif
  return SimdTier::kScalar;
#elif defined(__aarch64__)
  // AdvSIMD (NEON) is architecturally mandatory on AArch64.
  return SimdTier::kNeon;
#else
  return SimdTier::kScalar;
#endif
}

/// True when AMBIT_FORCE_SCALAR is set to anything but "" or "0".
bool force_scalar_env() {
  const char* value = std::getenv("AMBIT_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

std::atomic<SimdTier>& active_slot() {
  // First use resolves the environment override exactly once; later
  // force_tier() calls overwrite the slot.
  static std::atomic<SimdTier> slot{force_scalar_env() ? SimdTier::kScalar
                                                       : detect()};
  return slot;
}

}  // namespace

const char* tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kScalar:
      return "scalar";
  }
  return "unknown";
}

SimdTier detected_tier() {
  static const SimdTier tier = detect();
  return tier;
}

SimdTier active_tier() {
  return active_slot().load(std::memory_order_acquire);
}

SimdTier force_tier(SimdTier tier) {
  const SimdTier installed =
      tier == detected_tier() || tier == SimdTier::kScalar ? tier
                                                           : SimdTier::kScalar;
  active_slot().store(installed, std::memory_order_release);
  return installed;
}

}  // namespace ambit::cpu
