#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace ambit::detail {

void invariant_failure(const char* condition, const char* file, int line,
                       std::string_view message) {
  // One fprintf, then abort: the report must come out even mid-crash,
  // and stderr is unbuffered enough for the death tests to read it.
  std::fprintf(stderr, "%s:%d: AMBIT_CHECK failed: %s: %.*s\n", file, line,
               condition, static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ambit::detail
