// Error handling primitives shared by every AMBIT module.
//
// AMBIT distinguishes two failure classes:
//   * Recoverable input errors (malformed .pla files, inconsistent
//     configuration requests) -> ambit::Error exceptions, caught at tool
//     boundaries.
//   * Programming errors (violated internal invariants) -> ambit::require()
//     in debug-style checks; these also throw so that tests can observe
//     them deterministically, but they indicate a bug, not bad input.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ambit {

/// Exception type for all recoverable AMBIT errors (I/O, parsing,
/// inconsistent user-supplied configuration).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws ambit::Error with `message` when `condition` is false.
/// Use for validating external input at module boundaries.
void check(bool condition, std::string_view message);

/// Throws ambit::Error annotated as an internal invariant violation when
/// `condition` is false. Use for "this cannot happen" assertions whose
/// failure means a bug in AMBIT itself.
void require(bool condition, std::string_view message);

}  // namespace ambit
