#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/check.h"
#include "util/error.h"
#include "util/metrics.h"

namespace ambit {

namespace {
/// The pool (if any) whose worker_loop owns the calling thread. One
/// slot suffices: a worker thread belongs to exactly one pool for its
/// whole life, and nothing nests worker loops.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  check(num_workers >= 0, "ThreadPool: negative worker count");
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  // A task that throws must cost only itself, never the worker thread
  // (an escaped exception would terminate the process) — same contract
  // as a connection-thread body.
  std::function<void()> guarded = [task = std::move(task)] {
    try {
      task();
    } catch (...) {
    }
  };
  if (num_workers() == 0) {
    guarded();  // inline degradation, like parallel_for's
    return;
  }
  {
    const MutexLock lock(mutex_);
    tasks_.push(std::move(guarded));
#ifdef AMBIT_METRICS
    queued_.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) {
        work_ready_.wait(lock);
      }
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
#ifdef AMBIT_METRICS
    queued_.fetch_sub(1, std::memory_order_relaxed);
    busy_.fetch_add(1, std::memory_order_relaxed);
#endif
    task();
#ifdef AMBIT_METRICS
    busy_.fetch_sub(1, std::memory_order_relaxed);
#endif
  }
}

void ThreadPool::parallel_for(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (begin >= end) {
    return;
  }
  grain = std::max<std::uint64_t>(grain, 1);
  const std::uint64_t count = end - begin;
  // Inline cases: a zero-worker pool, a range too small to shard, and
  // a call made FROM one of this pool's own workers (a submitted task
  // sharding its evaluation). The last one is what makes submit +
  // parallel_for composition deadlock-free — see on_worker_thread().
  if (num_workers() == 0 || count <= grain || on_worker_thread()) {
    body(begin, end);
    return;
  }
  // Contiguous chunks of ceil(count / slices) indices, where the slice
  // count targets a few chunks per worker for load balance. The
  // partition depends only on (count, grain, num_workers).
  const std::uint64_t max_slices =
      std::max<std::uint64_t>(count / grain, 1);
  const std::uint64_t slices = std::min<std::uint64_t>(
      max_slices, static_cast<std::uint64_t>(num_workers()) * 4);
  const std::uint64_t chunk = (count + slices - 1) / slices;

  // Shared completion state for this call. Exceptions are captured
  // under the same mutex; the first one wins and is rethrown below.
  struct Join {
    Mutex m{LockRank::kPoolJoin};
    CondVar done;
    std::uint64_t pending AMBIT_GUARDED_BY(m) = 0;
    std::exception_ptr error AMBIT_GUARDED_BY(m);
    // Phase-trace support: submit->first-chunk-start latency, measured
    // by whichever chunk runs first and read back by the caller (who is
    // blocked until all chunks finish, so the read never races).
    std::atomic<bool> started{false};
    std::atomic<std::uint64_t> queue_wait_us{0};
  };
  auto join = std::make_shared<Join>();

#ifdef AMBIT_METRICS
  // Attribute scheduling delay to the ambient request trace (if any):
  // the caller is a serve connection thread inside serve_line(), and
  // its pool-queue wait is a phase of the request's latency.
  metrics::PhaseTrace* trace = metrics::current_trace();
  const std::uint64_t submit_us = trace != nullptr ? metrics::monotonic_us() : 0;
  const bool record_wait = trace != nullptr;
#else
  const bool record_wait = false;
  const std::uint64_t submit_us = 0;
#endif

  // The partition invariants everything downstream leans on: chunks are
  // non-empty, contiguous, in order, and cover [begin, end) exactly —
  // the determinism guarantee in the header is THIS, stated executably.
  std::uint64_t covered = 0;
  {
    const MutexLock lock(mutex_);
    for (std::uint64_t lo = begin; lo < end; lo += chunk) {
      const std::uint64_t hi = std::min(end, lo + chunk);
      AMBIT_CHECK(lo < hi && hi <= end,
                  "ThreadPool::parallel_for: degenerate chunk");
      covered += hi - lo;
      ++join->pending;
#ifdef AMBIT_METRICS
      queued_.fetch_add(1, std::memory_order_relaxed);
#endif
      tasks_.push([join, lo, hi, record_wait, submit_us, &body] {
        if (record_wait &&
            !join->started.exchange(true, std::memory_order_relaxed)) {
          join->queue_wait_us.store(metrics::monotonic_us() - submit_us,
                                    std::memory_order_relaxed);
        }
        try {
          body(lo, hi);
        } catch (...) {
          const MutexLock jlock(join->m);
          if (!join->error) {
            join->error = std::current_exception();
          }
        }
        {
          const MutexLock jlock(join->m);
          --join->pending;
        }
        join->done.notify_one();
      });
    }
  }
  AMBIT_CHECK(covered == count,
              "ThreadPool::parallel_for: chunk partition does not cover the "
              "range exactly");
  work_ready_.notify_all();

  MutexLock jlock(join->m);
  while (join->pending != 0) {
    join->done.wait(jlock);
  }
#ifdef AMBIT_METRICS
  if (record_wait) {
    trace->add(metrics::Phase::kQueueWait,
               join->queue_wait_us.load(std::memory_order_relaxed));
  }
#endif
  if (join->error) {
    std::rethrow_exception(join->error);
  }
}

int ThreadPool::default_workers() {
  if (const char* env = std::getenv("AMBIT_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace ambit
