#include "serve/protocol.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"
#include "util/strings.h"

namespace ambit::serve {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses a decimal count field of an EVALB header; every digit must be
/// consumed, so "12x" and "-3" fail as loudly as "abc".
std::uint64_t parse_count(const std::string& token, const std::string& what) {
  std::uint64_t value = 0;
  check(!token.empty(), what + " is empty");
  for (const char c : token) {
    check(c >= '0' && c <= '9', what + " '" + token + "' is not a number");
    check(value <= (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10,
          what + " '" + token + "' overflows");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

Request parse_request(const std::string& line) {
  const std::vector<std::string> tokens = split_ws(line);
  check(!tokens.empty(), "empty request");
  const std::string& verb = tokens[0];
  Request request;
  if (verb == "LOAD") {
    check(tokens.size() == 3, "LOAD needs: LOAD <name> <path>");
    request.verb = Verb::kLoad;
    request.name = tokens[1];
    request.path = tokens[2];
  } else if (verb == "EVAL") {
    check(tokens.size() >= 3, "EVAL needs: EVAL <name> <hex-pattern>...");
    request.verb = Verb::kEval;
    request.name = tokens[1];
    request.patterns.assign(tokens.begin() + 2, tokens.end());
  } else if (verb == "EVALB") {
    check(tokens.size() == 4, "EVALB needs: EVALB <name> <npatterns> <nwords>");
    request.verb = Verb::kEvalB;
    request.name = tokens[1];
    request.num_patterns = parse_count(tokens[2], "EVALB pattern count");
    request.num_words = parse_count(tokens[3], "EVALB word count");
  } else if (verb == "SIM") {
    check(tokens.size() >= 3, "SIM needs: SIM <name> <hex-pattern>...");
    request.verb = Verb::kSim;
    request.name = tokens[1];
    request.patterns.assign(tokens.begin() + 2, tokens.end());
  } else if (verb == "SIMB") {
    check(tokens.size() == 4, "SIMB needs: SIMB <name> <npatterns> <nwords>");
    request.verb = Verb::kSimB;
    request.name = tokens[1];
    request.num_patterns = parse_count(tokens[2], "SIMB pattern count");
    request.num_words = parse_count(tokens[3], "SIMB word count");
  } else if (verb == "VERIFY") {
    check(tokens.size() == 2, "VERIFY needs: VERIFY <name>");
    request.verb = Verb::kVerify;
    request.name = tokens[1];
  } else if (verb == "STATS") {
    check(tokens.size() == 1, "STATS takes no arguments");
    request.verb = Verb::kStats;
  } else if (verb == "METRICS") {
    check(tokens.size() == 1, "METRICS takes no arguments");
    request.verb = Verb::kMetrics;
  } else if (verb == "UNLOAD") {
    check(tokens.size() == 2, "UNLOAD needs: UNLOAD <name>");
    request.verb = Verb::kUnload;
    request.name = tokens[1];
  } else if (verb == "HELP") {
    request.verb = Verb::kHelp;
  } else if (verb == "QUIT") {
    request.verb = Verb::kQuit;
  } else if (verb == "SHUTDOWN") {
    request.verb = Verb::kShutdown;
  } else {
    throw Error("unknown verb '" + verb + "' (try HELP)");
  }
  return request;
}

std::vector<std::string> verb_names() {
  // Must cover every case parse_request accepts — the HELP audit test
  // (tests/serve_test.cpp) fails when help_text() misses one of these.
  return {"LOAD", "EVAL",    "EVALB", "SIM",  "SIMB", "VERIFY",
          "STATS", "METRICS", "UNLOAD", "HELP", "QUIT", "SHUTDOWN"};
}

std::string hex_encode(const std::vector<bool>& bits) {
  const int width = static_cast<int>(bits.size());
  const int digits = std::max(1, (width + 3) / 4);
  std::string hex(static_cast<std::size_t>(digits), '0');
  for (int i = 0; i < width; ++i) {
    if (!bits[static_cast<std::size_t>(i)]) {
      continue;
    }
    // Bit i lives in hex digit i/4 counted from the LEAST significant
    // (rightmost) digit.
    const int digit = digits - 1 - i / 4;
    int value = hex_digit(hex[static_cast<std::size_t>(digit)]);
    value |= 1 << (i % 4);
    hex[static_cast<std::size_t>(digit)] =
        value < 10 ? static_cast<char>('0' + value)
                   : static_cast<char>('a' + value - 10);
  }
  return hex;
}

std::vector<bool> hex_decode(const std::string& hex, int width) {
  check(width >= 0, "hex_decode: negative width");
  std::size_t start = 0;
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    start = 2;
  }
  check(hex.size() > start, "empty hex pattern '" + hex + "'");
  std::vector<bool> bits(static_cast<std::size_t>(width), false);
  // Digit-wise from the right: digit j (0 = rightmost) covers bits
  // 4j..4j+3, so arbitrary widths never need a big integer.
  for (std::size_t k = 0; k < hex.size() - start; ++k) {
    const char c = hex[hex.size() - 1 - k];
    const int value = hex_digit(c);
    if (value < 0) {
      throw Error("bad hex digit '" + std::string(1, c) + "' in pattern '" +
                  hex + "'");
    }
    for (int b = 0; b < 4; ++b) {
      if ((value >> b) & 1) {
        const std::size_t bit = 4 * k + static_cast<std::size_t>(b);
        if (bit >= static_cast<std::size_t>(width)) {
          throw Error("pattern '" + hex + "' has bit " + std::to_string(bit) +
                      " set but the circuit has " + std::to_string(width) +
                      " inputs");
        }
        bits[bit] = true;
      }
    }
  }
  return bits;
}

std::string ok_response(const std::string& detail) {
  return detail.empty() ? "OK" : "OK " + detail;
}

std::string evalb_response_header(std::uint64_t num_patterns,
                                  std::uint64_t num_words) {
  return "OK EVALB " + std::to_string(num_patterns) + " " +
         std::to_string(num_words);
}

std::string simb_response_header(std::uint64_t num_patterns,
                                 std::uint64_t num_words) {
  return "OK SIMB " + std::to_string(num_patterns) + " " +
         std::to_string(num_words);
}

std::string sim_token(const std::vector<bool>& outputs, double precharge_s,
                      double plane1_eval_s, double plane2_eval_s) {
  char delays[96];
  std::snprintf(delays, sizeof(delays), "@%.6g/%.6g/%.6g", precharge_s * 1e12,
                plane1_eval_s * 1e12, plane2_eval_s * 1e12);
  return hex_encode(outputs) + delays;
}

std::string err_response(const std::string& message) {
  std::string flat = message;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  std::replace(flat.begin(), flat.end(), '\r', ' ');
  return "ERR " + flat;
}

std::string help_text() {
  return "commands: LOAD <name> <path> | EVAL <name> <hex>... | "
         "EVALB <name> <npatterns> <nwords> (+ raw input lanes) | "
         "SIM <name> <hex>... (switch-level, outputs@pre/e1/e2 ps) | "
         "SIMB <name> <npatterns> <nwords> (+ raw input lanes) | "
         "VERIFY <name> | STATS | "
         "METRICS (Prometheus page: OK METRICS <nbytes> + raw bytes) | "
         "UNLOAD <name> | HELP | QUIT | SHUTDOWN "
         "(protocol v" +
         std::to_string(kProtocolVersion) + ", reference: docs/PROTOCOL.md)";
}

}  // namespace ambit::serve
