// A minimal socket client for the ambit::serve protocol, over both the
// Unix-domain and the TCP transport.
//
// Header-only on purpose: the serve tests and bench_serve_throughput
// both drive live servers over AF_UNIX and AF_INET, and the
// connect-retry / line-transact plumbing must be ONE implementation so
// the two can never drift into exercising different client behavior.
// It is also the reference for anyone writing a real client against
// the wire protocol (serve/protocol.h; normative reference
// docs/PROTOCOL.md). Everything below a connected fd —
// socket_transact, the bulk-response decoders — is transport-agnostic,
// exactly like the server side.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ambit::serve {

/// Decodes a bulk success response (EVALB or SIMB, per `verb`) sitting
/// at the start of `response`: the header line
/// "OK <verb> <num_patterns> <num_words>" plus `num_words` raw
/// little-endian words of payload. On a match with the expected pattern
/// count, fills `words` and sets `consumed` to the total frame size
/// (header line + payload), so the caller can keep parsing pipelined
/// responses after it. Returns false — outputs untouched — on a header
/// mismatch or a truncated payload.
inline bool decode_bulk_response(const std::string& verb,
                                 const std::string& response,
                                 std::uint64_t expected_patterns,
                                 std::uint64_t expected_words,
                                 std::vector<std::uint64_t>& words,
                                 std::size_t& consumed) {
  const std::string header = "OK " + verb + " " +
                             std::to_string(expected_patterns) + " " +
                             std::to_string(expected_words) + "\n";
  if (response.compare(0, header.size(), header) != 0) {
    return false;
  }
  const std::size_t payload_bytes = expected_words * sizeof(std::uint64_t);
  if (response.size() < header.size() + payload_bytes) {
    return false;
  }
  words.resize(expected_words);
  std::memcpy(words.data(), response.data() + header.size(), payload_bytes);
  consumed = header.size() + payload_bytes;
  return true;
}

/// EVALB frame: `expected_words` output-lane words.
inline bool decode_evalb_response(const std::string& response,
                                  std::uint64_t expected_patterns,
                                  std::uint64_t expected_words,
                                  std::vector<std::uint64_t>& words,
                                  std::size_t& consumed) {
  return decode_bulk_response("EVALB", response, expected_patterns,
                              expected_words, words, consumed);
}

/// SIMB frame: output lanes followed by the 3*np per-pattern delay
/// doubles (see serve/protocol.h for the exact layout).
inline bool decode_simb_response(const std::string& response,
                                 std::uint64_t expected_patterns,
                                 std::uint64_t expected_words,
                                 std::vector<std::uint64_t>& words,
                                 std::size_t& consumed) {
  return decode_bulk_response("SIMB", response, expected_patterns,
                              expected_words, words, consumed);
}

/// Waits for a thread running Server::serve_tcp(host, 0, &port) to
/// publish its kernel-assigned port. Returns the port once non-zero;
/// a NEGATIVE value means the caller's server thread reported failure
/// (the convention: store -1 when serve_tcp throws), 0 that the wait
/// timed out. One shared implementation so the tests, the bench, and
/// the tools cannot drift on this handshake. (Portable on purpose —
/// the tools call it unconditionally; on Windows serve_tcp itself
/// throws at runtime, but everything must still compile.)
inline int await_bound_port(const std::atomic<int>& port, int attempts = 2000,
                            int delay_ms = 2) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const int bound = port.load(std::memory_order_acquire);
    if (bound != 0) {
      return bound;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return 0;
}

/// Runs a blocking Server::serve_tcp call while announcing the
/// kernel-assigned port: `serve_fn()` must invoke serve_tcp(...,
/// &port); a reporter thread waits on `port` and calls
/// `announce(bound)` once the server is listening (skipped when it
/// never binds). The reporter is joined on BOTH exit paths — on a
/// serve failure, -1 is stored first so the reporter cannot be left
/// waiting. One implementation of this unblock-on-throw/join protocol
/// so ambit_serve and ambit_cli cannot drift on it.
template <typename ServeFn, typename Announce>
std::uint64_t serve_tcp_announced(std::atomic<int>& port, ServeFn&& serve_fn,
                                  Announce&& announce) {
  std::thread reporter([&port, &announce] {
    const int bound = await_bound_port(port, /*attempts=*/5000);
    if (bound > 0) {
      announce(bound);
    }
  });
  try {
    const std::uint64_t served = serve_fn();
    reporter.join();
    return served;
  } catch (...) {
    port.store(-1);  // unblock the reporter before rethrowing
    reporter.join();
    throw;
  }
}

#ifndef _WIN32

/// Connects to `socket_path`, retrying until the server has bound it.
/// Returns the connected fd, or -1 once the attempts are exhausted.
inline int connect_with_retry(const std::string& socket_path,
                              int attempts = 500, int delay_ms = 5) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (fd >= 0) {
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return -1;
}

/// Connects to TCP `host:port` (IPv4 dotted-quad or "localhost"),
/// retrying until the server has bound it. TCP_NODELAY is set so small
/// request lines are not Nagle-delayed behind the server's responses.
/// Returns the connected fd, or -1 once the attempts are exhausted.
inline int connect_tcp_with_retry(const std::string& host, int port,
                                  int attempts = 500, int delay_ms = 5) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    return -1;
  }
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      return fd;
    }
    if (fd >= 0) {
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return -1;
}

/// Sends `requests` and reads exactly `expected_lines` response lines
/// back (fewer if the server closes the connection first).
inline std::vector<std::string> socket_transact(int fd,
                                                const std::string& requests,
                                                std::size_t expected_lines) {
  std::size_t sent = 0;
  while (sent < requests.size()) {
    // MSG_NOSIGNAL: a server that drops the connection mid-request
    // (oversized line, unframed EVALB header) must surface as a short
    // response, not SIGPIPE the client process.
    const ssize_t n = ::send(fd, requests.data() + sent,
                             requests.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[65536];
  std::vector<std::string> lines;
  while (lines.size() < expected_lines) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      lines.push_back(buffer.substr(0, newline));
      buffer.erase(0, newline + 1);
    }
  }
  return lines;
}

#endif  // !_WIN32

}  // namespace ambit::serve
