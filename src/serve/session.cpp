#include "serve/session.h"

#include <chrono>
#include <utility>

#include "core/evaluator.h"
#include "espresso/espresso.h"
#include "util/error.h"

namespace ambit::serve {

Session::Session(int workers) : pool_(workers > 1 ? workers : 0) {}

const LoadedCircuit& Session::load(const std::string& name,
                                   const std::string& path) {
  check(!name.empty(), "Session::load: empty circuit name");
  const auto start = std::chrono::steady_clock::now();
  // The full pipeline runs BEFORE the registry is touched: a failed
  // LOAD (missing file, malformed cover) leaves any same-named circuit
  // untouched.
  auto circuit = std::make_unique<LoadedCircuit>();
  circuit->name = name;
  circuit->pla = logic::read_pla_file(path);
  circuit->minimized =
      espresso::minimize(circuit->pla.onset, circuit->pla.dcset).cover;
  circuit->gnor = core::GnorPla::map_cover(circuit->minimized);
  circuit->load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  LoadedCircuit& slot = *(circuits_[name] = std::move(circuit));
  ++loads_;
  return slot;
}

const LoadedCircuit* Session::find(const std::string& name) const {
  const auto it = circuits_.find(name);
  return it == circuits_.end() ? nullptr : it->second.get();
}

const LoadedCircuit& Session::get(const std::string& name) const {
  const LoadedCircuit* circuit = find(name);
  check(circuit != nullptr, "no circuit loaded under '" + name + "'");
  return *circuit;
}

LoadedCircuit& Session::get_mutable(const std::string& name) {
  const auto it = circuits_.find(name);
  check(it != circuits_.end(), "no circuit loaded under '" + name + "'");
  return *it->second;
}

logic::PatternBatch Session::eval(const std::string& name,
                                  const logic::PatternBatch& inputs) {
  LoadedCircuit& circuit = get_mutable(name);
  logic::PatternBatch outputs = circuit.gnor.evaluate_batch(inputs, pool_);
  ++circuit.evals;
  circuit.patterns += inputs.num_patterns();
  ++evals_;
  patterns_ += inputs.num_patterns();
  return outputs;
}

bool Session::verify(const std::string& name) {
  LoadedCircuit& circuit = get_mutable(name);
  check(circuit.gnor.num_inputs() <= logic::TruthTable::kMaxInputs,
        "VERIFY supports at most " +
            std::to_string(logic::TruthTable::kMaxInputs) + " inputs");
  if (!circuit.reference.has_value()) {
    circuit.reference = logic::TruthTable::from_cover(circuit.pla.onset);
    circuit.dontcare = logic::TruthTable::from_cover(circuit.pla.dcset);
  }
  const logic::TruthTable actual = exhaustive_truth_table(circuit.gnor, pool_);
  ++circuit.verifies;
  ++verifies_;
  return actual.count_mismatches(*circuit.reference, &*circuit.dontcare) == 0;
}

void Session::unload(const std::string& name) {
  const auto it = circuits_.find(name);
  check(it != circuits_.end(), "no circuit loaded under '" + name + "'");
  circuits_.erase(it);
}

std::vector<std::string> Session::names() const {
  std::vector<std::string> result;
  result.reserve(circuits_.size());
  for (const auto& [name, circuit] : circuits_) {
    result.push_back(name);
  }
  return result;
}

SessionStats Session::stats() const {
  SessionStats stats;
  stats.loads = loads_;
  stats.evals = evals_;
  stats.patterns = patterns_;
  stats.verifies = verifies_;
  stats.circuits = static_cast<int>(circuits_.size());
  stats.workers = pool_.num_workers();
  return stats;
}

}  // namespace ambit::serve
