#include "serve/session.h"

#include <chrono>
#include <utility>

#include "core/evaluator.h"
#include "espresso/espresso.h"
#include "util/error.h"

namespace ambit::serve {

Session::Session(int workers) : pool_(workers > 1 ? workers : 0) {}

std::shared_ptr<const LoadedCircuit> Session::load(const std::string& name,
                                                   const std::string& path) {
  check(!name.empty(), "Session::load: empty circuit name");
  const auto start = std::chrono::steady_clock::now();
  // The full pipeline runs BEFORE the registry is touched (and outside
  // its lock): a failed LOAD leaves any same-named circuit untouched,
  // and a slow one never blocks concurrent lookups.
  auto circuit = std::make_shared<LoadedCircuit>();
  circuit->name = name;
  circuit->pla = logic::read_pla_file(path);
  circuit->minimized =
      espresso::minimize(circuit->pla.onset, circuit->pla.dcset).cover;
  circuit->gnor = core::GnorPla::map_cover(circuit->minimized);
  circuit->load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    const MutexLock lock(mutex_);
    circuits_[name] = circuit;
  }
  loads_.fetch_add(1, std::memory_order_relaxed);
  return circuit;
}

std::shared_ptr<const LoadedCircuit> Session::find(
    const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = circuits_.find(name);
  return it == circuits_.end() ? nullptr : it->second;
}

std::shared_ptr<const LoadedCircuit> Session::get(
    const std::string& name) const {
  return get_shared(name);
}

std::shared_ptr<LoadedCircuit> Session::get_shared(
    const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = circuits_.find(name);
  check(it != circuits_.end(), "no circuit loaded under '" + name + "'");
  return it->second;
}

logic::PatternBatch Session::eval(const std::string& name,
                                  const logic::PatternBatch& inputs) {
  return eval(std::shared_ptr<const LoadedCircuit>(get_shared(name)), inputs);
}

logic::PatternBatch Session::eval(
    const std::shared_ptr<const LoadedCircuit>& circuit,
    const logic::PatternBatch& inputs) {
  logic::PatternBatch outputs = eval_unrecorded(circuit, inputs);
  record_eval(circuit, inputs.num_patterns());
  return outputs;
}

logic::PatternBatch Session::eval_unrecorded(
    const std::shared_ptr<const LoadedCircuit>& circuit,
    const logic::PatternBatch& inputs) {
  check(circuit != nullptr, "Session::eval: null circuit");
  // The mapped array is immutable post-LOAD and the shared_ptr keeps it
  // alive, so the evaluation runs with no lock held.
  return circuit->gnor.evaluate_batch(inputs, pool_);
}

void Session::record_eval(const std::shared_ptr<const LoadedCircuit>& circuit,
                          std::uint64_t num_patterns) {
  check(circuit != nullptr, "Session::record_eval: null circuit");
  circuit->evals.fetch_add(1, std::memory_order_relaxed);
  circuit->patterns.fetch_add(num_patterns, std::memory_order_relaxed);
  evals_.fetch_add(1, std::memory_order_relaxed);
  patterns_.fetch_add(num_patterns, std::memory_order_relaxed);
}

simulate::BatchSimResult Session::sim(const std::string& name,
                                      const logic::PatternBatch& inputs) {
  return sim(std::shared_ptr<const LoadedCircuit>(get_shared(name)), inputs);
}

simulate::BatchSimResult Session::sim(
    const std::shared_ptr<const LoadedCircuit>& circuit,
    const logic::PatternBatch& inputs) {
  check(circuit != nullptr, "Session::sim: null circuit");
  std::shared_ptr<const simulate::GnorPlaSimulator> simulator;
  {
    // Build the transistor network once per circuit, on first use —
    // concurrent first-SIMs serialize here; every later sweep only
    // copies the shared_ptr. The sweep itself runs OUTSIDE the lock
    // (simulate_batch settles per-shard network copies).
    const MutexLock lock(circuit->sim_mutex);
    if (circuit->simulator == nullptr) {
      circuit->simulator = std::make_shared<const simulate::GnorPlaSimulator>(
          circuit->gnor, tech::default_cnfet_electrical());
    }
    simulator = circuit->simulator;
  }
  simulate::BatchSimResult result = simulator->simulate_batch(inputs, &pool_);
  circuit->sims.fetch_add(1, std::memory_order_relaxed);
  sims_.fetch_add(1, std::memory_order_relaxed);
  sim_patterns_.fetch_add(inputs.num_patterns(), std::memory_order_relaxed);
  return result;
}

bool Session::verify(const std::string& name) {
  return verify(std::shared_ptr<const LoadedCircuit>(get_shared(name)));
}

bool Session::verify(const std::shared_ptr<const LoadedCircuit>& circuit) {
  check(circuit != nullptr, "Session::verify: null circuit");
  check(circuit->gnor.num_inputs() <= logic::TruthTable::kMaxInputs,
        "VERIFY supports at most " +
            std::to_string(logic::TruthTable::kMaxInputs) + " inputs");
  // Same-circuit verifies serialize here: the cache build must happen
  // once, and count_mismatches reads it under the same mutex.
  const MutexLock lock(circuit->verify_mutex);
  if (!circuit->reference.has_value() || !circuit->dontcare.has_value()) {
    // Build BOTH tables before caching EITHER: if the second build
    // throws (the request fails with ERR as usual), a later VERIFY
    // must retry the whole build rather than dereference a cached
    // reference next to an empty dontcare.
    logic::TruthTable reference =
        logic::TruthTable::from_cover(circuit->pla.onset);
    logic::TruthTable dontcare =
        logic::TruthTable::from_cover(circuit->pla.dcset);
    circuit->reference = std::move(reference);
    circuit->dontcare = std::move(dontcare);
  }
  const logic::TruthTable actual =
      exhaustive_truth_table(circuit->gnor, pool_);
  circuit->verifies.fetch_add(1, std::memory_order_relaxed);
  verifies_.fetch_add(1, std::memory_order_relaxed);
  return actual.count_mismatches(*circuit->reference, &*circuit->dontcare) ==
         0;
}

void Session::unload(const std::string& name) {
  const MutexLock lock(mutex_);
  const auto it = circuits_.find(name);
  check(it != circuits_.end(), "no circuit loaded under '" + name + "'");
  circuits_.erase(it);
}

std::vector<std::string> Session::names() const {
  const MutexLock lock(mutex_);
  std::vector<std::string> result;
  result.reserve(circuits_.size());
  for (const auto& [name, circuit] : circuits_) {
    result.push_back(name);
  }
  return result;
}

SessionStats Session::stats() const {
  SessionStats stats;
  stats.loads = loads_.load(std::memory_order_relaxed);
  stats.evals = evals_.load(std::memory_order_relaxed);
  stats.patterns = patterns_.load(std::memory_order_relaxed);
  stats.sims = sims_.load(std::memory_order_relaxed);
  stats.sim_patterns = sim_patterns_.load(std::memory_order_relaxed);
  stats.verifies = verifies_.load(std::memory_order_relaxed);
  {
    const MutexLock lock(mutex_);
    stats.circuits = static_cast<int>(circuits_.size());
  }
  stats.workers = pool_.num_workers();
  return stats;
}

}  // namespace ambit::serve
