#include "serve/server.h"

#include <istream>
#include <ostream>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/strings.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace ambit::serve {

std::string Server::handle_line(const std::string& line) {
  try {
    const Request request = parse_request(line);
    switch (request.verb) {
      case Verb::kLoad: {
        const LoadedCircuit& circuit =
            session_.load(request.name, request.path);
        return ok_response(
            "loaded " + circuit.name + ": " +
            std::to_string(circuit.gnor.num_inputs()) + " inputs, " +
            std::to_string(circuit.gnor.num_outputs()) + " outputs, " +
            std::to_string(circuit.gnor.num_products()) + " products, " +
            std::to_string(circuit.gnor.cell_count()) + " cells, " +
            format_double(circuit.load_seconds * 1e3, 1) + " ms");
      }
      case Verb::kEval: {
        const int width = session_.get(request.name).gnor.num_inputs();
        std::vector<std::vector<bool>> patterns;
        patterns.reserve(request.patterns.size());
        for (const std::string& token : request.patterns) {
          patterns.push_back(hex_decode(token, width));
        }
        const logic::PatternBatch outputs = session_.eval(
            request.name, logic::PatternBatch::from_patterns(patterns));
        std::string detail;
        for (std::uint64_t p = 0; p < outputs.num_patterns(); ++p) {
          if (!detail.empty()) {
            detail += ' ';
          }
          detail += hex_encode(outputs.pattern(p));
        }
        return ok_response(detail);
      }
      case Verb::kVerify: {
        const bool equivalent = session_.verify(request.name);
        const int inputs = session_.get(request.name).gnor.num_inputs();
        if (!equivalent) {
          return err_response(request.name +
                              ": mapped array NOT equivalent to its source "
                              "cover");
        }
        return ok_response(
            "verified " + request.name + ": equivalent over " +
            std::to_string(std::uint64_t{1} << inputs) + " patterns");
      }
      case Verb::kStats: {
        const SessionStats stats = session_.stats();
        return ok_response("circuits=" + std::to_string(stats.circuits) +
                           " loads=" + std::to_string(stats.loads) +
                           " evals=" + std::to_string(stats.evals) +
                           " patterns=" + std::to_string(stats.patterns) +
                           " verifies=" + std::to_string(stats.verifies) +
                           " workers=" + std::to_string(stats.workers));
      }
      case Verb::kUnload:
        session_.unload(request.name);
        return ok_response("unloaded " + request.name);
      case Verb::kHelp:
        return ok_response(help_text());
      case Verb::kQuit:
        quit_ = true;
        return ok_response("bye");
      case Verb::kShutdown:
        quit_ = true;
        shutdown_.store(true);
        return ok_response("shutting down");
    }
    return err_response("unhandled verb");  // unreachable
  } catch (const Error& e) {
    return err_response(e.what());
  } catch (const std::exception& e) {
    // Anything the request pipeline can throw beyond ambit::Error —
    // e.g. bad_alloc from a cover declaring absurd widths — is still a
    // request failure, not a reason to take the server down.
    return err_response(std::string("internal: ") + e.what());
  }
}

std::uint64_t Server::serve_stream(std::istream& in, std::ostream& out) {
  quit_ = false;
  std::uint64_t served = 0;
  std::string line;
  while (!quit_ && std::getline(in, line)) {
    if (trim(line).empty()) {
      continue;  // blank lines are keep-alives, not requests
    }
    out << handle_line(line) << '\n' << std::flush;
    ++served;
  }
  return served;
}

#ifndef _WIN32

namespace {

/// Writes all of `text` to `fd`, retrying on short writes. MSG_NOSIGNAL
/// keeps a peer that hung up from raising SIGPIPE; returns false when
/// the peer is gone (any non-EINTR failure), which the caller treats as
/// a dropped connection — never as a server-fatal error.
bool write_all(int fd, const std::string& text) {
  std::size_t done = 0;
  while (done < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + done, text.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint64_t Server::serve_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  check(socket_path.size() < sizeof(addr.sun_path),
        "serve_unix: socket path too long: " + socket_path);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  check(listener >= 0, "serve_unix: cannot create socket");
  ::unlink(socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    throw Error("serve_unix: cannot bind " + socket_path + ": " + reason);
  }

  std::uint64_t served = 0;
  while (!shutdown_.load()) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(listener);
      throw Error(std::string("serve_unix: accept failed: ") +
                  std::strerror(errno));
    }
    quit_ = false;
    bool peer_gone = false;
    std::string buffer;
    char chunk[4096];
    while (!quit_ && !peer_gone) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;  // peer closed (or errored): drop the connection
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      // Serve every complete line in the buffer; a partial trailing
      // line waits for the next read.
      std::size_t newline;
      while (!quit_ && (newline = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        if (trim(line).empty()) {
          continue;
        }
        if (!write_all(conn, handle_line(line) + "\n")) {
          peer_gone = true;
          break;
        }
        ++served;
      }
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(socket_path.c_str());
  return served;
}

#else  // _WIN32

std::uint64_t Server::serve_unix(const std::string&) {
  throw Error("serve_unix: Unix-domain sockets unavailable on this platform");
}

#endif

}  // namespace ambit::serve
