#include "serve/server.h"

#include <array>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "serve/conn_state.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/mutex.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <map>
#include <thread>
#endif

namespace ambit::serve {

std::pair<std::string, int> parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  check(colon != std::string::npos && colon > 0 && colon + 1 < spec.size(),
        "expected <host>:<port>, got '" + spec + "'");
  const std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  int port = 0;
  for (const char c : port_text) {
    check(c >= '0' && c <= '9',
          "port '" + port_text + "' in '" + spec + "' is not a number");
    port = port * 10 + (c - '0');
    check(port <= 65535,
          "port '" + port_text + "' in '" + spec + "' exceeds 65535");
  }
  return {host, port};
}

const char* io_model_name(IoModel model) {
  return model == IoModel::kThreads ? "threads" : "epoll";
}

IoModel parse_io_model(const std::string& text) {
  if (text == "threads") {
    return IoModel::kThreads;
  }
  if (text == "epoll") {
    return IoModel::kEpoll;
  }
  throw Error("unknown io model '" + text + "' (expected threads or epoll)");
}

IoModel resolve_io_model(IoModel requested) {
  // getenv, not a cached static: tests flip the variable between
  // listeners in one process.
  const char* forced = std::getenv("AMBIT_IO_MODEL");
  if (forced != nullptr && *forced != '\0') {
    requested = parse_io_model(forced);
  }
#ifndef __linux__
  requested = IoModel::kThreads;  // epoll is Linux-only
#endif
  return requested;
}

/// Every handle the per-request path records through, registered once
/// at Server construction. Pointers, not references, so the struct can
/// live behind a unique_ptr; all of them point into deque-backed
/// registry storage whose addresses never move.
struct Server::ServeMetrics {
  metrics::Registry& registry;
  // Indexed by Verb enum value — verb_names() lists the verbs in enum
  // order, which is what makes static_cast<size_t>(verb) valid here.
  std::vector<metrics::Counter*> requests;
  std::vector<metrics::Histogram*> request_us;
  metrics::Counter* request_errors;
  metrics::Counter* requests_malformed;
  std::array<metrics::Histogram*, metrics::kNumPhases> phase_us;
  metrics::Gauge* connections_active;
  metrics::Counter* connections_accepted;
  metrics::Counter* dropped_idle;
  metrics::Counter* dropped_send;
  metrics::Counter* dropped_malformed;
  metrics::Gauge* pool_workers;
  metrics::Gauge* pool_queue_depth;
  metrics::Gauge* pool_busy;
  metrics::Counter* coalesce_requests;
  metrics::Counter* coalesce_fused;
  metrics::Counter* coalesce_batches;
  metrics::Histogram* coalesce_wait_us;
  metrics::Counter* loop_iterations;
  metrics::Histogram* loop_ready_events;
  metrics::Gauge* pending_write_bytes;

  explicit ServeMetrics(metrics::Registry& reg) : registry(reg) {
    const std::vector<std::string> verbs = verb_names();
    requests.reserve(verbs.size());
    request_us.reserve(verbs.size());
    for (const std::string& verb : verbs) {
      const metrics::Labels labels{{"verb", verb}};
      requests.push_back(&reg.counter(
          "ambit_serve_requests_total",
          "Requests served, by verb (bumped after the response is written, "
          "so a METRICS page excludes the request serving it)",
          labels));
      request_us.push_back(&reg.histogram(
          "ambit_serve_request_us",
          "End-to-end request wall time in microseconds, by verb",
          metrics::Histogram::default_latency_bounds_us(), labels));
    }
    request_errors =
        &reg.counter("ambit_serve_request_errors_total",
                     "Requests answered with an ERR response");
    requests_malformed =
        &reg.counter("ambit_serve_malformed_requests_total",
                     "Request lines that failed to parse");
    for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
      phase_us[p] = &reg.histogram(
          "ambit_serve_phase_us",
          "Per-request phase time in microseconds; the phases are "
          "additive (queue_wait is subtracted out of evaluate)",
          metrics::Histogram::default_latency_bounds_us(),
          {{"phase", metrics::phase_name(static_cast<metrics::Phase>(p))}});
    }
    connections_active = &reg.gauge("ambit_serve_connections_active",
                                    "Connections currently being served");
    connections_accepted =
        &reg.counter("ambit_serve_connections_accepted_total",
                     "Connections accepted since server start");
    const std::string drop_help =
        "Connections the SERVER closed, by reason: idle (receive "
        "timeout), send (peer stopped reading), malformed (oversized "
        "line or an unframed/oversized bulk request)";
    dropped_idle = &reg.counter("ambit_serve_connections_dropped_total",
                                drop_help, {{"reason", "idle"}});
    dropped_send = &reg.counter("ambit_serve_connections_dropped_total",
                                drop_help, {{"reason", "send"}});
    dropped_malformed = &reg.counter("ambit_serve_connections_dropped_total",
                                     drop_help, {{"reason", "malformed"}});
    pool_workers = &reg.gauge("ambit_pool_workers",
                              "Worker threads in the session pool");
    pool_queue_depth =
        &reg.gauge("ambit_pool_queue_depth",
                   "Chunks waiting in the session pool queue, sampled "
                   "at scrape time");
    pool_busy = &reg.gauge("ambit_pool_busy_workers",
                           "Pool workers executing a chunk, sampled at "
                           "scrape time");
    coalesce_requests =
        &reg.counter("ambit_serve_coalesce_requests_total",
                     "Requests routed through the coalescing queue");
    coalesce_fused =
        &reg.counter("ambit_serve_coalesce_fused_total",
                     "Coalesced requests answered from a shared fused sweep");
    coalesce_batches =
        &reg.counter("ambit_serve_coalesce_batches_total",
                     "Fused sweeps run (groups of two or more requests)");
    coalesce_wait_us = &reg.histogram(
        "ambit_serve_coalesce_wait_us",
        "Microseconds a coalesced request was parked in the queue (the "
        "leader's follower-wait window, or a follower's wait for the "
        "fused result including the shared sweep)",
        metrics::Histogram::default_latency_bounds_us());
    loop_iterations =
        &reg.counter("ambit_serve_loop_iterations_total",
                     "Event-loop iterations (one epoll_wait return each; "
                     "io_model=epoll only)");
    loop_ready_events = &reg.histogram(
        "ambit_serve_loop_ready_events",
        "Descriptors ready per event-loop iteration — 0 means the "
        "50 ms housekeeping timeout fired with nothing to do",
        {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    pending_write_bytes = &reg.gauge(
        "ambit_serve_pending_write_bytes",
        "Response bytes queued in per-connection write-backpressure "
        "outboxes, not yet taken by the sockets (io_model=epoll only)");
  }
};

Server::Server(Session& session, ServerOptions options)
    : session_(session),
      options_(options),
      metrics_(std::make_unique<ServeMetrics>(options.registry != nullptr
                                                  ? *options.registry
                                                  : metrics::Registry::global())),
      coalescer_(session, options.coalesce, coalesce_instruments()) {}

Server::~Server() = default;

CoalesceInstruments Server::coalesce_instruments() const {
  if (!metrics_on()) {
    return {};
  }
  return CoalesceInstruments{
      .requests = metrics_->coalesce_requests,
      .fused = metrics_->coalesce_fused,
      .batches = metrics_->coalesce_batches,
      .wait_us = metrics_->coalesce_wait_us,
  };
}

std::string Server::metrics_page() {
  // The sampled gauges are refreshed at scrape time — they describe
  // "now", unlike the counters, which are exact cumulative history.
  ThreadPool& pool = session_.pool();
  metrics_->pool_workers->set(pool.num_workers());
  metrics_->pool_queue_depth->set(pool.queued_tasks());
  metrics_->pool_busy->set(pool.busy_workers());
  metrics_->connections_active->set(static_cast<std::int64_t>(
      connections_active_.load(std::memory_order_relaxed)));
  return metrics_->registry.prometheus_text();
}

std::string Server::handle_line(const std::string& line) {
  try {
    const Request request = parse_request(line);
    if (is_bulk_verb(request.verb)) {
      return err_response(
          (request.verb == Verb::kEvalB ? "EVALB" : "SIMB") +
          std::string(" carries a binary payload and needs a stream or "
                      "socket transport (use ") +
          (request.verb == Verb::kEvalB ? "EVAL" : "SIM") + " for text)");
    }
    return dispatch(request).response;
  } catch (const Error& e) {
    return err_response(e.what());
  } catch (const std::exception& e) {
    return err_response(std::string("internal: ") + e.what());
  }
}

namespace {

/// The shared EVAL/SIM front half: one registry handle, every hex
/// token decoded against ITS width. One lookup on purpose — the decode
/// and the evaluation must run against the same circuit even if a
/// same-name reload lands in between, so the caller evaluates the
/// returned circuit, never the name.
std::vector<std::vector<bool>> decode_request_patterns(
    const LoadedCircuit& circuit, const Request& request) {
  const int width = circuit.gnor.num_inputs();
  std::vector<std::vector<bool>> patterns;
  patterns.reserve(request.patterns.size());
  for (const std::string& token : request.patterns) {
    patterns.push_back(hex_decode(token, width));
  }
  return patterns;
}

}  // namespace

Server::Outcome Server::dispatch(const Request& request) {
  try {
    switch (request.verb) {
      case Verb::kLoad: {
        const std::shared_ptr<const LoadedCircuit> circuit =
            session_.load(request.name, request.path);
        return {ok_response(
            "loaded " + circuit->name + ": " +
            std::to_string(circuit->gnor.num_inputs()) + " inputs, " +
            std::to_string(circuit->gnor.num_outputs()) + " outputs, " +
            std::to_string(circuit->gnor.num_products()) + " products, " +
            std::to_string(circuit->gnor.cell_count()) + " cells, " +
            format_double(circuit->load_seconds * 1e3, 1) + " ms")};
      }
      case Verb::kEval: {
        const std::shared_ptr<const LoadedCircuit> circuit =
            session_.get(request.name);
        logic::PatternBatch inputs(0, 0);
        {
          const metrics::ScopedPhaseTimer timer(metrics::Phase::kParse);
          inputs = logic::PatternBatch::from_patterns(
              decode_request_patterns(*circuit, request));
        }
        const logic::PatternBatch outputs = coalesced_eval(circuit, inputs);
        const metrics::ScopedPhaseTimer timer(metrics::Phase::kSerialize);
        std::string detail;
        for (std::uint64_t p = 0; p < outputs.num_patterns(); ++p) {
          if (!detail.empty()) {
            detail += ' ';
          }
          detail += hex_encode(outputs.pattern(p));
        }
        return {ok_response(detail)};
      }
      case Verb::kSim: {
        const std::shared_ptr<const LoadedCircuit> circuit =
            session_.get(request.name);
        logic::PatternBatch inputs(0, 0);
        {
          const metrics::ScopedPhaseTimer timer(metrics::Phase::kParse);
          inputs = logic::PatternBatch::from_patterns(
              decode_request_patterns(*circuit, request));
        }
        simulate::BatchSimResult result(0, 0);
        {
          const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
          result = session_.sim(circuit, inputs);
        }
        check(result.all_definite(),
              request.name + ": simulation produced non-digital outputs");
        const metrics::ScopedPhaseTimer timer(metrics::Phase::kSerialize);
        std::string detail;
        for (std::uint64_t p = 0; p < result.num_patterns(); ++p) {
          if (!detail.empty()) {
            detail += ' ';
          }
          detail += sim_token(result.outputs.pattern(p),
                              result.precharge_delay_s[p],
                              result.plane1_eval_delay_s[p],
                              result.plane2_eval_delay_s[p]);
        }
        return {ok_response(detail)};
      }
      case Verb::kEvalB:
      case Verb::kSimB:
        // Handled by serve_line, which owns the payload exchange.
        return {err_response("bulk verb reached the text dispatcher")};
      case Verb::kVerify: {
        // One registry lookup, same reasoning as kEval: the verdict
        // and the reported pattern count must describe the SAME
        // circuit even if a concurrent unload/reload lands in between.
        const std::shared_ptr<const LoadedCircuit> circuit =
            session_.get(request.name);
        bool equivalent = false;
        {
          const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
          equivalent = session_.verify(circuit);
        }
        const int inputs = circuit->gnor.num_inputs();
        if (!equivalent) {
          return {err_response(request.name +
                               ": mapped array NOT equivalent to its source "
                               "cover")};
        }
        return {ok_response(
            "verified " + request.name + ": equivalent over " +
            std::to_string(std::uint64_t{1} << inputs) + " patterns")};
      }
      case Verb::kStats: {
        const SessionStats stats = session_.stats();
        std::string detail =
            "circuits=" + std::to_string(stats.circuits) +
            " loads=" + std::to_string(stats.loads) +
            " evals=" + std::to_string(stats.evals) +
            " patterns=" + std::to_string(stats.patterns) +
            " sims=" + std::to_string(stats.sims) +
            " sim_patterns=" + std::to_string(stats.sim_patterns) +
            " verifies=" + std::to_string(stats.verifies) +
            " workers=" + std::to_string(stats.workers);
        if (coalescer_.enabled()) {
          // Only when the feature is on: the trailing fields appear
          // exactly when the operator asked for coalescing, and their
          // absence keeps pre-coalescing STATS consumers byte-stable.
          const CoalesceStats fused = coalescer_.stats();
          detail += " coalesced_requests=" + std::to_string(fused.fused) +
                    " coalesced_batches=" + std::to_string(fused.batches);
        }
        // Appended LAST, after the optional coalescer fields: every
        // STATS consumer so far matches fields by name, and append-only
        // growth keeps any that slice by prefix byte-stable.
        detail +=
            " connections=" +
            std::to_string(connections_active_.load(std::memory_order_relaxed)) +
            "/" +
            std::to_string(
                connections_accepted_.load(std::memory_order_relaxed));
        return {ok_response(detail)};
      }
      case Verb::kMetrics:
        // The page is multi-line; only serve_line's transports can
        // frame it (OK METRICS <nbytes> + raw bytes). handle_line is
        // the one-line text path, so mirror the EVALB refusal.
        return {err_response(
            "METRICS carries a multi-line payload and needs a stream or "
            "socket transport")};
      case Verb::kUnload:
        session_.unload(request.name);
        return {ok_response("unloaded " + request.name)};
      case Verb::kHelp:
        return {ok_response(help_text())};
      case Verb::kQuit:
        return {ok_response("bye"), /*quit=*/true};
      case Verb::kShutdown:
        shutdown_.store(true);
        return {ok_response("shutting down"), /*quit=*/true};
    }
    return {err_response("unhandled verb")};  // unreachable
  } catch (const Error& e) {
    return {err_response(e.what())};
  } catch (const std::exception& e) {
    // Anything the request pipeline can throw beyond ambit::Error —
    // e.g. bad_alloc from a cover declaring absurd widths — is still a
    // request failure, not a reason to take the server down.
    return {err_response(std::string("internal: ") + e.what())};
  }
}

logic::PatternBatch Server::coalesced_eval(
    const std::shared_ptr<const LoadedCircuit>& circuit,
    const logic::PatternBatch& inputs) {
  if (coalescer_.enabled()) {
    // The coalescer attributes its own phases: evaluate at the actual
    // sweep sites, coalesce_wait for the parked time.
    return coalescer_.eval(circuit, inputs);
  }
  const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
  return session_.eval(circuit, inputs);
}

bool Server::serve_line(const std::string& line,
                        const PayloadReader& read_payload,
                        const ByteWriter& write_bytes, Outcome& outcome,
                        std::uint64_t conn_id) {
  if (!metrics_on()) {
    return serve_line_inner(line, read_payload, write_bytes, outcome, nullptr);
  }
  metrics::PhaseTrace trace;
  int verb_index = -1;
  const std::uint64_t start_us = metrics::monotonic_us();
  bool alive = false;
  {
    const metrics::TraceScope scope(&trace);
    alive =
        serve_line_inner(line, read_payload, write_bytes, outcome, &verb_index);
  }
  const std::uint64_t total_us = metrics::monotonic_us() - start_us;
  // parallel_for records its submit->start queue wait while the
  // surrounding evaluate timer is open; subtract it back out so the
  // five phases stay additive (evaluate = kernel time only).
  const std::uint64_t queue_wait = trace.get(metrics::Phase::kQueueWait);
  std::uint64_t& evaluate =
      trace.us[static_cast<std::size_t>(metrics::Phase::kEvaluate)];
  evaluate = queue_wait < evaluate ? evaluate - queue_wait : 0;
  if (verb_index < 0) {
    metrics_->requests_malformed->add();
  } else {
    // Bumped AFTER the response went out: a scrape through the METRICS
    // verb reports the requests completed before it, never itself.
    metrics_->requests[static_cast<std::size_t>(verb_index)]->add();
    metrics_->request_us[static_cast<std::size_t>(verb_index)]->observe(
        total_us);
  }
  if (outcome.response.rfind("ERR", 0) == 0) {
    metrics_->request_errors->add();
  }
  for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
    if (trace.us[p] > 0) {
      metrics_->phase_us[p]->observe(trace.us[p]);
    }
  }
  if (options_.slow_request_us > 0 && total_us >= options_.slow_request_us) {
    logs::warn_rate_limited(
        slow_log_limiter_, "serve.slow_request",
        {{"conn", std::to_string(conn_id)},
         {"verb", verb_index >= 0
                      ? verb_names()[static_cast<std::size_t>(verb_index)]
                      : std::string("malformed")},
         {"total_us", std::to_string(total_us)},
         {"parse_us", std::to_string(trace.get(metrics::Phase::kParse))},
         {"coalesce_wait_us",
          std::to_string(trace.get(metrics::Phase::kCoalesceWait))},
         {"queue_wait_us", std::to_string(queue_wait)},
         {"evaluate_us", std::to_string(trace.get(metrics::Phase::kEvaluate))},
         {"serialize_us",
          std::to_string(trace.get(metrics::Phase::kSerialize))}});
  }
  return alive;
}

bool Server::serve_line_inner(const std::string& line,
                              const PayloadReader& read_payload,
                              const ByteWriter& write_bytes, Outcome& outcome,
                              int* verb_index_out) {
  outcome = Outcome{};
  if (verb_index_out != nullptr) {
    *verb_index_out = -1;
  }
  // Sends the response line set in `outcome`; false when the peer is
  // gone.
  const auto respond = [&] {
    const std::string text = outcome.response + "\n";
    return write_bytes(text.data(), text.size());
  };
  Request request;
  try {
    const metrics::ScopedPhaseTimer timer(metrics::Phase::kParse);
    request = parse_request(line);
  } catch (const Error& e) {
    outcome.response = err_response(e.what());
    // A malformed EVALB/SIMB header leaves an unknown number of payload
    // bytes unframed in the stream; resyncing is impossible, so the
    // connection must go. Only the exact bulk verbs qualify — a typo'd
    // verb like "EVALBATCH" is an ordinary one-line request.
    const std::vector<std::string> tokens = split_ws(line);
    if (!tokens.empty() && (tokens[0] == "EVALB" || tokens[0] == "SIMB")) {
      outcome.quit = true;
    }
    return respond();
  }
  if (verb_index_out != nullptr) {
    *verb_index_out = static_cast<int>(request.verb);
  }

  if (request.verb == Verb::kMetrics) {
    // The page is framed like a bulk response: a one-line header
    // announcing the byte count, then the raw exposition text — any
    // transport that can carry an EVALB payload can carry it.
    std::string page;
    {
      const metrics::ScopedPhaseTimer timer(metrics::Phase::kSerialize);
      page = metrics_page();
    }
    outcome.response = "OK METRICS " + std::to_string(page.size());
    if (!respond()) {
      return false;
    }
    return write_bytes(page.data(), page.size());
  }

  if (!is_bulk_verb(request.verb)) {
    outcome = dispatch(request);
    return respond();
  }

  // EVALB/SIMB: the length prefix is trusted BEFORE the name or the
  // pattern count, so the payload can always be consumed and the stream
  // stays framed even when the request itself fails.
  const char* verb = request.verb == Verb::kEvalB ? "EVALB" : "SIMB";
  if (request.num_words > kMaxEvalbWords) {
    outcome.response = err_response(
        std::string(verb) + " payload of " + std::to_string(request.num_words) +
        " words exceeds the " + std::to_string(kMaxEvalbWords) +
        "-word limit");
    outcome.quit = true;
    return respond();
  }
  std::vector<std::uint64_t> payload;
  try {
    payload.resize(request.num_words);
  } catch (const std::exception&) {
    // Under memory pressure even a within-limit payload buffer can
    // fail to allocate. The payload cannot be consumed, so the stream
    // is unframed and the connection must go — but the SERVER stays
    // up (a thrown bad_alloc would escape the connection thread and
    // call std::terminate).
    outcome.response = err_response(
        std::string(verb) + ": cannot allocate " +
        std::to_string(request.num_words) + "-word payload buffer");
    outcome.quit = true;
    return respond();
  }
  if (request.num_words > 0 &&
      !read_payload(reinterpret_cast<char*>(payload.data()),
                    payload.size() * sizeof(std::uint64_t))) {
    // EOF mid-payload: nothing sensible to answer.
    outcome.quit = true;
    return false;
  }
  std::vector<std::uint64_t> out_words;
  try {
    check(request.num_patterns > 0,
          std::string(verb) + " needs at least one pattern");
    // A pattern count near 2^64 would wrap the words-per-lane
    // computation to zero and sail through the framing checks; anything
    // above what the word limit can carry is hostile.
    check(request.num_patterns <= kMaxEvalbWords * 64,
          std::string(verb) + " pattern count " +
              std::to_string(request.num_patterns) + " exceeds the " +
              std::to_string(kMaxEvalbWords * 64) + "-pattern limit");
    // Simulated patterns cost three settles each, not one word-op per
    // 64: a SIMB within the byte framing limits could still pin the
    // pool for minutes, so its pattern count has its own cap.
    check(request.verb != Verb::kSimB ||
              request.num_patterns <= kMaxSimbPatterns,
          "SIMB pattern count " + std::to_string(request.num_patterns) +
              " exceeds the " + std::to_string(kMaxSimbPatterns) +
              "-pattern simulation limit");
    const std::shared_ptr<const LoadedCircuit> circuit =
        session_.get(request.name);
    const int width = circuit->gnor.num_inputs();
    const std::uint64_t words_per_lane = (request.num_patterns + 63) / 64;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(width) * words_per_lane;
    check(request.num_words == expected,
          std::string(verb) + ": " + std::to_string(request.num_patterns) +
              " patterns over " + std::to_string(width) + " inputs need " +
              std::to_string(expected) + " words, header declares " +
              std::to_string(request.num_words));
    // The word limit must bound the RESPONSE too: a 1-input circuit
    // with many outputs would otherwise turn a within-limit payload
    // into an output batch far beyond it. A SIMB response additionally
    // carries the three per-pattern delay arrays.
    const std::uint64_t lane_words =
        static_cast<std::uint64_t>(circuit->gnor.num_outputs()) *
        words_per_lane;
    const std::uint64_t response_words =
        request.verb == Verb::kSimB ? lane_words + 3 * request.num_patterns
                                    : lane_words;
    check(response_words <= kMaxEvalbWords,
          std::string(verb) + ": response of " +
              std::to_string(response_words) + " words over " +
              std::to_string(circuit->gnor.num_outputs()) +
              " outputs exceeds the " + std::to_string(kMaxEvalbWords) +
              "-word limit");
    logic::PatternBatch inputs(width, request.num_patterns);
    {
      const metrics::ScopedPhaseTimer timer(metrics::Phase::kParse);
      inputs.load_words(payload.data(), payload.size());
    }
    // Evaluate the circuit the width check ran against — a concurrent
    // same-name reload must not swap it out between the two.
    if (request.verb == Verb::kEvalB) {
      const logic::PatternBatch outputs = coalesced_eval(circuit, inputs);
      const metrics::ScopedPhaseTimer timer(metrics::Phase::kSerialize);
      out_words.resize(outputs.total_words());
      outputs.store_words(out_words.data(), out_words.size());
      outcome.response =
          evalb_response_header(outputs.num_patterns(), out_words.size());
    } else {
      simulate::BatchSimResult result(0, 0);
      {
        const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
        result = session_.sim(circuit, inputs);
      }
      check(result.all_definite(),
            request.name + ": simulation produced non-digital outputs");
      const metrics::ScopedPhaseTimer timer(metrics::Phase::kSerialize);
      out_words.resize(response_words);
      result.outputs.store_words(out_words.data(), lane_words);
      // The delay arrays ride as raw doubles, one per 8-byte word —
      // same-endianness memcpy, like the lanes.
      const std::uint64_t np = request.num_patterns;
      std::memcpy(out_words.data() + lane_words,
                  result.precharge_delay_s.data(), np * sizeof(double));
      std::memcpy(out_words.data() + lane_words + np,
                  result.plane1_eval_delay_s.data(), np * sizeof(double));
      std::memcpy(out_words.data() + lane_words + 2 * np,
                  result.plane2_eval_delay_s.data(), np * sizeof(double));
      outcome.response = simb_response_header(np, out_words.size());
    }
  } catch (const Error& e) {
    outcome.response = err_response(e.what());
    out_words.clear();
  } catch (const std::exception& e) {
    outcome.response = err_response(std::string("internal: ") + e.what());
    out_words.clear();
  }
  const metrics::ScopedPhaseTimer timer(metrics::Phase::kSerialize);
  if (!respond()) {
    return false;
  }
  if (!out_words.empty() &&
      !write_bytes(reinterpret_cast<const char*>(out_words.data()),
                   out_words.size() * sizeof(std::uint64_t))) {
    return false;
  }
  return true;
}

std::uint64_t Server::serve_stream(std::istream& in, std::ostream& out) {
  std::uint64_t served = 0;
  bool quit = false;
  const PayloadReader read_payload = [&in](char* dst, std::size_t n) {
    in.read(dst, static_cast<std::streamsize>(n));
    return in.gcount() == static_cast<std::streamsize>(n);
  };
  const ByteWriter write_bytes = [&out](const char* data, std::size_t n) {
    out.write(data, static_cast<std::streamsize>(n));
    out.flush();
    return out.good();
  };
  // istream::getline into a bounded buffer, not std::getline: this
  // transport must enforce kMaxLineBytes too — a newline-free byte
  // stream must not grow a std::string until OOM. The buffer holds
  // kMaxLineBytes + 1 line bytes plus the terminator, so a line of
  // exactly kMaxLineBytes is accepted — the same boundary the socket
  // transport's `buffer.size() > kMaxLineBytes` check draws.
  std::vector<char> linebuf(kMaxLineBytes + 2);
  while (!quit) {
    in.getline(linebuf.data(), static_cast<std::streamsize>(linebuf.size()));
    if (in.bad()) {
      break;
    }
    if (in.fail() && !in.eof()) {
      // The buffer filled before any newline: answer once and stop —
      // the rest of the stream is an unframed continuation of this
      // over-long line.
      const std::string text =
          err_response("request line exceeds " +
                       std::to_string(kMaxLineBytes) + " bytes") +
          "\n";
      write_bytes(text.data(), text.size());
      break;
    }
    const std::string line(linebuf.data());
    if (line.empty() && in.eof()) {
      break;
    }
    if (!trim(line).empty()) {
      Outcome outcome;
      if (!serve_line(line, read_payload, write_bytes, outcome)) {
        break;
      }
      ++served;
      quit = outcome.quit;
    }
    if (in.eof()) {
      break;  // the final unterminated line was just served
    }
  }
  return served;
}

std::uint64_t Server::serve_chunks(
    const std::function<std::string()>& next_chunk, std::string& out) {
  std::uint64_t served = 0;
  ConnState state(ConnState::PayloadMode::kBuffered);
  const ByteWriter write_bytes = [&out](const char* data, std::size_t n) {
    out.append(data, n);
    return true;
  };
  const PayloadReader read_payload = [&state](char* dst, std::size_t n) {
    return state.read_payload(dst, n);
  };
  for (;;) {
    switch (state.advance()) {
      case ConnState::Step::kNeedInput: {
        const std::string chunk = next_chunk();
        if (chunk.empty()) {
          state.note_eof(/*clean=*/true);
        } else {
          state.append(chunk.data(), chunk.size());
        }
        break;
      }
      case ConnState::Step::kRequest: {
        Outcome outcome;
        const bool alive =
            serve_line(state.line(), read_payload, write_bytes, outcome);
        if (alive) {
          ++served;
        }
        state.finish_request(outcome.quit);
        if (!alive || outcome.quit) {
          return served;
        }
        break;
      }
      case ConnState::Step::kOversized:
        out += oversized_line_response();
        return served;
      case ConnState::Step::kClosed:
        return served;
    }
  }
}

void Server::note_connection_accepted() {
  if (metrics_on()) {
    metrics_->connections_accepted->add();
  }
}

void Server::note_connection_dropped(const char* reason,
                                     std::uint64_t conn_id,
                                     std::uint64_t served) {
  if (metrics_on()) {
    if (std::strcmp(reason, "idle") == 0) {
      metrics_->dropped_idle->add();
    } else if (std::strcmp(reason, "send") == 0) {
      metrics_->dropped_send->add();
    } else {
      metrics_->dropped_malformed->add();
    }
  }
  logs::warn("conn.drop", {{"conn", std::to_string(conn_id)},
                           {"reason", reason},
                           {"served", std::to_string(served)}});
}

void Server::note_loop_wakeup(std::size_t ready_events) {
  if (metrics_on()) {
    metrics_->loop_iterations->add();
    metrics_->loop_ready_events->observe(ready_events);
  }
}

void Server::note_pending_write_delta(std::int64_t delta) {
  if (metrics_on()) {
    metrics_->pending_write_bytes->add(delta);
  }
}

#ifndef _WIN32

namespace {

/// Writes all of `data` to `fd`, retrying on short writes. MSG_NOSIGNAL
/// keeps a peer that hung up from raising SIGPIPE; returns false when
/// the peer is gone (any non-EINTR failure), which the caller treats as
/// a dropped connection — never as a server-fatal error.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// One std::thread per live connection, with three jobs: cap the number
/// of simultaneously served connections (launch blocks until a slot
/// frees), reap finished threads opportunistically so a long-running
/// server never accumulates dead thread handles, and cut the pending
/// reads of every live connection on shutdown so the drain is bounded.
/// Connection fds leave the live set BEFORE they are closed, so
/// shutdown_inputs can never touch a recycled descriptor.
class ConnectionRegistry {
 public:
  /// `abort` interrupts the slot wait in launch: when it goes true
  /// (SHUTDOWN handled on an already-running connection), a blocked
  /// accept loop must stop waiting for a slot instead of serving one
  /// more connection.
  ConnectionRegistry(int max_active, const std::atomic<bool>& abort)
      : max_active_(max_active < 1 ? 1 : max_active), abort_(abort) {}

  /// Blocks until fewer than max_active connections are live, then runs
  /// `body` on its own thread and returns true; the registry closes
  /// `fd` when the body returns. Returns false — fd untouched — when
  /// the abort flag went true while waiting.
  bool launch(int fd, std::function<void()> body) {
    MutexLock lock(mutex_);
    while (active_ >= max_active_ && !abort_.load()) {
      slot_free_.wait(lock);
    }
    if (abort_.load()) {
      return false;
    }
    reap_locked();
    const std::uint64_t id = next_id_++;
    // Every allocation happens BEFORE the thread exists (the map nodes
    // below) and nothing that can throw happens AFTER it: if thread
    // creation fails (RLIMIT_NPROC exhaustion), the pre-inserted state
    // is rolled back under this same lock and launch propagates with
    // the registry unchanged — a joinable std::thread is never left
    // for a destructor (std::terminate) and the fd stays owned by the
    // caller. The new thread cannot race the bookkeeping: its tail
    // needs mutex_, which this call still holds.
    const auto slot = threads_.emplace(id, std::thread()).first;
    try {
      live_fds_[id] = fd;
      slot->second = std::thread([this, id, fd, body = std::move(body)] {
        body();
        {
          const MutexLock inner(mutex_);
          live_fds_.erase(id);
          finished_.push_back(id);
          --active_;
        }
        slot_free_.notify_one();
        ::close(fd);
      });
    } catch (...) {
      threads_.erase(slot);
      live_fds_.erase(id);
      throw;
    }
    ++active_;
    return true;
  }

  /// SHUT_RD on every live connection: blocked reads return EOF, so
  /// each connection finishes its current request, flushes, and exits.
  /// Responses still in flight are unaffected (the write side stays
  /// open until the connection thread is done).
  void shutdown_inputs() {
    const MutexLock lock(mutex_);
    for (const auto& [id, fd] : live_fds_) {
      ::shutdown(fd, SHUT_RD);
    }
  }

  /// Joins every connection thread (the SHUTDOWN drain). Must not race
  /// launch — the accept loop has exited by the time this runs.
  void join_all() {
    std::map<std::uint64_t, std::thread> grab;
    {
      const MutexLock lock(mutex_);
      grab.swap(threads_);
      finished_.clear();
    }
    for (auto& [id, thread] : grab) {
      thread.join();
    }
  }

 private:
  void reap_locked() AMBIT_REQUIRES(mutex_) {
    for (const std::uint64_t id : finished_) {
      const auto it = threads_.find(id);
      if (it != threads_.end()) {
        it->second.join();
        threads_.erase(it);
      }
    }
    finished_.clear();
  }

  const int max_active_;
  const std::atomic<bool>& abort_;
  Mutex mutex_{LockRank::kConnectionRegistry};
  CondVar slot_free_;
  int active_ AMBIT_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_id_ AMBIT_GUARDED_BY(mutex_) = 0;
  std::map<std::uint64_t, int> live_fds_ AMBIT_GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::thread> threads_ AMBIT_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> finished_ AMBIT_GUARDED_BY(mutex_);
};

/// True when a listener may still be accepting behind `socket_path` —
/// the probe that keeps serve_unix from silently stealing a live
/// server's socket. Only two outcomes prove the path is SAFE to
/// replace: ECONNREFUSED (a socket file with nobody behind it — a
/// stale crash leftover) and ENOENT (no file at all). Everything else
/// — a successful connect, but also EAGAIN from a listener whose
/// backlog is momentarily full — is treated as live: when in doubt,
/// refuse to unlink.
bool socket_is_live(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) {
    return false;  // cannot probe; let bind() report the real problem
  }
  const bool connected =
      ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0;
  const int reason = errno;
  ::close(probe);
  if (connected) {
    return true;
  }
  return reason != ECONNREFUSED && reason != ENOENT;
}

}  // namespace

std::uint64_t Server::serve_connection(int conn, std::uint64_t conn_id) {
  std::uint64_t served = 0;
  std::string buffer;
  char chunk[4096];
  bool eof = false;
  // True only for a real peer close (read() == 0) — an SO_RCVTIMEO
  // idle timeout also ends the connection, but any truncated partial
  // line it leaves behind must NOT be served as a request: the client
  // is slow, not done, and executing half its line would desync the
  // request/response pairing if it ever resumed.
  bool clean_eof = false;
  // The SO_RCVTIMEO expiry specifically — the one read failure that is
  // a server-side policy drop (counted as reason=idle) rather than the
  // peer going away.
  bool timed_out = false;
  // Set when an EVALB/SIMB payload read hit EOF — distinguishes "the
  // frame was truncated" (reason=malformed) from "the peer stopped
  // reading its response" (reason=send) when serve_line returns false.
  bool payload_eof = false;
  // Why the SERVER closed this connection; nullptr for peer-initiated
  // ends (QUIT, clean close, reset), which are not drops.
  const char* drop_reason = nullptr;

  // Appends the next chunk from the socket; false on EOF, timeout or
  // error.
  const auto read_more = [&]() -> bool {
    for (;;) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        eof = true;
        timed_out = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
        // read()==0 is a clean close only when the PEER closed; the
        // SHUTDOWN drain's shutdown(SHUT_RD) also yields 0 while the
        // peer may be mid-send, so under shutdown a residual partial
        // line is still treated as truncated, never served.
        clean_eof = (n == 0) && !shutdown_.load();
        return false;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  };
  // EVALB payloads take whatever is already in the line buffer
  // (pipelined clients may have sent payload bytes along with the
  // header), then read the remainder from the socket STRAIGHT into the
  // destination — a 128 MiB frame must not be staged through the line
  // buffer a second time.
  const PayloadReader read_payload = [&](char* dst, std::size_t n) {
    const std::size_t buffered = buffer.size() < n ? buffer.size() : n;
    std::memcpy(dst, buffer.data(), buffered);
    buffer.erase(0, buffered);
    std::size_t done = buffered;
    while (done < n) {
      const ssize_t got = ::read(conn, dst + done, n - done);
      if (got < 0 && errno == EINTR) {
        continue;
      }
      if (got <= 0) {
        eof = true;
        payload_eof = true;
        return false;
      }
      done += static_cast<std::size_t>(got);
    }
    return true;
  };
  const ByteWriter write_bytes = [&](const char* data, std::size_t n) {
    return write_all(conn, data, n);
  };

  bool quit = false;
  while (!quit && !eof) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > kMaxLineBytes) {
        // A newline-free byte stream must not grow the buffer without
        // bound; answer once and drop the connection.
        const std::string text =
            err_response("request line exceeds " +
                         std::to_string(kMaxLineBytes) + " bytes") +
            "\n";
        write_all(conn, text.data(), text.size());
        drop_reason = "malformed";
        break;
      }
      if (read_more()) {
        continue;
      }
      if (timed_out) {
        drop_reason = "idle";
      }
      // CLEAN EOF with a residual unterminated line: the peer sent a
      // final request and closed without the trailing newline. Serve it
      // like any other line instead of silently dropping it. (After an
      // idle TIMEOUT the residual is a truncated line from a stalled
      // peer and is dropped, see clean_eof above.) The line is MOVED
      // out of the buffer first so a residual EVALB header can't
      // re-read its own text as payload — its payload read hits the
      // (empty) buffer, then EOF, and fails cleanly.
      if (clean_eof && !trim(buffer).empty()) {
        const std::string line = buffer;
        buffer.clear();
        Outcome outcome;
        if (serve_line(line, read_payload, write_bytes, outcome, conn_id)) {
          ++served;
        }
      }
      break;
    }
    if (newline > kMaxLineBytes) {
      // A complete line can still exceed the cap when its newline
      // arrived in the same read chunk; the boundary must match the
      // no-newline path (and the stream transport) exactly.
      const std::string text =
          err_response("request line exceeds " +
                       std::to_string(kMaxLineBytes) + " bytes") +
          "\n";
      write_all(conn, text.data(), text.size());
      drop_reason = "malformed";
      break;
    }
    const std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (trim(line).empty()) {
      continue;
    }
    Outcome outcome;
    if (!serve_line(line, read_payload, write_bytes, outcome, conn_id)) {
      // A truncated bulk frame is the peer's protocol error; a failed
      // response write means the peer stopped reading (SO_SNDTIMEO or
      // a hard reset mid-response).
      drop_reason = payload_eof ? "malformed" : "send";
      break;
    }
    ++served;
    quit = outcome.quit;
    if (quit && outcome.response.rfind("ERR", 0) == 0) {
      // A server-initiated close with an ERR response: an unframed or
      // over-limit bulk request (see serve_line_inner). QUIT/SHUTDOWN
      // answer OK and are peer-initiated, not drops.
      drop_reason = "malformed";
    }
    // Post-QUIT/SHUTDOWN drain policy: complete lines still sitting in
    // this connection's buffer are deliberately DISCARDED, never
    // half-processed — the quit response is the last thing the peer
    // gets, and pipelining past QUIT is a client bug.
  }
  if (drop_reason != nullptr) {
    note_connection_dropped(drop_reason, conn_id, served);
  }
  return served;
}

std::uint64_t Server::serve_listener(int listener, const std::string& what,
                                     const std::function<void()>& cleanup) {
  shutdown_.store(false);
  const IoModel model = resolve_io_model(options_.io_model);
#ifdef __linux__
  if (model == IoModel::kEpoll) {
    return serve_event_loop(*this, listener, what, cleanup);
  }
#else
  (void)model;  // resolve_io_model already clamped to kThreads
#endif
  return serve_listener_threads(listener, what, cleanup);
}

std::uint64_t Server::serve_listener_threads(
    int listener, const std::string& what,
    const std::function<void()>& cleanup) {
  std::atomic<std::uint64_t> served{0};
  ConnectionRegistry registry(options_.max_connections, shutdown_);

  // Self-pipe SHUTDOWN wakeup: the verb is handled on a CONNECTION
  // thread, while the accept loop sits in poll() or in the registry's
  // slot wait. The handling connection's exit already wakes the slot
  // wait (its slot frees); this pipe wakes the poll, so SHUTDOWN stops
  // the accept loop in one scheduler hop instead of up to a full poll
  // timeout — under continuous connect pressure, that poll timeout
  // never fires at all, and without the pipe the loop would keep
  // accepting as long as clients kept arriving.
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    cleanup();
    throw Error(what + ": cannot create shutdown pipe: " + reason);
  }

  // Every exit from the accept loop — SHUTDOWN or a socket-level
  // failure — must drain the in-flight connection threads before the
  // registry leaves scope: destroying a joinable std::thread calls
  // std::terminate, which would turn a catchable accept error (e.g.
  // EMFILE under fd exhaustion) into a process abort. The pipe's write
  // end outlives the drain: the connection threads being joined may
  // still write their shutdown byte.
  const auto drain_and_cleanup = [&] {
    registry.shutdown_inputs();
    registry.join_all();
    ::close(wake[0]);
    ::close(wake[1]);
    ::close(listener);
    cleanup();
  };

  while (!shutdown_.load()) {
    // Poll with a timeout as a belt-and-suspenders backstop for the
    // pipe (a SHUTDOWN whose wake byte was somehow lost still stops
    // the loop at the next timeout).
    pollfd pfds[2] = {{listener, POLLIN, 0}, {wake[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string reason = std::strerror(errno);
      drain_and_cleanup();
      throw Error(what + ": poll failed: " + reason);
    }
    if (ready == 0 || (pfds[1].revents & POLLIN) != 0 ||
        (pfds[0].revents & POLLIN) == 0) {
      continue;  // timeout or shutdown wakeup: re-check the latch
    }
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string reason = std::strerror(errno);
      drain_and_cleanup();
      throw Error(what + ": accept failed: " + reason);
    }
    // A peer that stops READING while the server owes it a big
    // response would otherwise block ::send forever — past SHUT_RD,
    // beyond the reach of shutdown_inputs — and make the SHUTDOWN
    // drain unbounded. The send timeout turns that stall into a
    // dropped connection.
    if (options_.send_timeout_secs > 0) {
      const timeval send_timeout{options_.send_timeout_secs, 0};
      ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                   sizeof(send_timeout));
    }
    // A silent peer must not pin its slot forever: the receive timeout
    // turns an idle connection into an EOF drop (which is also what
    // keeps a slot-saturated server reachable for SHUTDOWN).
    if (options_.idle_timeout_secs > 0) {
      const timeval recv_timeout{options_.idle_timeout_secs, 0};
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
                   sizeof(recv_timeout));
    }
    // Request lines are tens of bytes; Nagle batching them behind a
    // 40 ms delayed ACK would dwarf every latency in the server. No-op
    // (EOPNOTSUPP) on a Unix-domain connection — deliberately ignored.
    const int nodelay = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    // The accept-order id doubles as the conn=<n> key in every log line
    // about this connection. The atomic (not a metrics counter) feeds
    // STATS, which must stay exact even with metrics compiled out.
    const std::uint64_t conn_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    note_connection_accepted();
    logs::debug("conn.accept",
                {{"conn", std::to_string(conn_id)}, {"transport", what}});
    try {
      const int wake_w = wake[1];
      const bool launched =
          registry.launch(conn, [this, conn, conn_id, wake_w, &served] {
            connections_active_.fetch_add(1, std::memory_order_relaxed);
            std::uint64_t on_conn = 0;
            try {
              on_conn = serve_connection(conn, conn_id);
              served.fetch_add(on_conn, std::memory_order_relaxed);
            } catch (...) {
              // Whatever a connection manages to throw past
              // serve_line's guards (e.g. bad_alloc building a
              // response string), it costs that one connection — never
              // the process, which is what an exception escaping a
              // thread body would do.
            }
            connections_active_.fetch_sub(1, std::memory_order_relaxed);
            logs::debug("conn.close", {{"conn", std::to_string(conn_id)},
                                       {"served", std::to_string(on_conn)}});
            if (shutdown_.load()) {
              // This connection handled (or raced with) SHUTDOWN: kick
              // the accept loop's poll awake. One byte per exiting
              // connection cannot fill the pipe before the loop drains
              // it by closing the read end.
              const char byte = 1;
              (void)!::write(wake_w, &byte, 1);
            }
          });
      if (!launched) {
        // SHUTDOWN arrived while this accept waited for a slot.
        ::close(conn);
        break;
      }
    } catch (const std::exception& e) {
      // Thread creation failed (e.g. process thread limit): this is a
      // server-fatal condition, but it must surface as a catchable
      // Error after a proper drain — never as std::terminate from a
      // registry destroyed with joinable threads.
      ::close(conn);
      drain_and_cleanup();
      throw Error(what + ": cannot spawn connection thread: " + e.what());
    }
  }

  // Graceful drain: no new accepts, pending reads cut, every in-flight
  // connection finishes its current request and is joined before the
  // listener (and, for serve_unix, the socket file) disappears.
  drain_and_cleanup();
  return served.load();
}

std::uint64_t Server::serve_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  check(socket_path.size() < sizeof(addr.sun_path),
        "serve_unix: socket path too long: " + socket_path);
  if (socket_is_live(socket_path)) {
    throw Error("serve_unix: another server is already accepting on " +
                socket_path + " (shut it down first)");
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  check(listener >= 0, "serve_unix: cannot create socket");
  // Only a STALE socket file (probe above found no listener) is
  // replaced.
  ::unlink(socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, kListenBacklog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    throw Error("serve_unix: cannot bind " + socket_path + ": " + reason);
  }
  return serve_listener(listener, "serve_unix", [socket_path] {
    ::unlink(socket_path.c_str());
  });
}

int bind_tcp_listener(const std::string& host, int port,
                      const std::string& what, int* bound_port_out) {
  check(port >= 0 && port <= 65535,
        what + ": port " + std::to_string(port) + " out of range");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // inet_pton keeps the dependency surface tiny (no resolver); the one
  // name everyone types is special-cased.
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  check(::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) == 1,
        what + ": cannot parse host '" + host +
            "' (use an IPv4 address or localhost)");
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  check(listener >= 0, what + ": cannot create socket");
  // There is no stale FILE to replace (unlike a Unix socket), but a
  // just-restarted server must not wait out TIME_WAIT on its own
  // previous address.
  const int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, kListenBacklog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    throw Error(what + ": cannot bind " + host + ":" + std::to_string(port) +
                ": " + reason);
  }
  if (bound_port_out != nullptr) {
    // Port 0 asked the kernel for an ephemeral port; report the real
    // one so the caller can announce or connect to it.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      const std::string reason = std::strerror(errno);
      ::close(listener);
      throw Error(what + ": getsockname failed: " + reason);
    }
    *bound_port_out = static_cast<int>(ntohs(bound.sin_port));
  }
  return listener;
}

std::uint64_t Server::serve_tcp(const std::string& host, int port,
                                std::atomic<int>* bound_port) {
  int actual_port = 0;
  const int listener = bind_tcp_listener(
      host, port, "serve_tcp", bound_port != nullptr ? &actual_port : nullptr);
  if (bound_port != nullptr) {
    // Release-store BEFORE the first accept: a caller running serve_tcp
    // on its own thread spins on this atomic, then connects.
    bound_port->store(actual_port, std::memory_order_release);
  }
  return serve_listener(listener, "serve_tcp", [] {});
}

#else  // _WIN32

std::uint64_t Server::serve_unix(const std::string&) {
  throw Error("serve_unix: Unix-domain sockets unavailable on this platform");
}

std::uint64_t Server::serve_tcp(const std::string&, int, std::atomic<int>*) {
  throw Error("serve_tcp: socket transports unavailable on this platform");
}

#endif

}  // namespace ambit::serve
