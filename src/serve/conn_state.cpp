#include "serve/conn_state.h"

#include <cstdint>
#include <cstring>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/strings.h"

namespace ambit::serve {

std::string oversized_line_response() {
  return err_response("request line exceeds " + std::to_string(kMaxLineBytes) +
                      " bytes") +
         "\n";
}

ConnState::Step ConnState::advance() {
  if (closed_) {
    return Step::kClosed;
  }
  for (;;) {
    if (!have_line_) {
      const std::size_t newline = buffer_.find('\n');
      if (newline == std::string::npos) {
        // A newline-free byte stream must not grow the buffer without
        // bound; the boundary (strictly MORE than kMaxLineBytes
        // buffered, so a line of exactly the cap is still accepted once
        // its newline arrives) matches the stream transport exactly.
        if (buffer_.size() > kMaxLineBytes) {
          closed_ = true;
          return Step::kOversized;
        }
        if (!eof_) {
          return Step::kNeedInput;
        }
        // CLEAN EOF with a residual unterminated line: the peer sent a
        // final request and closed without the trailing newline. Serve
        // it like any other line instead of silently dropping it. The
        // line is MOVED out of the buffer first so a residual bulk
        // header cannot re-read its own text as payload — its payload
        // read hits the (empty) buffer, runs short, and fails cleanly.
        if (clean_eof_ && !trim(buffer_).empty()) {
          line_ = std::move(buffer_);
          buffer_.clear();
          have_line_ = true;
          payload_need_ = required_payload(line_);
        } else {
          closed_ = true;
          return Step::kClosed;
        }
      } else {
        // A complete line can still exceed the cap when its newline
        // arrived in the same chunk; the boundary must match the
        // no-newline path exactly.
        if (newline > kMaxLineBytes) {
          closed_ = true;
          return Step::kOversized;
        }
        line_ = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (trim(line_).empty()) {
          continue;  // blank lines are ignored, like every transport
        }
        have_line_ = true;
        payload_need_ = required_payload(line_);
      }
    }
    if (mode_ == PayloadMode::kBuffered && buffer_.size() < payload_need_ &&
        !eof_) {
      return Step::kNeedInput;  // the frame's payload is still arriving
    }
    return Step::kRequest;
  }
}

std::size_t ConnState::take_payload(char* dst, std::size_t n) {
  const std::size_t take = buffer_.size() < n ? buffer_.size() : n;
  std::memcpy(dst, buffer_.data(), take);
  buffer_.erase(0, take);
  return take;
}

std::string ConnState::take_request_payload() {
  const std::size_t take =
      buffer_.size() < payload_need_ ? buffer_.size() : payload_need_;
  std::string payload = buffer_.substr(0, take);
  buffer_.erase(0, take);
  return payload;
}

void ConnState::finish_request(bool quit) {
  have_line_ = false;
  line_.clear();
  payload_need_ = 0;
  if (quit) {
    buffer_.clear();
    closed_ = true;
  }
}

std::size_t ConnState::required_payload(const std::string& line) const {
  if (mode_ == PayloadMode::kExternal) {
    return 0;
  }
  try {
    const Request request = parse_request(line);
    if (is_bulk_verb(request.verb) && request.num_words <= kMaxEvalbWords) {
      return static_cast<std::size_t>(request.num_words) *
             sizeof(std::uint64_t);
    }
  } catch (const Error&) {
    // Malformed line: serve_line answers ERR (and, for an unframed bulk
    // header, drops the connection) without touching any payload.
  }
  // An over-limit header is likewise rejected before any payload read.
  return 0;
}

}  // namespace ambit::serve
