// The per-connection framing state machine shared by every socket io
// model (serve/server.h): incremental line reassembly over a byte
// buffer, the kMaxLineBytes bound, EVALB/SIMB payload accounting, the
// residual-line-at-clean-EOF rule, and the post-QUIT discard policy.
//
// The thread-per-connection path feeds it from blocking reads; the
// epoll event loop (serve/event_loop.h) feeds it whatever the socket
// had ready; the fuzz harness (Server::serve_chunks) feeds it
// adversarially chosen split points. All three make the SAME framing
// decisions because the decisions live here, not in the transports —
// which is what lets the dual-path conformance matrix demand
// byte-identical responses across io models.
//
// ConnState never touches a socket and never blocks: callers append()
// bytes as they arrive, call advance() to learn what the connection
// needs next, and note_eof() when the peer is done. The protocol work
// itself (dispatch, payload validation, responses) stays in
// Server::serve_line — this class only decides when a complete request
// is on hand.
#pragma once

#include <cstddef>
#include <string>

namespace ambit::serve {

/// The one ERR line every transport answers before dropping a
/// connection whose request line exceeded kMaxLineBytes. Shared so the
/// stream, threaded, and epoll paths can never drift on the text.
std::string oversized_line_response();

class ConnState {
 public:
  /// Where a bulk request's payload bytes come from.
  enum class PayloadMode {
    /// The payload must be fully reassembled in this buffer before the
    /// request is reported ready (the epoll path: the request is
    /// dispatched to a worker, which cannot wait on the socket).
    kBuffered,
    /// The line alone makes the request ready; the caller streams the
    /// payload straight from its transport (the threaded path, which
    /// avoids staging a 128 MiB frame through the buffer twice).
    kExternal,
  };

  /// What the connection needs next.
  enum class Step {
    kNeedInput,  ///< no complete request buffered; feed more bytes
    kRequest,    ///< line() is ready (payload per PayloadMode)
    kOversized,  ///< line exceeded kMaxLineBytes: answer
                 ///< oversized_line_response(), drop as "malformed"
    kClosed,     ///< nothing more will be served (EOF / post-QUIT)
  };

  explicit ConnState(PayloadMode mode) : mode_(mode) {}

  /// Appends peer bytes as they arrived from the transport.
  void append(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Records end of input. `clean` distinguishes a real peer close
  /// (read() == 0 outside a SHUTDOWN drain) from a cut — timeout or
  /// shutdown(SHUT_RD): only a CLEAN close serves a residual
  /// unterminated line; after a cut it is a truncated line from a
  /// stalled peer and is dropped.
  void note_eof(bool clean) {
    eof_ = true;
    clean_eof_ = clean_eof_ || clean;
  }

  bool eof() const { return eof_; }

  /// Advances the machine over the buffered bytes (consuming blank
  /// lines) and reports what the connection needs. kNeedInput is never
  /// returned after note_eof().
  Step advance();

  /// The request line to serve. Valid after advance() returned
  /// kRequest, until finish_request().
  const std::string& line() const { return line_; }

  /// Copies up to `n` buffered payload bytes into `dst`, consuming
  /// them; returns how many were available. The threaded path drains
  /// pipelined payload bytes with this before reading the remainder
  /// straight from its socket.
  std::size_t take_payload(char* dst, std::size_t n);

  /// Server::PayloadReader over the buffer alone: false when the
  /// buffered bytes run short — which, in kBuffered mode, only happens
  /// when EOF truncated the frame (advance() otherwise waits for the
  /// full payload), and fails the request exactly like a payload read
  /// hitting EOF on a socket.
  bool read_payload(char* dst, std::size_t n) {
    return take_payload(dst, n) == n;
  }

  /// Moves the current request's buffered payload (up to the byte
  /// count its frame requires) out of the buffer as one string. The
  /// epoll path hands it to the worker serving the request, so the
  /// worker never touches the connection's shared buffer. Shorter than
  /// required only when EOF truncated the frame — the worker's payload
  /// read then runs short and fails the request cleanly.
  std::string take_request_payload();

  /// Ends the current request. `quit` applies the post-QUIT drain
  /// policy: complete lines still buffered are DISCARDED, never
  /// half-processed — the quit response is the last thing the peer
  /// gets, and pipelining past QUIT is a client bug.
  void finish_request(bool quit);

  /// Buffered-but-unconsumed bytes (tests and the event loop's
  /// pending-read accounting).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  /// Payload bytes the current line's request will consume before it
  /// can be served from the buffer (kBuffered only): <num_words> * 8
  /// for a well-formed EVALB/SIMB header within kMaxEvalbWords, else 0
  /// — a malformed or over-limit header is answered (and the
  /// connection dropped) without waiting for any payload.
  std::size_t required_payload(const std::string& line) const;

  const PayloadMode mode_;
  std::string buffer_;
  std::string line_;
  bool have_line_ = false;
  std::size_t payload_need_ = 0;
  bool eof_ = false;
  bool clean_eof_ = false;
  bool closed_ = false;
};

}  // namespace ambit::serve
