// The --metrics HTTP side listener: GET /metrics and GET /healthz.
//
// Prometheus scrapes HTTP, not the ambit line protocol. Rather than
// teach every scraper the METRICS verb, ambit_serve can open a SECOND,
// observability-only listener that speaks just enough HTTP/1.0 to
// satisfy a scraper: parse the request line, route two paths, answer
// with Content-Length and Connection: close. It deliberately shares
// nothing with the request path it observes — its own thread, its own
// accept loop (sequential: scrapes are rare and tiny), short hard
// timeouts — so a stuck or hostile scraper can never hold a serve
// connection slot, and a saturated server still answers /healthz.
//
// The protocol surface is split into pure functions
// (parse_http_request_line, http_response) precisely so the fuzz
// harness (fuzz/fuzz_metrics_http.cpp) and the unit tests can drive
// the byte-level behavior without sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace ambit::serve {

/// Upper bound on one HTTP request head (request line + headers). A
/// scraper's GET is tens of bytes; anything growing past this is not a
/// scraper.
inline constexpr std::size_t kMaxHttpRequestBytes = std::size_t{8} << 10;

/// A parsed "METHOD SP TARGET SP VERSION" request line.
struct HttpRequestLine {
  std::string method;   ///< e.g. "GET"
  std::string target;   ///< e.g. "/metrics"
  std::string version;  ///< e.g. "HTTP/1.0"
};

/// Parses the first line of an HTTP request. Throws ambit::Error on
/// anything but exactly three non-empty space-separated tokens with an
/// "HTTP/"-prefixed version — always quoting the offending line
/// (escaped and truncated) in the error text.
HttpRequestLine parse_http_request_line(const std::string& line);

/// Maps one raw HTTP request head to a complete HTTP/1.0 response
/// (status line, headers, body). `render` is invoked only for
/// "GET /metrics" and produces the exposition page. Pure: no sockets,
/// no globals — the whole routing table in one testable, fuzzable
/// function.
///
///   GET /metrics  -> 200 text/plain; version=0.0.4 (the render() page)
///   GET /healthz  -> 200 "ok\n"
///   GET elsewhere -> 404
///   non-GET       -> 405
///   unparseable   -> 400
std::string http_response(const std::string& request_text,
                          const std::function<std::string()>& render);

/// The side listener itself. start() binds and spawns the serving
/// thread; stop() (or destruction) shuts it down. Connections are
/// served one at a time with second-scale socket timeouts — an
/// observability endpoint, not a web server.
class MetricsHttpListener {
 public:
  MetricsHttpListener() = default;
  ~MetricsHttpListener() { stop(); }

  MetricsHttpListener(const MetricsHttpListener&) = delete;
  MetricsHttpListener& operator=(const MetricsHttpListener&) = delete;

  /// Binds `host`:`port` (port 0 = ephemeral; the bound port is
  /// reported through `bound_port_out` when non-null, before start()
  /// returns) and starts answering scrapes with `render`'s page.
  /// Throws ambit::Error on bind failure or if already started.
  void start(const std::string& host, int port,
             std::function<std::string()> render, int* bound_port_out);

  /// Stops accepting, closes the listener, joins the thread. Safe to
  /// call repeatedly or without start().
  void stop();

 private:
  void serve_loop();

  std::function<std::string()> render_;
  std::atomic<bool> stopping_{false};
  int listener_ = -1;
  std::thread thread_;
};

}  // namespace ambit::serve
