#include "serve/metrics_http.h"

#include <cstdio>
#include <utility>

#include "serve/server.h"
#include "util/error.h"
#include "util/log.h"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ambit::serve {

namespace {

/// The offending input, fit for one error line: control bytes escaped,
/// long lines truncated with an ellipsis.
std::string quote_for_error(const std::string& line) {
  std::string out;
  const std::size_t limit = 80;
  for (const char c : line) {
    if (out.size() >= limit) {
      out += "...";
      break;
    }
    if (c == '\r') {
      out += "\\r";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20 ||
               static_cast<unsigned char>(c) >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string simple_response(const std::string& status,
                            const std::string& content_type,
                            const std::string& body) {
  return "HTTP/1.0 " + status +
         "\r\n"
         "Content-Type: " +
         content_type +
         "\r\n"
         "Content-Length: " +
         std::to_string(body.size()) +
         "\r\n"
         "Connection: close\r\n"
         "\r\n" +
         body;
}

}  // namespace

HttpRequestLine parse_http_request_line(const std::string& line) {
  // Exactly three single-space-separated non-empty tokens — RFC 9112's
  // request-line grammar, minus the lenient whitespace variants a
  // scraper never sends.
  const auto fail = [&line](const std::string& why) -> void {
    throw Error("bad HTTP request line '" + quote_for_error(line) + "': " +
                why);
  };
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    fail("expected 'METHOD TARGET VERSION'");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    fail("missing HTTP version");
  }
  if (line.find(' ', sp2 + 1) != std::string::npos) {
    fail("more than three tokens");
  }
  HttpRequestLine parsed;
  parsed.method = line.substr(0, sp1);
  parsed.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  parsed.version = line.substr(sp2 + 1);
  if (parsed.method.empty()) {
    fail("empty method");
  }
  if (parsed.target.empty()) {
    fail("empty target");
  }
  if (parsed.version.rfind("HTTP/", 0) != 0 ||
      parsed.version.size() <= 5) {
    fail("version must start with HTTP/");
  }
  for (const char c : parsed.method) {
    if (c < 'A' || c > 'Z') {
      fail("method must be upper-case letters");
    }
  }
  return parsed;
}

std::string http_response(const std::string& request_text,
                          const std::function<std::string()>& render) {
  // Only the request line matters: headers are read (to drain the
  // socket politely) and ignored — a scraper's Accept negotiation has
  // exactly one answer here anyway.
  std::size_t eol = request_text.find('\n');
  if (eol == std::string::npos) {
    eol = request_text.size();
  }
  std::string line = request_text.substr(0, eol);
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  HttpRequestLine parsed;
  try {
    parsed = parse_http_request_line(line);
  } catch (const Error& e) {
    return simple_response("400 Bad Request", "text/plain",
                           std::string(e.what()) + "\n");
  }
  if (parsed.method != "GET") {
    return simple_response("405 Method Not Allowed", "text/plain",
                           "only GET is supported\n");
  }
  // Strip a query string: some scrapers append cache-busting params.
  const std::size_t query = parsed.target.find('?');
  const std::string path = query == std::string::npos
                               ? parsed.target
                               : parsed.target.substr(0, query);
  if (path == "/metrics") {
    return simple_response("200 OK",
                           "text/plain; version=0.0.4; charset=utf-8",
                           render());
  }
  if (path == "/healthz") {
    return simple_response("200 OK", "text/plain", "ok\n");
  }
  return simple_response("404 Not Found", "text/plain",
                         "try /metrics or /healthz\n");
}

#ifndef _WIN32

void MetricsHttpListener::start(const std::string& host, int port,
                                std::function<std::string()> render,
                                int* bound_port_out) {
  check(listener_ < 0 && !thread_.joinable(),
        "metrics listener already started");
  int bound = 0;
  listener_ = bind_tcp_listener(host, port, "metrics listener", &bound);
  if (bound_port_out != nullptr) {
    *bound_port_out = bound;
  }
  render_ = std::move(render);
  stopping_.store(false);
  try {
    thread_ = std::thread([this] { serve_loop(); });
  } catch (...) {
    ::close(listener_);
    listener_ = -1;
    throw;
  }
  logs::info("metrics.listen",
             {{"host", host}, {"port", std::to_string(bound)}});
}

void MetricsHttpListener::stop() {
  if (!thread_.joinable()) {
    return;
  }
  stopping_.store(true);
  thread_.join();
  ::close(listener_);
  listener_ = -1;
}

void MetricsHttpListener::serve_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listener_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0) {
      continue;  // timeout or EINTR: re-check the stop flag
    }
    const int conn = ::accept(listener_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    // Hard second-scale timeouts both ways: a scraper that stalls
    // cannot park this (single) serving thread for long.
    const timeval timeout{2, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    // Read until the blank line ending the request head, EOF, timeout,
    // or the size cap — whichever first. The request line is all that
    // is routed on, so there is no need to honor Content-Length.
    std::string request;
    char chunk[1024];
    while (request.size() < kMaxHttpRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;
      }
      request.append(chunk, static_cast<std::size_t>(n));
    }
    std::string response;
    try {
      response = http_response(request, render_);
    } catch (const std::exception& e) {
      // render() threw (e.g. bad_alloc building the page): answer 500
      // instead of silently hanging up, and keep the listener alive.
      response = simple_response("500 Internal Server Error", "text/plain",
                                 std::string(e.what()) + "\n");
    }
    std::size_t done = 0;
    while (done < response.size()) {
      const ssize_t n = ::send(conn, response.data() + done,
                               response.size() - done, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;
      }
      done += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

#else  // _WIN32

void MetricsHttpListener::start(const std::string&, int,
                                std::function<std::string()>, int*) {
  throw Error("metrics listener: socket transports unavailable on this "
              "platform");
}

void MetricsHttpListener::stop() {}

void MetricsHttpListener::serve_loop() {}

#endif

}  // namespace ambit::serve
