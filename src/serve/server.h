// The serve front door: one request line in, one response line out.
//
// Server binds a Session to the wire protocol (serve/protocol.h,
// normative reference: docs/PROTOCOL.md) and drives it over any of
// three transports:
//
//   * serve_stream — any istream/ostream pair: ambit_cli --serve and
//     ambit_serve --stdio run it over stdin/stdout, tests over
//     stringstreams;
//   * serve_unix — a Unix-domain socket;
//   * serve_tcp  — a TCP socket, so clients on other hosts (or ones
//     that only speak TCP) reach the same service.
//
// The two socket transports are thin listeners over ONE shared
// connection loop (serve_listener): every accepted connection is served
// on ITS OWN THREAD against the one shared (thread-safe) Session, up to
// ServerOptions::max_connections at a time, with identical line
// framing, EVALB/SIMB payload handling, idle/send timeouts, and
// graceful-SHUTDOWN drain. QUIT ends a connection; SHUTDOWN stops
// accepting, drains the in-flight connections (their pending reads are
// cut with shutdown(SHUT_RD), responses already owed are still
// written), then closes the listener — and, for serve_unix, unlinks
// the socket file.
//
// Per-connection loop state (the QUIT flag, the receive buffer) lives
// on the connection's stack, never in the shared Server object — the
// only cross-connection state is the SHUTDOWN latch, the Session, and
// the coalescing queue below.
//
// Bulk evaluation uses the EVALB binary frame (see protocol.h): the
// payload words stream straight into a logic::PatternBatch via its
// load_words/store_words lane helpers, so a million-pattern request
// pays two memcpys instead of a million hex parses. All transports
// speak it. SIMB rides the exact same input framing and answers from
// the switch-level simulator instead — output lanes plus the three
// per-pattern phase-delay arrays as raw doubles.
//
// Cross-connection coalescing (serve/coalesce.h): when
// ServerOptions::coalesce.window_us > 0, small EVAL/EVALB requests
// against the same circuit arriving concurrently from different
// connections are fused into one bit-packed sharded sweep and the
// per-request responses scattered back — bit-identical to uncoalesced
// execution, at most window_us of added latency per request.
//
// Request failures — unknown verbs, malformed covers, missing circuits
// — never kill the server: every ambit::Error becomes one "ERR ..."
// response line and the loop continues, which is what makes malformed
// LOAD input a routine event instead of a crash. The one exception is a
// malformed EVALB HEADER, which leaves the byte stream unframed; the
// server answers ERR and closes that connection (a well-formed header
// whose request fails is fine — the length prefix lets the server skip
// the payload and stay in sync).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/coalesce.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "util/log.h"
#include "util/metrics.h"

namespace ambit::serve {

/// Backlog passed to listen(): sized for a burst of concurrent clients,
/// not the single interactive user the prototype assumed.
inline constexpr int kListenBacklog = 128;

/// Default cap on simultaneously served connections.
inline constexpr int kDefaultMaxConnections = 64;

/// Upper bound on one EVALB/SIMB payload AND response (words): 128 MiB
/// of lane data either way. A header announcing more is rejected before
/// any allocation (and the connection closed); a request whose OUTPUT
/// lanes would exceed it is rejected before evaluation. A hostile
/// request cannot OOM the server from either direction.
inline constexpr std::uint64_t kMaxEvalbWords = std::uint64_t{1} << 24;

/// Upper bound on one SIMB request's PATTERN count. Switch-level
/// simulation costs three full network settles per pattern — orders of
/// magnitude more than a word-packed EVALB — so the byte-level framing
/// limit alone would admit requests that pin the pool for minutes. The
/// cap keeps one hostile (or merely ambitious) SIMB bounded; larger
/// sweeps just split into multiple requests.
inline constexpr std::uint64_t kMaxSimbPatterns = std::uint64_t{1} << 20;

/// Default send timeout per connection (seconds): a peer that stops
/// reading its responses for this long is dropped (which also bounds
/// the SHUTDOWN drain — a blocked send is past the reach of
/// shutdown(SHUT_RD)).
inline constexpr long kSendTimeoutSecs = 30;

/// Default idle receive timeout per connection (seconds): a peer that
/// sends nothing for this long is dropped. Without it,
/// max_connections silent clients would pin every slot forever and
/// even SHUTDOWN could not get a connection to be heard on.
inline constexpr long kIdleTimeoutSecs = 300;

/// Upper bound on one request LINE (bytes). A peer streaming data with
/// no newline would otherwise grow the receive buffer without limit —
/// the text-side counterpart of kMaxEvalbWords.
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;

/// How the socket transports multiplex connections. The FRAMING and
/// response bytes are identical either way (the dual-path conformance
/// matrix in tests/serve_test.cpp runs every socket test against both);
/// the models differ only in how many connections they can carry.
enum class IoModel {
  /// One thread per accepted connection, up to max_connections at a
  /// time (further accepts wait for a slot). Timeouts via
  /// SO_RCVTIMEO/SO_SNDTIMEO. Portable; caps out at thread count.
  kThreads,
  /// One epoll loop thread driving non-blocking per-connection state
  /// machines (serve/event_loop.h); evaluation runs on the session
  /// ThreadPool, timeouts on a timer wheel. max_connections bounds the
  /// connections admitted at once, but they are cheap — this is the
  /// C10k path. Linux-only; other platforms fall back to kThreads.
  kEpoll,
};

/// "threads" / "epoll".
const char* io_model_name(IoModel model);

/// Parses "threads" / "epoll"; throws ambit::Error on anything else.
IoModel parse_io_model(const std::string& text);

/// The model a serve listener will actually run `requested` under:
/// the AMBIT_IO_MODEL environment variable ("threads" / "epoll")
/// overrides it when set (the CI fallback leg forces the whole test
/// matrix onto threads this way, mirroring AMBIT_FORCE_SCALAR), and
/// non-Linux platforms fall back to kThreads.
IoModel resolve_io_model(IoModel requested);

/// Knobs for the socket transports (serve_unix / serve_tcp).
struct ServerOptions {
  /// Connections served at once; further accepts wait for a free slot.
  int max_connections = kDefaultMaxConnections;
  /// SO_RCVTIMEO per connection: a silent peer is dropped after this
  /// many seconds (tests shrink it; 0 keeps the OS default = forever).
  long idle_timeout_secs = kIdleTimeoutSecs;
  /// SO_SNDTIMEO per connection: a peer that stops reading is dropped
  /// after this many seconds (0 = OS default).
  long send_timeout_secs = kSendTimeoutSecs;
  /// Cross-connection EVAL/EVALB coalescing (serve/coalesce.h);
  /// window_us == 0 (default) disables it.
  CoalesceOptions coalesce;
  /// Metrics sink (util/metrics.h): null = the process-global registry.
  /// Tests and benches pass their own Registry for isolated, exactly
  /// assertable counts.
  metrics::Registry* registry = nullptr;
  /// Runtime master switch for the per-request instrumentation (the
  /// compile-time switch is -DAMBIT_METRICS). bench_serve_throughput
  /// flips it off to measure the instrumentation overhead.
  bool enable_metrics = true;
  /// Requests whose total wall time reaches this many microseconds log
  /// their phase trace (parse / coalesce_wait / queue_wait / evaluate /
  /// serialize) at warn, rate-limited. 0 (default) disables the dump.
  std::uint64_t slow_request_us = 0;
  /// Connection multiplexing model for the socket transports (see
  /// IoModel above; resolve_io_model applies the AMBIT_IO_MODEL
  /// override and the platform fallback).
  IoModel io_model = IoModel::kEpoll;
};

/// Splits "host:port" into its parts; throws ambit::Error on a missing
/// or non-numeric port, a port beyond 65535, or an empty host — always
/// quoting the offending spec in the error text ("0.0.0.0:7878" and
/// "localhost:0" are fine — port 0 asks the kernel for an ephemeral
/// port, see Server::serve_tcp).
std::pair<std::string, int> parse_host_port(const std::string& spec);

#ifndef _WIN32
/// Binds and listens an IPv4 TCP socket on `host`:`port` (SO_REUSEADDR
/// set, kListenBacklog deep; port 0 binds an ephemeral port) and
/// returns the listening fd. When `bound_port_out` is non-null it
/// receives the actually bound port. `what` prefixes error messages.
/// Shared by Server::serve_tcp and the --metrics HTTP side listener
/// (serve/metrics_http.h). Throws ambit::Error on failure.
int bind_tcp_listener(const std::string& host, int port,
                      const std::string& what, int* bound_port_out);
#endif

/// Serves the line protocol for one Session. A single Server instance
/// drives all connection threads of a socket transport; it holds no
/// per-connection state, so one instance can serve any number of
/// consecutive serve_* calls (but only one listener at a time — the
/// SHUTDOWN latch is shared).
class Server {
 public:
  explicit Server(Session& session, ServerOptions options = {});
  ~Server();

  /// Handles one TEXT request line; returns the response line (no
  /// trailing newline). Never throws for request-level failures — they
  /// come back as "ERR ..." responses. EVALB is answered with ERR here:
  /// its binary payload only exists on a transport (see serve_stream /
  /// serve_unix / serve_tcp).
  std::string handle_line(const std::string& line);

  /// Reads request lines from `in` until QUIT, SHUTDOWN or EOF, writing
  /// one response line each to `out` (flushed per response, so a pipe
  /// peer can interleave). EVALB payloads are read from / written to
  /// the same streams. Returns the number of requests served.
  std::uint64_t serve_stream(std::istream& in, std::ostream& out);

  /// Binds and listens on `socket_path` and serves each accepted
  /// connection on its own thread until a SHUTDOWN request, then drains
  /// the in-flight connections and unlinks the socket. A STALE socket
  /// file (no listener behind it) is replaced; a LIVE one — another
  /// server still accepting — is a hard ambit::Error, never silently
  /// stolen. Returns the number of requests served across all
  /// connections. Throws ambit::Error on socket-level failures.
  std::uint64_t serve_unix(const std::string& socket_path);

  /// Binds and listens on TCP `host:port` and serves connections
  /// exactly like serve_unix (same connection loop, framing, timeouts
  /// and SHUTDOWN drain). `host` is an IPv4 dotted-quad or
  /// "localhost"; port 0 binds an ephemeral port. When `bound_port` is
  /// non-null it receives the actually bound port (release-stored)
  /// BEFORE the first accept, so a caller that runs serve_tcp on its
  /// own thread can bind port 0, spin until the atomic goes non-zero,
  /// and connect — no extra synchronization needed. Returns the number
  /// of requests served; throws ambit::Error on socket-level failures.
  std::uint64_t serve_tcp(const std::string& host, int port,
                          std::atomic<int>* bound_port = nullptr);

  /// Feeds ONE connection's byte stream through the same incremental
  /// ConnState machine the epoll transport runs (serve/conn_state.h) —
  /// no sockets involved. `next_chunk` returns the peer's next burst
  /// of bytes (empty string = clean EOF); every chunk boundary is a
  /// potential read() boundary, so a caller that returns one byte at a
  /// time exercises every split point of the framing. Responses are
  /// appended to `out`. Returns the number of requests served. This is
  /// the harness the arbitrary-chunking fuzz mode and the state-machine
  /// unit tests drive; production traffic reaches the same code through
  /// serve_unix/serve_tcp with io_model = kEpoll.
  std::uint64_t serve_chunks(const std::function<std::string()>& next_chunk,
                             std::string& out);

  /// True once a SHUTDOWN request was handled.
  bool shutdown_requested() const { return shutdown_.load(); }

  /// The coalescing queue (for tests and benches; counters only).
  const CoalescingQueue& coalescer() const { return coalescer_; }

  /// The Prometheus text-format exposition page: refreshes the sampled
  /// gauges (pool depth/utilization, active connections), then renders
  /// the server's registry. Served by the METRICS verb and by the
  /// --metrics HTTP side listener (serve/metrics_http.h). The page
  /// reflects requests COMPLETED before the one serving it — per-verb
  /// counters are bumped after the response is written.
  std::string metrics_page();

 private:
  /// Outcome of one request on a connection.
  struct Outcome {
    std::string response;  ///< the response line (no trailing newline)
    bool quit = false;     ///< close this connection (QUIT, SHUTDOWN,
                           ///< or an unframed/oversized EVALB header)
  };

  /// Reads exactly n payload bytes from the transport; false on EOF.
  using PayloadReader = std::function<bool(char*, std::size_t)>;
  /// Writes n response bytes to the transport; false when the peer is
  /// gone.
  using ByteWriter = std::function<bool(const char*, std::size_t)>;

  /// Dispatches one parsed text request (everything but EVALB).
  Outcome dispatch(const Request& request);

  /// EVAL/EVALB evaluation entry: through the coalescer when enabled,
  /// directly through the Session otherwise. Either way the result and
  /// the counters are bit-identical.
  logic::PatternBatch coalesced_eval(
      const std::shared_ptr<const LoadedCircuit>& circuit,
      const logic::PatternBatch& inputs);

  /// Handles one request line on any transport, including the EVALB
  /// payload exchange. Returns false when the peer is gone (a write
  /// failed or an EVALB payload hit EOF); `outcome` is valid either
  /// way. `conn_id` identifies the connection in slow-request logs
  /// (0 for the stream transport). This wrapper owns the per-request
  /// instrumentation — timing, phase trace, per-verb counters, the
  /// slow-request dump; serve_line_inner does the protocol work.
  bool serve_line(const std::string& line, const PayloadReader& read_payload,
                  const ByteWriter& write_bytes, Outcome& outcome,
                  std::uint64_t conn_id = 0);

  /// The uninstrumented request path shared by every transport.
  /// `verb_index_out`, when non-null, receives the parsed verb's enum
  /// index (-1 when the line failed to parse).
  bool serve_line_inner(const std::string& line,
                        const PayloadReader& read_payload,
                        const ByteWriter& write_bytes, Outcome& outcome,
                        int* verb_index_out);

  /// True when instrumentation should record: compiled in AND enabled
  /// by ServerOptions::enable_metrics.
  bool metrics_on() const {
    return metrics::metrics_enabled() && options_.enable_metrics;
  }

  /// The coalescer's metric hooks (empty when metrics are off).
  CoalesceInstruments coalesce_instruments() const;

  /// Serves one accepted socket connection until QUIT/SHUTDOWN/EOF;
  /// returns the number of requests served on it. `conn_id` is the
  /// accept-order id used in logs and slow-request dumps.
  std::uint64_t serve_connection(int conn, std::uint64_t conn_id);

  /// The transport-agnostic accept/connection loop shared by serve_unix
  /// and serve_tcp. Dispatches on the resolved io model: the
  /// thread-per-connection path below, or the epoll event loop
  /// (serve/event_loop.h). Either way: accepts connections, applies the
  /// idle/send timeout policy, and on SHUTDOWN — or a fatal accept
  /// error — drains every in-flight connection, closes the listener,
  /// and runs `cleanup` (serve_unix unlinks its socket file there).
  /// `what` prefixes error messages ("serve_unix" / "serve_tcp").
  /// Takes ownership of `listener`.
  std::uint64_t serve_listener(int listener, const std::string& what,
                               const std::function<void()>& cleanup);

  /// The thread-per-connection fallback path (IoModel::kThreads).
  std::uint64_t serve_listener_threads(int listener, const std::string& what,
                                       const std::function<void()>& cleanup);

  /// Connection-lifecycle accounting shared by both io models, so the
  /// counters and the conn.drop/conn.accept log lines cannot drift
  /// between them. Defined in server.cpp where ServeMetrics is
  /// visible.
  void note_connection_accepted();
  void note_connection_dropped(const char* reason, std::uint64_t conn_id,
                               std::uint64_t served);
  /// Event-loop instrumentation (no-ops when metrics are off): one
  /// wakeup = one epoll_wait return with `ready_events` descriptors.
  void note_loop_wakeup(std::size_t ready_events);
  /// Tracks the aggregate write-backpressure outbox size.
  void note_pending_write_delta(std::int64_t delta);

  /// Handles are registered once at construction; recording is relaxed
  /// atomics only. Defined in server.cpp (one member per metric).
  struct ServeMetrics;

  /// The epoll event loop (serve/event_loop.cpp) drives serve_line and
  /// the drop accounting directly — it IS the transport on that path.
  friend class EventLoop;

  Session& session_;
  ServerOptions options_;
  // metrics_ precedes coalescer_: the coalescer captures pointers into
  // it at construction.
  std::unique_ptr<ServeMetrics> metrics_;
  CoalescingQueue coalescer_;
  std::atomic<bool> shutdown_{false};
  // Connection lifecycle counters for STATS (`connections=<active>/
  // <accepted>`). Deliberately NOT behind the metrics layer: STATS
  // stays exact under -DAMBIT_METRICS=OFF.
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  // One slow-request warn per interval, surplus folded into
  // suppressed=<n> — a storm of slow requests must not flood the log.
  logs::RateLimiter slow_log_limiter_{1'000'000};
};

}  // namespace ambit::serve
