// The serve front door: one request line in, one response line out.
//
// Server binds a Session to the wire protocol (serve/protocol.h) and
// drives it over either transport:
//
//   * serve_stream — any istream/ostream pair: ambit_cli --serve and
//     ambit_serve --stdio run it over stdin/stdout, tests over
//     stringstreams;
//   * serve_unix — a Unix-domain socket: connections are accepted and
//     served SEQUENTIALLY (the parallelism lives below, in the
//     session's worker pool that shards every EVAL), QUIT ends a
//     connection, SHUTDOWN ends the accept loop.
//
// Request failures — unknown verbs, malformed covers, missing circuits
// — never kill the server: every ambit::Error becomes one "ERR ..."
// response line and the loop continues, which is what makes malformed
// LOAD input a routine event instead of a crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/session.h"

namespace ambit::serve {

/// Serves the line protocol for one Session.
class Server {
 public:
  explicit Server(Session& session) : session_(session) {}

  /// Handles one request line; returns the response line (no trailing
  /// newline). Never throws for request-level failures — they come back
  /// as "ERR ..." responses.
  std::string handle_line(const std::string& line);

  /// Reads request lines from `in` until QUIT, SHUTDOWN or EOF, writing
  /// one response line each to `out` (flushed per response, so a pipe
  /// peer can interleave). Returns the number of requests served.
  std::uint64_t serve_stream(std::istream& in, std::ostream& out);

  /// Binds and listens on `socket_path` (an existing socket file is
  /// replaced), then accepts and serves connections until a SHUTDOWN
  /// request. Returns the number of requests served across all
  /// connections. Throws ambit::Error on socket-level failures.
  std::uint64_t serve_unix(const std::string& socket_path);

  /// True once a SHUTDOWN request was handled.
  bool shutdown_requested() const { return shutdown_.load(); }

 private:
  Session& session_;
  std::atomic<bool> shutdown_{false};
  bool quit_ = false;  ///< QUIT seen on the current connection
};

}  // namespace ambit::serve
