#include "serve/coalesce.h"

#include <chrono>
#include <utility>

#include "util/error.h"

namespace ambit::serve {

logic::PatternBatch CoalescingQueue::eval(
    const std::shared_ptr<const LoadedCircuit>& circuit,
    const logic::PatternBatch& inputs) {
  check(circuit != nullptr, "CoalescingQueue::eval: null circuit");
  if (!enabled() || inputs.num_patterns() >= options_.min_patterns) {
    // Large requests already fill their lane words; fusing them could
    // only add copies and wake-up latency.
    const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
    return session_.eval(circuit, inputs);
  }

  MutexLock lock(mutex_);
  ++requests_;
  if (instruments_.requests != nullptr) {
    instruments_.requests->add();
  }
  const auto it = groups_.find(circuit.get());
  if (it != groups_.end()) {
    // Follower: park in the open group and wait for the leader's
    // flush. The group stores a POINTER to the caller's batch — the
    // caller blocks on the future right below, so the batch outlives
    // the leader's gather.
    const std::shared_ptr<Group> group = it->second;
    auto pending = std::make_unique<Pending>();
    pending->inputs = &inputs;
    pending->first = group->total_patterns;
    group->total_patterns += inputs.num_patterns();
    std::future<logic::PatternBatch> future = pending->result.get_future();
    group->members.push_back(std::move(pending));
    if (group->total_patterns >= options_.min_patterns) {
      group->flush.notify_one();
    }
    lock.unlock();
    // get() rethrows whatever the leader's evaluation threw, so a
    // failed fused sweep fails every member request identically.
    // Clock reads happen only when someone is listening: the follower's
    // park time (leader window remainder + the shared sweep) feeds the
    // wait histogram and the request's coalesce_wait phase.
    metrics::PhaseTrace* trace = metrics::current_trace();
    const bool timed = instruments_.wait_us != nullptr || trace != nullptr;
    const std::uint64_t parked_at = timed ? metrics::monotonic_us() : 0;
    logic::PatternBatch out = future.get();
    if (timed) {
      const std::uint64_t waited = metrics::monotonic_us() - parked_at;
      if (instruments_.wait_us != nullptr) {
        instruments_.wait_us->observe(waited);
      }
      if (trace != nullptr) {
        trace->add(metrics::Phase::kCoalesceWait, waited);
      }
    }
    return out;
  }

  // Leader: open a group, wait for followers, then flush it. The
  // leader's own patterns sit at offset 0; members hold the followers.
  const auto group = std::make_shared<Group>();
  group->circuit = circuit;
  group->total_patterns = inputs.num_patterns();
  groups_[circuit.get()] = group;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.window_us);
  metrics::PhaseTrace* trace = metrics::current_trace();
  const bool timed = instruments_.wait_us != nullptr || trace != nullptr;
  const std::uint64_t window_open_us = timed ? metrics::monotonic_us() : 0;
  // Single-shot waits in a loop (CondVar has no predicate overload —
  // see util/mutex.h): leave on early flush or when the window closes.
  while (group->total_patterns < options_.min_patterns) {
    if (group->flush.wait_until(lock, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  if (timed) {
    const std::uint64_t waited = metrics::monotonic_us() - window_open_us;
    if (instruments_.wait_us != nullptr) {
      instruments_.wait_us->observe(waited);
    }
    if (trace != nullptr) {
      trace->add(metrics::Phase::kCoalesceWait, waited);
    }
  }
  // Detach the group BEFORE evaluating: arrivals from here on start a
  // fresh group with a fresh leader instead of waiting on this sweep.
  groups_.erase(circuit.get());
  const std::uint64_t total = group->total_patterns;
  if (!group->members.empty()) {
    batches_ += 1;
    fused_ += group->members.size() + 1;
    if (instruments_.batches != nullptr) {
      instruments_.batches->add();
    }
    if (instruments_.fused != nullptr) {
      instruments_.fused->add(group->members.size() + 1);
    }
  }
  lock.unlock();

  // From here the leader owns the group exclusively: it is out of the
  // map, so no new member can appear, and every existing member is
  // blocked on its future.
  if (group->members.empty()) {
    // The window expired with no company; identical to a direct eval.
    const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
    return session_.eval(circuit, inputs);
  }
  try {
    logic::PatternBatch fused(inputs.num_signals(), total);
    fused.copy_patterns_from(inputs, 0, 0, inputs.num_patterns());
    for (const auto& member : group->members) {
      fused.copy_patterns_from(*member->inputs, 0, member->first,
                               member->inputs->num_patterns());
    }
    logic::PatternBatch out(0, 0);
    {
      // The fused sweep is the leader's evaluate phase; followers see
      // it inside their coalesce_wait instead (they are parked).
      const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
      out = session_.eval_unrecorded(circuit, fused);
    }
    // One fused sweep, but per-request accounting: STATS must report
    // exactly what uncoalesced execution would have.
    session_.record_eval(circuit, inputs.num_patterns());
    for (const auto& member : group->members) {
      session_.record_eval(circuit, member->inputs->num_patterns());
    }
    for (const auto& member : group->members) {
      const std::uint64_t np = member->inputs->num_patterns();
      logic::PatternBatch slice(out.num_signals(), np);
      slice.copy_patterns_from(out, member->first, 0, np);
      member->result.set_value(std::move(slice));
    }
    logic::PatternBatch mine(out.num_signals(), inputs.num_patterns());
    mine.copy_patterns_from(out, 0, 0, inputs.num_patterns());
    return mine;
  } catch (...) {
    // EVERY member promise must end up satisfied or its connection
    // thread blocks forever. A member whose set_value already
    // succeeded before the failure (e.g. bad_alloc mid-scatter) makes
    // set_exception throw future_error — swallow it and keep going so
    // the remaining members still get the error.
    for (const auto& member : group->members) {
      try {
        member->result.set_exception(std::current_exception());
      } catch (const std::future_error&) {
      }
    }
    throw;
  }
}

CoalesceStats CoalescingQueue::stats() const {
  const MutexLock lock(mutex_);
  return CoalesceStats{.requests = requests_, .fused = fused_,
                       .batches = batches_};
}

}  // namespace ambit::serve
