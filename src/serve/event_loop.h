// The epoll-backed serve core (IoModel::kEpoll): one loop thread
// multiplexing every accepted connection through non-blocking sockets
// and the shared ConnState framing machine (serve/conn_state.h), with
// request evaluation dispatched to the session ThreadPool so the loop
// never blocks on a sweep.
//
// Division of labor (ownership rules in docs/ARCHITECTURE.md):
//
//   * the LOOP THREAD owns every per-connection object — fds, the
//     ConnState buffer, the write-backpressure outbox, the timer-wheel
//     deadlines. No lock guards them because no other thread touches
//     them.
//   * WORKERS own only what a dispatched request job captured: the
//     request line, its payload bytes (moved out of the connection
//     buffer before dispatch), and the response bytes they build.
//   * the ONE shared structure is the completion queue (LockRank::
//     kEventLoop) workers post finished results to, paired with an
//     eventfd that wakes the loop.
//
// Timeouts reimplement the SO_RCVTIMEO/SO_SNDTIMEO semantics of the
// threaded path on a hashed timer wheel: an idle peer is dropped
// (reason=idle) after idle_timeout_secs without input while the server
// is waiting on it, and a peer that stops reading its responses is
// dropped (reason=send) after send_timeout_secs without write
// progress. Drop classification, logging, and the response bytes
// themselves are identical to the threaded path — the dual-path
// conformance matrix in tests/serve_test.cpp holds both to that.
#pragma once

#ifdef __linux__

#include <cstdint>
#include <functional>
#include <string>

namespace ambit::serve {

class Server;

/// Runs `server`'s accept + connection machinery as an epoll event
/// loop until a SHUTDOWN request drains it (Server::serve_listener
/// calls this when the resolved io model is kEpoll). Takes ownership
/// of `listener`; `what` prefixes error messages; `cleanup` runs after
/// the listener closes (serve_unix unlinks its socket file there).
/// Returns the number of requests served; throws ambit::Error on fatal
/// socket-level failures (after draining in-flight connections).
std::uint64_t serve_event_loop(Server& server, int listener,
                               const std::string& what,
                               const std::function<void()>& cleanup);

}  // namespace ambit::serve

#endif  // __linux__
