// The serve session: loaded-and-mapped circuits, ready to answer.
//
// A one-shot ambit_cli run pays the whole pipeline — parse, Espresso
// minimization, GNOR mapping — for every single query. A Session pays
// it ONCE per LOAD and keeps the mapped array hot, keyed by name:
//
//   * EVAL answers from the sharded bit-parallel batch path
//     (Evaluator::evaluate_batch over the session's ThreadPool);
//   * VERIFY re-checks the mapped array exhaustively against its
//     source cover, caching the reference truth tables per circuit so
//     a re-verify only pays the array sweep, not the cover sweep;
//   * STATS exposes the counters a long-running operator cares about.
//
// Thread model: the Session itself is driven by ONE front-door thread
// (serve/server.h handles connections sequentially); the parallelism
// lives BELOW it, in the pool that shards every batch evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/gnor_pla.h"
#include "logic/pattern_batch.h"
#include "logic/pla_io.h"
#include "logic/truth_table.h"
#include "util/thread_pool.h"

namespace ambit::serve {

/// One circuit after the LOAD pipeline: source cover, minimized cover,
/// mapped GNOR array, lazily cached verification tables.
struct LoadedCircuit {
  std::string name;
  logic::PlaFile pla;            ///< as parsed from disk
  logic::Cover minimized;        ///< after Espresso
  core::GnorPla gnor;            ///< mapped once, evaluated many times
  double load_seconds = 0;       ///< parse+minimize+map wall time
  std::uint64_t evals = 0;       ///< EVAL requests served
  std::uint64_t patterns = 0;    ///< patterns evaluated in total
  std::uint64_t verifies = 0;    ///< VERIFY requests served
  /// Reference truth tables (onset / don't-care) for VERIFY, built on
  /// first use; this is the per-session cache that makes re-verify
  /// cheap.
  std::optional<logic::TruthTable> reference;
  std::optional<logic::TruthTable> dontcare;

  LoadedCircuit() : minimized(0, 1), gnor(0, 0, 1) {}
};

/// Session-wide counters for STATS.
struct SessionStats {
  std::uint64_t loads = 0;
  std::uint64_t evals = 0;
  std::uint64_t patterns = 0;
  std::uint64_t verifies = 0;
  int circuits = 0;
  int workers = 0;
};

/// A registry of loaded circuits sharing one worker pool.
class Session {
 public:
  /// `workers` threads shard every batch evaluation; <= 1 keeps the
  /// session sequential (still correct, see Evaluator::evaluate_batch).
  explicit Session(int workers = ThreadPool::default_workers());

  /// Runs the LOAD pipeline on `path` and registers the result under
  /// `name`, replacing any circuit previously loaded under that name.
  /// Throws ambit::Error (with file:line context from the parser) on
  /// malformed input.
  const LoadedCircuit& load(const std::string& name, const std::string& path);

  /// The registered circuit; throws ambit::Error when unknown.
  const LoadedCircuit& get(const std::string& name) const;

  /// nullptr when unknown (no throw).
  const LoadedCircuit* find(const std::string& name) const;

  /// Evaluates one batch through the sharded bit-parallel path and
  /// bumps the counters. Input width must match the circuit.
  logic::PatternBatch eval(const std::string& name,
                           const logic::PatternBatch& inputs);

  /// Exhaustively re-checks the mapped array against the source cover
  /// (don't-cares ignored as always). Builds and caches the reference
  /// tables on first call. Requires the circuit to have at most
  /// TruthTable::kMaxInputs inputs.
  bool verify(const std::string& name);

  /// Drops a circuit; throws when unknown.
  void unload(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  SessionStats stats() const;

  ThreadPool& pool() { return pool_; }

 private:
  LoadedCircuit& get_mutable(const std::string& name);

  ThreadPool pool_;
  std::map<std::string, std::unique_ptr<LoadedCircuit>> circuits_;
  // Session-lifetime counters: cumulative across UNLOADs and same-name
  // reloads, so STATS never goes backwards (the per-circuit counters in
  // LoadedCircuit die with the circuit).
  std::uint64_t loads_ = 0;
  std::uint64_t evals_ = 0;
  std::uint64_t patterns_ = 0;
  std::uint64_t verifies_ = 0;
};

}  // namespace ambit::serve
