// The serve session: loaded-and-mapped circuits, ready to answer.
//
// A one-shot ambit_cli run pays the whole pipeline — parse, Espresso
// minimization, GNOR mapping — for every single query. A Session pays
// it ONCE per LOAD and keeps the mapped array hot, keyed by name:
//
//   * EVAL answers from the sharded bit-parallel batch path
//     (Evaluator::evaluate_batch over the session's ThreadPool);
//   * SIM/SIMB answer switch-level timing queries from the same loaded
//     circuits: the transistor-level network is built ONCE per circuit
//     (lazily, on the first SIM) and every sweep rides
//     GnorPlaSimulator::simulate_batch sharded across the same pool;
//   * VERIFY re-checks the mapped array exhaustively against its
//     source cover, caching the reference truth tables per circuit so
//     a re-verify only pays the array sweep, not the cover sweep;
//   * STATS exposes the counters a long-running operator cares about.
//
// Thread model: the Session is shared by EVERY connection thread of the
// concurrent front door (serve/server.h), so all of it is thread-safe:
// the registry map is guarded by one mutex held only for lookups and
// (un)registrations — never across an evaluation — circuits are handed
// out as shared_ptr so an UNLOAD can never pull a circuit out from
// under a running EVAL, counters are atomics so STATS stays exact under
// concurrent traffic, and the per-circuit verify cache is built under a
// per-circuit mutex. The expensive work (LOAD pipeline, batch
// evaluation, exhaustive verify sweeps) always runs OUTSIDE the
// registry lock; below that, the shared worker pool shards every batch
// (ThreadPool::parallel_for is safe for concurrent callers).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/gnor_pla.h"
#include "logic/pattern_batch.h"
#include "logic/pla_io.h"
#include "logic/truth_table.h"
#include "simulate/pla_sim.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ambit::serve {

/// One circuit after the LOAD pipeline: source cover, minimized cover,
/// mapped GNOR array, lazily cached verification tables. The covers and
/// the mapped array are immutable once registered — that immutability
/// is what lets connection threads evaluate concurrently without a
/// per-circuit lock; only the verify cache mutates, under verify_mutex.
struct LoadedCircuit {
  std::string name;
  logic::PlaFile pla;            ///< as parsed from disk
  logic::Cover minimized;        ///< after Espresso
  core::GnorPla gnor;            ///< mapped once, evaluated many times
  double load_seconds = 0;       ///< parse+minimize+map wall time
  // Bookkeeping, not logical state: callers hold circuits as
  // shared_ptr<const LoadedCircuit>, and counting an eval must not
  // require shedding the const.
  mutable std::atomic<std::uint64_t> evals{0};     ///< EVAL requests served
  mutable std::atomic<std::uint64_t> patterns{0};  ///< patterns evaluated
  mutable std::atomic<std::uint64_t> sims{0};      ///< SIM/SIMB requests served
  mutable std::atomic<std::uint64_t> verifies{0};  ///< VERIFY requests served
  /// Reference truth tables (onset / don't-care) for VERIFY, built on
  /// first use under verify_mutex; this is the per-session cache that
  /// makes re-verify cheap. Mutable for the same reason as the
  /// counters: a cache fill through a shared_ptr-to-const handle.
  mutable Mutex verify_mutex{LockRank::kCircuitVerify};
  mutable std::optional<logic::TruthTable> reference
      AMBIT_GUARDED_BY(verify_mutex);
  mutable std::optional<logic::TruthTable> dontcare
      AMBIT_GUARDED_BY(verify_mutex);
  /// The transistor-level network for SIM/SIMB, built lazily on first
  /// use under sim_mutex (the mapped array is immutable, so one build
  /// serves the circuit's whole lifetime). Held shared-and-const:
  /// GnorPlaSimulator::simulate_batch settles per-shard COPIES, so any
  /// number of connection threads can sweep through this one instance
  /// concurrently, and a caller mid-sweep survives an UNLOAD exactly
  /// like the mapped array does.
  mutable Mutex sim_mutex{LockRank::kCircuitSim};
  mutable std::shared_ptr<const simulate::GnorPlaSimulator> simulator
      AMBIT_GUARDED_BY(sim_mutex);

  LoadedCircuit() : minimized(0, 1), gnor(0, 0, 1) {}
};

/// Session-wide counters for STATS.
struct SessionStats {
  std::uint64_t loads = 0;
  std::uint64_t evals = 0;
  std::uint64_t patterns = 0;      ///< patterns through EVAL/EVALB
  std::uint64_t sims = 0;          ///< SIM/SIMB requests
  std::uint64_t sim_patterns = 0;  ///< patterns through SIM/SIMB
  std::uint64_t verifies = 0;
  int circuits = 0;
  int workers = 0;
};

/// A registry of loaded circuits sharing one worker pool. Safe to drive
/// from any number of connection threads concurrently.
class Session {
 public:
  /// `workers` threads shard every batch evaluation; <= 1 keeps the
  /// session sequential (still correct, see Evaluator::evaluate_batch).
  explicit Session(int workers = ThreadPool::default_workers());

  /// Runs the LOAD pipeline on `path` and registers the result under
  /// `name`, replacing any circuit previously loaded under that name.
  /// Throws ambit::Error (with file:line context from the parser) on
  /// malformed input. The pipeline runs outside the registry lock, so
  /// a slow LOAD never stalls concurrent EVALs.
  std::shared_ptr<const LoadedCircuit> load(const std::string& name,
                                            const std::string& path);

  /// The registered circuit; throws ambit::Error when unknown. The
  /// returned shared_ptr keeps the circuit alive across a concurrent
  /// UNLOAD or same-name reload.
  std::shared_ptr<const LoadedCircuit> get(const std::string& name) const;

  /// nullptr when unknown (no throw).
  std::shared_ptr<const LoadedCircuit> find(const std::string& name) const;

  /// Evaluates one batch through the sharded bit-parallel path and
  /// bumps the counters. Input width must match the circuit.
  logic::PatternBatch eval(const std::string& name,
                           const logic::PatternBatch& inputs);

  /// Same, against a circuit the caller already holds — no second
  /// registry lookup, and immune to a concurrent same-name reload
  /// swapping the circuit between the caller's width check and the
  /// evaluation.
  logic::PatternBatch eval(const std::shared_ptr<const LoadedCircuit>& circuit,
                           const logic::PatternBatch& inputs);

  /// The sharded batch evaluation alone, WITHOUT bumping any counter.
  /// The cross-connection coalescer (serve/coalesce.h) runs ONE fused
  /// sweep for many requests but must account per-request — it pairs
  /// this with one record_eval per member request, so STATS is exactly
  /// what uncoalesced execution would have reported.
  logic::PatternBatch eval_unrecorded(
      const std::shared_ptr<const LoadedCircuit>& circuit,
      const logic::PatternBatch& inputs);

  /// Counts one EVAL/EVALB request of `num_patterns` patterns against
  /// `circuit` (the bookkeeping half of eval, split out for the
  /// coalescer). Thread-safe: all counters are atomics.
  void record_eval(const std::shared_ptr<const LoadedCircuit>& circuit,
                   std::uint64_t num_patterns);

  /// Switch-level timing sweep through the circuit's lazily built
  /// transistor network (SIM/SIMB): per-pattern outputs AND phase
  /// delays, sharded across the session pool, bit-identical to a
  /// sequential sweep. Input width must match the circuit.
  simulate::BatchSimResult sim(const std::string& name,
                               const logic::PatternBatch& inputs);

  /// Same, against a circuit the caller already holds.
  simulate::BatchSimResult sim(
      const std::shared_ptr<const LoadedCircuit>& circuit,
      const logic::PatternBatch& inputs);

  /// Exhaustively re-checks the mapped array against the source cover
  /// (don't-cares ignored as always). Builds and caches the reference
  /// tables on first call. Requires the circuit to have at most
  /// TruthTable::kMaxInputs inputs. Concurrent verifies of the SAME
  /// circuit serialize on its verify_mutex; different circuits proceed
  /// in parallel.
  bool verify(const std::string& name);

  /// Same, against a circuit the caller already holds (no second
  /// registry lookup).
  bool verify(const std::shared_ptr<const LoadedCircuit>& circuit);

  /// Drops a circuit; throws when unknown. In-flight evaluations that
  /// already hold the circuit finish normally.
  void unload(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  SessionStats stats() const;

  ThreadPool& pool() { return pool_; }

 private:
  std::shared_ptr<LoadedCircuit> get_shared(const std::string& name) const;

  ThreadPool pool_;
  /// Guards circuits_ — lookups and edits only, never held across
  /// LOAD/EVAL/verify work (its rank sits BELOW the pool's, so holding
  /// it across a sharded sweep would abort in invariant builds).
  mutable Mutex mutex_{LockRank::kSessionRegistry};
  std::map<std::string, std::shared_ptr<LoadedCircuit>> circuits_
      AMBIT_GUARDED_BY(mutex_);
  // Session-lifetime counters: cumulative across UNLOADs and same-name
  // reloads, so STATS never goes backwards (the per-circuit counters in
  // LoadedCircuit die with the circuit). Atomics keep them exact when
  // many connection threads bump them at once.
  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> evals_{0};
  std::atomic<std::uint64_t> patterns_{0};
  std::atomic<std::uint64_t> sims_{0};
  std::atomic<std::uint64_t> sim_patterns_{0};
  std::atomic<std::uint64_t> verifies_{0};
};

}  // namespace ambit::serve
