// Cross-connection request coalescing for ambit::serve.
//
// Many small clients — e.g. per-sample classification queries — each
// send EVAL/EVALB requests of a handful of patterns. Served one by one,
// every such request pays a full evaluation pass over 64-bit lane words
// it mostly leaves empty: a 4-pattern request costs the same word sweep
// as a 64-pattern request. The CoalescingQueue collects small requests
// against the SAME circuit that arrive within a short window from
// different connections, packs them BIT-contiguously into one fused
// logic::PatternBatch (PatternBatch::copy_patterns_from), runs a single
// sharded Session evaluation, and scatters each request's slice of the
// output lanes back to its connection.
//
// Why bit-contiguous packing is exact: every AMBIT batch kernel is
// bit-local — output bit b of lane word w depends only on bit b of
// word w of the input lanes (the kernels are pure AND/OR/NOT over
// packed words; see core/gnor_plane.cpp and the Evaluator contract in
// core/evaluator.h). Fusing requests into shared words therefore
// changes WHICH word a pattern lives in, never its value, and the
// scattered responses are bit-identical to uncoalesced execution for
// any window / min-pattern settings (asserted in tests/serve_test.cpp).
// Word-aligned fusion (slice/paste) would preserve exactness too, but
// each request would still occupy its own words, so many tiny requests
// would save nothing — sub-word sharing is where the speedup lives
// (bench_serve_throughput, many-small-clients section).
//
// Leader/follower model: the first request to open a group becomes the
// leader and waits up to `window_us` for followers; any arrival that
// lifts the group to `min_patterns` patterns wakes the leader early.
// The leader then detaches the group (later arrivals start a new one),
// gathers, evaluates OUTSIDE the queue lock, and fulfills every
// member's promise — including exceptions, so a failed fused sweep
// answers every member request with the same error an unfused run
// would have produced. Per-request STATS stay exact: the fused sweep
// runs through Session::eval_unrecorded and each member is counted
// individually with Session::record_eval.
//
// Requests of `min_patterns` patterns or more bypass the queue — they
// already fill words well enough that fusing could only add copy and
// wake-up latency.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "logic/pattern_batch.h"
#include "serve/session.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ambit::serve {

/// Knobs for the coalescer. window_us == 0 disables coalescing
/// entirely: every request evaluates directly, the pre-coalescing
/// behavior (and the default).
struct CoalesceOptions {
  /// How long a leader waits for followers before flushing, in
  /// microseconds. The latency ceiling a small request can pay.
  std::uint64_t window_us = 0;
  /// Flush early once a group holds this many patterns; requests of at
  /// least this many patterns bypass the queue entirely.
  std::uint64_t min_patterns = 64;
};

/// Observability counters (returned by stats(), reported by STATS when
/// coalescing is enabled).
struct CoalesceStats {
  std::uint64_t requests = 0;  ///< requests routed through the queue
  std::uint64_t fused = 0;     ///< of those, answered from a shared sweep
  std::uint64_t batches = 0;   ///< fused sweeps run (groups of >= 2)
};

/// Optional metrics hooks (util/metrics.h), wired by the Server when
/// the metrics layer is on. The counters mirror CoalesceStats exactly
/// (incremented at the same points, under the same lock); the
/// histogram records how long each coalesced request was parked in the
/// queue — the leader's follower-wait window, or a follower's wait for
/// the leader's fused result (which includes the shared sweep itself:
/// a follower's evaluate phase happens on the leader's thread). All
/// pointers may be null; null means "don't record".
struct CoalesceInstruments {
  metrics::Counter* requests = nullptr;
  metrics::Counter* fused = nullptr;
  metrics::Counter* batches = nullptr;
  metrics::Histogram* wait_us = nullptr;
};

/// Fuses small concurrent EVAL/EVALB requests per circuit. Safe to call
/// from any number of connection threads; one instance per Server.
class CoalescingQueue {
 public:
  CoalescingQueue(Session& session, CoalesceOptions options,
                  CoalesceInstruments instruments = {})
      : session_(session), options_(options), instruments_(instruments) {}

  /// True when coalescing is configured on (window_us > 0).
  bool enabled() const { return options_.window_us > 0; }

  const CoalesceOptions& options() const { return options_; }

  /// Evaluates `inputs` against `circuit`, possibly fused with other
  /// connections' concurrent requests. Blocks the calling connection
  /// thread until ITS result is ready (at most ~window_us longer than
  /// a direct evaluation). The returned batch — and every counter —
  /// is bit-identical to Session::eval(circuit, inputs). Throws
  /// whatever the underlying evaluation throws.
  logic::PatternBatch eval(
      const std::shared_ptr<const LoadedCircuit>& circuit,
      const logic::PatternBatch& inputs);

  CoalesceStats stats() const;

 private:
  /// One member request parked in a group.
  struct Pending {
    const logic::PatternBatch* inputs = nullptr;  ///< caller-owned
    std::uint64_t first = 0;  ///< pattern offset in the fused batch
    std::promise<logic::PatternBatch> result;
  };

  /// One open group: requests against one circuit instance, waiting for
  /// the leader's flush. Keyed by circuit identity (the pointer), so a
  /// same-name reload can never mix widths within a group.
  ///
  /// Lock discipline (stated here because TSA's GUARDED_BY cannot name
  /// another object's member from a nested struct): while a Group sits
  /// in groups_, its members/total_patterns are guarded by the queue's
  /// mutex_; once the leader erases it from the map the leader owns it
  /// exclusively — every member is parked on its future — and reads it
  /// lock-free.
  struct Group {
    std::shared_ptr<const LoadedCircuit> circuit;
    std::vector<std::unique_ptr<Pending>> members;
    std::uint64_t total_patterns = 0;
    CondVar flush;  ///< wakes the leader on early flush
  };

  Session& session_;
  const CoalesceOptions options_;
  const CoalesceInstruments instruments_;
  mutable Mutex mutex_{LockRank::kCoalesce};
  std::map<const LoadedCircuit*, std::shared_ptr<Group>> groups_
      AMBIT_GUARDED_BY(mutex_);
  std::uint64_t requests_ AMBIT_GUARDED_BY(mutex_) = 0;
  std::uint64_t fused_ AMBIT_GUARDED_BY(mutex_) = 0;
  std::uint64_t batches_ AMBIT_GUARDED_BY(mutex_) = 0;
};

}  // namespace ambit::serve
