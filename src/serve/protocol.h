// The ambit::serve wire protocol.
//
// Line-oriented, human-typeable, one request per line and one response
// line per request — the same grammar over a stdio pipe and over the
// Unix-domain socket (serve/server.h):
//
//   LOAD <name> <path>          parse + minimize + map <path>, register
//                               the circuit under <name>
//   EVAL <name> <hex>...        evaluate one input pattern per hex token
//   VERIFY <name>               exhaustive equivalence re-check of the
//                               mapped array against its source cover
//   STATS                       session counters
//   UNLOAD <name>               drop a circuit
//   HELP                        grammar summary
//   QUIT                        close this connection
//   SHUTDOWN                    close this connection and stop the server
//
// Responses: "OK[ <detail>]" on success, "ERR <message>" on failure.
// An EVAL response carries one hex token per input pattern, in order.
//
// Hex patterns are plain hexadecimal numbers: bit i of the value is
// input (or output) i. Tokens may carry a "0x" prefix; widths beyond 64
// signals are supported digit-wise (the value never materializes as an
// integer).
#pragma once

#include <string>
#include <vector>

namespace ambit::serve {

/// Request verbs of the grammar above.
enum class Verb {
  kLoad,
  kEval,
  kVerify,
  kStats,
  kUnload,
  kHelp,
  kQuit,
  kShutdown,
};

/// One parsed request line.
struct Request {
  Verb verb = Verb::kHelp;
  std::string name;                   ///< circuit name (LOAD/EVAL/VERIFY/UNLOAD)
  std::string path;                   ///< .pla path (LOAD)
  std::vector<std::string> patterns;  ///< raw hex tokens (EVAL)
};

/// Parses one request line; throws ambit::Error on malformed requests
/// (unknown verb, wrong argument count).
Request parse_request(const std::string& line);

/// Packs `bits` (bit i = signal i) as fixed-width lowercase hex,
/// ceil(width / 4) digits, most significant first.
std::string hex_encode(const std::vector<bool>& bits);

/// Parses a hex token into `width` signal bits. Accepts an optional
/// "0x"/"0X" prefix. Throws ambit::Error on non-hex digits or when a
/// set bit lies at or above `width`.
std::vector<bool> hex_decode(const std::string& hex, int width);

/// "OK" / "OK <detail>".
std::string ok_response(const std::string& detail = "");

/// "ERR <message>" (newlines in `message` are flattened to spaces so
/// the response stays one line).
std::string err_response(const std::string& message);

/// The HELP response detail: one-line grammar summary.
std::string help_text();

}  // namespace ambit::serve
