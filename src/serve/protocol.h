// The ambit::serve wire protocol. Normative reference (byte-level
// frame tables, limits, version history): docs/PROTOCOL.md.
//
// Line-oriented, human-typeable, one request per line and one response
// line per request — the same grammar over a stdio pipe, the
// Unix-domain socket, and the TCP socket (serve/server.h):
//
//   LOAD <name> <path>          parse + minimize + map <path>, register
//                               the circuit under <name>
//   EVAL <name> <hex>...        evaluate one input pattern per hex token
//   EVALB <name> <np> <nw>      bulk evaluate: the header line is
//                               followed by <nw> raw little-endian
//                               uint64 words holding the word-packed
//                               input lanes of a PatternBatch over <np>
//                               patterns — ceil(np/64) words per input
//                               lane, lane 0 first (<nw> must equal
//                               inputs * ceil(np/64))
//   SIM <name> <hex>...         switch-level simulation of one input
//                               pattern per hex token: outputs AND the
//                               precharge/plane-1/plane-2 phase delays
//                               of every pattern's dynamic cycle
//   SIMB <name> <np> <nw>       bulk switch-level timing sweep: framed
//                               exactly like EVALB (same input payload
//                               layout and <nw> = inputs * ceil(np/64))
//   VERIFY <name>               exhaustive equivalence re-check of the
//                               mapped array against its source cover
//   STATS                       session counters
//   METRICS                     the Prometheus text-format metrics
//                               page: "OK METRICS <nbytes>" followed
//                               by exactly <nbytes> raw bytes of
//                               exposition text (docs/OBSERVABILITY.md)
//   UNLOAD <name>               drop a circuit
//   HELP                        grammar summary
//   QUIT                        close this connection
//   SHUTDOWN                    stop accepting connections, drain the
//                               in-flight ones, then stop the server
//
// Responses: "OK[ <detail>]" on success, "ERR <message>" on failure.
// An EVAL response carries one hex token per input pattern, in order.
// A SIM response carries one TOKEN per pattern:
// "<hex>@<pre>/<e1>/<e2>" — the output pattern plus that pattern's
// precharge, plane-1-evaluate and plane-2-evaluate delays in
// picoseconds (%.6g).
// An EVALB response is the line "OK EVALB <np> <nw'>" followed by <nw'>
// raw words of word-packed OUTPUT lanes in the same layout (an ERR
// response to EVALB carries no payload). A SIMB response is the line
// "OK SIMB <np> <nw'>" whose <nw'> payload words are the output lanes
// FOLLOWED by 3*np little-endian IEEE-754 doubles (one word each): the
// per-pattern precharge delays, then the plane-1 delays, then the
// plane-2 delays, all in seconds — so <nw'> = outputs * ceil(np/64) +
// 3*np. The explicit word count is what keeps the stream in sync: for
// any WELL-FORMED header the server consumes exactly <nw> payload
// words, even when the request itself fails (unknown name, wrong
// count), so one bad bulk request costs one ERR line, not the
// connection. The exceptions close the connection after the ERR line,
// because the payload can no longer be consumed or trusted: a header
// that does not parse at all, one whose <nw> exceeds the server's
// payload limit (serve/server.h kMaxEvalbWords), and a payload buffer
// the server failed to allocate under memory pressure.
//
// Hex patterns are plain hexadecimal numbers: bit i of the value is
// input (or output) i. Tokens may carry a "0x" prefix; widths beyond 64
// signals are supported digit-wise (the value never materializes as an
// integer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ambit::serve {

/// Wire-protocol revision: bumped whenever the grammar, a frame
/// layout, or a response format changes (history in docs/PROTOCOL.md,
/// the normative reference for everything in this header). Purely
/// informational — every revision so far is backward compatible.
inline constexpr int kProtocolVersion = 4;

/// Request verbs of the grammar above.
enum class Verb {
  kLoad,
  kEval,
  kEvalB,
  kSim,
  kSimB,
  kVerify,
  kStats,
  kMetrics,
  kUnload,
  kHelp,
  kQuit,
  kShutdown,
};

/// True for the verbs whose request carries a raw binary payload after
/// the header line (EVALB/SIMB) — the ones that need a stream or
/// socket transport and whose malformed headers unframe the stream.
inline bool is_bulk_verb(Verb verb) {
  return verb == Verb::kEvalB || verb == Verb::kSimB;
}

/// One parsed request line.
struct Request {
  Verb verb = Verb::kHelp;
  std::string name;                   ///< circuit name (LOAD/EVAL*/SIM*/VERIFY/UNLOAD)
  std::string path;                   ///< .pla path (LOAD)
  std::vector<std::string> patterns;  ///< raw hex tokens (EVAL/SIM)
  std::uint64_t num_patterns = 0;     ///< pattern count (EVALB/SIMB)
  std::uint64_t num_words = 0;        ///< payload word count (EVALB/SIMB)
};

/// Parses one request line; throws ambit::Error on malformed requests
/// (unknown verb, wrong argument count).
Request parse_request(const std::string& line);

/// Every verb string parse_request dispatches, in grammar order. The
/// HELP audit test checks help_text() against this list, so a new verb
/// cannot land without its HELP entry (and docs/PROTOCOL.md is written
/// against the same list).
std::vector<std::string> verb_names();

/// Packs `bits` (bit i = signal i) as fixed-width lowercase hex,
/// ceil(width / 4) digits, most significant first.
std::string hex_encode(const std::vector<bool>& bits);

/// Parses a hex token into `width` signal bits. Accepts an optional
/// "0x"/"0X" prefix. Throws ambit::Error on non-hex digits or when a
/// set bit lies at or above `width`.
std::vector<bool> hex_decode(const std::string& hex, int width);

/// "OK" / "OK <detail>".
std::string ok_response(const std::string& detail = "");

/// The EVALB success header: "OK EVALB <num_patterns> <num_words>" (the
/// raw output-lane words follow it on the wire).
std::string evalb_response_header(std::uint64_t num_patterns,
                                  std::uint64_t num_words);

/// The SIMB success header: "OK SIMB <num_patterns> <num_words>" (the
/// output lanes plus the three per-pattern delay arrays follow it).
std::string simb_response_header(std::uint64_t num_patterns,
                                 std::uint64_t num_words);

/// One SIM response token: "<hex>@<pre>/<e1>/<e2>" — the packed output
/// pattern plus the three phase delays, converted to picoseconds and
/// formatted %.6g. Tests and clients re-encode expected values through
/// this same helper, so formatting can never drift between them.
std::string sim_token(const std::vector<bool>& outputs, double precharge_s,
                      double plane1_eval_s, double plane2_eval_s);

/// "ERR <message>" (newlines in `message` are flattened to spaces so
/// the response stays one line).
std::string err_response(const std::string& message);

/// The HELP response detail: one-line grammar summary.
std::string help_text();

}  // namespace ambit::serve
