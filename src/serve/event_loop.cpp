#include "serve/event_loop.h"

#ifdef __linux__

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/conn_state.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ambit::serve {

namespace {

/// Loop clock (ms, steady). Only differences matter, never wall time.
std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// epoll_event.data.u64 tags for the two non-connection descriptors.
/// Connection tags are accept-order ids counting up from 1, so the top
/// of the u64 space can never collide with one.
constexpr std::uint64_t kListenerTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

}  // namespace

/// Which per-connection deadline a wheel entry tracks.
enum class TimerKind { kIdle, kSend };

/// A hashed timing wheel over the connection deadlines: arming is O(1)
/// (file the entry in the slot its deadline hashes to), and each loop
/// iteration sweeps only the slots whose tick just passed — never all
/// connections. Entries are lazy: the wheel hands expiry CANDIDATES to
/// the loop, which checks them against the connection's CURRENT
/// deadline (refreshed on activity without touching the wheel) and
/// re-files the ones whose deadline moved. That caps wheel traffic at
/// O(1) amortized per connection per timeout period, regardless of how
/// chatty the connection is.
class TimerWheel {
 public:
  static constexpr std::uint64_t kTickMs = 100;
  static constexpr std::size_t kSlots = 128;

  struct Entry {
    std::uint64_t conn_id;
    TimerKind kind;
    std::uint64_t deadline_ms;  ///< deadline at filing time
  };

  explicit TimerWheel(std::uint64_t start) : last_tick_(start / kTickMs) {}

  void arm(std::uint64_t conn_id, TimerKind kind, std::uint64_t deadline_ms) {
    slots_[(deadline_ms / kTickMs) % kSlots].push_back(
        Entry{conn_id, kind, deadline_ms});
  }

  /// Sweeps the slots for every FULLY elapsed tick since the last
  /// advance, handing each due entry to `fire` (which owns re-filing
  /// against live deadlines). A slot holds deadlines from anywhere in
  /// its tick's 100 ms span, so it is ripe only once `now` has passed
  /// the tick's END — sweeping at the tick's start would misread a
  /// deadline in the tick's final milliseconds as a later rotation and
  /// park it for a full wheel turn. Due-ness is therefore decided by
  /// rotation (the entry's tick vs the sweep target), never by
  /// comparing the raw deadline against `now`.
  template <typename Fire>
  void advance(std::uint64_t now, Fire&& fire) {
    const std::uint64_t tick = now / kTickMs;
    if (tick == 0 || tick - 1 <= last_tick_) {
      return;
    }
    const std::uint64_t target = tick - 1;
    // A stall longer than one full rotation only requires each slot to
    // be swept once.
    const std::uint64_t steps =
        target - last_tick_ < kSlots ? target - last_tick_ : kSlots;
    for (std::uint64_t s = 1; s <= steps; ++s) {
      std::vector<Entry>& slot = slots_[(last_tick_ + s) % kSlots];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].deadline_ms / kTickMs <= target) {
          fire(slot[i]);
        } else {
          slot[keep++] = slot[i];  // a later rotation of this slot
        }
      }
      slot.resize(keep);
    }
    last_tick_ = target;
  }

 private:
  std::uint64_t last_tick_;
  std::vector<Entry> slots_[kSlots];
};

/// The epoll loop: see event_loop.h for the ownership rules. A friend
/// of Server — on this path the loop IS the transport, driving
/// serve_line and the drop accounting directly.
class EventLoop {
 public:
  EventLoop(Server& server, int listener, std::string what,
            const std::function<void()>& cleanup)
      : server_(server),
        listener_(listener),
        what_(std::move(what)),
        cleanup_(cleanup),
        wheel_(now_ms()) {}

  std::uint64_t run();

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    ConnState state{ConnState::PayloadMode::kBuffered};
    /// Write-backpressure queue: response bytes the socket has not
    /// taken yet. out_off tracks the flushed prefix; both reset when
    /// the outbox drains.
    std::string outbox;
    std::size_t out_off = 0;
    bool busy = false;        ///< a request job is on the pool
    bool want_close = false;  ///< close once the outbox drains
    bool no_reads = false;    ///< SHUTDOWN drain cut the input side
    const char* drop_reason = nullptr;
    std::uint64_t served = 0;
    /// Deadlines (loop clock ms); 0 = disarmed. Refreshed on activity
    /// without touching the wheel — see TimerWheel.
    std::uint64_t idle_deadline_ms = 0;
    std::uint64_t send_deadline_ms = 0;
    bool idle_filed = false;
    bool send_filed = false;
    std::uint32_t interest = 0;  ///< epoll interest currently registered
  };

  /// A finished request job, posted by a pool worker.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string out;  ///< response bytes (line + any bulk payload)
    bool alive = false;
    bool quit = false;
    bool payload_truncated = false;
  };

  std::size_t active() const { return conns_.size(); }

  void post(Completion&& done) {
    const MutexLock lock(mutex_);
    completions_.push_back(std::move(done));
    const std::uint64_t one = 1;
    // A full eventfd counter (impossible at 2^64) or EINTR just means
    // the loop is already awake or will be; nothing to handle. The
    // write stays INSIDE the critical section: the loop exits (and
    // closes wake_fd_) only after draining every completion under this
    // mutex, so draining the last one orders this write before the
    // close — outside the lock the loop could close the fd between our
    // unlock and write.
    (void)!::write(wake_fd_, &one, sizeof(one));
  }

  void set_listener_registered(bool want) {
    if (want == listener_registered_) {
      return;
    }
    if (want) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kListenerTag;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_, &ev);
    } else {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_, nullptr);
    }
    listener_registered_ = want;
  }

  void queue_output(Conn& c, const std::string& bytes) {
    if (bytes.empty()) {
      return;
    }
    const bool was_empty = c.out_off >= c.outbox.size();
    c.outbox.append(bytes);
    server_.note_pending_write_delta(static_cast<std::int64_t>(bytes.size()));
    if (was_empty && server_.options_.send_timeout_secs > 0) {
      c.send_deadline_ms =
          now_ms() +
          static_cast<std::uint64_t>(server_.options_.send_timeout_secs) * 1000;
    }
  }

  /// Non-blocking flush of the outbox; false when the peer is gone (a
  /// hard write error — the "send" drop, like a threaded write_all
  /// failure).
  bool try_flush(Conn& c) {
    std::size_t flushed = 0;
    bool ok = true;
    while (c.out_off < c.outbox.size()) {
      const ssize_t n = ::send(c.fd, c.outbox.data() + c.out_off,
                               c.outbox.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        flushed += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;  // socket buffer full: EPOLLOUT will resume this
      }
      ok = false;  // peer reset / closed its read side
      break;
    }
    if (flushed > 0) {
      server_.note_pending_write_delta(-static_cast<std::int64_t>(flushed));
      if (server_.options_.send_timeout_secs > 0) {
        // Progress re-arms the send deadline, mirroring SO_SNDTIMEO's
        // per-send accounting.
        c.send_deadline_ms =
            now_ms() +
            static_cast<std::uint64_t>(server_.options_.send_timeout_secs) *
                1000;
      }
    }
    if (c.out_off >= c.outbox.size()) {
      c.outbox.clear();
      c.out_off = 0;
      c.send_deadline_ms = 0;
    }
    return ok;
  }

  void close_conn(Conn& c, const char* reason) {
    if (reason != nullptr) {
      server_.note_connection_dropped(reason, c.id, c.served);
    }
    logs::debug("conn.close", {{"conn", std::to_string(c.id)},
                               {"served", std::to_string(c.served)}});
    const std::size_t unflushed = c.outbox.size() - c.out_off;
    if (unflushed > 0) {
      server_.note_pending_write_delta(-static_cast<std::int64_t>(unflushed));
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    server_.connections_active_.fetch_sub(1, std::memory_order_relaxed);
    conns_.erase(c.id);  // invalidates c — callers return immediately
    if (!draining_ && active() < static_cast<std::size_t>(max_connections_)) {
      set_listener_registered(true);
    }
  }

  /// Hands the ready request to a pool worker: the job owns copies of
  /// the line and payload, builds its response bytes locally, and posts
  /// a Completion — it never touches connection state.
  void dispatch(Conn& c) {
    c.busy = true;
    c.idle_deadline_ms = 0;  // the idle clock only runs while reading
    const std::uint64_t id = c.id;
    std::string line = c.state.line();
    std::string payload = c.state.take_request_payload();
    Server* server = &server_;
    EventLoop* loop = this;
    server_.session_.pool().submit([loop, server, id, line = std::move(line),
                                    payload = std::move(payload)]() mutable {
      Completion done;
      done.conn_id = id;
      std::size_t off = 0;
      const Server::PayloadReader read_payload = [&](char* dst,
                                                     std::size_t n) {
        const std::size_t have = payload.size() - off;
        const std::size_t take = have < n ? have : n;
        std::memcpy(dst, payload.data() + off, take);
        off += take;
        if (take != n) {
          // The buffered frame ran short: EOF truncated the payload.
          done.payload_truncated = true;
          return false;
        }
        return true;
      };
      const Server::ByteWriter write_bytes = [&done](const char* data,
                                                     std::size_t n) {
        done.out.append(data, n);
        return true;
      };
      Server::Outcome outcome;
      try {
        done.alive =
            server->serve_line(line, read_payload, write_bytes, outcome, id);
      } catch (...) {
        // serve_line's guards make this near-unreachable (bad_alloc
        // building a response); cost the connection, not the loop.
        done.alive = false;
      }
      done.quit = outcome.quit;
      loop->post(std::move(done));
    });
  }

  /// Drives one connection as far as it can go without new input:
  /// flush pending writes, serve buffered requests (one at a time — a
  /// response must drain before the next request is parsed, matching
  /// the threaded path's blocking-write backpressure), then settle
  /// interest and timers. May close (and erase) the connection.
  void step(std::uint64_t id) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) {
      return;
    }
    Conn& c = *it->second;
    if (!try_flush(c)) {
      close_conn(c, c.drop_reason != nullptr ? c.drop_reason : "send");
      return;
    }
    while (!c.busy && !c.want_close && c.out_off >= c.outbox.size()) {
      const ConnState::Step s = c.state.advance();
      if (s == ConnState::Step::kNeedInput) {
        break;  // wait for the socket
      }
      if (s == ConnState::Step::kClosed) {
        close_conn(c, c.drop_reason);
        return;
      }
      if (s == ConnState::Step::kOversized) {
        queue_output(c, oversized_line_response());
        c.drop_reason = "malformed";
        c.want_close = true;
        if (!try_flush(c)) {
          close_conn(c, c.drop_reason);
          return;
        }
        break;
      }
      dispatch(c);  // kRequest
    }
    if (c.want_close && !c.busy && c.out_off >= c.outbox.size()) {
      close_conn(c, c.drop_reason);
      return;
    }
    // Interest: read only while actually waiting for the peer's next
    // bytes (not while a job runs or a response drains — the threaded
    // path does not read then either, which is what bounds per-
    // connection memory); write while the outbox has bytes.
    std::uint32_t want = 0;
    if (!c.busy && !c.want_close && !c.no_reads && !c.state.eof() &&
        c.out_off >= c.outbox.size()) {
      want |= EPOLLIN;
    }
    if (c.out_off < c.outbox.size()) {
      want |= EPOLLOUT;
    }
    if (want != c.interest) {
      epoll_event ev{};
      ev.events = want;
      ev.data.u64 = c.id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
      c.interest = want;
    }
    const std::uint64_t now = now_ms();
    if ((want & EPOLLIN) != 0 && server_.options_.idle_timeout_secs > 0) {
      c.idle_deadline_ms =
          now +
          static_cast<std::uint64_t>(server_.options_.idle_timeout_secs) * 1000;
      if (!c.idle_filed) {
        wheel_.arm(c.id, TimerKind::kIdle, c.idle_deadline_ms);
        c.idle_filed = true;
      }
    }
    if ((want & EPOLLOUT) != 0 && c.send_deadline_ms != 0 && !c.send_filed) {
      wheel_.arm(c.id, TimerKind::kSend, c.send_deadline_ms);
      c.send_filed = true;
    }
  }

  void handle_readable(Conn& c) {
    if (c.busy || c.no_reads || c.state.eof()) {
      return;  // stale event; completion/flush paths own the next move
    }
    char chunk[65536];
    // Level-triggered: a few bursts per wakeup, the rest re-triggers —
    // one huge sender cannot starve the other connections.
    for (int burst = 0; burst < 4; ++burst) {
      const ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
      if (n > 0) {
        c.state.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // read()==0 is a clean close only when the PEER closed; during a
      // SHUTDOWN drain a residual partial line is still treated as
      // truncated, never served — same rule as the threaded path.
      c.state.note_eof(n == 0 && !server_.shutdown_.load());
      break;
    }
  }

  void handle_accepts() {
    for (;;) {
      if (active() >= static_cast<std::size_t>(max_connections_)) {
        // Every slot is taken: stop watching the listener (the kernel
        // backlog queues the overflow) until a connection closes.
        set_listener_registered(false);
        return;
      }
      const int conn =
          ::accept4(listener_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        fatal_ = what_ + ": accept failed: " + std::strerror(errno);
        begin_drain();
        return;
      }
      // Request lines are tens of bytes; Nagle batching them behind a
      // 40 ms delayed ACK would dwarf every latency in the server.
      // No-op (EOPNOTSUPP) on a Unix-domain connection.
      const int nodelay = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      const std::uint64_t conn_id =
          server_.connections_accepted_.fetch_add(1,
                                                  std::memory_order_relaxed) +
          1;
      server_.note_connection_accepted();
      server_.connections_active_.fetch_add(1, std::memory_order_relaxed);
      logs::debug("conn.accept", {{"conn", std::to_string(conn_id)},
                                  {"transport", what_}});
      auto state = std::make_unique<Conn>();
      state->fd = conn;
      state->id = conn_id;
      Conn& c = *state;
      conns_.emplace(conn_id, std::move(state));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn_id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn, &ev);
      c.interest = EPOLLIN;
      const std::uint64_t now = now_ms();
      if (server_.options_.idle_timeout_secs > 0) {
        c.idle_deadline_ms =
            now +
            static_cast<std::uint64_t>(server_.options_.idle_timeout_secs) *
                1000;
        wheel_.arm(conn_id, TimerKind::kIdle, c.idle_deadline_ms);
        c.idle_filed = true;
      }
    }
  }

  void on_timer(const TimerWheel::Entry& entry) {
    const auto it = conns_.find(entry.conn_id);
    if (it == conns_.end()) {
      return;  // connection already gone; the entry just dies
    }
    Conn& c = *it->second;
    if (entry.kind == TimerKind::kIdle) {
      c.idle_filed = false;
      if (c.idle_deadline_ms == 0) {
        return;  // disarmed (busy serving); re-filed when reading resumes
      }
      if (now_ms() < c.idle_deadline_ms) {
        // Activity moved the deadline since filing: re-file, don't fire.
        wheel_.arm(c.id, TimerKind::kIdle, c.idle_deadline_ms);
        c.idle_filed = true;
        return;
      }
      close_conn(c, "idle");
      return;
    }
    c.send_filed = false;
    if (c.send_deadline_ms == 0) {
      return;  // outbox drained since filing
    }
    if (now_ms() < c.send_deadline_ms) {
      wheel_.arm(c.id, TimerKind::kSend, c.send_deadline_ms);
      c.send_filed = true;
      return;
    }
    close_conn(c, "send");
  }

  /// SHUTDOWN (or a fatal error): stop accepting and cut every
  /// connection's input side — the epoll equivalent of the threaded
  /// path's shutdown(SHUT_RD) drain. Buffered complete requests are
  /// still served, in-flight jobs finish, owed responses flush; only
  /// then do the connections close and the loop exit.
  void begin_drain() {
    if (draining_) {
      return;
    }
    draining_ = true;
    set_listener_registered(false);
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, c] : conns_) {
      c->no_reads = true;
      c->state.note_eof(false);
      ids.push_back(id);
    }
    for (const std::uint64_t id : ids) {
      step(id);  // may close (and erase) the connection
    }
  }

  void drain_completions() {
    std::vector<Completion> batch;
    {
      const MutexLock lock(mutex_);
      batch.swap(completions_);
    }
    for (Completion& done : batch) {
      const auto it = conns_.find(done.conn_id);
      if (it == conns_.end()) {
        continue;
      }
      Conn& c = *it->second;
      c.busy = false;
      if (done.alive) {
        ++c.served;
        ++served_total_;
      }
      c.state.finish_request(done.quit);
      if (!done.alive) {
        // A truncated bulk frame is the peer's protocol error; anything
        // else here is the peer gone mid-exchange.
        c.drop_reason = done.payload_truncated ? "malformed" : "send";
        c.want_close = true;
      } else if (done.quit) {
        if (done.out.rfind("ERR", 0) == 0) {
          // Server-initiated close with an ERR response: an unframed or
          // over-limit bulk request. QUIT/SHUTDOWN answer OK and are
          // peer-initiated, not drops.
          c.drop_reason = "malformed";
        }
        c.want_close = true;
      }
      queue_output(c, done.out);
      step(done.conn_id);
    }
    if (server_.shutdown_.load() && !draining_) {
      begin_drain();
    }
  }

  Server& server_;
  const int listener_;
  const std::string what_;
  const std::function<void()>& cleanup_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int max_connections_ = 1;
  bool listener_registered_ = false;
  bool draining_ = false;
  std::string fatal_;
  std::uint64_t served_total_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  TimerWheel wheel_;
  // The worker→loop handoff: the ONLY state two threads share.
  Mutex mutex_{LockRank::kEventLoop};
  std::vector<Completion> completions_ AMBIT_GUARDED_BY(mutex_);
};

std::uint64_t EventLoop::run() {
  max_connections_ = server_.options_.max_connections < 1
                         ? 1
                         : server_.options_.max_connections;
  // The listener arrives BLOCKING from bind_tcp_listener/serve_unix
  // (the threaded path wants it that way). SOCK_NONBLOCK in accept4
  // only shapes the ACCEPTED socket — the accept call itself blocks on
  // a blocking listener, so the accept-burst loop would hang on the
  // call after the last pending connection.
  ::fcntl(listener_, F_SETFL,
          ::fcntl(listener_, F_GETFL, 0) | O_NONBLOCK);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener_);
    cleanup_();
    throw Error(what_ + ": epoll_create1 failed: " + reason);
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const std::string reason = std::strerror(errno);
    ::close(epoll_fd_);
    ::close(listener_);
    cleanup_();
    throw Error(what_ + ": eventfd failed: " + reason);
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
  set_listener_registered(true);

  std::vector<epoll_event> events(512);
  while (!(draining_ && conns_.empty())) {
    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()),
                                   /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      fatal_ = what_ + ": epoll_wait failed: " + std::strerror(errno);
      begin_drain();
      // Without a working epoll there is nothing left to wait on;
      // busy jobs still post completions, drained below.
      break;
    }
    server_.note_loop_wakeup(static_cast<std::size_t>(ready));
    for (int i = 0; i < ready; ++i) {
      const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;  // completions are drained once per iteration below
      }
      if (tag == kListenerTag) {
        if (!draining_) {
          handle_accepts();
        }
        continue;
      }
      const auto it = conns_.find(tag);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch
      }
      // EPOLLERR/EPOLLHUP surface through a read attempt, exactly like
      // the threaded path learns of a reset from read() failing.
      if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        handle_readable(*it->second);
      }
      step(tag);
    }
    drain_completions();
    wheel_.advance(now_ms(), [this](const TimerWheel::Entry& e) { on_timer(e); });
  }

  // A handful of jobs may still be in flight after a hard epoll
  // failure; their completions must land before the loop object dies.
  for (;;) {
    bool busy = false;
    for (const auto& [id, c] : conns_) {
      busy = busy || c->busy;
    }
    if (!busy) {
      break;
    }
    pollfd pfd{wake_fd_, POLLIN, 0};
    ::poll(&pfd, 1, 10);
    std::uint64_t drained = 0;
    (void)!::read(wake_fd_, &drained, sizeof(drained));
    drain_completions();
  }
  for (auto& [id, c] : conns_) {
    const std::size_t unflushed = c->outbox.size() - c->out_off;
    if (unflushed > 0) {
      server_.note_pending_write_delta(-static_cast<std::int64_t>(unflushed));
    }
    ::close(c->fd);
    server_.connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
  ::close(wake_fd_);
  ::close(epoll_fd_);
  ::close(listener_);
  cleanup_();
  if (!fatal_.empty()) {
    throw Error(fatal_);
  }
  return served_total_;
}

std::uint64_t serve_event_loop(Server& server, int listener,
                               const std::string& what,
                               const std::function<void()>& cleanup) {
  EventLoop loop(server, listener, what, cleanup);
  return loop.run();
}

}  // namespace ambit::serve

#endif  // __linux__
