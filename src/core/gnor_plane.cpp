#include "core/gnor_plane.h"

#include <vector>

#include "logic/lane_kernels.h"
#include "util/error.h"

namespace ambit::core {

GnorPlane::GnorPlane(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      cells_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
             CellConfig::kOff) {
  check(rows >= 0 && cols >= 0, "GnorPlane: negative dimensions");
}

std::size_t GnorPlane::index(int row, int col) const {
  check(row >= 0 && row < rows_ && col >= 0 && col < cols_,
        "GnorPlane: cell index out of range");
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(col);
}

CellConfig GnorPlane::cell(int row, int col) const {
  return cells_[index(row, col)];
}

void GnorPlane::set_cell(int row, int col, CellConfig config) {
  cells_[index(row, col)] = config;
}

GnorGate GnorPlane::row_gate(int row) const {
  GnorGate gate(cols_);
  for (int c = 0; c < cols_; ++c) {
    gate.set_cell(c, cell(row, c));
  }
  return gate;
}

std::vector<bool> GnorPlane::evaluate(const std::vector<bool>& inputs) const {
  check(static_cast<int>(inputs.size()) == cols_,
        "GnorPlane::evaluate: input arity mismatch");
  std::vector<bool> outputs(static_cast<std::size_t>(rows_), true);
  for (int r = 0; r < rows_; ++r) {
    bool pulled_down = false;
    for (int c = 0; c < cols_ && !pulled_down; ++c) {
      pulled_down = conducts(polarity_of(cell(r, c)),
                             inputs[static_cast<std::size_t>(c)]);
    }
    outputs[static_cast<std::size_t>(r)] = !pulled_down;
  }
  return outputs;
}

logic::PatternBatch GnorPlane::evaluate_batch(
    const logic::PatternBatch& inputs) const {
  check(inputs.num_signals() == cols_,
        "GnorPlane::evaluate_batch: input arity mismatch");
  logic::PatternBatch out(rows_, inputs.num_patterns());
  // Describe the pull-down network as sweep rows — an n-type cell
  // conducts on the input lane as-is (pass term), a p-type cell on its
  // complement (invert term) — and hand the word-wide NOR reduction to
  // the dispatched lane kernel (scalar/NEON/AVX2, bit-identical).
  std::vector<logic::lanes::SweepTerm> terms;
  terms.reserve(static_cast<std::size_t>(active_cells()));
  std::vector<logic::lanes::SweepRow> sweep_rows(
      static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    const std::uint64_t first = terms.size();
    for (int c = 0; c < cols_; ++c) {
      switch (cell(r, c)) {
        case CellConfig::kPass:
          terms.push_back({.lane = c, .invert = false});
          break;
        case CellConfig::kInvert:
          terms.push_back({.lane = c, .invert = true});
          break;
        case CellConfig::kOff:
          break;
      }
    }
    sweep_rows[static_cast<std::size_t>(r)] = {
        .first_term = first,
        .num_terms = terms.size() - first,
        .complement = true};  // NOR: invert the pull-down accumulator
  }
  logic::lanes::nor_plane_sweep(sweep_rows.data(),
                                static_cast<std::uint64_t>(rows_),
                                terms.data(), inputs, out);
  return out;
}

long long GnorPlane::active_cells() const {
  long long count = 0;
  for (const CellConfig c : cells_) {
    count += c != CellConfig::kOff;
  }
  return count;
}

std::string GnorPlane::to_ascii() const {
  std::string art;
  art.reserve(static_cast<std::size_t>(rows_) *
              (static_cast<std::size_t>(cols_) + 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      switch (cell(r, c)) {
        case CellConfig::kPass: art += '+'; break;
        case CellConfig::kInvert: art += '-'; break;
        case CellConfig::kOff: art += '.'; break;
      }
    }
    art += '\n';
  }
  return art;
}

}  // namespace ambit::core
