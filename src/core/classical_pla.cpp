#include "core/classical_pla.h"

#include <vector>

#include "logic/lane_kernels.h"
#include "util/error.h"

namespace ambit::core {

using logic::Cover;
using logic::Literal;

ClassicalPla::ClassicalPla(int num_inputs, int num_products, int num_outputs)
    : num_inputs_(num_inputs),
      num_products_(num_products),
      num_outputs_(num_outputs),
      and_plane_(static_cast<std::size_t>(num_products) *
                     static_cast<std::size_t>(2 * num_inputs),
                 false),
      or_plane_(static_cast<std::size_t>(num_outputs) *
                    static_cast<std::size_t>(num_products),
                false),
      buffer_inverted_(static_cast<std::size_t>(num_outputs), true) {
  check(num_inputs >= 0 && num_products >= 0 && num_outputs >= 0,
        "ClassicalPla: negative dimensions");
}

ClassicalPla ClassicalPla::map_cover(const Cover& cover,
                                     const std::vector<bool>& complemented) {
  check(complemented.empty() ||
            static_cast<int>(complemented.size()) == cover.num_outputs(),
        "ClassicalPla::map_cover: phase vector arity mismatch");
  ClassicalPla pla(cover.num_inputs(), static_cast<int>(cover.size()),
                   cover.num_outputs());
  for (int k = 0; k < static_cast<int>(cover.size()); ++k) {
    const auto& cube = cover[static_cast<std::size_t>(k)];
    for (int i = 0; i < cover.num_inputs(); ++i) {
      switch (cube.input(i)) {
        case Literal::kOne:
          // P = …x… = NOR(…, x̄, …): connect the complement rail.
          pla.set_and_plane(k, 2 * i + 1, true);
          break;
        case Literal::kZero:
          pla.set_and_plane(k, 2 * i, true);
          break;
        default:
          break;
      }
    }
    for (int o = 0; o < cover.num_outputs(); ++o) {
      if (cube.output(o)) {
        pla.set_or_plane(o, k, true);
      }
    }
  }
  for (int o = 0; o < cover.num_outputs(); ++o) {
    const bool phase_complemented =
        !complemented.empty() && complemented[static_cast<std::size_t>(o)];
    pla.buffer_inverted_[static_cast<std::size_t>(o)] = !phase_complemented;
  }
  return pla;
}

bool ClassicalPla::and_plane_connected(int product, int literal_column) const {
  check(product >= 0 && product < num_products_ && literal_column >= 0 &&
            literal_column < 2 * num_inputs_,
        "ClassicalPla: and-plane index out of range");
  return and_plane_[static_cast<std::size_t>(product) *
                        static_cast<std::size_t>(2 * num_inputs_) +
                    static_cast<std::size_t>(literal_column)];
}

void ClassicalPla::set_and_plane(int product, int literal_column,
                                 bool connected) {
  check(product >= 0 && product < num_products_ && literal_column >= 0 &&
            literal_column < 2 * num_inputs_,
        "ClassicalPla: and-plane index out of range");
  and_plane_[static_cast<std::size_t>(product) *
                 static_cast<std::size_t>(2 * num_inputs_) +
             static_cast<std::size_t>(literal_column)] = connected;
}

bool ClassicalPla::or_plane_connected(int output, int product) const {
  check(output >= 0 && output < num_outputs_ && product >= 0 &&
            product < num_products_,
        "ClassicalPla: or-plane index out of range");
  return or_plane_[static_cast<std::size_t>(output) *
                       static_cast<std::size_t>(num_products_) +
                   static_cast<std::size_t>(product)];
}

void ClassicalPla::set_or_plane(int output, int product, bool connected) {
  check(output >= 0 && output < num_outputs_ && product >= 0 &&
            product < num_products_,
        "ClassicalPla: or-plane index out of range");
  or_plane_[static_cast<std::size_t>(output) *
                static_cast<std::size_t>(num_products_) +
            static_cast<std::size_t>(product)] = connected;
}

bool ClassicalPla::buffer_inverted(int output) const {
  check(output >= 0 && output < num_outputs_,
        "ClassicalPla::buffer_inverted: index out of range");
  return buffer_inverted_[static_cast<std::size_t>(output)];
}

void ClassicalPla::set_buffer_inverted(int output, bool inverted) {
  check(output >= 0 && output < num_outputs_,
        "ClassicalPla::set_buffer_inverted: index out of range");
  buffer_inverted_[static_cast<std::size_t>(output)] = inverted;
}

std::vector<bool> ClassicalPla::evaluate_products(
    const std::vector<bool>& inputs) const {
  check(static_cast<int>(inputs.size()) == num_inputs_,
        "ClassicalPla::evaluate: input arity mismatch");
  std::vector<bool> products(static_cast<std::size_t>(num_products_), true);
  for (int k = 0; k < num_products_; ++k) {
    bool pulled_down = false;
    for (int i = 0; i < num_inputs_ && !pulled_down; ++i) {
      const bool x = inputs[static_cast<std::size_t>(i)];
      // Column 2i carries x, column 2i+1 carries x̄; a connected cell
      // conducts when its rail is high.
      if (and_plane_connected(k, 2 * i) && x) {
        pulled_down = true;
      }
      if (and_plane_connected(k, 2 * i + 1) && !x) {
        pulled_down = true;
      }
    }
    products[static_cast<std::size_t>(k)] = !pulled_down;
  }
  return products;
}

std::vector<bool> ClassicalPla::do_evaluate(
    const std::vector<bool>& inputs) const {
  const std::vector<bool> products = evaluate_products(inputs);
  std::vector<bool> outputs(static_cast<std::size_t>(num_outputs_), true);
  for (int o = 0; o < num_outputs_; ++o) {
    bool pulled_down = false;
    for (int k = 0; k < num_products_ && !pulled_down; ++k) {
      pulled_down =
          or_plane_connected(o, k) && products[static_cast<std::size_t>(k)];
    }
    bool value = !pulled_down;  // NOR row
    if (buffer_inverted_[static_cast<std::size_t>(o)]) {
      value = !value;
    }
    outputs[static_cast<std::size_t>(o)] = value;
  }
  return outputs;
}

logic::PatternBatch ClassicalPla::do_evaluate_batch(
    const logic::PatternBatch& inputs) const {
  using logic::lanes::SweepRow;
  using logic::lanes::SweepTerm;

  // Plane 1: product row k NORs the connected literal rails — column
  // 2i is the true rail (pass term), column 2i+1 the complement rail
  // (invert term). The word-wide reduction runs on the dispatched lane
  // kernel (logic/lane_kernels.h).
  logic::PatternBatch products(num_products_, inputs.num_patterns());
  std::vector<SweepTerm> and_terms;
  std::vector<SweepRow> and_rows(static_cast<std::size_t>(num_products_));
  for (int k = 0; k < num_products_; ++k) {
    const std::uint64_t first = and_terms.size();
    for (int i = 0; i < num_inputs_; ++i) {
      if (and_plane_connected(k, 2 * i)) {
        and_terms.push_back({.lane = i, .invert = false});
      }
      if (and_plane_connected(k, 2 * i + 1)) {
        and_terms.push_back({.lane = i, .invert = true});
      }
    }
    and_rows[static_cast<std::size_t>(k)] = {.first_term = first,
                                             .num_terms =
                                                 and_terms.size() - first,
                                             .complement = true};
  }
  logic::lanes::nor_plane_sweep(and_rows.data(),
                                static_cast<std::uint64_t>(num_products_),
                                and_terms.data(), inputs, products);

  // Plane 2 + buffers: output row o NORs the connected product lines;
  // an inverting tap undoes the final complement, so it keeps the raw
  // pull-down accumulator instead (complement=false).
  logic::PatternBatch outputs(num_outputs_, inputs.num_patterns());
  std::vector<SweepTerm> or_terms;
  std::vector<SweepRow> or_rows(static_cast<std::size_t>(num_outputs_));
  for (int o = 0; o < num_outputs_; ++o) {
    const std::uint64_t first = or_terms.size();
    for (int k = 0; k < num_products_; ++k) {
      if (or_plane_connected(o, k)) {
        or_terms.push_back({.lane = k, .invert = false});
      }
    }
    or_rows[static_cast<std::size_t>(o)] = {
        .first_term = first,
        .num_terms = or_terms.size() - first,
        .complement = !buffer_inverted_[static_cast<std::size_t>(o)]};
  }
  logic::lanes::nor_plane_sweep(or_rows.data(),
                                static_cast<std::uint64_t>(num_outputs_),
                                or_terms.data(), products, outputs);
  return outputs;
}

tech::PlaDimensions ClassicalPla::dimensions() const {
  return tech::PlaDimensions{.inputs = num_inputs_,
                             .outputs = num_outputs_,
                             .products = num_products_};
}

long long ClassicalPla::cell_count() const {
  return static_cast<long long>(2 * num_inputs_ + num_outputs_) *
         num_products_;
}

long long ClassicalPla::active_cells() const {
  long long count = 0;
  for (const bool b : and_plane_) count += b;
  for (const bool b : or_plane_) count += b;
  return count;
}

}  // namespace ambit::core
