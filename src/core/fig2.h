// The paper's Fig. 2 reference configuration as a mapped PLA.
//
// Y = NOR(A, B', D) with input C inhibited (C1 = V+, C2 = V-, C3 = V0,
// C4 = V+), wrapped as a 4-input / 1-product / 1-output dynamic GNOR
// PLA so the switch-level simulator can clock it. This single
// construction backs the Fig. 2 reproduction bench, the batch-
// simulation bench and the golden timing tests — one definition, so
// the circuit those three validate can never drift apart (the
// non-inverting buffer tap they once disagreed on reported the
// complement of the NOR on every vector).
#pragma once

#include "core/gnor_pla.h"

namespace ambit::core {

/// The Fig. 2 reference PLA: Y = NOR(A, B', D), C inhibited.
inline GnorPla fig2_reference_pla() {
  GnorPla pla(4, 1, 1);
  pla.product_plane().set_cell(0, 0, CellConfig::kPass);    // C1 = V+ : A
  pla.product_plane().set_cell(0, 1, CellConfig::kInvert);  // C2 = V- : B'
  pla.product_plane().set_cell(0, 2, CellConfig::kOff);     // C3 = V0 : C
  pla.product_plane().set_cell(0, 3, CellConfig::kPass);    // C4 = V+ : D
  pla.output_plane().set_cell(0, 0, CellConfig::kPass);
  // The plane-2 row computes NOT(P) (it NORs the selected product), so
  // the INVERTING buffer tap restores Y = P = the configured NOR.
  pla.set_buffer_inverted(0, true);
  return pla;
}

}  // namespace ambit::core
