// Configuration protocol of the GNOR plane (paper §4).
//
// "In order to avoid the use of an additional wire per CNFET for every
//  PG signal, a charge corresponding to the voltage of the wished
//  polarity is saved on every PG. A global signal VPG connects all the
//  polarity gates. Any transistor in position (i,j) whose polarity is
//  to be set is selected by using the row and column select signal
//  VSelR,i and VSelC,j. During the configuration phase of the PLA,
//  every ambipolar CNFET is selected individually and the charge
//  corresponding to its PG voltage is set."
//
// PlaneProgrammer models exactly that: a per-cell stored PG charge, a
// pulse sequence generator (compile), the one-cell-at-a-time write
// (apply), a retention/leakage model (leak_toward), and the quantizer
// back to discrete cell configurations (decode). The fault module
// injects retention and stuck defects through this surface.
#pragma once

#include <vector>

#include "core/gnor_plane.h"
#include "tech/technology.h"

namespace ambit::core {

/// One programming operation: select (row, col), drive VPG to `vpg`.
struct ProgramPulse {
  int row = 0;
  int col = 0;
  double vpg = 0;

  bool operator==(const ProgramPulse&) const = default;
};

/// Charge-storage state of one GNOR plane's polarity gates.
class PlaneProgrammer {
 public:
  /// All PG charges start at the off voltage V0 (blank array).
  PlaneProgrammer(int rows, int cols, const tech::CnfetElectrical& e);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Compiles a target configuration into the §4 pulse sequence.
  /// Cells whose target equals the blank state (off) are skipped, so a
  /// sparse plane programs in O(active cells) pulses.
  static std::vector<ProgramPulse> compile(const GnorPlane& target,
                                           const tech::CnfetElectrical& e);

  /// Executes one select-and-charge operation.
  void apply(const ProgramPulse& pulse);

  /// Executes a pulse sequence in order.
  void apply_all(const std::vector<ProgramPulse>& pulses);

  /// Stored PG voltage of a cell [V].
  double charge(int row, int col) const;

  /// Overwrites a stored charge directly (fault injection hook).
  void set_charge(int row, int col, double vpg);

  /// Retention model: every charge moves `fraction` (0..1) of the way
  /// toward `v_rest` — e.g. leakage toward the mid-rail collapses
  /// programmed polarities into the off band.
  void leak_toward(double v_rest, double fraction);

  /// Quantizes the stored charges back into a discrete plane
  /// configuration using the polarity thresholds.
  GnorPlane decode(double off_band_v = 0.6) const;

 private:
  int rows_;
  int cols_;
  tech::CnfetElectrical electrical_;
  std::vector<double> charges_;  // row-major

  std::size_t index(int row, int col) const;
};

}  // namespace ambit::core
