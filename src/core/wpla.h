// Whirlpool PLA: four cascaded NOR planes (paper §5; Brayton et al.,
// ICCAD'02 — the paper's reference [1]).
//
// "The cascade of 4 NOR plane instead of 2 makes the implementation of
//  WPLAs with the presented architecture possible."
//
// AMBIT's WPLA is two chained GNOR PLAs: stage A computes intermediate
// functions G over the primary inputs (planes 1–2); stage B computes
// the outputs over inputs ∪ G (planes 3–4; the primary inputs ride
// through on feed-through tracks, Fig. 3 style). Because every plane
// is a GNOR plane, each stage still needs only ONE column per signal.
//
// Synthesis (synthesize_wpla) is a Doppio-Espresso variant — two
// Espresso runs joined by OR-resubstitution:
//
//   1. Espresso-minimize the flat cover (with output-phase freedom).
//   2. Pick as stage-A intermediates the outputs whose product sets
//      are contained in other outputs' product sets (so g OR-divides
//      f: f = g + remainder) and that save cells when shared.
//   3. Rewrite the remaining outputs over inputs ∪ G (each divisible
//      output drops the divisor's products and gains one literal on
//      the new G column), then Espresso both stages.
//
// Full algebraic division (kernels) is future work; OR-resubstitution
// already captures the product-sharing that makes WPLAs compact on
// control-style logic, and the transform is verified exhaustively.
#pragma once

#include <vector>

#include "core/gnor_pla.h"
#include "logic/cover.h"

namespace ambit::core {

/// A two-stage (four-NOR-plane) Whirlpool PLA.
class Wpla : public Evaluator {
 public:
  /// Builds from the two stage covers. Stage B's cover is over
  /// (primary inputs + stage-A outputs): its first `primary_inputs`
  /// input columns are the primary inputs, the rest read G.
  Wpla(const logic::Cover& stage_a, const logic::Cover& stage_b,
       int primary_inputs);

  int num_inputs() const override { return primary_inputs_; }
  int num_intermediates() const { return stage_a_.num_outputs(); }
  int num_outputs() const override { return stage_b_.num_outputs(); }

  const GnorPla& stage_a() const { return stage_a_; }
  const GnorPla& stage_b() const { return stage_b_; }

  /// Total programmable cells over all four planes.
  long long cell_count() const;

 protected:
  /// Evaluates the full four-plane cascade.
  std::vector<bool> do_evaluate(const std::vector<bool>& inputs) const override;
  logic::PatternBatch do_evaluate_batch(
      const logic::PatternBatch& inputs) const override;

 private:
  int primary_inputs_;
  GnorPla stage_a_;
  GnorPla stage_b_;
};

/// Result of WPLA synthesis.
struct WplaSynthesis {
  /// Stage-A cover (over primary inputs) and stage-B cover (over
  /// primary inputs + intermediates).
  logic::Cover stage_a;
  logic::Cover stage_b;
  /// Which original outputs became intermediates (stage-A outputs are
  /// ALSO final outputs; they are forwarded through stage B).
  std::vector<int> intermediate_outputs;
  /// Cells of the flat two-plane GNOR PLA, for comparison.
  long long flat_cells = 0;
  /// Cells of the synthesized WPLA.
  long long wpla_cells = 0;

  WplaSynthesis() : stage_a(0, 1), stage_b(0, 1) {}
};

/// Doppio-Espresso synthesis (see file comment). The returned stages
/// satisfy: Wpla(stage_a, stage_b, n).evaluate == original function.
WplaSynthesis synthesize_wpla(const logic::Cover& onset);

}  // namespace ambit::core
