#include "core/evaluator.h"

#include <algorithm>
#include <string>

#include "util/error.h"
#include "util/thread_pool.h"

namespace ambit {

namespace {

/// The single, uniform width error raised at the Evaluator boundary.
void check_width(int got, int expected, const char* entry) {
  if (got != expected) {
    throw Error(std::string("Evaluator::") + entry +
                ": input width mismatch (got " + std::to_string(got) +
                ", expected " + std::to_string(expected) + ")");
  }
}

}  // namespace

std::vector<bool> Evaluator::evaluate(const std::vector<bool>& inputs) const {
  check_width(static_cast<int>(inputs.size()), num_inputs(), "evaluate");
  return do_evaluate(inputs);
}

std::vector<bool> Evaluator::evaluate(std::span<const bool> inputs) const {
  check_width(static_cast<int>(inputs.size()), num_inputs(), "evaluate");
  return do_evaluate(std::vector<bool>(inputs.begin(), inputs.end()));
}

logic::PatternBatch Evaluator::evaluate_batch(
    const logic::PatternBatch& inputs) const {
  check_width(inputs.num_signals(), num_inputs(), "evaluate_batch");
  return do_evaluate_batch(inputs);
}

logic::PatternBatch Evaluator::evaluate_batch(const logic::PatternBatch& inputs,
                                              ThreadPool& pool) const {
  check_width(inputs.num_signals(), num_inputs(), "evaluate_batch");
  const std::uint64_t words = inputs.words_per_lane();
  // Below ~8 words (512 patterns) per worker the shard copies and the
  // wakeup cost dominate; fall through to the sequential kernel.
  constexpr std::uint64_t kMinWordsPerShard = 8;
  if (pool.num_workers() <= 1 || words < 2 * kMinWordsPerShard) {
    return do_evaluate_batch(inputs);
  }
  logic::PatternBatch out(num_outputs(), inputs.num_patterns());
  pool.parallel_for(
      0, words, kMinWordsPerShard,
      [&](std::uint64_t word_lo, std::uint64_t word_hi) {
        const std::uint64_t first = word_lo * 64;
        const std::uint64_t count =
            std::min(inputs.num_patterns(), word_hi * 64) - first;
        // Shards write disjoint word ranges of `out`, so the pastes
        // need no synchronization beyond parallel_for's own join.
        out.paste(do_evaluate_batch(inputs.slice(first, count)), first);
      });
  return out;
}

logic::TruthTable exhaustive_truth_table(const Evaluator& e) {
  check(e.num_inputs() <= logic::TruthTable::kMaxInputs,
        "exhaustive_truth_table: too many inputs");
  return logic::TruthTable::from_outputs(
      e.num_inputs(),
      e.evaluate_batch(logic::PatternBatch::exhaustive(e.num_inputs())));
}

logic::TruthTable exhaustive_truth_table(const Evaluator& e, ThreadPool& pool) {
  check(e.num_inputs() <= logic::TruthTable::kMaxInputs,
        "exhaustive_truth_table: too many inputs");
  return logic::TruthTable::from_outputs(
      e.num_inputs(),
      e.evaluate_batch(logic::PatternBatch::exhaustive(e.num_inputs()), pool));
}

bool equivalent(const Evaluator& e, const logic::TruthTable& table) {
  if (e.num_inputs() != table.num_inputs() ||
      e.num_outputs() != table.num_outputs()) {
    return false;
  }
  return exhaustive_truth_table(e) == table;
}

bool equivalent(const Evaluator& a, const Evaluator& b) {
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    return false;
  }
  return exhaustive_truth_table(a) == exhaustive_truth_table(b);
}

}  // namespace ambit
