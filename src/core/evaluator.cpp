#include "core/evaluator.h"

#include <algorithm>
#include <string>

#include "util/check.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace ambit {

namespace {

/// The single, uniform width error raised at the Evaluator boundary.
void check_width(int got, int expected, const char* entry) {
  if (got != expected) {
    throw Error(std::string("Evaluator::") + entry +
                ": input width mismatch (got " + std::to_string(got) +
                ", expected " + std::to_string(expected) + ")");
  }
}

}  // namespace

std::vector<bool> Evaluator::evaluate(const std::vector<bool>& inputs) const {
  check_width(static_cast<int>(inputs.size()), num_inputs(), "evaluate");
  std::vector<bool> out = do_evaluate(inputs);
  AMBIT_CHECK(static_cast<int>(out.size()) == num_outputs(),
              "Evaluator::evaluate: kernel produced " +
                  std::to_string(out.size()) + " outputs, contract says " +
                  std::to_string(num_outputs()));
  return out;
}

std::vector<bool> Evaluator::evaluate(std::span<const bool> inputs) const {
  check_width(static_cast<int>(inputs.size()), num_inputs(), "evaluate");
  return do_evaluate(std::vector<bool>(inputs.begin(), inputs.end()));
}

namespace {

/// The batch half of the width contract, enforced on every kernel
/// result: output lane count and pattern count must match, and the tail
/// padding must be clean (a kernel leaving stray bits there would break
/// the bit-locality consumers — sharded pastes and the serve
/// coalescer's bit-packed fusion).
void check_batch_contract(const Evaluator& e, const logic::PatternBatch& in,
                          const logic::PatternBatch& out) {
  AMBIT_CHECK(out.num_signals() == e.num_outputs(),
              "Evaluator::evaluate_batch: kernel produced " +
                  std::to_string(out.num_signals()) +
                  " output lanes, contract says " +
                  std::to_string(e.num_outputs()));
  AMBIT_CHECK(out.num_patterns() == in.num_patterns(),
              "Evaluator::evaluate_batch: kernel changed the pattern count");
  out.assert_tail_clean("Evaluator::evaluate_batch (kernel result)");
}

}  // namespace

logic::PatternBatch Evaluator::evaluate_batch(
    const logic::PatternBatch& inputs) const {
  check_width(inputs.num_signals(), num_inputs(), "evaluate_batch");
  logic::PatternBatch out = do_evaluate_batch(inputs);
  check_batch_contract(*this, inputs, out);
  return out;
}

logic::PatternBatch Evaluator::evaluate_batch(const logic::PatternBatch& inputs,
                                              ThreadPool& pool) const {
  check_width(inputs.num_signals(), num_inputs(), "evaluate_batch");
  const std::uint64_t words = inputs.words_per_lane();
  // Below ~8 words (512 patterns) per worker the shard copies and the
  // wakeup cost dominate; fall through to the sequential kernel.
  constexpr std::uint64_t kMinWordsPerShard = 8;
  if (pool.num_workers() <= 1 || words < 2 * kMinWordsPerShard) {
    return do_evaluate_batch(inputs);
  }
  logic::PatternBatch out(num_outputs(), inputs.num_patterns());
  pool.parallel_for(
      0, words, kMinWordsPerShard,
      [&](std::uint64_t word_lo, std::uint64_t word_hi) {
        const std::uint64_t first = word_lo * 64;
        const std::uint64_t count =
            std::min(inputs.num_patterns(), word_hi * 64) - first;
        // The shard boundary contract: every shard starts on a word
        // boundary and stays inside the batch — this is what makes the
        // slice/paste pair below word-wise and the sharded sweep
        // bit-identical to the sequential one.
        AMBIT_CHECK(first % 64 == 0 && count > 0 &&
                        first + count <= inputs.num_patterns(),
                    "Evaluator::evaluate_batch: shard [" +
                        std::to_string(word_lo) + ", " +
                        std::to_string(word_hi) +
                        ") violates the word-aligned shard contract");
        // Shards write disjoint word ranges of `out`, so the pastes
        // need no synchronization beyond parallel_for's own join.
        const logic::PatternBatch shard_in = inputs.slice(first, count);
        logic::PatternBatch shard_out = do_evaluate_batch(shard_in);
        check_batch_contract(*this, shard_in, shard_out);
        out.paste(shard_out, first);
      });
  return out;
}

logic::TruthTable exhaustive_truth_table(const Evaluator& e) {
  check(e.num_inputs() <= logic::TruthTable::kMaxInputs,
        "exhaustive_truth_table: too many inputs");
  return logic::TruthTable::from_outputs(
      e.num_inputs(),
      e.evaluate_batch(logic::PatternBatch::exhaustive(e.num_inputs())));
}

logic::TruthTable exhaustive_truth_table(const Evaluator& e, ThreadPool& pool) {
  check(e.num_inputs() <= logic::TruthTable::kMaxInputs,
        "exhaustive_truth_table: too many inputs");
  return logic::TruthTable::from_outputs(
      e.num_inputs(),
      e.evaluate_batch(logic::PatternBatch::exhaustive(e.num_inputs()), pool));
}

bool equivalent(const Evaluator& e, const logic::TruthTable& table) {
  if (e.num_inputs() != table.num_inputs() ||
      e.num_outputs() != table.num_outputs()) {
    return false;
  }
  return exhaustive_truth_table(e) == table;
}

bool equivalent(const Evaluator& a, const Evaluator& b) {
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    return false;
  }
  return exhaustive_truth_table(a) == exhaustive_truth_table(b);
}

}  // namespace ambit
