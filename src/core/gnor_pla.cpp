#include "core/gnor_pla.h"

#include "util/error.h"

namespace ambit::core {

using logic::Cover;
using logic::Literal;

GnorPla::GnorPla(int num_inputs, int num_products, int num_outputs)
    : plane1_(num_products, num_inputs),
      plane2_(num_outputs, num_products),
      buffer_inverted_(static_cast<std::size_t>(num_outputs), true) {}

GnorPla GnorPla::map_cover(const Cover& cover,
                           const std::vector<bool>& complemented) {
  check(complemented.empty() ||
            static_cast<int>(complemented.size()) == cover.num_outputs(),
        "GnorPla::map_cover: phase vector arity mismatch");
  GnorPla pla(cover.num_inputs(), static_cast<int>(cover.size()),
              cover.num_outputs());

  for (int k = 0; k < static_cast<int>(cover.size()); ++k) {
    const auto& cube = cover[static_cast<std::size_t>(k)];
    for (int i = 0; i < cover.num_inputs(); ++i) {
      switch (cube.input(i)) {
        case Literal::kOne:
          // P needs x̄ inside the NOR -> p-type cell inverts.
          pla.plane1_.set_cell(k, i, CellConfig::kInvert);
          break;
        case Literal::kZero:
          pla.plane1_.set_cell(k, i, CellConfig::kPass);
          break;
        default:
          pla.plane1_.set_cell(k, i, CellConfig::kOff);
          break;
      }
    }
    for (int o = 0; o < cover.num_outputs(); ++o) {
      if (cube.output(o)) {
        pla.plane2_.set_cell(o, k, CellConfig::kPass);
      }
    }
  }
  for (int o = 0; o < cover.num_outputs(); ++o) {
    const bool phase_complemented =
        !complemented.empty() && complemented[static_cast<std::size_t>(o)];
    // Plane-2 row carries ¬g_o (g = the cover's function for o). The
    // inverting tap restores g; if the cover implements f̄ (complemented
    // phase), the non-inverting tap yields f directly.
    pla.buffer_inverted_[static_cast<std::size_t>(o)] = !phase_complemented;
  }
  return pla;
}

bool GnorPla::buffer_inverted(int output) const {
  check(output >= 0 && output < num_outputs(),
        "GnorPla::buffer_inverted: index out of range");
  return buffer_inverted_[static_cast<std::size_t>(output)];
}

void GnorPla::set_buffer_inverted(int output, bool inverted) {
  check(output >= 0 && output < num_outputs(),
        "GnorPla::set_buffer_inverted: index out of range");
  buffer_inverted_[static_cast<std::size_t>(output)] = inverted;
}

std::vector<bool> GnorPla::evaluate_products(
    const std::vector<bool>& inputs) const {
  return plane1_.evaluate(inputs);
}

std::vector<bool> GnorPla::do_evaluate(const std::vector<bool>& inputs) const {
  const std::vector<bool> products = plane1_.evaluate(inputs);
  std::vector<bool> rows = plane2_.evaluate(products);
  for (int o = 0; o < num_outputs(); ++o) {
    if (buffer_inverted_[static_cast<std::size_t>(o)]) {
      rows[static_cast<std::size_t>(o)] = !rows[static_cast<std::size_t>(o)];
    }
  }
  return rows;
}

logic::PatternBatch GnorPla::do_evaluate_batch(
    const logic::PatternBatch& inputs) const {
  const logic::PatternBatch products = plane1_.evaluate_batch(inputs);
  logic::PatternBatch rows = plane2_.evaluate_batch(products);
  for (int o = 0; o < num_outputs(); ++o) {
    if (buffer_inverted_[static_cast<std::size_t>(o)]) {
      rows.complement_lane(o);
    }
  }
  return rows;
}

tech::PlaDimensions GnorPla::dimensions() const {
  return tech::PlaDimensions{.inputs = num_inputs(),
                             .outputs = num_outputs(),
                             .products = num_products()};
}

long long GnorPla::cell_count() const {
  return plane1_.cell_count() + plane2_.cell_count();
}

long long GnorPla::active_cells() const {
  return plane1_.active_cells() + plane2_.active_cells();
}

std::string GnorPla::to_ascii() const {
  std::string art = "product plane (rows=products, cols=inputs):\n";
  art += plane1_.to_ascii();
  art += "output plane (rows=outputs, cols=products):\n";
  art += plane2_.to_ascii();
  return art;
}

}  // namespace ambit::core
