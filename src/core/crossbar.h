// Programmable interconnect crossbar from ambipolar CNFETs (paper §4).
//
// "A compact interconnect array can be realized by using ambipolar
//  CNFET: every crosspoint connects a horizontal and a vertical wire
//  through a CNFET working as a pass transistor. All CG voltages are
//  set at the same high level. If the PG of the CNFET is set to V+,
//  then the polarity of the CNFET is n [and] the wires are connected.
//  If the PG … is set to V0, then the device is switched off and the
//  wires are disconnected."
//
// The model exposes switch programming, connectivity queries
// (union-find over the wire graph), signal propagation, and a
// switch-hop distance used for interconnect delay estimates.
#pragma once

#include <optional>
#include <vector>

#include "tech/technology.h"

namespace ambit::core {

/// A horizontal×vertical pass-transistor switch matrix.
class Crossbar {
 public:
  Crossbar(int num_horizontal, int num_vertical);

  int num_horizontal() const { return num_h_; }
  int num_vertical() const { return num_v_; }

  /// Wire ids: horizontal wires are [0, H), vertical wires [H, H+V).
  int horizontal_wire(int h) const;
  int vertical_wire(int v) const;
  int num_wires() const { return num_h_ + num_v_; }

  bool switch_on(int h, int v) const;
  void set_switch(int h, int v, bool on);

  /// True when the two wires are electrically connected through any
  /// chain of closed switches.
  bool connected(int wire_a, int wire_b) const;

  /// Connected-component label per wire (labels are the smallest wire
  /// id in each component).
  std::vector<int> components() const;

  /// Drives `driver_wire` with `value`; returns the logic value seen by
  /// every wire (nullopt = floating / not connected to the driver).
  std::vector<std::optional<bool>> propagate(int driver_wire,
                                             bool value) const;

  /// Fewest closed switches between two wires (series pass-transistor
  /// count), or -1 when unconnected. BFS over the wire graph.
  int path_switch_count(int wire_a, int wire_b) const;

  /// Series resistance of the best path [Ω], or +inf when unconnected.
  double path_resistance_ohm(int wire_a, int wire_b,
                             const tech::CnfetElectrical& e) const;

  /// Total crosspoints (= programmable cells).
  long long cell_count() const {
    return static_cast<long long>(num_h_) * num_v_;
  }

  /// Closed switches.
  int active_switches() const;

 private:
  int num_h_;
  int num_v_;
  std::vector<bool> on_;  // h-major

  std::size_t index(int h, int v) const;
  std::vector<std::vector<int>> adjacency() const;
};

}  // namespace ambit::core
