#include "core/programmer.h"

#include "util/error.h"

namespace ambit::core {

PlaneProgrammer::PlaneProgrammer(int rows, int cols,
                                 const tech::CnfetElectrical& e)
    : rows_(rows),
      cols_(cols),
      electrical_(e),
      charges_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               e.v_polarity_off) {
  check(rows >= 0 && cols >= 0, "PlaneProgrammer: negative dimensions");
}

std::size_t PlaneProgrammer::index(int row, int col) const {
  check(row >= 0 && row < rows_ && col >= 0 && col < cols_,
        "PlaneProgrammer: cell index out of range");
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(col);
}

std::vector<ProgramPulse> PlaneProgrammer::compile(
    const GnorPlane& target, const tech::CnfetElectrical& e) {
  std::vector<ProgramPulse> pulses;
  for (int r = 0; r < target.rows(); ++r) {
    for (int c = 0; c < target.cols(); ++c) {
      const CellConfig config = target.cell(r, c);
      if (config == CellConfig::kOff) {
        continue;  // blank cells already rest at V0
      }
      pulses.push_back(
          ProgramPulse{.row = r, .col = c, .vpg = pg_voltage_of(config, e)});
    }
  }
  return pulses;
}

void PlaneProgrammer::apply(const ProgramPulse& pulse) {
  charges_[index(pulse.row, pulse.col)] = pulse.vpg;
}

void PlaneProgrammer::apply_all(const std::vector<ProgramPulse>& pulses) {
  for (const ProgramPulse& pulse : pulses) {
    apply(pulse);
  }
}

double PlaneProgrammer::charge(int row, int col) const {
  return charges_[index(row, col)];
}

void PlaneProgrammer::set_charge(int row, int col, double vpg) {
  charges_[index(row, col)] = vpg;
}

void PlaneProgrammer::leak_toward(double v_rest, double fraction) {
  check(fraction >= 0 && fraction <= 1, "leak_toward: fraction out of [0,1]");
  for (double& v : charges_) {
    v += (v_rest - v) * fraction;
  }
}

GnorPlane PlaneProgrammer::decode(double off_band_v) const {
  GnorPlane plane(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const PolarityState state =
          polarity_from_pg(charges_[index(r, c)], electrical_, off_band_v);
      CellConfig config = CellConfig::kOff;
      switch (state) {
        case PolarityState::kNType: config = CellConfig::kPass; break;
        case PolarityState::kPType: config = CellConfig::kInvert; break;
        case PolarityState::kOff: config = CellConfig::kOff; break;
      }
      plane.set_cell(r, c, config);
    }
  }
  return plane;
}

}  // namespace ambit::core
