// Two-plane GNOR PLA: the paper's core architecture (§4, Fig. 3–4).
//
// Plane 1 (product plane, products × inputs): row k implements product
// term P_k. A positive literal x becomes a p-type cell (the NOR needs
// x̄: P = x·ȳ = NOR(x̄, y)), a negative literal an n-type cell, an
// absent variable V0. Because the inversion happens inside the cell,
// ONE column per input suffices — the source of the area saving over
// classical PLAs, which replicate every input column.
//
// Plane 2 (output plane, outputs × products): row o computes
// NOR of the selected (optionally re-inverted) product lines. With
// pass-polarity selections the row carries ¬(P_a ∨ P_b ∨ …); the
// peripheral output buffer (not a programmable cell, present in every
// dynamic PLA) restores the polarity. Its tap choice encodes the output
// phase: a Sasao-complemented output simply taps the other polarity —
// "the availability of the product-terms with both polarities".
//
// Cell count = (inputs + outputs) · products, matching Table 1.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/gnor_plane.h"
#include "logic/cover.h"
#include "tech/area_model.h"

namespace ambit::core {

/// A programmable two-plane GNOR PLA plus per-output buffer taps.
class GnorPla : public Evaluator {
 public:
  GnorPla(int num_inputs, int num_products, int num_outputs);

  /// Maps a minimized cover onto the array. `complemented[o]` declares
  /// that the cover's output o implements f̄_o (phase-optimized); the
  /// mapper compensates through the buffer tap so that evaluate()
  /// always returns the POSITIVE-phase function f. Pass an empty
  /// vector for all-positive phases.
  static GnorPla map_cover(const logic::Cover& cover,
                           const std::vector<bool>& complemented = {});

  int num_inputs() const override { return plane1_.cols(); }
  int num_products() const { return plane1_.rows(); }
  int num_outputs() const override { return plane2_.rows(); }

  const GnorPlane& product_plane() const { return plane1_; }
  const GnorPlane& output_plane() const { return plane2_; }
  GnorPlane& product_plane() { return plane1_; }
  GnorPlane& output_plane() { return plane2_; }

  /// Output buffer tap: true = inverting (the common case for a
  /// positive-phase SOP on a NOR-NOR array).
  bool buffer_inverted(int output) const;
  void set_buffer_inverted(int output, bool inverted);

  /// Product-line values before plane 2 (useful for tests/inspection).
  std::vector<bool> evaluate_products(const std::vector<bool>& inputs) const;

  /// (inputs, outputs, products) for the area/delay models.
  tech::PlaDimensions dimensions() const;

  /// Total programmable cells = (inputs + outputs) · products.
  long long cell_count() const;

  /// Cells actually configured (non-off). 64-bit like cell_count().
  long long active_cells() const;

  /// ASCII rendering of both planes.
  std::string to_ascii() const;

 protected:
  /// Full functional evaluation: inputs -> outputs (after buffers).
  std::vector<bool> do_evaluate(const std::vector<bool>& inputs) const override;
  logic::PatternBatch do_evaluate_batch(
      const logic::PatternBatch& inputs) const override;

 private:
  GnorPlane plane1_;  // products × inputs
  GnorPlane plane2_;  // outputs × products
  std::vector<bool> buffer_inverted_;
};

}  // namespace ambit::core
