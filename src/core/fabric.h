// Interleaved PLA / interconnect fabric (paper §4, Fig. 3).
//
// "Interleaving PLA and interconnects enables cascades of NOR planes
//  and realizes any logic function."
//
// A Fabric is a pipeline of stages. Each stage routes the current
// signal bus through an ambipolar-CNFET crossbar onto the input columns
// of a GNOR plane; the plane's row outputs (optionally concatenated
// with the incoming bus, modelling feed-through tracks) become the next
// bus. Two stages with identity routing reproduce a PLA; four stages
// reproduce the Whirlpool-PLA NOR-NOR-NOR-NOR structure (§5).
#pragma once

#include <vector>

#include "core/crossbar.h"
#include "core/evaluator.h"
#include "core/gnor_plane.h"

namespace ambit::core {

/// One routing + plane stage of the fabric.
struct FabricStage {
  /// Horizontal wires = incoming bus signals; vertical wires = plane
  /// input columns. Each plane column must be driven by at most one
  /// closed switch; undriven columns read as logic low (the fabric
  /// ties floating columns to ground through a weak keeper).
  Crossbar routing;
  /// rows = stage outputs, cols = plane inputs.
  GnorPlane plane;
  /// When true the incoming bus is carried past the plane, so the next
  /// stage sees [bus … plane outputs]; when false only the plane
  /// outputs continue.
  bool feed_through = false;

  FabricStage(Crossbar r, GnorPlane p, bool feed = false)
      : routing(std::move(r)), plane(std::move(p)), feed_through(feed) {}
};

/// A cascade of GNOR planes and crossbars evaluated functionally.
class Fabric : public Evaluator {
 public:
  explicit Fabric(int primary_inputs);

  /// Appends a stage; validates that the routing matches the current
  /// bus width and the plane's column count, and that no plane column
  /// has multiple drivers.
  void add_stage(FabricStage stage);

  int num_primary_inputs() const { return primary_inputs_; }
  int num_stages() const { return static_cast<int>(stages_.size()); }

  /// Bus width after the last stage (= width of evaluate()'s result).
  int bus_width() const;

  int num_inputs() const override { return primary_inputs_; }
  int num_outputs() const override { return bus_width(); }

  const FabricStage& stage(int i) const;

  /// Total programmable cells (plane cells + crossbar crosspoints).
  long long cell_count() const;

  /// Builds the identity routing crossbar for `bus` signals onto a
  /// plane with `columns` inputs (bus signal i drives column i; extra
  /// columns stay undriven).
  static Crossbar identity_routing(int bus, int columns);

 protected:
  /// Evaluates the full cascade.
  std::vector<bool> do_evaluate(const std::vector<bool>& inputs) const override;
  logic::PatternBatch do_evaluate_batch(
      const logic::PatternBatch& inputs) const override;

 private:
  int primary_inputs_;
  std::vector<FabricStage> stages_;
};

}  // namespace ambit::core
