// Behavioural model of the ambipolar carbon-nanotube FET (paper §2).
//
// The device (Lin et al., IEDM'04; self-aligned double-gate variant per
// Javey et al., Nano Letters 2004) has two gates over the nanotube
// channel:
//
//   * the CONTROL gate (CG, region A) turns the device on or off, like
//     an ordinary MOSFET gate;
//   * the POLARITY gate (PG, region B) selects carrier type by thinning
//     the Schottky barrier: PG = V+ (high) -> n-type, PG = V− (low) ->
//     p-type, PG = V0 = VDD/2 -> "the conduction is poor and the device
//     is always off".
//
// Two abstraction levels are provided:
//   1. a discrete switch model (PolarityState + conducts()) used by the
//      GNOR/PLA/crossbar logic and the switch-level simulator;
//   2. an analytic ambipolar I–V (drain_current()) reproducing the
//      V-shaped transfer characteristic with its conduction minimum at
//      V0, used by the Fig. 1 characterization bench.
#pragma once

#include "tech/technology.h"

namespace ambit::core {

/// Discrete polarity states programmed through the PG.
enum class PolarityState {
  kNType,  ///< PG = V+: conducts when the CG input is high
  kPType,  ///< PG = V−: conducts when the CG input is low
  kOff,    ///< PG = V0: never conducts
};

/// Human-readable name ("n", "p", "off").
const char* to_string(PolarityState state);

/// Quantizes a polarity-gate voltage into the discrete state. The off
/// band is centred on V0 with width `off_band_v` (symmetric): charge
/// leakage that drifts a PG voltage into the band disables the device,
/// which is how the defect model represents retention faults.
PolarityState polarity_from_pg(double vpg, const tech::CnfetElectrical& e,
                               double off_band_v = 0.6);

/// Switch-level conduction: does a device in `state` conduct when its
/// control-gate input is `gate_high`?
bool conducts(PolarityState state, bool gate_high);

/// Analytic ambipolar transfer current I_D(VCG, VPG) [A].
///
/// Two smooth branches — electron conduction rising toward PG = V+ and
/// hole conduction rising toward PG = V− — summed with the off-floor.
/// The CG gates each branch with the matching polarity (n-branch needs
/// CG high, p-branch CG low). Behavioural: reproduces the shape and the
/// on/off ratio, not calibrated silicon data.
double drain_current(double vcg, double vpg, const tech::CnfetElectrical& e);

/// Static description of one ambipolar CNFET instance in a netlist:
/// its programmed polarity plus electrical size factors.
struct AmbipolarCnfet {
  PolarityState polarity = PolarityState::kOff;
  double width_factor = 1.0;  ///< parallel-tube multiplier (scales 1/R, C)

  /// Effective on-resistance [Ω].
  double r_on(const tech::CnfetElectrical& e) const {
    return e.r_on_ohm / width_factor;
  }
  /// Drain capacitance contribution [F].
  double c_drain(const tech::CnfetElectrical& e) const {
    return e.c_cell_f * width_factor;
  }
};

}  // namespace ambit::core
