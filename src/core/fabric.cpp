#include "core/fabric.h"

#include "util/error.h"

namespace ambit::core {

Fabric::Fabric(int primary_inputs) : primary_inputs_(primary_inputs) {
  check(primary_inputs >= 0, "Fabric: negative input count");
}

int Fabric::bus_width() const {
  int width = primary_inputs_;
  for (const FabricStage& s : stages_) {
    width = (s.feed_through ? width : 0) + s.plane.rows();
  }
  return width;
}

const FabricStage& Fabric::stage(int i) const {
  check(i >= 0 && i < num_stages(), "Fabric::stage: index out of range");
  return stages_[static_cast<std::size_t>(i)];
}

void Fabric::add_stage(FabricStage stage) {
  check(stage.routing.num_horizontal() == bus_width(),
        "Fabric::add_stage: routing width does not match current bus");
  check(stage.routing.num_vertical() == stage.plane.cols(),
        "Fabric::add_stage: routing does not match plane columns");
  for (int v = 0; v < stage.routing.num_vertical(); ++v) {
    int drivers = 0;
    for (int h = 0; h < stage.routing.num_horizontal(); ++h) {
      drivers += stage.routing.switch_on(h, v);
    }
    check(drivers <= 1, "Fabric::add_stage: plane column has multiple drivers");
  }
  stages_.push_back(std::move(stage));
}

std::vector<bool> Fabric::do_evaluate(const std::vector<bool>& inputs) const {
  std::vector<bool> bus = inputs;
  for (const FabricStage& s : stages_) {
    std::vector<bool> plane_inputs(static_cast<std::size_t>(s.plane.cols()),
                                   false);
    for (int v = 0; v < s.routing.num_vertical(); ++v) {
      for (int h = 0; h < s.routing.num_horizontal(); ++h) {
        if (s.routing.switch_on(h, v)) {
          plane_inputs[static_cast<std::size_t>(v)] =
              bus[static_cast<std::size_t>(h)];
          break;  // at most one driver (validated in add_stage)
        }
      }
    }
    const std::vector<bool> outputs = s.plane.evaluate(plane_inputs);
    if (s.feed_through) {
      bus.insert(bus.end(), outputs.begin(), outputs.end());
    } else {
      bus = outputs;
    }
  }
  return bus;
}

logic::PatternBatch Fabric::do_evaluate_batch(
    const logic::PatternBatch& inputs) const {
  logic::PatternBatch bus = inputs;
  for (const FabricStage& s : stages_) {
    // Route the bus lanes onto the plane columns; undriven columns keep
    // their all-zero lane (weak keeper ties them low).
    logic::PatternBatch plane_inputs(s.plane.cols(), inputs.num_patterns());
    for (int v = 0; v < s.routing.num_vertical(); ++v) {
      for (int h = 0; h < s.routing.num_horizontal(); ++h) {
        if (s.routing.switch_on(h, v)) {
          plane_inputs.copy_lane_from(bus, h, v);
          break;  // at most one driver (validated in add_stage)
        }
      }
    }
    logic::PatternBatch outputs = s.plane.evaluate_batch(plane_inputs);
    if (s.feed_through) {
      logic::PatternBatch widened(bus.num_signals() + outputs.num_signals(),
                                  inputs.num_patterns());
      for (int i = 0; i < bus.num_signals(); ++i) {
        widened.copy_lane_from(bus, i, i);
      }
      for (int j = 0; j < outputs.num_signals(); ++j) {
        widened.copy_lane_from(outputs, j, bus.num_signals() + j);
      }
      bus = std::move(widened);
    } else {
      bus = std::move(outputs);
    }
  }
  return bus;
}

long long Fabric::cell_count() const {
  long long cells = 0;
  for (const FabricStage& s : stages_) {
    cells += s.plane.cell_count() + s.routing.cell_count();
  }
  return cells;
}

Crossbar Fabric::identity_routing(int bus, int columns) {
  Crossbar xb(bus, columns);
  const int n = bus < columns ? bus : columns;
  for (int i = 0; i < n; ++i) {
    xb.set_switch(i, i, true);
  }
  return xb;
}

}  // namespace ambit::core
