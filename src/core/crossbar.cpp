#include "core/crossbar.h"

#include <limits>
#include <queue>

#include "util/error.h"

namespace ambit::core {

Crossbar::Crossbar(int num_horizontal, int num_vertical)
    : num_h_(num_horizontal),
      num_v_(num_vertical),
      on_(static_cast<std::size_t>(num_horizontal) *
              static_cast<std::size_t>(num_vertical),
          false) {
  check(num_horizontal >= 0 && num_vertical >= 0,
        "Crossbar: negative dimensions");
}

int Crossbar::horizontal_wire(int h) const {
  check(h >= 0 && h < num_h_, "Crossbar: horizontal wire out of range");
  return h;
}

int Crossbar::vertical_wire(int v) const {
  check(v >= 0 && v < num_v_, "Crossbar: vertical wire out of range");
  return num_h_ + v;
}

std::size_t Crossbar::index(int h, int v) const {
  check(h >= 0 && h < num_h_ && v >= 0 && v < num_v_,
        "Crossbar: switch index out of range");
  return static_cast<std::size_t>(h) * static_cast<std::size_t>(num_v_) +
         static_cast<std::size_t>(v);
}

bool Crossbar::switch_on(int h, int v) const { return on_[index(h, v)]; }

void Crossbar::set_switch(int h, int v, bool on) { on_[index(h, v)] = on; }

std::vector<std::vector<int>> Crossbar::adjacency() const {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_wires()));
  for (int h = 0; h < num_h_; ++h) {
    for (int v = 0; v < num_v_; ++v) {
      if (on_[index(h, v)]) {
        adj[static_cast<std::size_t>(h)].push_back(num_h_ + v);
        adj[static_cast<std::size_t>(num_h_ + v)].push_back(h);
      }
    }
  }
  return adj;
}

bool Crossbar::connected(int wire_a, int wire_b) const {
  return path_switch_count(wire_a, wire_b) >= 0;
}

std::vector<int> Crossbar::components() const {
  const auto adj = adjacency();
  std::vector<int> label(static_cast<std::size_t>(num_wires()), -1);
  for (int start = 0; start < num_wires(); ++start) {
    if (label[static_cast<std::size_t>(start)] >= 0) {
      continue;
    }
    std::queue<int> frontier;
    frontier.push(start);
    label[static_cast<std::size_t>(start)] = start;
    while (!frontier.empty()) {
      const int w = frontier.front();
      frontier.pop();
      for (const int next : adj[static_cast<std::size_t>(w)]) {
        if (label[static_cast<std::size_t>(next)] < 0) {
          label[static_cast<std::size_t>(next)] = start;
          frontier.push(next);
        }
      }
    }
  }
  return label;
}

std::vector<std::optional<bool>> Crossbar::propagate(int driver_wire,
                                                     bool value) const {
  check(driver_wire >= 0 && driver_wire < num_wires(),
        "Crossbar::propagate: wire out of range");
  const auto labels = components();
  const int driver_label = labels[static_cast<std::size_t>(driver_wire)];
  std::vector<std::optional<bool>> seen(
      static_cast<std::size_t>(num_wires()));
  for (int w = 0; w < num_wires(); ++w) {
    if (labels[static_cast<std::size_t>(w)] == driver_label) {
      seen[static_cast<std::size_t>(w)] = value;
    }
  }
  return seen;
}

int Crossbar::path_switch_count(int wire_a, int wire_b) const {
  check(wire_a >= 0 && wire_a < num_wires() && wire_b >= 0 &&
            wire_b < num_wires(),
        "Crossbar: wire out of range");
  if (wire_a == wire_b) {
    return 0;
  }
  const auto adj = adjacency();
  std::vector<int> dist(static_cast<std::size_t>(num_wires()), -1);
  std::queue<int> frontier;
  dist[static_cast<std::size_t>(wire_a)] = 0;
  frontier.push(wire_a);
  while (!frontier.empty()) {
    const int w = frontier.front();
    frontier.pop();
    for (const int next : adj[static_cast<std::size_t>(w)]) {
      if (dist[static_cast<std::size_t>(next)] < 0) {
        dist[static_cast<std::size_t>(next)] =
            dist[static_cast<std::size_t>(w)] + 1;
        if (next == wire_b) {
          return dist[static_cast<std::size_t>(next)];
        }
        frontier.push(next);
      }
    }
  }
  return -1;
}

double Crossbar::path_resistance_ohm(int wire_a, int wire_b,
                                     const tech::CnfetElectrical& e) const {
  const int hops = path_switch_count(wire_a, wire_b);
  if (hops < 0) {
    return std::numeric_limits<double>::infinity();
  }
  return hops * e.r_on_ohm;
}

int Crossbar::active_switches() const {
  int count = 0;
  for (const bool b : on_) {
    count += b;
  }
  return count;
}

}  // namespace ambit::core
