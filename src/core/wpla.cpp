#include "core/wpla.h"

#include <algorithm>
#include <set>

#include "espresso/espresso.h"
#include "logic/truth_table.h"
#include "util/error.h"

namespace ambit::core {

using logic::Cover;
using logic::Cube;
using logic::Literal;

Wpla::Wpla(const Cover& stage_a, const Cover& stage_b, int primary_inputs)
    : primary_inputs_(primary_inputs),
      stage_a_(GnorPla::map_cover(stage_a)),
      stage_b_(GnorPla::map_cover(stage_b)) {
  check(stage_a.num_inputs() == primary_inputs,
        "Wpla: stage A must read the primary inputs");
  check(stage_b.num_inputs() == primary_inputs + stage_a.num_outputs(),
        "Wpla: stage B must read primary inputs + intermediates");
}

std::vector<bool> Wpla::do_evaluate(const std::vector<bool>& inputs) const {
  const std::vector<bool> g = stage_a_.evaluate(inputs);
  std::vector<bool> extended = inputs;
  extended.insert(extended.end(), g.begin(), g.end());
  return stage_b_.evaluate(extended);
}

logic::PatternBatch Wpla::do_evaluate_batch(
    const logic::PatternBatch& inputs) const {
  const logic::PatternBatch g = stage_a_.evaluate_batch(inputs);
  // Stage B reads [primary inputs … intermediates] (the primary inputs
  // ride through on feed-through tracks).
  logic::PatternBatch extended(primary_inputs_ + g.num_signals(),
                               inputs.num_patterns());
  for (int i = 0; i < primary_inputs_; ++i) {
    extended.copy_lane_from(inputs, i, i);
  }
  for (int j = 0; j < g.num_signals(); ++j) {
    extended.copy_lane_from(g, j, primary_inputs_ + j);
  }
  return stage_b_.evaluate_batch(extended);
}

long long Wpla::cell_count() const {
  return stage_a_.cell_count() + stage_b_.cell_count();
}

WplaSynthesis synthesize_wpla(const Cover& onset) {
  const int ni = onset.num_inputs();
  const int no = onset.num_outputs();
  WplaSynthesis result;

  // Planes are sized to the signals actually routed into them (the
  // Fig. 3 crossbars deliver only used columns), so cell accounting
  // counts USED input columns, not the nominal input count.
  const auto used_inputs = [](const Cover& c) {
    int used = 0;
    for (int i = 0; i < c.num_inputs(); ++i) {
      const auto occ = c.var_occurrence(i);
      used += (occ.zeros + occ.ones) > 0;
    }
    return used;
  };

  const Cover flat = espresso::minimize(onset).cover;
  const int p0 = static_cast<int>(flat.size());
  result.flat_cells = static_cast<long long>(used_inputs(flat) + no) * p0;

  // Product sets per output (indices into `flat`).
  std::vector<std::set<int>> products_of(static_cast<std::size_t>(no));
  for (int k = 0; k < p0; ++k) {
    for (int j = 0; j < no; ++j) {
      if (flat[static_cast<std::size_t>(k)].output(j)) {
        products_of[static_cast<std::size_t>(j)].insert(k);
      }
    }
  }

  // Candidate divisors: g whose product set is contained in some other
  // output's set (then f = g OR remainder) and has >= 2 products.
  const auto divides = [&](int g, int f) {
    return g != f && products_of[static_cast<std::size_t>(g)].size() >= 2 &&
           !products_of[static_cast<std::size_t>(g)].empty() &&
           std::includes(products_of[static_cast<std::size_t>(f)].begin(),
                         products_of[static_cast<std::size_t>(f)].end(),
                         products_of[static_cast<std::size_t>(g)].begin(),
                         products_of[static_cast<std::size_t>(g)].end());
  };

  // Input columns used by a set of flat-cover products.
  const auto used_by_products = [&](const std::set<int>& products) {
    int used = 0;
    for (int i = 0; i < ni; ++i) {
      for (const int k : products) {
        const Literal lit = flat[static_cast<std::size_t>(k)].input(i);
        if (lit == Literal::kZero || lit == Literal::kOne) {
          ++used;
          break;
        }
      }
    }
    return used;
  };

  // Cell cost of a chosen intermediate set G under the file-comment
  // accounting (used columns only).
  const auto cells_for = [&](const std::vector<int>& chosen) -> long long {
    if (chosen.empty()) {
      return result.flat_cells;
    }
    std::set<int> stage_a_products;
    for (const int g : chosen) {
      stage_a_products.insert(products_of[static_cast<std::size_t>(g)].begin(),
                              products_of[static_cast<std::size_t>(g)].end());
    }
    // Remaining stage-B products: every product still needed directly.
    std::set<int> remaining;
    for (int f = 0; f < no; ++f) {
      if (std::find(chosen.begin(), chosen.end(), f) != chosen.end()) {
        continue;  // intermediate: forwarded, no direct products
      }
      std::set<int> keep = products_of[static_cast<std::size_t>(f)];
      for (const int g : chosen) {
        if (divides(g, f)) {
          for (const int k : products_of[static_cast<std::size_t>(g)]) {
            keep.erase(k);
          }
        }
      }
      remaining.insert(keep.begin(), keep.end());
    }
    const long long k = static_cast<long long>(chosen.size());
    const long long pa = static_cast<long long>(stage_a_products.size());
    const long long pb = static_cast<long long>(remaining.size()) + k;
    const long long ia = used_by_products(stage_a_products);
    const long long ib = used_by_products(remaining);
    return (ia + k) * pa + (ib + k + no) * pb;
  };

  // Greedy selection: add the divisor that lowers the cell count most.
  std::vector<int> chosen;
  long long best_cells = result.flat_cells;
  for (;;) {
    int best_g = -1;
    long long best_trial = best_cells;
    for (int g = 0; g < no; ++g) {
      if (std::find(chosen.begin(), chosen.end(), g) != chosen.end()) {
        continue;
      }
      bool useful = false;
      for (int f = 0; f < no && !useful; ++f) {
        useful = divides(g, f) &&
                 std::find(chosen.begin(), chosen.end(), f) == chosen.end();
      }
      if (!useful) {
        continue;
      }
      std::vector<int> trial = chosen;
      trial.push_back(g);
      const long long cells = cells_for(trial);
      if (cells < best_trial) {
        best_trial = cells;
        best_g = g;
      }
    }
    if (best_g < 0) {
      break;
    }
    chosen.push_back(best_g);
    best_cells = best_trial;
  }
  std::sort(chosen.begin(), chosen.end());
  result.intermediate_outputs = chosen;

  const int k = static_cast<int>(chosen.size());
  const auto g_index = [&](int output) {
    return static_cast<int>(std::find(chosen.begin(), chosen.end(), output) -
                            chosen.begin());
  };

  // --- Stage A cover: the union of divisor products over k outputs ---
  Cover stage_a(ni, std::max(k, 1));
  if (k > 0) {
    std::set<int> stage_a_products;
    for (const int g : chosen) {
      stage_a_products.insert(products_of[static_cast<std::size_t>(g)].begin(),
                              products_of[static_cast<std::size_t>(g)].end());
    }
    for (const int pk : stage_a_products) {
      Cube c(ni, k);
      for (int i = 0; i < ni; ++i) {
        c.set_input(i, flat[static_cast<std::size_t>(pk)].input(i));
      }
      for (const int g : chosen) {
        if (products_of[static_cast<std::size_t>(g)].count(pk) > 0) {
          c.set_output(g_index(g), true);
        }
      }
      stage_a.add(std::move(c));
    }
  }

  // --- Stage B cover over (primary inputs + k intermediates) ---
  const int nb = ni + std::max(k, 1);
  Cover stage_b(nb, no);
  // Direct products still needed, with their surviving output bits.
  std::set<int> remaining;
  std::vector<std::set<int>> kept_of(static_cast<std::size_t>(no));
  for (int f = 0; f < no; ++f) {
    if (std::find(chosen.begin(), chosen.end(), f) != chosen.end()) {
      continue;
    }
    std::set<int> keep = products_of[static_cast<std::size_t>(f)];
    for (const int g : chosen) {
      if (divides(g, f)) {
        for (const int pk : products_of[static_cast<std::size_t>(g)]) {
          keep.erase(pk);
        }
      }
    }
    kept_of[static_cast<std::size_t>(f)] = keep;
    remaining.insert(keep.begin(), keep.end());
  }
  for (const int pk : remaining) {
    Cube c(nb, no);
    for (int i = 0; i < ni; ++i) {
      c.set_input(i, flat[static_cast<std::size_t>(pk)].input(i));
    }
    bool used = false;
    for (int f = 0; f < no; ++f) {
      if (kept_of[static_cast<std::size_t>(f)].count(pk) > 0) {
        c.set_output(f, true);
        used = true;
      }
    }
    if (used) {
      stage_b.add(std::move(c));
    }
  }
  // One single-literal product per intermediate: feeds the forwarded
  // output g and every output it divides.
  for (const int g : chosen) {
    Cube c(nb, no);
    c.set_input(ni + g_index(g), Literal::kOne);
    c.set_output(g, true);
    for (int f = 0; f < no; ++f) {
      if (divides(g, f) &&
          std::find(chosen.begin(), chosen.end(), f) == chosen.end()) {
        c.set_output(f, true);
      }
    }
    stage_b.add(std::move(c));
  }

  // Doppio: a second Espresso pass on each stage.
  if (!stage_a.empty()) {
    stage_a = espresso::minimize(stage_a).cover;
  }
  if (!stage_b.empty()) {
    stage_b = espresso::minimize(stage_b).cover;
  }

  result.stage_a = std::move(stage_a);
  result.stage_b = std::move(stage_b);
  // Exhaustive equivalence check of the four-plane cascade against the
  // minimized flat cover, through the bit-parallel batch path. Beyond
  // 16 inputs the 2^n sweep stops being free and callers verify
  // externally.
  if (ni <= 16) {
    require(equivalent(Wpla(result.stage_a, result.stage_b, ni),
                       logic::TruthTable::from_cover(flat)),
            "synthesize_wpla: cascade not equivalent to the flat cover");
  }
  // Same used-column accounting as flat_cells (the G columns of stage
  // B are always used; count them via used_inputs over all nb inputs).
  result.wpla_cells =
      static_cast<long long>(used_inputs(result.stage_a) + std::max(k, 1)) *
          static_cast<long long>(result.stage_a.size()) +
      static_cast<long long>(used_inputs(result.stage_b) + no) *
          static_cast<long long>(result.stage_b.size());
  return result;
}

}  // namespace ambit::core
