// The unified evaluation interface for every programmable circuit type.
//
// All AMBIT circuit models (GnorPla, ClassicalPla, Wpla, Fabric — and
// the transistor-level simulator via simulate::SimEvaluator, which
// makes the switch-level network a drop-in oracle for every harness
// written against this interface) expose the same two entry points:
//
//   * evaluate(inputs)        — one pattern in, one pattern out;
//   * evaluate_batch(batch)   — N patterns in, N patterns out, computed
//                               word-parallel (64 patterns per uint64
//                               lane, see logic/pattern_batch.h).
//
// The base class is a non-virtual interface: the public entry points
// validate the input width ONCE, uniformly, throwing ambit::Error with
// a consistent message, and then dispatch to the protected do_* hooks.
// Derived classes therefore never re-implement width checking and the
// batch path is guaranteed to accept exactly the shapes the scalar path
// accepts.
//
// Exhaustive sweeps — verification, Table 1/2-style comparisons, fault
// Monte-Carlo — should go through evaluate_batch: on a GNOR plane the
// inner loop becomes AND/OR/NOT over packed lanes instead of per-bit
// branching, which is an order of magnitude faster (measured in
// bench/bench_batch_eval.cpp).
//
// THE BIT-LOCALITY CONTRACT (docs/ARCHITECTURE.md has the long form):
// every do_evaluate_batch kernel must be bitwise over the lane words —
// output bit b of lane word w may depend only on bit b of word w of
// the input lanes. Two load-bearing consequences:
//   * word-aligned sharding (the pool overload below) is bit-identical
//     to the sequential sweep for any worker count;
//   * batches packed back-to-back at BIT granularity (the serve
//     coalescer, serve/coalesce.h) evaluate to exactly the
//     concatenation of their separate results.
// A kernel that carries state across bit positions — shifts across
// patterns, arithmetic carries, pattern-index logic — violates both;
// do not add one without revisiting those call sites (the property
// suites in tests/evaluator_test.cpp and tests/property_test.cpp
// catch violations).
//
// Thread-safety: evaluation is const and touches no shared mutable
// state, so any number of threads may evaluate the SAME immutable
// model concurrently (the serve layer relies on this — one loaded
// circuit answers every connection thread). Mutating a model (e.g.
// reprogramming cells) while another thread evaluates it is a data
// race; the serve registry sidesteps it by treating loaded circuits
// as immutable and replacing them wholesale.
#pragma once

#include <span>
#include <vector>

#include "logic/pattern_batch.h"
#include "logic/truth_table.h"

namespace ambit {

class ThreadPool;

/// Abstract N-input / M-output combinational evaluator.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual int num_inputs() const = 0;
  virtual int num_outputs() const = 0;

  /// Scalar path: evaluates one input pattern. Throws ambit::Error when
  /// inputs.size() != num_inputs().
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  /// Scalar path over a contiguous bool span (for callers that keep
  /// patterns unpacked in plain arrays rather than vector<bool>).
  std::vector<bool> evaluate(std::span<const bool> inputs) const;

  /// Bit-parallel path: evaluates every pattern of the batch in one
  /// pass. The result holds num_outputs() lanes over the same pattern
  /// count. Throws ambit::Error when batch.num_signals() !=
  /// num_inputs().
  logic::PatternBatch evaluate_batch(const logic::PatternBatch& inputs) const;

  /// Sharded bit-parallel path: splits the batch into word-aligned
  /// pattern shards and evaluates them on `pool`'s workers. By the
  /// bit-locality contract above, the result is BIT-IDENTICAL to the
  /// single-thread evaluate_batch for any pattern count, including
  /// non-multiples of 64 — the shard partition is word-aligned and
  /// deterministic (util/thread_pool.h). Small batches (< 16 words
  /// per lane) fall through to the sequential path. Safe for
  /// concurrent callers sharing one pool (each call joins only its
  /// own shards).
  logic::PatternBatch evaluate_batch(const logic::PatternBatch& inputs,
                                     ThreadPool& pool) const;

 protected:
  /// Width-validated scalar evaluation hook.
  virtual std::vector<bool> do_evaluate(
      const std::vector<bool>& inputs) const = 0;

  /// Width-validated batch evaluation hook.
  virtual logic::PatternBatch do_evaluate_batch(
      const logic::PatternBatch& inputs) const = 0;
};

/// Evaluates every minterm of the evaluator's input space through the
/// batch path and returns the result as a truth table (the batch lane
/// layout IS the truth-table word layout, see pattern_batch.h).
/// Requires num_inputs() <= TruthTable::kMaxInputs.
logic::TruthTable exhaustive_truth_table(const Evaluator& e);

/// Sharded variant: the exhaustive sweep runs across `pool`'s workers.
/// Bit-identical to the sequential overload.
logic::TruthTable exhaustive_truth_table(const Evaluator& e, ThreadPool& pool);

/// True when the evaluator computes exactly the function denoted by
/// `table` (exhaustive, via the batch path).
bool equivalent(const Evaluator& e, const logic::TruthTable& table);

/// True when two evaluators of the same shape compute the same function
/// (exhaustive, via the batch path).
bool equivalent(const Evaluator& a, const Evaluator& b);

}  // namespace ambit
