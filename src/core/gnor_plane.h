// A GNOR plane: the array tile of the paper's PLA (§4, Fig. 4).
//
// rows × cols ambipolar CNFET cells; every row is one GNOR gate over
// the shared column inputs. Two cascaded planes form a PLA; four form
// a Whirlpool PLA; a plane with all control gates tied high degenerates
// into the crossbar interconnect (modeled separately in crossbar.h).
#pragma once

#include <string>
#include <vector>

#include "core/gnor.h"
#include "logic/pattern_batch.h"

namespace ambit::core {

/// A rectangular array of GNOR cells, evaluated row-wise.
class GnorPlane {
 public:
  /// All cells start off (every row is constant 1).
  GnorPlane(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  CellConfig cell(int row, int col) const;
  void set_cell(int row, int col, CellConfig config);

  /// Row `row` viewed as a standalone GNOR gate.
  GnorGate row_gate(int row) const;

  /// Evaluates all rows against the shared column inputs.
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  /// Word-parallel row evaluation: lane r of the result carries row r's
  /// value for all patterns of the batch (64 patterns per AND/OR/NOT).
  /// This is the bit-parallel kernel every Evaluator batch path
  /// bottoms out in.
  logic::PatternBatch evaluate_batch(const logic::PatternBatch& inputs) const;

  /// Number of cells not configured off. 64-bit: rows · cols can
  /// exceed int, and evaluate_batch sizes its term array from this.
  long long active_cells() const;

  /// Total number of programmable cells (rows · cols).
  long long cell_count() const {
    return static_cast<long long>(rows_) * cols_;
  }

  /// ASCII art of the configuration: '+' pass, '-' invert, '.' off.
  /// One text row per plane row.
  std::string to_ascii() const;

  bool operator==(const GnorPlane& other) const = default;

 private:
  int rows_;
  int cols_;
  std::vector<CellConfig> cells_;  // row-major

  std::size_t index(int row, int col) const;
};

}  // namespace ambit::core
