#include "core/cnfet.h"

#include <cmath>

#include "util/error.h"

namespace ambit::core {
namespace {

/// Smooth 0..1 gate: logistic in (v - v_mid)/slope.
double soft_step(double v, double v_mid, double slope) {
  return 1.0 / (1.0 + std::exp(-(v - v_mid) / slope));
}

}  // namespace

const char* to_string(PolarityState state) {
  switch (state) {
    case PolarityState::kNType: return "n";
    case PolarityState::kPType: return "p";
    case PolarityState::kOff: return "off";
  }
  return "?";
}

PolarityState polarity_from_pg(double vpg, const tech::CnfetElectrical& e,
                               double off_band_v) {
  check(off_band_v >= 0, "polarity_from_pg: negative off band");
  const double v0 = e.v_polarity_off;
  if (vpg >= v0 + off_band_v / 2) {
    return PolarityState::kNType;
  }
  if (vpg <= v0 - off_band_v / 2) {
    return PolarityState::kPType;
  }
  return PolarityState::kOff;
}

bool conducts(PolarityState state, bool gate_high) {
  switch (state) {
    case PolarityState::kNType: return gate_high;
    case PolarityState::kPType: return !gate_high;
    case PolarityState::kOff: return false;
  }
  return false;
}

double drain_current(double vcg, double vpg, const tech::CnfetElectrical& e) {
  const double v0 = e.v_polarity_off;
  // Branch midpoints sit halfway between V0 and the polarity rails, so
  // the conduction minimum at V0 is (V± − V0)/(2·ss) logistic decades
  // below the on-current — the paper's "always off" mid-rail state.
  const double n_mid = (v0 + e.v_polarity_high) / 2;
  const double p_mid = (v0 + e.v_polarity_low) / 2;
  // Electron branch: grows as PG rises above V0, gated by CG high.
  const double n_branch =
      soft_step(vpg, n_mid, e.ss_v) * soft_step(vcg, e.vdd / 2, e.ss_v);
  // Hole branch: grows as PG falls below V0, gated by CG low.
  const double p_branch =
      soft_step(p_mid, vpg, e.ss_v) * soft_step(e.vdd / 2, vcg, e.ss_v);
  return e.i_off_a + e.i_on_a * (n_branch + p_branch);
}

}  // namespace ambit::core
