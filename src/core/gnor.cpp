#include "core/gnor.h"

#include "util/error.h"

namespace ambit::core {

const char* to_string(CellConfig config) {
  switch (config) {
    case CellConfig::kPass: return "pass";
    case CellConfig::kInvert: return "invert";
    case CellConfig::kOff: return "off";
  }
  return "?";
}

PolarityState polarity_of(CellConfig config) {
  switch (config) {
    case CellConfig::kPass: return PolarityState::kNType;
    case CellConfig::kInvert: return PolarityState::kPType;
    case CellConfig::kOff: return PolarityState::kOff;
  }
  return PolarityState::kOff;
}

double pg_voltage_of(CellConfig config, const tech::CnfetElectrical& e) {
  switch (config) {
    case CellConfig::kPass: return e.v_polarity_high;
    case CellConfig::kInvert: return e.v_polarity_low;
    case CellConfig::kOff: return e.v_polarity_off;
  }
  return e.v_polarity_off;
}

GnorGate::GnorGate(int num_inputs)
    : cells_(static_cast<std::size_t>(num_inputs), CellConfig::kOff) {
  check(num_inputs >= 0, "GnorGate: negative input count");
}

CellConfig GnorGate::cell(int i) const {
  check(i >= 0 && i < num_inputs(), "GnorGate::cell: index out of range");
  return cells_[static_cast<std::size_t>(i)];
}

void GnorGate::set_cell(int i, CellConfig config) {
  check(i >= 0 && i < num_inputs(), "GnorGate::set_cell: index out of range");
  cells_[static_cast<std::size_t>(i)] = config;
}

void GnorGate::configure(const std::vector<CellConfig>& cells) {
  check(cells.size() == cells_.size(), "GnorGate::configure: arity mismatch");
  cells_ = cells;
}

bool GnorGate::evaluate(const std::vector<bool>& inputs) const {
  check(inputs.size() == cells_.size(), "GnorGate::evaluate: arity mismatch");
  // Any conducting pull-down discharges the output: Y = NOR of
  // effective inputs. The effective input of a p-type cell is the
  // complement (the device conducts when its gate is LOW).
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (conducts(polarity_of(cells_[i]), inputs[i])) {
      return false;
    }
  }
  return true;
}

long long GnorGate::active_cells() const {
  long long count = 0;
  for (const CellConfig c : cells_) {
    count += c != CellConfig::kOff;
  }
  return count;
}

std::string GnorGate::function_string() const {
  std::string args;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] == CellConfig::kOff) {
      continue;
    }
    if (!args.empty()) {
      args += ", ";
    }
    std::string name;
    if (i < 26) {
      name = std::string(1, static_cast<char>('A' + i));
    } else {
      name = "in" + std::to_string(i);
    }
    args += name;
    if (cells_[i] == CellConfig::kInvert) {
      args += '\'';
    }
  }
  if (args.empty()) {
    return "1";
  }
  return "NOR(" + args + ")";
}

}  // namespace ambit::core
