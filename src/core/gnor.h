// Generalized NOR (GNOR) gate built from ambipolar CNFETs (paper §3).
//
// "In a GNOR cell every input has a polarity control signal. A 2-input
//  function is given by NOR(C1 ⊙ A, C2 ⊙ B) … Ci is set to 0 (V+) or 1
//  (V−) to control the polarity of input i. If it is set to V0 then the
//  input is dropped from the function."
//
// Electrically the gate is dynamic logic: all input devices pull the
// output node down in parallel, between a p-type precharge transistor
// TPC and an n-type evaluation transistor TEV driven by opposite clock
// phases. Logically:
//
//   Y = NOR over the configured inputs, where an n-type cell (PG = V+)
//   contributes the input as-is and a p-type cell (PG = V−) contributes
//   the complemented input, and V0 cells contribute nothing.
//
// Note the polarity-control convention (matching the paper's Fig. 2):
// configuring C_i = V− (p-type) makes input i appear COMPLEMENTED
// inside the NOR — "unlike inputs A and D, B is inverted by setting …
// C2 … to V−".
#pragma once

#include <string>
#include <vector>

#include "core/cnfet.h"

namespace ambit::core {

/// Per-input configuration of a GNOR cell.
enum class CellConfig {
  kPass,    ///< PG = V+ (n-type): input enters the NOR in true form
  kInvert,  ///< PG = V− (p-type): input enters complemented
  kOff,     ///< PG = V0: input dropped from the function
};

/// Human-readable name ("pass", "invert", "off").
const char* to_string(CellConfig config);

/// Maps a cell configuration to the polarity state it programs.
PolarityState polarity_of(CellConfig config);

/// The PG voltage that programs `config` in process `e`.
double pg_voltage_of(CellConfig config, const tech::CnfetElectrical& e);

/// A single GNOR gate with one ambipolar CNFET per input.
class GnorGate {
 public:
  /// All cells start at kOff (function is constant 1: empty NOR).
  explicit GnorGate(int num_inputs);

  int num_inputs() const { return static_cast<int>(cells_.size()); }

  CellConfig cell(int i) const;
  void set_cell(int i, CellConfig config);

  /// Configures from a vector (arity must match).
  void configure(const std::vector<CellConfig>& cells);

  /// Steady-state logic value after the evaluate phase:
  /// Y = NOR of the configured contributions.
  bool evaluate(const std::vector<bool>& inputs) const;

  /// Number of cells not configured off. 64-bit like cell counts
  /// elsewhere: counts are products of int dimensions and feed the
  /// batch-path term reservation.
  long long active_cells() const;

  /// Description like "NOR(A, B', D)" using generated input names
  /// (A, B, …; then in26, in27, …); constant-1 renders as "1".
  std::string function_string() const;

 private:
  std::vector<CellConfig> cells_;
};

}  // namespace ambit::core
