// Static timing analysis over the placed-and-routed design.
//
// Block-level longest path: every logic/inverter block traversal costs
// one CLB delay (a block feeding a block in the same CLB re-enters the
// PLA, so per-block CLB delay is the physical behaviour, not just a
// simplification); every inter-cluster net hop costs one channel
// segment delay (wire RC + switch) taken from the architecture. The
// critical path ends at a primary output; Fmax = 1 / critical path.
#pragma once

#include "fpga/arch.h"
#include "fpga/netlist.h"
#include "fpga/pack.h"
#include "fpga/place.h"
#include "fpga/route.h"

namespace ambit::fpga {

/// Timing analysis result.
struct TimingReport {
  double critical_path_s = 0;
  double fmax_hz = 0;
  /// Share of the critical path spent in routing (vs CLB logic).
  double routing_fraction = 0;
  /// Longest chain of CLB traversals.
  int logic_levels = 0;
};

/// Runs block-level STA. `routing` must come from route() on the same
/// packed netlist and placement.
TimingReport analyze_timing(const Netlist& netlist,
                            const PackedNetlist& packed,
                            const RoutingResult& routing,
                            const FpgaArch& arch);

}  // namespace ambit::fpga
