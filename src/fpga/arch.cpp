#include "fpga/arch.h"

#include <cmath>

#include "util/error.h"

namespace ambit::fpga {

namespace {

/// The CLB's internal PLA dimensions: clb_max_inputs inputs, capacity
/// outputs, and a product row per packed block pair (a small
/// fixed-depth PLA; 2 products per block is a conventional sizing).
tech::PlaDimensions clb_pla_dimensions(const FpgaArch& arch) {
  return tech::PlaDimensions{.inputs = arch.clb_max_inputs,
                             .outputs = arch.clb_capacity,
                             .products = 2 * arch.clb_capacity};
}

}  // namespace

FpgaArch make_standard_arch(int width, int height,
                            const tech::CnfetElectrical& e) {
  check(width > 0 && height > 0, "make_standard_arch: bad grid");
  FpgaArch arch;
  arch.grid_width = width;
  arch.grid_height = height;
  arch.clb_delay_s =
      tech::classical_pla_cycle_s(clb_pla_dimensions(arch), e) /
      arch.clb_drive_factor;
  return arch;
}

FpgaArch make_cnfet_arch(const FpgaArch& standard,
                         const tech::CnfetElectrical& e) {
  FpgaArch arch = standard;
  // Same die, half-area tiles: double the tile count. Re-shape the
  // grid to the squarest W×H with W·H >= 2 · standard tiles.
  const int target = 2 * standard.num_tiles();
  int w = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(target))));
  while (w * (target / w + (target % w == 0 ? 0 : 1)) < target) {
    ++w;
  }
  const int h = target / w + (target % w == 0 ? 0 : 1);
  arch.grid_width = w;
  arch.grid_height = h;
  // Half-area tile: pitch shrinks by sqrt(2).
  arch.tile_pitch_m = standard.tile_pitch_m / std::sqrt(2.0);
  arch.clb_delay_s = tech::gnor_pla_cycle_s(clb_pla_dimensions(arch), e) /
                     arch.clb_drive_factor;
  return arch;
}

}  // namespace ambit::fpga
