// Negotiated-congestion global router (PathFinder-lite).
//
// Routing abstraction: nets travel over the channel graph whose nodes
// are CLB tiles and whose edges are the channel segments between
// adjacent tiles, each with capacity = channel_width tracks. Every net
// is routed as a tree (driver tile -> each sink tile, Dijkstra seeded
// from the partial tree). Congestion is resolved PathFinder-style:
// iterate rip-up-and-reroute with edge costs
//
//     cost(e) = 1 + history(e) + present_penalty · overuse(e)
//
// until no edge exceeds its capacity. Per-sink hop counts are recorded
// for timing analysis; under congestion nets detour, which is exactly
// the mechanism that slows the paper's fully-occupied standard FPGA.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fpga/arch.h"
#include "fpga/pack.h"
#include "fpga/place.h"

namespace ambit::fpga {

/// One routed net: tree edges plus per-sink paths.
struct RoutedTree {
  /// Channel edges used (tile-pair keys, canonical order).
  std::vector<std::pair<int, int>> edges;
  /// Hop count from the driver to each sink (parallel to the packed
  /// net's sink_clusters).
  std::vector<int> sink_hops;
  /// Exact edge sequence from driver to each sink (for timing with
  /// per-edge congestion loading).
  std::vector<std::vector<std::pair<int, int>>> sink_paths;
};

/// Full routing result.
struct RoutingResult {
  bool success = false;
  int iterations = 0;
  std::vector<RoutedTree> trees;  ///< parallel to packed.nets
  long long total_wirelength = 0; ///< sum of tree edge counts
  int max_edge_usage = 0;
  double max_channel_utilization = 0;  ///< max usage / capacity
  /// Final usage per channel edge (canonical tile-pair key).
  std::map<std::pair<int, int>, int> edge_usage;
};

/// Router knobs.
struct RouteOptions {
  int max_iterations = 40;
  double history_increment = 0.4;
  double present_penalty = 3.0;
};

/// Routes all inter-cluster nets of a placed design.
RoutingResult route(const PackedNetlist& packed, const FpgaArch& arch,
                    const Placement& placement,
                    const RouteOptions& options = {});

}  // namespace ambit::fpga
