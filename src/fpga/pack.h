// VPack-style clustering of logic blocks into CLBs.
//
// Greedy attraction clustering (Betz & Rose): seed each cluster with
// the most-connected unclustered block, then absorb the block sharing
// the most nets while capacity and the CLB input budget allow.
//
// The PackMode encodes the paper's architectural difference:
//
//   * kDualRail (standard PLA-based CLB): a complemented fan-in is a
//     SEPARATE signal — it occupies its own CLB input pin and, if it
//     crosses the cluster boundary, its own routed net (the driving
//     CLB emits both rails). Input budgets fill faster and the router
//     sees nearly twice the signals.
//   * kGnor (ambipolar CNFET CLB): polarity is generated inside the
//     GNOR cell; each net costs one pin and one routed signal no
//     matter how sinks consume it.
#pragma once

#include <vector>

#include "fpga/arch.h"
#include "fpga/netlist.h"

namespace ambit::fpga {

/// Polarity economics of the CLB (see file comment).
enum class PackMode {
  kDualRail,  ///< standard: complement = extra pin + extra signal
  kGnor,      ///< CNFET: complement free (internal inversion)
};

/// One packed CLB (or I/O pad) plus its external connectivity.
struct Cluster {
  std::vector<int> blocks;  ///< netlist block indices
  bool is_io = false;       ///< pad cluster (placed on the ring)
  int input_pins = 0;       ///< external input signals consumed
};

/// The clustered netlist: clusters plus the signals to route.
struct PackedNetlist {
  std::vector<Cluster> clusters;
  /// One routed signal. In dual-rail mode a netlist net with sinks on
  /// both rails appears TWICE (complemented_rail = false / true).
  struct RoutedNet {
    int netlist_net = -1;
    bool complemented_rail = false;
    int driver_cluster = -1;
    std::vector<int> sink_clusters;
  };
  std::vector<RoutedNet> nets;
  PackMode mode = PackMode::kDualRail;

  int num_logic_clusters() const;
  /// Cluster id of each netlist block.
  std::vector<int> cluster_of;
};

/// Packs `netlist` into CLBs under `arch` limits. Deterministic.
PackedNetlist pack(const Netlist& netlist, const FpgaArch& arch,
                   PackMode mode);

}  // namespace ambit::fpga
