#include "fpga/route.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "util/error.h"

namespace ambit::fpga {
namespace {

/// Clamps a (possibly ring/pad) location onto the CLB grid, which is
/// where its channel access lives.
int tile_of(const Location& l, const FpgaArch& arch) {
  const int x = std::clamp(l.x, 0, arch.grid_width - 1);
  const int y = std::clamp(l.y, 0, arch.grid_height - 1);
  return y * arch.grid_width + x;
}

struct EdgeKey {
  int a, b;  // canonical: a < b
  friend bool operator<(const EdgeKey& l, const EdgeKey& r) {
    return std::tie(l.a, l.b) < std::tie(r.a, r.b);
  }
};

EdgeKey make_edge(int t1, int t2) {
  return t1 < t2 ? EdgeKey{t1, t2} : EdgeKey{t2, t1};
}

}  // namespace

RoutingResult route(const PackedNetlist& packed, const FpgaArch& arch,
                    const Placement& placement, const RouteOptions& options) {
  check(placement.cluster_location.size() == packed.clusters.size(),
        "route: placement/netlist mismatch");
  const int tiles = arch.num_tiles();
  const int w = arch.grid_width;

  const auto neighbours = [&](int tile, int out[4]) {
    int count = 0;
    const int x = tile % w;
    const int y = tile / w;
    if (x > 0) out[count++] = tile - 1;
    if (x + 1 < w) out[count++] = tile + 1;
    if (y > 0) out[count++] = tile - w;
    if (y + 1 < arch.grid_height) out[count++] = tile + w;
    return count;
  };

  std::map<EdgeKey, double> history;
  std::map<EdgeKey, int> usage;

  RoutingResult result;
  result.trees.assign(packed.nets.size(), RoutedTree{});

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    usage.clear();

    for (std::size_t ni = 0; ni < packed.nets.size(); ++ni) {
      const auto& net = packed.nets[ni];
      RoutedTree tree;
      const int src =
          tile_of(placement.cluster_location[static_cast<std::size_t>(
                      net.driver_cluster)],
                  arch);

      // Tree state: tiles in the tree with their hop distance from the
      // driver, plus the set of edges used by THIS net.
      std::vector<int> dist_from_driver(static_cast<std::size_t>(tiles), -1);
      dist_from_driver[static_cast<std::size_t>(src)] = 0;
      std::set<EdgeKey> net_edges;

      for (const int sink_cluster : net.sink_clusters) {
        const int dst =
            tile_of(placement.cluster_location[static_cast<std::size_t>(
                        sink_cluster)],
                    arch);
        if (dist_from_driver[static_cast<std::size_t>(dst)] >= 0) {
          tree.sink_hops.push_back(
              dist_from_driver[static_cast<std::size_t>(dst)]);
          continue;  // sink already on the tree
        }
        // Dijkstra seeded from every tree tile at cost 0.
        std::vector<double> cost(static_cast<std::size_t>(tiles),
                                 std::numeric_limits<double>::infinity());
        std::vector<int> parent(static_cast<std::size_t>(tiles), -1);
        using Entry = std::pair<double, int>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
        for (int t = 0; t < tiles; ++t) {
          if (dist_from_driver[static_cast<std::size_t>(t)] >= 0) {
            cost[static_cast<std::size_t>(t)] = 0;
            heap.push({0, t});
          }
        }
        while (!heap.empty()) {
          const auto [c, t] = heap.top();
          heap.pop();
          if (c > cost[static_cast<std::size_t>(t)]) {
            continue;
          }
          if (t == dst) {
            break;
          }
          int nb[4];
          const int n_count = neighbours(t, nb);
          for (int k = 0; k < n_count; ++k) {
            const EdgeKey e = make_edge(t, nb[k]);
            double edge_cost = 1.0;
            if (const auto h = history.find(e); h != history.end()) {
              edge_cost += h->second;
            }
            if (const auto u = usage.find(e); u != usage.end()) {
              const int over = u->second + 1 - arch.channel_width;
              if (over > 0) {
                edge_cost += options.present_penalty * over;
              }
            }
            if (c + edge_cost < cost[static_cast<std::size_t>(nb[k])]) {
              cost[static_cast<std::size_t>(nb[k])] = c + edge_cost;
              parent[static_cast<std::size_t>(nb[k])] = t;
              heap.push({c + edge_cost, nb[k]});
            }
          }
        }
        check(cost[static_cast<std::size_t>(dst)] <
                  std::numeric_limits<double>::infinity(),
              "route: sink unreachable (grid disconnected?)");

        // Walk back to the tree, adding edges and distances.
        std::vector<int> path;
        int t = dst;
        while (dist_from_driver[static_cast<std::size_t>(t)] < 0) {
          path.push_back(t);
          t = parent[static_cast<std::size_t>(t)];
          require(t >= 0, "route: broken backtrace");
        }
        // `t` is the tree tile the path attaches to.
        int d = dist_from_driver[static_cast<std::size_t>(t)];
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          const EdgeKey e = make_edge(t, *it);
          if (net_edges.insert(e).second) {
            ++usage[e];
          }
          ++d;
          dist_from_driver[static_cast<std::size_t>(*it)] = d;
          t = *it;
        }
        tree.sink_hops.push_back(
            dist_from_driver[static_cast<std::size_t>(dst)]);
      }

      tree.edges.assign(net_edges.size(), {});
      std::size_t i = 0;
      for (const EdgeKey& e : net_edges) {
        tree.edges[i++] = {e.a, e.b};
      }

      // Reconstruct the exact edge path to every sink: BFS over the
      // tree edges from the driver tile.
      {
        std::map<int, std::vector<int>> tree_adj;
        for (const auto& [a, b] : tree.edges) {
          tree_adj[a].push_back(b);
          tree_adj[b].push_back(a);
        }
        std::map<int, int> bfs_parent;
        bfs_parent[src] = src;
        std::queue<int> frontier;
        frontier.push(src);
        while (!frontier.empty()) {
          const int t = frontier.front();
          frontier.pop();
          for (const int nb2 : tree_adj[t]) {
            if (bfs_parent.find(nb2) == bfs_parent.end()) {
              bfs_parent[nb2] = t;
              frontier.push(nb2);
            }
          }
        }
        for (const int sink_cluster : net.sink_clusters) {
          const int dst =
              tile_of(placement.cluster_location[static_cast<std::size_t>(
                          sink_cluster)],
                      arch);
          std::vector<std::pair<int, int>> path;
          int t = dst;
          require(bfs_parent.count(t) > 0, "route: sink missing from tree");
          while (t != src) {
            const int p = bfs_parent[t];
            const EdgeKey e = make_edge(p, t);
            path.push_back({e.a, e.b});
            t = p;
          }
          std::reverse(path.begin(), path.end());
          tree.sink_paths.push_back(std::move(path));
        }
      }
      result.trees[ni] = std::move(tree);
    }

    // Congestion check.
    int max_usage = 0;
    bool overused = false;
    for (const auto& [edge, count] : usage) {
      max_usage = std::max(max_usage, count);
      if (count > arch.channel_width) {
        overused = true;
        history[edge] += options.history_increment *
                         static_cast<double>(count - arch.channel_width);
      }
    }
    result.max_edge_usage = max_usage;
    result.max_channel_utilization =
        static_cast<double>(max_usage) / arch.channel_width;
    result.edge_usage.clear();
    for (const auto& [edge, count] : usage) {
      result.edge_usage[{edge.a, edge.b}] = count;
    }
    if (!overused) {
      result.success = true;
      break;
    }
  }

  result.total_wirelength = 0;
  for (const auto& tree : result.trees) {
    result.total_wirelength += static_cast<long long>(tree.edges.size());
  }
  return result;
}

}  // namespace ambit::fpga
