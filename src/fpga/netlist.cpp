#include "fpga/netlist.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.h"
#include "util/rng.h"

namespace ambit::fpga {

int Netlist::add_block(Block block) {
  blocks_.push_back(std::move(block));
  return static_cast<int>(blocks_.size() - 1);
}

int Netlist::add_net(std::string name) {
  nets_.push_back(Net{.name = std::move(name)});
  return static_cast<int>(nets_.size() - 1);
}

void Netlist::set_driver(int net, int block) {
  check(net >= 0 && net < num_nets(), "Netlist::set_driver: bad net");
  check(block >= 0 && block < num_blocks(), "Netlist::set_driver: bad block");
  nets_[static_cast<std::size_t>(net)].driver_block = block;
  blocks_[static_cast<std::size_t>(block)].output_net = net;
}

void Netlist::add_sink(int net, int block, bool complemented) {
  check(net >= 0 && net < num_nets(), "Netlist::add_sink: bad net");
  check(block >= 0 && block < num_blocks(), "Netlist::add_sink: bad block");
  nets_[static_cast<std::size_t>(net)].sinks.push_back(
      NetSink{.block = block, .complemented = complemented});
  blocks_[static_cast<std::size_t>(block)].fanins.push_back(
      Fanin{.net = net, .complemented = complemented});
}

const Block& Netlist::block(int i) const {
  check(i >= 0 && i < num_blocks(), "Netlist::block: index out of range");
  return blocks_[static_cast<std::size_t>(i)];
}

const Net& Netlist::net(int i) const {
  check(i >= 0 && i < num_nets(), "Netlist::net: index out of range");
  return nets_[static_cast<std::size_t>(i)];
}

int Netlist::count_kind(BlockKind kind) const {
  int count = 0;
  for (const Block& b : blocks_) {
    count += b.kind == kind;
  }
  return count;
}

int Netlist::count_complemented_nets() const {
  int count = 0;
  for (const Net& n : nets_) {
    count += n.needs_complement();
  }
  return count;
}

void Netlist::validate() const {
  for (int n = 0; n < num_nets(); ++n) {
    const Net& net = nets_[static_cast<std::size_t>(n)];
    check(net.driver_block >= 0 && net.driver_block < num_blocks(),
          "Netlist::validate: net '" + net.name + "' has no driver");
    check(block(net.driver_block).output_net == n,
          "Netlist::validate: driver/output_net mismatch");
    for (const NetSink& s : net.sinks) {
      const auto& fi = block(s.block).fanins;
      const bool found =
          std::any_of(fi.begin(), fi.end(), [&](const Fanin& f) {
            return f.net == n && f.complemented == s.complemented;
          });
      check(found, "Netlist::validate: sink missing back-reference");
    }
  }
  for (int b = 0; b < num_blocks(); ++b) {
    const Block& blk = blocks_[static_cast<std::size_t>(b)];
    for (const Fanin& f : blk.fanins) {
      check(f.net >= 0 && f.net < num_nets(),
            "Netlist::validate: dangling fan-in");
      const auto& sinks = net(f.net).sinks;
      const bool found =
          std::any_of(sinks.begin(), sinks.end(), [&](const NetSink& s) {
            return s.block == b && s.complemented == f.complemented;
          });
      check(found, "Netlist::validate: fan-in missing sink entry");
    }
    if (blk.kind == BlockKind::kOutput) {
      check(blk.output_net == -1, "Netlist::validate: output pad drives a net");
      check(blk.fanins.size() == 1,
            "Netlist::validate: output pad needs exactly one fan-in");
    }
    if (blk.kind == BlockKind::kInput) {
      check(blk.fanins.empty(), "Netlist::validate: input pad has fan-ins");
    }
  }
}

std::vector<int> Netlist::topological_order() const {
  std::vector<int> indegree(static_cast<std::size_t>(num_blocks()), 0);
  for (int b = 0; b < num_blocks(); ++b) {
    indegree[static_cast<std::size_t>(b)] =
        static_cast<int>(block(b).fanins.size());
  }
  std::queue<int> ready;
  for (int b = 0; b < num_blocks(); ++b) {
    if (indegree[static_cast<std::size_t>(b)] == 0) {
      ready.push(b);
    }
  }
  std::vector<int> order;
  while (!ready.empty()) {
    const int b = ready.front();
    ready.pop();
    order.push_back(b);
    const int out = block(b).output_net;
    if (out < 0) {
      continue;
    }
    for (const NetSink& sink : net(out).sinks) {
      if (--indegree[static_cast<std::size_t>(sink.block)] == 0) {
        ready.push(sink.block);
      }
    }
  }
  check(order.size() == static_cast<std::size_t>(num_blocks()),
        "Netlist::topological_order: cycle detected");
  return order;
}

namespace {

/// "pi" + 3 -> "pi3". Built with += rather than an operator+ chain:
/// gcc 12's -Wrestrict misanalyzes `"lit" + std::to_string(n)` at -O3
/// (a known false positive) and the generated names are hot enough to
/// appear in every fuzz/bench build log.
std::string tag(const char* prefix, int n) {
  std::string name(prefix);
  name += std::to_string(n);
  return name;
}

}  // namespace

Netlist generate_circuit(const CircuitSpec& spec, std::uint64_t seed) {
  check(spec.num_primary_inputs >= spec.fanin_per_block,
        "generate_circuit: need at least K primary inputs");
  check(spec.fanin_per_block >= 2, "generate_circuit: K must be >= 2");
  check(spec.num_levels >= 1, "generate_circuit: need at least one level");
  check(spec.level_window >= 1, "generate_circuit: level window must be >= 1");
  Rng rng(seed);
  Netlist nl;

  // Gaussian draw (Box-Muller) for the spatial locality model.
  const auto next_gaussian = [&rng]() {
    const double u1 = std::max(rng.next_double(), 1e-12);
    const double u2 = rng.next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  };

  // Per level: nets in spatial order (position i/(n-1) within level).
  std::vector<std::vector<int>> level_nets(
      static_cast<std::size_t>(spec.num_levels + 1));
  for (int i = 0; i < spec.num_primary_inputs; ++i) {
    const int b = nl.add_block(
        Block{.name = tag("pi", i), .kind = BlockKind::kInput});
    const int n = nl.add_net(tag("npi", i));
    nl.set_driver(n, b);
    level_nets[0].push_back(n);
  }

  // Picks from `pool` the net nearest to spatial position `p` after a
  // Gaussian perturbation.
  const auto pick_near = [&](const std::vector<int>& pool, double p) {
    const double target =
        std::clamp(p + next_gaussian() * spec.spatial_sigma, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(pool.size()) - 1,
        std::floor(target * static_cast<double>(pool.size()))));
    return pool[idx];
  };

  // Levels 1..L: logic blocks spread evenly; one fan-in always comes
  // from the level directly below (exact depth), the rest from the
  // preceding `level_window` levels, all spatially local.
  int made = 0;
  for (int level = 1; level <= spec.num_levels; ++level) {
    const int here = spec.num_logic_blocks / spec.num_levels +
                     (level <= spec.num_logic_blocks % spec.num_levels ? 1 : 0);
    for (int g = 0; g < here; ++g, ++made) {
      const double p = (g + 0.5) / here;  // spatial position of this block
      const int b = nl.add_block(
          Block{.name = tag("lb", made), .kind = BlockKind::kLogic});
      const int out = nl.add_net(tag("n", made));
      nl.set_driver(out, b);

      std::vector<int> chosen;
      const auto& below = level_nets[static_cast<std::size_t>(level - 1)];
      chosen.push_back(pick_near(below, p));
      int guard = 0;
      while (static_cast<int>(chosen.size()) < spec.fanin_per_block &&
             guard++ < 1000) {
        const int from_level = std::max<int>(
            0, level - 1 -
                   static_cast<int>(rng.next_below(
                       static_cast<std::uint64_t>(spec.level_window))));
        const auto& pool = level_nets[static_cast<std::size_t>(from_level)];
        if (pool.empty()) {
          continue;
        }
        const int pick = pick_near(pool, p);
        if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
          chosen.push_back(pick);
        }
      }
      for (const int src : chosen) {
        nl.add_sink(src, b, rng.next_bool(spec.complement_fanin_rate));
      }
      level_nets[static_cast<std::size_t>(level)].push_back(out);
    }
  }

  // Primary outputs tap the last level (wrapping into earlier levels
  // if it is too small).
  std::vector<int> tap_pool;
  for (int level = spec.num_levels; level >= 1 && static_cast<int>(tap_pool.size()) < spec.num_primary_outputs;
       --level) {
    for (const int n : level_nets[static_cast<std::size_t>(level)]) {
      tap_pool.push_back(n);
    }
  }
  check(static_cast<int>(tap_pool.size()) >= spec.num_primary_outputs,
        "generate_circuit: not enough nets for the primary outputs");
  for (int o = 0; o < spec.num_primary_outputs; ++o) {
    const int b = nl.add_block(
        Block{.name = tag("po", o), .kind = BlockKind::kOutput});
    nl.add_sink(tap_pool[static_cast<std::size_t>(o)], b, false);
  }

  nl.validate();
  return nl;
}

}  // namespace ambit::fpga
