// Simulated-annealing placement (VPR-style).
//
// Logic clusters occupy grid tiles; I/O pad clusters sit on a
// perimeter ring just outside the CLB grid. The optimization objective
// is total half-perimeter wirelength (HPWL) over inter-cluster nets,
// annealed with the classic swap/relocate move set and a geometric
// cooling schedule. Deterministic for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/arch.h"
#include "fpga/pack.h"

namespace ambit::fpga {

/// A placed location. Logic tiles use x ∈ [0,W), y ∈ [0,H); pads lie on
/// the ring x = -1 / W or y = -1 / H.
struct Location {
  int x = 0;
  int y = 0;
};

/// Placement result.
struct Placement {
  std::vector<Location> cluster_location;  ///< indexed by cluster id
  double hpwl = 0;                         ///< final cost, in tile units
  double initial_hpwl = 0;
  int moves_accepted = 0;
  int moves_tried = 0;
};

/// Annealing knobs.
struct PlaceOptions {
  std::uint64_t seed = 1;
  double initial_temperature = 10.0;
  double cooling = 0.92;
  int moves_per_temperature_per_cluster = 12;
  double final_temperature = 0.005;
};

/// Places `packed` onto `arch`'s grid. Throws if the logic clusters
/// exceed the tile count or the pads exceed the ring capacity.
Placement place(const PackedNetlist& packed, const FpgaArch& arch,
                const PlaceOptions& options = {});

/// Total HPWL of a placement, in tile units (for verification).
double placement_hpwl(const PackedNetlist& packed,
                      const std::vector<Location>& locations);

}  // namespace ambit::fpga
