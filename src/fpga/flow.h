// End-to-end FPGA implementation flow: pack -> place -> route -> STA.
//
// run_flow() is the entry point the Table 2 bench, the fpga_flow
// example and the tests share. The CNFET emulation (paper §5) is the
// same netlist run with PackMode::kGnor on make_cnfet_arch():
// half-area CLBs on the same die, single-rail signals (complements
// generated inside the GNOR cells), denser packing.
#pragma once

#include <cstdint>

#include "fpga/arch.h"
#include "fpga/netlist.h"
#include "fpga/pack.h"
#include "fpga/place.h"
#include "fpga/route.h"
#include "fpga/timing.h"

namespace ambit::fpga {

/// Everything a flow run produces, for reporting.
struct FlowReport {
  FpgaArch arch;
  PackedNetlist packed;
  Placement placement;
  RoutingResult routing;
  TimingReport timing;

  int logic_clusters = 0;
  int io_pads = 0;
  int nets_routed = 0;

  /// Fraction of the die's CLB tiles occupied. All tiles of an
  /// architecture are equal-sized and tile the die, so this is also
  /// the occupied AREA fraction that Table 2 reports.
  double occupancy = 0;
};

/// Flow-level options.
struct FlowOptions {
  PackMode mode = PackMode::kDualRail;
  PlaceOptions place{};
  RouteOptions route{};
};

/// Runs the full implementation flow of `netlist` on `arch`.
FlowReport run_flow(const Netlist& netlist, const FpgaArch& arch,
                    const FlowOptions& options = {});

}  // namespace ambit::fpga
