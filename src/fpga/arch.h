// Island-style FPGA architecture model (paper §5, Table 2 emulation).
//
// A W×H grid of CLB tiles separated by routing channels of fixed
// capacity. Two variants are compared:
//
//   * STANDARD: classical PLA-based CLBs (replicated input columns),
//     full-size tiles;
//   * CNFET: GNOR-PLA CLBs at HALF the tile area — the paper's
//     emulation "used a classical [FPGA] with half of the area for
//     every CLB" — so the same die offers twice the tile count and the
//     tile pitch shrinks by √2, which scales every wire segment's RC.
//
// The CLB internal delay is derived from the PLA delay model in
// tech/delay_model.h (classical vs GNOR plane widths), keeping the
// whole Table 2 pipeline on one consistent electrical model.
#pragma once

#include "tech/area_model.h"
#include "tech/delay_model.h"
#include "tech/technology.h"

namespace ambit::fpga {

/// Geometry + electrical parameters of one FPGA variant.
struct FpgaArch {
  int grid_width = 12;   ///< CLB columns
  int grid_height = 12;  ///< CLB rows
  int channel_width = 8; ///< wire tracks per channel segment

  /// CLB capacity: packable logic blocks per CLB.
  int clb_capacity = 4;
  /// Distinct input nets a CLB can accept.
  int clb_max_inputs = 10;

  /// Tile pitch [m]; wire R/C scale with it (half-area CLBs shrink it
  /// by √2, which is how the CNFET die speeds up its interconnect).
  double tile_pitch_m = 40e-6;
  /// Wire resistance / capacitance per metre of routed track.
  double wire_r_per_m = 2.0e6;   // 2 Ω/µm
  double wire_c_per_m = 300e-12; // 0.3 fF/µm
  /// Intrinsic switch self-delay [s] (pitch-independent part).
  double switch_delay_s = 15e-12;
  /// On-resistance of the routing switch driving a segment [Ω].
  double switch_r_ohm = 5e3;
  /// Crosstalk loading: neighbouring occupied tracks add coupling
  /// capacitance (Miller effect), so a segment in a channel at
  /// utilization u sees C_eff = C · (1 + coupling_factor · u). This is
  /// what makes a 99%-occupied die slow even when it still routes —
  /// the paper's "delay, which highly depends on signal routing in
  /// FPGA".
  double coupling_factor = 2.0;
  /// CLB output drivers are sized stronger than a single array cell;
  /// divides the raw PLA cycle time from the delay model.
  double clb_drive_factor = 2.0;
  /// CLB logic delay [s] (set from the PLA delay model by make_*).
  double clb_delay_s = 1.0e-9;

  int num_tiles() const { return grid_width * grid_height; }

  /// Elmore delay of one routed channel segment at channel utilization
  /// `utilization` (0..1): switch self-delay + switch resistance
  /// charging the coupling-loaded segment wire + the wire's own RC.
  double segment_delay_s(double utilization = 0.0) const {
    const double rw = wire_r_per_m * tile_pitch_m;
    const double cw = wire_c_per_m * tile_pitch_m *
                      (1.0 + coupling_factor * utilization);
    return switch_delay_s + 0.69 * (switch_r_ohm * cw + 0.5 * rw * cw);
  }
};

/// Standard (classical PLA CLB) architecture sized `width` × `height`.
FpgaArch make_standard_arch(int width, int height,
                            const tech::CnfetElectrical& e);

/// Ambipolar-CNFET architecture on the SAME die as `standard`: twice
/// the tile count (grid re-shaped), pitch divided by √2, CLB delay from
/// the GNOR-PLA model.
FpgaArch make_cnfet_arch(const FpgaArch& standard,
                         const tech::CnfetElectrical& e);

}  // namespace ambit::fpga
