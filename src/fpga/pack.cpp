#include "fpga/pack.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace ambit::fpga {

int PackedNetlist::num_logic_clusters() const {
  int count = 0;
  for (const Cluster& c : clusters) {
    count += !c.is_io;
  }
  return count;
}

namespace {

/// External input signals of cluster ∪ {candidate}: distinct (net,
/// rail) pairs in dual-rail mode, distinct nets in GNOR mode. Nets
/// driven inside the cluster are free (both rails are available
/// internally in either architecture).
int external_inputs(const Netlist& nl, PackMode mode,
                    const std::vector<int>& blocks, int candidate) {
  std::set<int> inside_nets;
  const auto note_output = [&](int b) {
    if (nl.block(b).output_net >= 0) {
      inside_nets.insert(nl.block(b).output_net);
    }
  };
  for (const int b : blocks) {
    note_output(b);
  }
  if (candidate >= 0) {
    note_output(candidate);
  }
  std::set<std::pair<int, bool>> inputs;
  const auto absorb = [&](int b) {
    for (const Fanin& f : nl.block(b).fanins) {
      if (inside_nets.count(f.net) > 0) {
        continue;
      }
      const bool rail = mode == PackMode::kDualRail && f.complemented;
      inputs.insert({f.net, rail});
    }
  };
  for (const int b : blocks) {
    absorb(b);
  }
  if (candidate >= 0) {
    absorb(candidate);
  }
  return static_cast<int>(inputs.size());
}

/// Shared-net attraction between a cluster and a candidate block.
int attraction(const Netlist& nl, const std::vector<int>& blocks,
               int candidate) {
  std::set<int> cluster_nets;
  for (const int b : blocks) {
    for (const Fanin& f : nl.block(b).fanins) {
      cluster_nets.insert(f.net);
    }
    if (nl.block(b).output_net >= 0) {
      cluster_nets.insert(nl.block(b).output_net);
    }
  }
  int shared = 0;
  for (const Fanin& f : nl.block(candidate).fanins) {
    shared += cluster_nets.count(f.net) > 0;
  }
  if (nl.block(candidate).output_net >= 0) {
    shared += cluster_nets.count(nl.block(candidate).output_net) > 0;
  }
  return shared;
}

}  // namespace

PackedNetlist pack(const Netlist& netlist, const FpgaArch& arch,
                   PackMode mode) {
  PackedNetlist packed;
  packed.mode = mode;
  packed.cluster_of.assign(static_cast<std::size_t>(netlist.num_blocks()), -1);

  // I/O pads become singleton ring clusters.
  for (int b = 0; b < netlist.num_blocks(); ++b) {
    const BlockKind kind = netlist.block(b).kind;
    if (kind == BlockKind::kInput || kind == BlockKind::kOutput) {
      Cluster pad;
      pad.is_io = true;
      pad.blocks.push_back(b);
      packed.cluster_of[static_cast<std::size_t>(b)] =
          static_cast<int>(packed.clusters.size());
      packed.clusters.push_back(std::move(pad));
    }
  }

  // Greedy clustering of logic blocks.
  std::vector<bool> placed(static_cast<std::size_t>(netlist.num_blocks()),
                           false);
  std::vector<int> seeds;
  for (int b = 0; b < netlist.num_blocks(); ++b) {
    if (netlist.block(b).kind == BlockKind::kLogic) {
      seeds.push_back(b);
    }
  }
  std::sort(seeds.begin(), seeds.end(), [&](int a, int b) {
    const auto degree = [&](int blk) {
      int d = static_cast<int>(netlist.block(blk).fanins.size());
      if (netlist.block(blk).output_net >= 0) {
        d += static_cast<int>(
            netlist.net(netlist.block(blk).output_net).sinks.size());
      }
      return d;
    };
    const int da = degree(a);
    const int db = degree(b);
    if (da != db) {
      return da > db;
    }
    return a < b;
  });

  for (const int seed : seeds) {
    if (placed[static_cast<std::size_t>(seed)]) {
      continue;
    }
    Cluster cluster;
    cluster.blocks.push_back(seed);
    placed[static_cast<std::size_t>(seed)] = true;

    while (static_cast<int>(cluster.blocks.size()) < arch.clb_capacity) {
      int best = -1;
      int best_attraction = 0;
      for (const int cand : seeds) {
        if (placed[static_cast<std::size_t>(cand)]) {
          continue;
        }
        const int att = attraction(netlist, cluster.blocks, cand);
        if (att <= best_attraction) {
          continue;  // require positive attraction; ties keep first
        }
        if (external_inputs(netlist, mode, cluster.blocks, cand) >
            arch.clb_max_inputs) {
          continue;
        }
        best = cand;
        best_attraction = att;
      }
      if (best < 0) {
        break;
      }
      cluster.blocks.push_back(best);
      placed[static_cast<std::size_t>(best)] = true;
    }

    cluster.input_pins = external_inputs(netlist, mode, cluster.blocks, -1);
    const int id = static_cast<int>(packed.clusters.size());
    for (const int b : cluster.blocks) {
      packed.cluster_of[static_cast<std::size_t>(b)] = id;
    }
    packed.clusters.push_back(std::move(cluster));
  }

  // Routed signals. GNOR: one per boundary-crossing net. Dual-rail:
  // one per rail that crosses the boundary.
  for (int n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    const int driver =
        packed.cluster_of[static_cast<std::size_t>(net.driver_block)];
    std::set<int> true_sinks;
    std::set<int> comp_sinks;
    for (const NetSink& s : net.sinks) {
      const int c = packed.cluster_of[static_cast<std::size_t>(s.block)];
      if (c == driver) {
        continue;
      }
      if (mode == PackMode::kDualRail && s.complemented) {
        comp_sinks.insert(c);
      } else {
        true_sinks.insert(c);
      }
    }
    const auto emit = [&](const std::set<int>& sinks, bool rail) {
      if (sinks.empty()) {
        return;
      }
      PackedNetlist::RoutedNet rn;
      rn.netlist_net = n;
      rn.complemented_rail = rail;
      rn.driver_cluster = driver;
      rn.sink_clusters.assign(sinks.begin(), sinks.end());
      packed.nets.push_back(std::move(rn));
    };
    emit(true_sinks, false);
    emit(comp_sinks, true);
  }
  return packed;
}

}  // namespace ambit::fpga
