#include "fpga/flow.h"

namespace ambit::fpga {

FlowReport run_flow(const Netlist& netlist, const FpgaArch& arch,
                    const FlowOptions& options) {
  FlowReport report;
  report.arch = arch;
  report.packed = pack(netlist, arch, options.mode);
  report.logic_clusters = report.packed.num_logic_clusters();
  report.io_pads =
      static_cast<int>(report.packed.clusters.size()) - report.logic_clusters;
  report.nets_routed = static_cast<int>(report.packed.nets.size());
  report.occupancy =
      static_cast<double>(report.logic_clusters) / arch.num_tiles();

  report.placement = place(report.packed, arch, options.place);
  report.routing = route(report.packed, arch, report.placement, options.route);
  report.timing = analyze_timing(netlist, report.packed, report.routing, arch);
  return report;
}

}  // namespace ambit::fpga
