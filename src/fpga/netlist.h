// Gate-level netlist for the PLA-based-FPGA experiment (paper §5,
// Table 2).
//
// Blocks are small logic functions (the units later packed into CLBs)
// plus primary I/O pads. Every fan-in carries a POLARITY flag: a block
// may consume a signal in true or complemented form.
//
// The two FPGA flows differ in what a complemented fan-in costs:
//
//   * STANDARD (classical PLA-based CLBs): complements are real,
//     separate signals — the driving CLB outputs both rails, the
//     complement occupies its own routing track and its own CLB input
//     pin (dual-rail). This is why the paper's standard FPGA routes
//     almost twice the signals.
//   * CNFET (GNOR CLBs): the polarity gate inverts inside the cell, so
//     only the true rail is ever routed and a complemented fan-in
//     costs nothing extra — "the inverted signals are not routed but
//     generated internally".
//
// The polarity handling lives in pack() (see pack.h), keyed by PackMode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ambit::fpga {

/// Role of a netlist block.
enum class BlockKind {
  kLogic,   ///< K-input logic block (packable into a CLB)
  kInput,   ///< primary input pad
  kOutput,  ///< primary output pad
};

/// One fan-in: the net read and the polarity consumed.
struct Fanin {
  int net = -1;
  bool complemented = false;
};

/// One block. Fan-ins reference Netlist::nets.
struct Block {
  std::string name;
  BlockKind kind = BlockKind::kLogic;
  std::vector<Fanin> fanins{};
  int output_net = -1;  ///< -1 for kOutput blocks
};

/// One sink of a net.
struct NetSink {
  int block = -1;
  bool complemented = false;
};

/// One net: a driver block and its sinks (with polarity).
struct Net {
  std::string name;
  int driver_block = -1;
  std::vector<NetSink> sinks{};

  /// True when any sink reads the complemented rail.
  bool needs_complement() const {
    for (const NetSink& s : sinks) {
      if (s.complemented) return true;
    }
    return false;
  }
};

/// A flat gate-level netlist.
class Netlist {
 public:
  int add_block(Block block);
  int add_net(std::string name);

  /// Connects `block` as the driver of `net` (each net has one driver).
  void set_driver(int net, int block);
  /// Adds a fan-in: `block` reads `net` with the given polarity.
  void add_sink(int net, int block, bool complemented = false);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }
  const Block& block(int i) const;
  const Net& net(int i) const;

  /// Counts blocks of a kind.
  int count_kind(BlockKind kind) const;

  /// Nets with at least one complemented sink (the signals a standard
  /// dual-rail flow must route twice).
  int count_complemented_nets() const;

  /// Consistency check: every net has a driver, fan-in lists and sink
  /// lists agree, no dangling indices. Throws on violation.
  void validate() const;

  /// Topological order of blocks (inputs first). Throws on cycles.
  std::vector<int> topological_order() const;

 private:
  std::vector<Block> blocks_;
  std::vector<Net> nets_;
};

/// Parameters of the synthetic circuit generator.
struct CircuitSpec {
  int num_primary_inputs = 16;
  int num_primary_outputs = 8;
  int num_logic_blocks = 400;
  int fanin_per_block = 4;  ///< K
  /// Probability that a fan-in consumes the complemented polarity.
  /// At 0.45 with K = 4, ~90% of multi-sink nets end up needing both
  /// rails — the paper's "signals … reduced by almost the factor 2".
  double complement_fanin_rate = 0.45;
  /// Logic depth: blocks are spread evenly over this many levels; each
  /// block takes at least one fan-in from the previous level (so the
  /// depth is exact) and the rest from a window of earlier levels.
  int num_levels = 9;
  /// How many preceding levels the remaining fan-ins may come from.
  int level_window = 3;
  /// Spatial locality: every block gets a position in [0,1]; fan-ins
  /// are drawn from blocks whose position differs by a Gaussian with
  /// this sigma. Small sigma = short wires after placement (Rent-style
  /// locality); 0.5+ = essentially random connectivity.
  double spatial_sigma = 0.08;
};

/// Deterministically generates a connected combinational circuit with
/// polarity-annotated fan-ins and exact logic depth.
Netlist generate_circuit(const CircuitSpec& spec, std::uint64_t seed);

}  // namespace ambit::fpga
