#include "fpga/place.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace ambit::fpga {
namespace {

double net_hpwl(const PackedNetlist::RoutedNet& net,
                const std::vector<Location>& loc) {
  int min_x = loc[static_cast<std::size_t>(net.driver_cluster)].x;
  int max_x = min_x;
  int min_y = loc[static_cast<std::size_t>(net.driver_cluster)].y;
  int max_y = min_y;
  for (const int c : net.sink_clusters) {
    const Location& l = loc[static_cast<std::size_t>(c)];
    min_x = std::min(min_x, l.x);
    max_x = std::max(max_x, l.x);
    min_y = std::min(min_y, l.y);
    max_y = std::max(max_y, l.y);
  }
  return static_cast<double>(max_x - min_x) + static_cast<double>(max_y - min_y);
}

}  // namespace

double placement_hpwl(const PackedNetlist& packed,
                      const std::vector<Location>& locations) {
  double total = 0;
  for (const auto& net : packed.nets) {
    total += net_hpwl(net, locations);
  }
  return total;
}

Placement place(const PackedNetlist& packed, const FpgaArch& arch,
                const PlaceOptions& options) {
  const int num_clusters = static_cast<int>(packed.clusters.size());
  std::vector<int> logic_ids;
  std::vector<int> pad_ids;
  for (int c = 0; c < num_clusters; ++c) {
    (packed.clusters[static_cast<std::size_t>(c)].is_io ? pad_ids : logic_ids)
        .push_back(c);
  }
  check(static_cast<int>(logic_ids.size()) <= arch.num_tiles(),
        "place: logic clusters exceed grid capacity");
  const int ring_capacity = 2 * (arch.grid_width + arch.grid_height) + 4;
  check(static_cast<int>(pad_ids.size()) <= ring_capacity,
        "place: pads exceed perimeter capacity");

  Rng rng(options.seed);
  std::vector<Location> loc(static_cast<std::size_t>(num_clusters));

  // Initial placement: logic row-major, pads around the ring.
  std::vector<int> tile_occupant(
      static_cast<std::size_t>(arch.num_tiles()), -1);
  for (std::size_t i = 0; i < logic_ids.size(); ++i) {
    const int x = static_cast<int>(i) % arch.grid_width;
    const int y = static_cast<int>(i) / arch.grid_width;
    loc[static_cast<std::size_t>(logic_ids[i])] = Location{x, y};
    tile_occupant[i] = logic_ids[i];
  }
  {
    // Ring positions enumerated clockwise.
    std::vector<Location> ring;
    for (int x = -1; x <= arch.grid_width; ++x) {
      ring.push_back(Location{x, -1});
      ring.push_back(Location{x, arch.grid_height});
    }
    for (int y = 0; y < arch.grid_height; ++y) {
      ring.push_back(Location{-1, y});
      ring.push_back(Location{arch.grid_width, y});
    }
    check(pad_ids.size() <= ring.size(), "place: ring overflow");
    // Spread pads evenly over the ring.
    for (std::size_t i = 0; i < pad_ids.size(); ++i) {
      const std::size_t slot = i * ring.size() / pad_ids.size();
      loc[static_cast<std::size_t>(pad_ids[i])] = ring[slot];
    }
  }

  Placement result;
  result.initial_hpwl = placement_hpwl(packed, loc);
  double cost = result.initial_hpwl;

  // Incremental cost: nets touching a cluster.
  std::vector<std::vector<int>> nets_of(static_cast<std::size_t>(num_clusters));
  for (int n = 0; n < static_cast<int>(packed.nets.size()); ++n) {
    const auto& net = packed.nets[static_cast<std::size_t>(n)];
    nets_of[static_cast<std::size_t>(net.driver_cluster)].push_back(n);
    for (const int c : net.sink_clusters) {
      nets_of[static_cast<std::size_t>(c)].push_back(n);
    }
  }
  const auto cost_around = [&](int cluster_a, int cluster_b) {
    double sum = 0;
    for (const int n : nets_of[static_cast<std::size_t>(cluster_a)]) {
      sum += net_hpwl(packed.nets[static_cast<std::size_t>(n)], loc);
    }
    if (cluster_b >= 0 && cluster_b != cluster_a) {
      for (const int n : nets_of[static_cast<std::size_t>(cluster_b)]) {
        // Avoid double-counting shared nets.
        const auto& na = nets_of[static_cast<std::size_t>(cluster_a)];
        if (std::find(na.begin(), na.end(), n) == na.end()) {
          sum += net_hpwl(packed.nets[static_cast<std::size_t>(n)], loc);
        }
      }
    }
    return sum;
  };

  if (!logic_ids.empty() && !packed.nets.empty()) {
    double temperature = options.initial_temperature;
    const int moves_per_t = std::max<int>(
        64, options.moves_per_temperature_per_cluster *
                static_cast<int>(logic_ids.size()));
    while (temperature > options.final_temperature) {
      for (int m = 0; m < moves_per_t; ++m) {
        ++result.moves_tried;
        // Pick a logic cluster and a random tile.
        const int a =
            logic_ids[rng.next_below(static_cast<std::uint64_t>(logic_ids.size()))];
        const int tx = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(arch.grid_width)));
        const int ty = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(arch.grid_height)));
        const int tile = ty * arch.grid_width + tx;
        const int b = tile_occupant[static_cast<std::size_t>(tile)];
        if (b == a) {
          continue;
        }
        const Location old_a = loc[static_cast<std::size_t>(a)];
        const double before = cost_around(a, b);
        // Apply: move/swap.
        loc[static_cast<std::size_t>(a)] = Location{tx, ty};
        if (b >= 0) {
          loc[static_cast<std::size_t>(b)] = old_a;
        }
        const double after = cost_around(a, b);
        const double delta = after - before;
        if (delta <= 0 || rng.next_double() < std::exp(-delta / temperature)) {
          // Accept: update occupancy.
          tile_occupant[static_cast<std::size_t>(tile)] = a;
          const int old_tile = old_a.y * arch.grid_width + old_a.x;
          tile_occupant[static_cast<std::size_t>(old_tile)] = b;
          cost += delta;
          ++result.moves_accepted;
        } else {
          // Revert.
          loc[static_cast<std::size_t>(a)] = old_a;
          if (b >= 0) {
            loc[static_cast<std::size_t>(b)] = Location{tx, ty};
          }
        }
      }
      temperature *= options.cooling;
    }
  }

  result.cluster_location = std::move(loc);
  result.hpwl = placement_hpwl(packed, result.cluster_location);
  return result;
}

}  // namespace ambit::fpga
