#include "fpga/timing.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace ambit::fpga {

TimingReport analyze_timing(const Netlist& netlist, const PackedNetlist& packed,
                            const RoutingResult& routing,
                            const FpgaArch& arch) {
  check(routing.trees.size() == packed.nets.size(),
        "analyze_timing: routing/netlist mismatch");

  const std::vector<int>& cluster_of = packed.cluster_of;

  // Inter-cluster net delay per (net, rail, sink cluster): sum of the
  // congestion-loaded segment delays along the routed path.
  const auto edge_delay = [&](const std::pair<int, int>& edge) {
    double utilization = 0;
    const auto it = routing.edge_usage.find(edge);
    if (it != routing.edge_usage.end()) {
      utilization = static_cast<double>(it->second) / arch.channel_width;
    }
    return arch.segment_delay_s(utilization);
  };
  std::map<std::tuple<int, bool, int>, double> net_sink_delay;
  for (std::size_t ni = 0; ni < packed.nets.size(); ++ni) {
    const auto& net = packed.nets[ni];
    const auto& tree = routing.trees[ni];
    require(tree.sink_paths.size() == net.sink_clusters.size(),
            "analyze_timing: tree sink arity mismatch");
    for (std::size_t s = 0; s < net.sink_clusters.size(); ++s) {
      double delay = 0;
      for (const auto& edge : tree.sink_paths[s]) {
        delay += edge_delay(edge);
      }
      net_sink_delay[{net.netlist_net, net.complemented_rail,
                      net.sink_clusters[s]}] = delay;
    }
  }

  // Longest-path over blocks in topological order.
  const std::vector<int> order = netlist.topological_order();
  std::vector<double> departure(static_cast<std::size_t>(netlist.num_blocks()),
                                0);
  std::vector<int> levels(static_cast<std::size_t>(netlist.num_blocks()), 0);
  std::vector<double> routing_time(
      static_cast<std::size_t>(netlist.num_blocks()), 0);
  TimingReport report;

  for (const int b : order) {
    const Block& blk = netlist.block(b);
    double arrival = 0;
    int level_in = 0;
    double route_in = 0;
    for (const Fanin& f : blk.fanins) {
      const int driver = netlist.net(f.net).driver_block;
      double wire = 0;
      const bool rail =
          packed.mode == PackMode::kDualRail && f.complemented;
      const auto it = net_sink_delay.find(
          {f.net, rail, cluster_of[static_cast<std::size_t>(b)]});
      if (it != net_sink_delay.end()) {
        wire = it->second;
      }
      const double candidate = departure[static_cast<std::size_t>(driver)] + wire;
      if (candidate > arrival) {
        arrival = candidate;
        level_in = levels[static_cast<std::size_t>(driver)];
        route_in = routing_time[static_cast<std::size_t>(driver)] + wire;
      }
    }
    const bool is_logic = blk.kind == BlockKind::kLogic;
    departure[static_cast<std::size_t>(b)] =
        arrival + (is_logic ? arch.clb_delay_s : 0);
    levels[static_cast<std::size_t>(b)] = level_in + (is_logic ? 1 : 0);
    routing_time[static_cast<std::size_t>(b)] = route_in;

    if (departure[static_cast<std::size_t>(b)] > report.critical_path_s) {
      report.critical_path_s = departure[static_cast<std::size_t>(b)];
      report.logic_levels = levels[static_cast<std::size_t>(b)];
      report.routing_fraction =
          report.critical_path_s > 0
              ? routing_time[static_cast<std::size_t>(b)] /
                    report.critical_path_s
              : 0;
    }
  }
  report.fmax_hz =
      report.critical_path_s > 0 ? 1.0 / report.critical_path_s : 0;
  return report;
}

}  // namespace ambit::fpga
