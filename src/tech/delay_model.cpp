#include "tech/delay_model.h"

#include <cmath>

#include "util/error.h"

namespace ambit::tech {
namespace {

constexpr double kLn2 = 0.6931471805599453;

}  // namespace

double gnor_row_capacitance_f(int columns, const CnfetElectrical& e) {
  check(columns >= 0, "gnor_row_capacitance_f: negative column count");
  return columns * (e.c_cell_f + e.c_wire_per_cell_f);
}

double gnor_row_eval_delay_s(int columns, const CnfetElectrical& e) {
  // Discharge path: one pull-down cell in series with TEV.
  const double r = 2.0 * e.r_on_ohm;
  return kLn2 * r * gnor_row_capacitance_f(columns, e);
}

double gnor_row_precharge_delay_s(int columns, const CnfetElectrical& e) {
  return kLn2 * e.r_on_ohm * gnor_row_capacitance_f(columns, e);
}

double gnor_pla_cycle_s(const PlaDimensions& dim, const CnfetElectrical& e) {
  // Plane 1: product rows cross `inputs` columns. Plane 2: output rows
  // cross `products` columns. Precharge of both planes overlaps, so a
  // single (worst) precharge term is charged.
  const double eval1 = gnor_row_eval_delay_s(dim.inputs, e);
  const double eval2 = gnor_row_eval_delay_s(dim.products, e);
  const double pre = std::max(gnor_row_precharge_delay_s(dim.inputs, e),
                              gnor_row_precharge_delay_s(dim.products, e));
  return pre + eval1 + eval2;
}

double classical_pla_cycle_s(const PlaDimensions& dim,
                             const CnfetElectrical& e) {
  const double eval1 = gnor_row_eval_delay_s(2 * dim.inputs, e);
  const double eval2 = gnor_row_eval_delay_s(dim.products, e);
  const double pre = std::max(gnor_row_precharge_delay_s(2 * dim.inputs, e),
                              gnor_row_precharge_delay_s(dim.products, e));
  return pre + eval1 + eval2;
}

}  // namespace ambit::tech
