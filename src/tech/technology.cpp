#include "tech/technology.h"

namespace ambit::tech {

Technology flash_technology() {
  return Technology{.name = "Flash",
                    .cell_area_l2 = 40.0,
                    .replicated_input_columns = true};
}

Technology eeprom_technology() {
  return Technology{.name = "EEPROM",
                    .cell_area_l2 = 100.0,
                    .replicated_input_columns = true};
}

Technology cnfet_technology() {
  return Technology{.name = "CNFET",
                    .cell_area_l2 = 60.0,
                    .replicated_input_columns = false};
}

CnfetElectrical default_cnfet_electrical() {
  return CnfetElectrical{};
}

}  // namespace ambit::tech
