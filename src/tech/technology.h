// Technology parameters for the three PLA implementation styles the
// paper compares (Table 1), plus electrical parameters for the
// switch-level timing model.
//
// Area constants come straight from the paper's §5:
//   * the CNFET basic cell is estimated from the scaling rules of
//     Patil et al. (DAC'07) for misaligned-CNT-immune layout;
//   * Flash and EEPROM basic cells are derived from the ITRS;
//   * "The area of the contacted cells with respect to the lithography
//     resolution (L)": Flash 40 L², EEPROM 100 L², CNFET 60 L².
//
// The paper's observation: the CNFET cell is "50% larger than the
// Flash and 40% smaller than the EEPROM basic cell" — 60/40 = 1.5 and
// 60/100 = 0.6 — which these constants reproduce exactly.
#pragma once

#include <string>

namespace ambit::tech {

/// One PLA implementation technology.
struct Technology {
  std::string name;
  /// Area of the contacted programmable basic cell, in units of L²
  /// (lithography resolution squared).
  double cell_area_l2 = 0;
  /// Classical floating-gate technologies need both polarities of every
  /// input, i.e. two columns per input; the ambipolar CNFET GNOR plane
  /// inverts internally and needs one.
  bool replicated_input_columns = true;
};

/// Flash floating-gate PLA cell: 40 L², replicated input columns.
Technology flash_technology();

/// EEPROM PLA cell: 100 L², replicated input columns.
Technology eeprom_technology();

/// Ambipolar CNFET GNOR cell: 60 L², single column per input.
Technology cnfet_technology();

/// Electrical parameters of the ambipolar CNFET used by the
/// switch-level delay model. Defaults are behavioural-level estimates
/// for a mid-2000s CNT process (quantum-limited channel resistance
/// plus contact resistance; aF-scale per-cell capacitance) — the model
/// reproduces delay *ratios*, not absolute silicon numbers.
struct CnfetElectrical {
  double vdd = 1.8;                ///< supply voltage [V]
  double v_polarity_high = 1.8;    ///< PG voltage V+ (n-type) [V]
  double v_polarity_low = 0.0;     ///< PG voltage V− (p-type) [V]
  double v_polarity_off = 0.9;     ///< PG voltage V0 = VDD/2 (off) [V]
  double r_on_ohm = 25e3;          ///< on-resistance of one CNFET [Ω]
  double c_cell_f = 0.15e-15;      ///< drain + PG coupling load per cell [F]
  double c_wire_per_cell_f = 0.10e-15;  ///< row-wire capacitance per crossed cell [F]
  double i_on_a = 10e-6;           ///< nominal on-current [A]
  double i_off_a = 10e-12;         ///< off-state leakage [A]
  double ss_v = 0.045;             ///< logistic slope of the analytic ambipolar branches [V]
};

/// Default electrical parameter set.
CnfetElectrical default_cnfet_electrical();

}  // namespace ambit::tech
