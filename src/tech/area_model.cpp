#include "tech/area_model.h"

#include "util/error.h"

namespace ambit::tech {

PlaDimensions dimensions_of(const logic::Cover& cover) {
  return PlaDimensions{.inputs = cover.num_inputs(),
                       .outputs = cover.num_outputs(),
                       .products = static_cast<int>(cover.size())};
}

long long classical_cell_count(const PlaDimensions& dim) {
  check(dim.inputs >= 0 && dim.outputs >= 0 && dim.products >= 0,
        "classical_cell_count: negative dimension");
  return static_cast<long long>(2 * dim.inputs + dim.outputs) * dim.products;
}

long long gnor_cell_count(const PlaDimensions& dim) {
  check(dim.inputs >= 0 && dim.outputs >= 0 && dim.products >= 0,
        "gnor_cell_count: negative dimension");
  return static_cast<long long>(dim.inputs + dim.outputs) * dim.products;
}

long long cell_count(const Technology& tech, const PlaDimensions& dim) {
  return tech.replicated_input_columns ? classical_cell_count(dim)
                                       : gnor_cell_count(dim);
}

double pla_area_l2(const Technology& tech, const PlaDimensions& dim) {
  return static_cast<double>(cell_count(tech, dim)) * tech.cell_area_l2;
}

double cnfet_area_ratio(const Technology& classical_tech,
                        const PlaDimensions& dim) {
  check(classical_tech.replicated_input_columns,
        "cnfet_area_ratio: reference technology must be classical");
  const double cnfet = pla_area_l2(cnfet_technology(), dim);
  const double reference = pla_area_l2(classical_tech, dim);
  check(reference > 0, "cnfet_area_ratio: empty reference PLA");
  return cnfet / reference;
}

}  // namespace ambit::tech
