// First-order RC delay model for dynamic GNOR planes and PLAs.
//
// A dynamic GNOR row discharges through one pull-down CNFET in series
// with the evaluation transistor TEV; the row capacitance grows with
// the number of cells hanging on the row wire (drain junctions + wire).
// Elmore-style estimate:
//
//   t_eval      = ln(2) · (R_on,cell + R_on,TEV) · C_row
//   C_row       = columns · (c_cell + c_wire_per_cell)
//   t_precharge = ln(2) · R_on,TPC · C_row
//
// A two-plane PLA evaluates plane 1 then plane 2; its cycle time is the
// precharge phase plus both evaluation phases. These expressions drive
// the Fig. 2 timing readout, the CLB delay of the FPGA model (Table 2)
// and the crossover benches. They predict *ratios* between
// configurations of the same process, not absolute silicon delays.
#pragma once

#include "tech/area_model.h"
#include "tech/technology.h"

namespace ambit::tech {

/// Row capacitance of a GNOR row crossing `columns` cells [F].
double gnor_row_capacitance_f(int columns, const CnfetElectrical& e);

/// Worst-case evaluate delay of a GNOR row with `columns` cells [s].
double gnor_row_eval_delay_s(int columns, const CnfetElectrical& e);

/// Precharge delay of a GNOR row with `columns` cells [s].
double gnor_row_precharge_delay_s(int columns, const CnfetElectrical& e);

/// Cycle time of a two-plane GNOR PLA: precharge + eval(plane1, width =
/// inputs for the product rows) + eval(plane2, width = products) [s].
double gnor_pla_cycle_s(const PlaDimensions& dim, const CnfetElectrical& e);

/// Cycle time of a classical NOR-NOR PLA with replicated input columns
/// (2·inputs wide plane 1) in the same electrical process [s]. Used for
/// like-for-like delay comparisons.
double classical_pla_cycle_s(const PlaDimensions& dim, const CnfetElectrical& e);

}  // namespace ambit::tech
