// PLA area model — the arithmetic behind the paper's Table 1.
//
// A two-level PLA implementing a cover with i inputs, o outputs and p
// product terms consists of:
//
//   * classical (Flash/EEPROM) PLA: an AND/NOR plane with TWO columns
//     per input (true + complement) and an OR/NOR plane with one column
//     per output, both p rows deep:
//         cells = (2·i + o) · p
//   * ambipolar-CNFET GNOR PLA: the polarity gate inverts internally,
//     so ONE column per input suffices:
//         cells = (i + o) · p
//
//   area = cells · basic-cell-area  [L²]
//
// With the paper's benchmark dimensions this reproduces Table 1 exactly:
//   max46  (9/1/46):  Flash 34960, EEPROM  87400, CNFET  27600 L²
//   apla  (10/12/25): Flash 32000, EEPROM  80000, CNFET  33000 L²
//   t2   (17/16/52):  Flash 104000, EEPROM 260000, CNFET 102960 L²
//
// and the headline claims: max46 saves 21% vs Flash and 68% vs EEPROM;
// apla shows the "small area overhead (3%)" of CNFET vs Flash when a
// function has more outputs than inputs.
#pragma once

#include "logic/cover.h"
#include "tech/technology.h"

namespace ambit::tech {

/// PLA dimensions after two-level minimization.
struct PlaDimensions {
  int inputs = 0;
  int outputs = 0;
  int products = 0;
};

/// Extracts dimensions from a minimized cover.
PlaDimensions dimensions_of(const logic::Cover& cover);

/// Programmable-cell count of a classical PLA (two columns per input).
long long classical_cell_count(const PlaDimensions& dim);

/// Programmable-cell count of a GNOR PLA (one column per input).
long long gnor_cell_count(const PlaDimensions& dim);

/// Cell count appropriate for `tech` (classical vs GNOR column rule).
long long cell_count(const Technology& tech, const PlaDimensions& dim);

/// Total PLA area in L² for `tech`.
double pla_area_l2(const Technology& tech, const PlaDimensions& dim);

/// Area ratio CNFET/classical for given dimensions and cell areas:
/// < 1 means the CNFET PLA is smaller. Analytic form
///   (60·(i+o)) / (cell·(2i+o))
/// shows the crossover: vs Flash (40 L²) the CNFET wins iff i > o.
double cnfet_area_ratio(const Technology& classical_tech,
                        const PlaDimensions& dim);

}  // namespace ambit::tech
