// Monte-Carlo yield analysis of defective GNOR PLAs.
//
// For a sweep of per-cell defect rates, estimates the probability that
// a mapped PLA can be manufactured working:
//
//   * naive yield    — the configuration is programmed onto the nominal
//                      rows; the array works iff every required cell is
//                      compatible in place (no repair);
//   * repaired yield — the defect-aware matcher (repair.h) may permute
//                      product rows and use spare rows.
//
// The spread between the two curves is the paper's §5 argument that
// the regular, individually-programmable architecture "is expected to
// improve the yield of the unreliable devices making up the PLA".
#pragma once

#include <cstdint>
#include <vector>

#include "core/gnor_pla.h"
#include "fault/repair.h"

namespace ambit {
class ThreadPool;
}

namespace ambit::fault {

/// One point of the yield curve.
struct YieldPoint {
  double defect_rate = 0;
  double naive_yield = 0;
  double repaired_yield = 0;
  double mean_relocations = 0;  ///< over successful repairs
  /// Fraction of trials whose repaired array also verified functionally
  /// equivalent to the nominal PLA (only when YieldSpec::functional_check;
  /// otherwise equals repaired_yield by construction).
  double functional_yield = 0;
};

/// Experiment parameters.
struct YieldSpec {
  int spare_rows = 4;
  int trials = 200;
  std::uint64_t seed = 99;
  /// When set, every successful repair is additionally verified by
  /// exhaustive bit-parallel evaluation (Evaluator::evaluate_batch)
  /// against the nominal array. Requires the PLA input count to be at
  /// most TruthTable::kMaxInputs.
  bool functional_check = false;
  /// Worker threads fanning the Monte-Carlo trials out. Trial t of rate
  /// r draws from Rng::stream(seed, r * trials + t), so the curve is a
  /// pure function of the spec — bit-identical for ANY worker count,
  /// including 1 (see the determinism test in tests/fault_test.cpp).
  int workers = 1;
};

/// True when `pla`'s product plane can be programmed on its nominal
/// rows under `defects` (rows 0..products-1) without any remapping.
bool naive_programmable(const core::GnorPla& pla, const DefectMap& defects);

/// Runs the Monte-Carlo sweep over `defect_rates`. Spawns spec.workers
/// threads when > 1.
std::vector<YieldPoint> yield_sweep(const core::GnorPla& pla,
                                    const std::vector<double>& defect_rates,
                                    const YieldSpec& spec = {});

/// As above, but fans the trials across an existing pool (spec.workers
/// is ignored). Long-running callers — the serve subsystem, benches —
/// reuse one pool across sweeps instead of respawning threads.
std::vector<YieldPoint> yield_sweep(const core::GnorPla& pla,
                                    const std::vector<double>& defect_rates,
                                    const YieldSpec& spec, ThreadPool& pool);

}  // namespace ambit::fault
