#include "fault/repair.h"

#include "util/error.h"

namespace ambit::fault {

using core::CellConfig;
using core::GnorPla;
using core::GnorPlane;

bool row_compatible(const GnorPlane& target_plane, int product,
                    const DefectMap& defects, int row) {
  check(product >= 0 && product < target_plane.rows(),
        "row_compatible: product out of range");
  check(row >= 0 && row < defects.rows(), "row_compatible: row out of range");
  check(defects.cols() == target_plane.cols(),
        "row_compatible: column count mismatch");
  for (int c = 0; c < target_plane.cols(); ++c) {
    if (!DefectMap::compatible(defects.at(row, c),
                               target_plane.cell(product, c))) {
      return false;
    }
  }
  return true;
}

namespace {

/// Kuhn's augmenting-path bipartite matching: products -> rows.
class Matcher {
 public:
  Matcher(int products, int rows)
      : products_(products),
        adjacency_(static_cast<std::size_t>(products)),
        row_match_(static_cast<std::size_t>(rows), -1) {}

  void add_edge(int product, int row) {
    adjacency_[static_cast<std::size_t>(product)].push_back(row);
  }

  /// Returns the matched row per product, or empty on failure.
  std::vector<int> solve() {
    std::vector<int> product_match(static_cast<std::size_t>(products_), -1);
    for (int p = 0; p < products_; ++p) {
      std::vector<bool> visited(row_match_.size(), false);
      if (!augment(p, visited)) {
        return {};
      }
    }
    for (std::size_t r = 0; r < row_match_.size(); ++r) {
      if (row_match_[r] >= 0) {
        product_match[static_cast<std::size_t>(row_match_[r])] =
            static_cast<int>(r);
      }
    }
    return product_match;
  }

 private:
  bool augment(int product, std::vector<bool>& visited) {
    for (const int row : adjacency_[static_cast<std::size_t>(product)]) {
      if (visited[static_cast<std::size_t>(row)]) {
        continue;
      }
      visited[static_cast<std::size_t>(row)] = true;
      if (row_match_[static_cast<std::size_t>(row)] < 0 ||
          augment(row_match_[static_cast<std::size_t>(row)], visited)) {
        row_match_[static_cast<std::size_t>(row)] = product;
        return true;
      }
    }
    return false;
  }

  int products_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> row_match_;
};

}  // namespace

RepairResult repair_product_plane(const GnorPla& pla, const DefectMap& defects,
                                  int spare_rows) {
  const GnorPlane& plane = pla.product_plane();
  check(spare_rows >= 0, "repair_product_plane: negative spare count");
  check(defects.rows() == plane.rows() + spare_rows,
        "repair_product_plane: defect map must cover products + spares");
  check(defects.cols() == plane.cols(),
        "repair_product_plane: defect map column mismatch");

  Matcher matcher(plane.rows(), defects.rows());
  for (int p = 0; p < plane.rows(); ++p) {
    // Nominal row first so healthy products stay in place and the
    // augmenting search minimizes gratuitous relocation.
    if (p < defects.rows() && row_compatible(plane, p, defects, p)) {
      matcher.add_edge(p, p);
    }
    for (int r = 0; r < defects.rows(); ++r) {
      if (r != p && row_compatible(plane, p, defects, r)) {
        matcher.add_edge(p, r);
      }
    }
  }
  RepairResult result;
  result.row_of_product = matcher.solve();
  result.success = !result.row_of_product.empty() || plane.rows() == 0;
  if (result.success && plane.rows() == 0) {
    result.row_of_product.clear();
  }
  for (int p = 0; p < static_cast<int>(result.row_of_product.size()); ++p) {
    result.relocated += result.row_of_product[static_cast<std::size_t>(p)] != p;
  }
  return result;
}

GnorPla apply_repair(const GnorPla& pla, const RepairResult& repair,
                     int spare_rows) {
  check(repair.success, "apply_repair: repair did not succeed");
  check(static_cast<int>(repair.row_of_product.size()) == pla.num_products(),
        "apply_repair: assignment arity mismatch");
  GnorPla physical(pla.num_inputs(), pla.num_products() + spare_rows,
                   pla.num_outputs());
  for (int p = 0; p < pla.num_products(); ++p) {
    const int row = repair.row_of_product[static_cast<std::size_t>(p)];
    for (int c = 0; c < pla.num_inputs(); ++c) {
      physical.product_plane().set_cell(row, c,
                                        pla.product_plane().cell(p, c));
    }
    for (int o = 0; o < pla.num_outputs(); ++o) {
      physical.output_plane().set_cell(o, row,
                                       pla.output_plane().cell(o, p));
    }
  }
  for (int o = 0; o < pla.num_outputs(); ++o) {
    physical.set_buffer_inverted(o, pla.buffer_inverted(o));
  }
  return physical;
}

}  // namespace ambit::fault
