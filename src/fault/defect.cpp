#include "fault/defect.h"

#include "util/error.h"

namespace ambit::fault {

DefectMap::DefectMap(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      index_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
             -1) {
  check(rows >= 0 && cols >= 0, "DefectMap: negative dimensions");
}

void DefectMap::add(const Defect& defect) {
  check(defect.row >= 0 && defect.row < rows_ && defect.col >= 0 &&
            defect.col < cols_,
        "DefectMap::add: cell out of range");
  const std::size_t flat =
      static_cast<std::size_t>(defect.row) * static_cast<std::size_t>(cols_) +
      static_cast<std::size_t>(defect.col);
  check(index_[flat] < 0, "DefectMap::add: duplicate defect");
  index_[flat] = static_cast<int>(defects_.size());
  defects_.push_back(defect);
}

const Defect* DefectMap::at(int row, int col) const {
  check(row >= 0 && row < rows_ && col >= 0 && col < cols_,
        "DefectMap::at: cell out of range");
  const int idx = index_[static_cast<std::size_t>(row) *
                             static_cast<std::size_t>(cols_) +
                         static_cast<std::size_t>(col)];
  return idx < 0 ? nullptr : &defects_[static_cast<std::size_t>(idx)];
}

bool DefectMap::compatible(const Defect* defect, core::CellConfig wanted) {
  if (defect == nullptr) {
    return true;
  }
  switch (defect->type) {
    case DefectType::kStuckOff: return wanted == core::CellConfig::kOff;
    case DefectType::kStuckN: return wanted == core::CellConfig::kPass;
    case DefectType::kStuckP: return wanted == core::CellConfig::kInvert;
  }
  return false;
}

DefectMap sample_defects(int rows, int cols, double rate, Rng& rng) {
  check(rate >= 0 && rate <= 1, "sample_defects: rate out of [0,1]");
  DefectMap map(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!rng.next_bool(rate)) {
        continue;
      }
      const auto kind = rng.next_below(3);
      map.add(Defect{.row = r,
                     .col = c,
                     .type = kind == 0   ? DefectType::kStuckOff
                             : kind == 1 ? DefectType::kStuckN
                                         : DefectType::kStuckP});
    }
  }
  return map;
}

}  // namespace ambit::fault
