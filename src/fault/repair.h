// Defect-aware mapping of product terms onto a partially defective
// GNOR product plane (the Schmid & Leblebici-style fault tolerance the
// paper cites as [6], recast for the ambipolar array).
//
// A physical plane has R >= P rows (spare rows included). Product term
// k can live on physical row r iff every cell of the row is compatible
// with the term's required configuration (DefectMap::compatible). The
// mapper solves the product→row assignment as maximum bipartite
// matching (Kuhn's augmenting paths) — the regularity of the PLA is
// precisely what makes this repair cheap, the paper's argument for the
// approach.
#pragma once

#include <vector>

#include "core/gnor_pla.h"
#include "fault/defect.h"

namespace ambit::fault {

/// Result of a defect-aware mapping attempt.
struct RepairResult {
  bool success = false;
  /// Physical row of each product term (size = products) when success.
  std::vector<int> row_of_product;
  /// Number of products that had to move off their nominal row.
  int relocated = 0;
};

/// True when product row `pattern` (cells for each input column) can be
/// programmed on physical row `row` of the defect map.
bool row_compatible(const core::GnorPlane& target_plane, int product,
                    const DefectMap& defects, int row);

/// Maps every product row of `pla`'s product plane onto a physical
/// plane with `spare_rows` extra rows under `defects` (which must have
/// products+spare_rows rows and inputs columns).
RepairResult repair_product_plane(const core::GnorPla& pla,
                                  const DefectMap& defects, int spare_rows);

/// Applies a repair: returns a GnorPla whose product plane is laid out
/// on the physical rows (spare rows programmed off) with plane-2
/// columns permuted to match. The result computes the same function.
core::GnorPla apply_repair(const core::GnorPla& pla, const RepairResult& repair,
                           int spare_rows);

}  // namespace ambit::fault
