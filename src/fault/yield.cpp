#include "fault/yield.h"

#include <optional>

#include "core/evaluator.h"
#include "util/error.h"

namespace ambit::fault {

bool naive_programmable(const core::GnorPla& pla, const DefectMap& defects) {
  const core::GnorPlane& plane = pla.product_plane();
  check(defects.rows() >= plane.rows() && defects.cols() == plane.cols(),
        "naive_programmable: defect map too small");
  for (int p = 0; p < plane.rows(); ++p) {
    if (!row_compatible(plane, p, defects, p)) {
      return false;
    }
  }
  return true;
}

std::vector<YieldPoint> yield_sweep(const core::GnorPla& pla,
                                    const std::vector<double>& defect_rates,
                                    const YieldSpec& spec) {
  check(spec.trials > 0, "yield_sweep: need at least one trial");
  check(spec.spare_rows >= 0, "yield_sweep: negative spare rows");
  // The nominal function, computed ONCE through the bit-parallel batch
  // path; every verified trial then compares against these words.
  std::optional<logic::TruthTable> reference;
  if (spec.functional_check) {
    reference = exhaustive_truth_table(pla);
  }
  std::vector<YieldPoint> curve;
  Rng rng(spec.seed);
  for (const double rate : defect_rates) {
    YieldPoint point;
    point.defect_rate = rate;
    int naive_ok = 0;
    int repaired_ok = 0;
    int functional_ok = 0;
    long long relocations = 0;
    for (int t = 0; t < spec.trials; ++t) {
      const DefectMap defects =
          sample_defects(pla.num_products() + spec.spare_rows,
                         pla.num_inputs(), rate, rng);
      naive_ok += naive_programmable(pla, defects);
      const RepairResult repair =
          repair_product_plane(pla, defects, spec.spare_rows);
      if (repair.success) {
        ++repaired_ok;
        relocations += repair.relocated;
        if (reference.has_value()) {
          const core::GnorPla physical =
              apply_repair(pla, repair, spec.spare_rows);
          functional_ok += equivalent(physical, *reference);
        } else {
          ++functional_ok;
        }
      }
    }
    point.naive_yield = static_cast<double>(naive_ok) / spec.trials;
    point.repaired_yield = static_cast<double>(repaired_ok) / spec.trials;
    point.functional_yield = static_cast<double>(functional_ok) / spec.trials;
    point.mean_relocations =
        repaired_ok > 0 ? static_cast<double>(relocations) / repaired_ok : 0;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace ambit::fault
