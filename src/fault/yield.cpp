#include "fault/yield.h"

#include <optional>

#include "core/evaluator.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace ambit::fault {

bool naive_programmable(const core::GnorPla& pla, const DefectMap& defects) {
  const core::GnorPlane& plane = pla.product_plane();
  check(defects.rows() >= plane.rows() && defects.cols() == plane.cols(),
        "naive_programmable: defect map too small");
  for (int p = 0; p < plane.rows(); ++p) {
    if (!row_compatible(plane, p, defects, p)) {
      return false;
    }
  }
  return true;
}

namespace {

/// What one Monte-Carlo trial contributes to its curve point. Each
/// trial writes exactly one slot of a preallocated vector, so workers
/// never contend and the reduction below is a sequential sum in trial
/// order — the curve cannot depend on scheduling.
struct TrialOutcome {
  bool naive = false;
  bool repaired = false;
  bool functional = false;
  int relocated = 0;
};

TrialOutcome run_trial(const core::GnorPla& pla, double rate,
                       const YieldSpec& spec,
                       const logic::TruthTable* reference,
                       std::uint64_t stream_index) {
  // The trial's entire draw sequence comes from its own RNG stream,
  // derived from (seed, global trial index) — never from a shared
  // sequential generator (see Rng::stream).
  Rng rng = Rng::stream(spec.seed, stream_index);
  TrialOutcome outcome;
  const DefectMap defects = sample_defects(
      pla.num_products() + spec.spare_rows, pla.num_inputs(), rate, rng);
  outcome.naive = naive_programmable(pla, defects);
  const RepairResult repair =
      repair_product_plane(pla, defects, spec.spare_rows);
  if (repair.success) {
    outcome.repaired = true;
    outcome.relocated = repair.relocated;
    if (reference != nullptr) {
      const core::GnorPla physical = apply_repair(pla, repair, spec.spare_rows);
      outcome.functional = equivalent(physical, *reference);
    } else {
      outcome.functional = true;
    }
  }
  return outcome;
}

}  // namespace

std::vector<YieldPoint> yield_sweep(const core::GnorPla& pla,
                                    const std::vector<double>& defect_rates,
                                    const YieldSpec& spec, ThreadPool& pool) {
  check(spec.trials > 0, "yield_sweep: need at least one trial");
  check(spec.spare_rows >= 0, "yield_sweep: negative spare rows");
  // The nominal function, computed ONCE through the bit-parallel batch
  // path; every verified trial then compares against these words.
  std::optional<logic::TruthTable> reference;
  if (spec.functional_check) {
    reference = exhaustive_truth_table(pla, pool);
  }
  const logic::TruthTable* ref_ptr =
      reference.has_value() ? &*reference : nullptr;
  std::vector<YieldPoint> curve;
  for (std::size_t r = 0; r < defect_rates.size(); ++r) {
    const double rate = defect_rates[r];
    std::vector<TrialOutcome> outcomes(
        static_cast<std::size_t>(spec.trials));
    pool.parallel_for(
        0, static_cast<std::uint64_t>(spec.trials), /*grain=*/1,
        [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t t = lo; t < hi; ++t) {
            outcomes[t] = run_trial(
                pla, rate, spec, ref_ptr,
                static_cast<std::uint64_t>(r) *
                        static_cast<std::uint64_t>(spec.trials) +
                    t);
          }
        });
    YieldPoint point;
    point.defect_rate = rate;
    int naive_ok = 0;
    int repaired_ok = 0;
    int functional_ok = 0;
    long long relocations = 0;
    for (const TrialOutcome& outcome : outcomes) {
      naive_ok += outcome.naive;
      repaired_ok += outcome.repaired;
      functional_ok += outcome.functional;
      relocations += outcome.relocated;
    }
    point.naive_yield = static_cast<double>(naive_ok) / spec.trials;
    point.repaired_yield = static_cast<double>(repaired_ok) / spec.trials;
    point.functional_yield = static_cast<double>(functional_ok) / spec.trials;
    point.mean_relocations =
        repaired_ok > 0 ? static_cast<double>(relocations) / repaired_ok : 0;
    curve.push_back(point);
  }
  return curve;
}

std::vector<YieldPoint> yield_sweep(const core::GnorPla& pla,
                                    const std::vector<double>& defect_rates,
                                    const YieldSpec& spec) {
  ThreadPool pool(spec.workers > 1 ? spec.workers : 0);
  return yield_sweep(pla, defect_rates, spec, pool);
}

}  // namespace ambit::fault
