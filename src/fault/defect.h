// Defect models for ambipolar-CNFET arrays (paper §5: "a fault-tolerant
// design approach for PLAs [6] makes use of the regular architecture
// and is expected to improve the yield of the unreliable devices
// making up the PLA").
//
// Three manufacturing/retention defect classes are modelled per cell:
//
//   kStuckOff — the device never conducts (missing/metallic-removed
//               tube, open contact, PG charge fully leaked to V0);
//   kStuckN   — the polarity gate is shorted high: permanently n-type;
//   kStuckP   — the polarity gate is shorted low: permanently p-type.
//
// A cell with a defect can still be USED when the target configuration
// happens to match the stuck behaviour — that compatibility is what
// the defect-aware mapper in repair.h exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gnor.h"
#include "util/rng.h"

namespace ambit::fault {

/// Kind of a single-cell defect.
enum class DefectType {
  kStuckOff,
  kStuckN,
  kStuckP,
};

/// One defective cell.
struct Defect {
  int row = 0;
  int col = 0;
  DefectType type = DefectType::kStuckOff;
};

/// Sparse defect map of one rows×cols array.
class DefectMap {
 public:
  DefectMap(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void add(const Defect& defect);
  std::size_t count() const { return defects_.size(); }
  const std::vector<Defect>& defects() const { return defects_; }

  /// The defect at (row, col), or nullptr when the cell is healthy.
  const Defect* at(int row, int col) const;

  /// True when a cell with this defect can implement `wanted`:
  /// healthy cells implement anything; stuck-off cells only kOff;
  /// stuck-n only kPass; stuck-p only kInvert.
  static bool compatible(const Defect* defect, core::CellConfig wanted);

 private:
  int rows_;
  int cols_;
  std::vector<Defect> defects_;
  std::vector<int> index_;  // dense row-major -> defect index or -1
};

/// Samples an independent per-cell defect map: each cell is defective
/// with probability `rate`; defective cells draw a type uniformly.
/// Deterministic for a given RNG state.
DefectMap sample_defects(int rows, int cols, double rate, Rng& rng);

}  // namespace ambit::fault
