#include "logic/pla_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace ambit::logic {
namespace {

/// One cube row as read, kept with its source line so the second
/// parsing pass (character decoding) can still report file:line.
struct RawRow {
  std::string inputs;
  std::string outputs;
  int line = 0;
};

}  // namespace

PlaFile read_pla(std::istream& in, const std::string& name) {
  PlaFile pla;
  pla.name = name;

  // Every diagnostic carries "<file>:<line>" so that a malformed cover
  // arriving through the serve LOAD path (a routine event for a
  // long-running server) points straight at the offending row.
  const std::string where = name.empty() ? "<pla>" : name;
  const auto fail = [&where](int line, const std::string& message) -> void {
    throw Error(".pla parse error at " + where + ":" + std::to_string(line) +
                ": " + message);
  };
  const auto parse_count = [&fail](int line, const std::string& token,
                                   const char* directive) -> int {
    int value = 0;
    std::size_t used = 0;
    try {
      value = std::stoi(token, &used);
    } catch (const std::exception&) {
      used = std::string::npos;
    }
    if (used != token.size() || value < 0) {
      fail(line, std::string(directive) +
                     " needs a non-negative integer, got '" + token + "'");
    }
    return value;
  };

  int num_inputs = -1;
  int num_outputs = -1;
  int declared_products = -1;
  bool saw_type = false;
  bool done = false;
  std::vector<RawRow> raw_rows;

  std::string line;
  int line_no = 0;
  while (!done && std::getline(in, line)) {
    ++line_no;
    // Strip comments ('#' to end of line) and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string_view text = trim(line);
    if (text.empty()) {
      continue;
    }
    if (text[0] == '.') {
      const auto tokens = split_ws(text);
      const std::string& directive = tokens[0];
      if (directive == ".i") {
        if (tokens.size() != 2) fail(line_no, ".i needs one argument");
        if (!raw_rows.empty()) fail(line_no, ".i after cube rows");
        num_inputs = parse_count(line_no, tokens[1], ".i");
      } else if (directive == ".o") {
        if (tokens.size() != 2) fail(line_no, ".o needs one argument");
        if (!raw_rows.empty()) fail(line_no, ".o after cube rows");
        num_outputs = parse_count(line_no, tokens[1], ".o");
      } else if (directive == ".p") {
        if (tokens.size() != 2) fail(line_no, ".p needs one argument");
        declared_products = parse_count(line_no, tokens[1], ".p");
      } else if (directive == ".ilb") {
        pla.input_labels.assign(tokens.begin() + 1, tokens.end());
      } else if (directive == ".ob") {
        pla.output_labels.assign(tokens.begin() + 1, tokens.end());
      } else if (directive == ".type") {
        if (tokens.size() != 2) fail(line_no, ".type needs one argument");
        if (tokens[1] == "f") {
          pla.type = PlaType::kF;
        } else if (tokens[1] == "fd") {
          pla.type = PlaType::kFd;
        } else {
          fail(line_no, "unsupported .type '" + tokens[1] + "'");
        }
        saw_type = true;
      } else if (directive == ".e" || directive == ".end") {
        done = true;
      } else {
        fail(line_no, "unknown directive '" + directive + "'");
      }
      continue;
    }
    // Cube row: "<inputs> <outputs>" or packed "inputsoutputs".
    const auto tokens = split_ws(text);
    if (num_inputs < 0 || num_outputs < 0) {
      fail(line_no, "cube row before .i/.o");
    }
    std::string in_part;
    std::string out_part;
    if (tokens.size() == 2) {
      in_part = tokens[0];
      out_part = tokens[1];
    } else if (tokens.size() == 1 &&
               // 64-bit sum: .i/.o each fit an int, so the sum may not
               // (found by fuzz_pla_io with .i 2147483647 — UBSan).
               static_cast<long long>(tokens[0].size()) ==
                   static_cast<long long>(num_inputs) + num_outputs) {
      in_part = tokens[0].substr(0, static_cast<std::size_t>(num_inputs));
      out_part = tokens[0].substr(static_cast<std::size_t>(num_inputs));
    } else {
      fail(line_no, "malformed cube row '" + std::string(text) + "'");
    }
    if (static_cast<int>(in_part.size()) != num_inputs) {
      fail(line_no, "cube input field is " +
                        std::to_string(in_part.size()) + " wide but .i declares " +
                        std::to_string(num_inputs));
    }
    if (static_cast<int>(out_part.size()) != num_outputs) {
      fail(line_no, "cube output field is " +
                        std::to_string(out_part.size()) +
                        " wide but .o declares " + std::to_string(num_outputs));
    }
    raw_rows.push_back(
        RawRow{std::move(in_part), std::move(out_part), line_no});
  }

  if (num_inputs < 0) throw Error(where + ": missing .i directive");
  if (num_outputs < 0) throw Error(where + ": missing .o directive");
  if (!saw_type) pla.type = PlaType::kFd;

  pla.onset = Cover(num_inputs, num_outputs);
  pla.dcset = Cover(num_inputs, num_outputs);

  for (const RawRow& row : raw_rows) {
    Cube on(num_inputs, num_outputs);
    Cube dc(num_inputs, num_outputs);
    for (int i = 0; i < num_inputs; ++i) {
      Literal lit = Literal::kDontCare;
      switch (row.inputs[static_cast<std::size_t>(i)]) {
        case '0': lit = Literal::kZero; break;
        case '1': lit = Literal::kOne; break;
        case '-':
        case '2': lit = Literal::kDontCare; break;
        default:
          fail(row.line,
               "bad input character '" +
                   std::string(1, row.inputs[static_cast<std::size_t>(i)]) +
                   "'");
      }
      on.set_input(i, lit);
      dc.set_input(i, lit);
    }
    bool any_on = false;
    bool any_dc = false;
    for (int j = 0; j < num_outputs; ++j) {
      switch (row.outputs[static_cast<std::size_t>(j)]) {
        case '1':
        case '4':
          on.set_output(j, true);
          any_on = true;
          break;
        case '-':
        case '2':
          if (pla.type == PlaType::kFd) {
            dc.set_output(j, true);
            any_dc = true;
          }
          break;
        case '0':
        case '~':
          break;
        default:
          fail(row.line,
               "bad output character '" +
                   std::string(1, row.outputs[static_cast<std::size_t>(j)]) +
                   "'");
      }
    }
    if (any_on) pla.onset.add(std::move(on));
    if (any_dc) pla.dcset.add(std::move(dc));
  }

  if (declared_products >= 0 &&
      declared_products != static_cast<int>(raw_rows.size())) {
    throw Error(where + ": .p declares " + std::to_string(declared_products) +
                " products but " + std::to_string(raw_rows.size()) +
                " rows were given");
  }
  return pla;
}

PlaFile read_pla_file(const std::string& path) {
  std::ifstream in(path);
  check(in.good(), "cannot open .pla file: " + path);
  // Derive a short name: basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name.erase(0, slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name.erase(dot);
  }
  return read_pla(in, name);
}

void write_pla(std::ostream& out, const PlaFile& pla) {
  const int ni = pla.num_inputs();
  const int no = pla.num_outputs();
  out << ".i " << ni << "\n.o " << no << "\n";
  if (!pla.input_labels.empty()) {
    out << ".ilb";
    for (const auto& label : pla.input_labels) out << ' ' << label;
    out << "\n";
  }
  if (!pla.output_labels.empty()) {
    out << ".ob";
    for (const auto& label : pla.output_labels) out << ' ' << label;
    out << "\n";
  }
  out << ".type " << (pla.type == PlaType::kF ? "f" : "fd") << "\n";
  out << ".p " << (pla.onset.size() + pla.dcset.size()) << "\n";

  const auto emit = [&](const Cube& c, char on_char) {
    std::string row;
    for (int i = 0; i < ni; ++i) {
      switch (c.input(i)) {
        case Literal::kZero: row += '0'; break;
        case Literal::kOne: row += '1'; break;
        default: row += '-'; break;
      }
    }
    row += ' ';
    for (int j = 0; j < no; ++j) {
      row += c.output(j) ? on_char : '0';
    }
    out << row << "\n";
  };
  for (const Cube& c : pla.onset) emit(c, '1');
  for (const Cube& c : pla.dcset) emit(c, '-');
  out << ".e\n";
}

void write_pla_file(const std::string& path, const PlaFile& pla) {
  std::ofstream out(path);
  check(out.good(), "cannot create .pla file: " + path);
  write_pla(out, pla);
  check(out.good(), "error while writing .pla file: " + path);
}

PlaFile make_pla(const Cover& onset, const std::string& name) {
  PlaFile pla;
  pla.name = name;
  pla.type = PlaType::kFd;
  pla.onset = onset;
  pla.dcset = Cover(onset.num_inputs(), onset.num_outputs());
  for (int i = 0; i < onset.num_inputs(); ++i) {
    pla.input_labels.push_back("in" + std::to_string(i));
  }
  for (int j = 0; j < onset.num_outputs(); ++j) {
    pla.output_labels.push_back("out" + std::to_string(j));
  }
  return pla;
}

}  // namespace ambit::logic
