// SIMD lane kernels with one-time runtime dispatch.
//
// Every hot batch-evaluation loop in the repo bottoms out in the same
// three word-wide operations over PatternBatch lanes — OR a lane in,
// OR a complemented lane in, complement-and-mask a lane — plus one
// composite: the NOR-plane sweep (rows of pull-down terms over shared
// input lanes, the paper's two-plane PLA reduced to bit operations).
// This header centralizes them behind a kernel table selected at
// runtime from cpu::active_tier() (util/cpu_features.h):
//
//   tier      width    where it comes from
//   -------   ------   ------------------------------------------
//   avx2      256-bit  lane_kernels_avx2.cpp (x86-64, cpuid-gated)
//   neon      128-bit  lane_kernels_neon.cpp (aarch64 baseline)
//   scalar    64-bit   lane_kernels.cpp (portable, always built;
//                      the PR-1 u64 loops, kept as the reference)
//
// EXACTNESS: every tier is pure AND/OR/NOT over the same word layout,
// so all tiers are BIT-IDENTICAL on every input — the batch≡scalar
// property suites run under each tier (tests/lane_kernels_test.cpp,
// CI's forced-scalar leg) and the Evaluator bit-locality contract
// (core/evaluator.h) holds regardless of dispatch.
//
// ALIGNMENT CONTRACT: lane pointers are NOT guaranteed vector-aligned.
// PatternBatch aligns its backing store to kLaneAlignment bytes, but a
// lane at `base + signal * words_per_lane` lands on a 32-byte boundary
// only when words_per_lane happens to be a multiple of 4 — so every
// SIMD kernel MUST use unaligned loads/stores (loadu/storeu); aligned
// ones would fault on odd geometries. (On every AVX2-era core an
// unaligned load on an aligned address costs the same as an aligned
// load, so this contract costs nothing where it doesn't matter.)
//
// The plane sweep is cache-blocked: words are processed in tiles sized
// so one tile of every input lane stays resident across all rows of
// the plane (large covers — hundreds of products over the same input
// lanes — are memory-bound without this; see docs/BENCHMARKS.md).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace ambit::logic {

class PatternBatch;

namespace lanes {

/// PatternBatch backing-store alignment in bytes (one AVX-512 line /
/// one cache line). Base pointers are aligned to this; individual lane
/// pointers are NOT — see the alignment contract above.
inline constexpr std::size_t kLaneAlignment = 64;

/// One pull-down term of a plane row: which input lane conducts, and
/// with which polarity (invert = p-type cell / complement rail: the
/// term contributes ~lane instead of lane).
struct SweepTerm {
  std::int32_t lane = 0;
  bool invert = false;
};

/// One output row of a plane sweep: a CSR range into the term array
/// plus the final polarity. complement=true is a NOR row (invert the
/// pull-down accumulator — the GNOR/AND/OR planes); complement=false
/// keeps the raw OR (a plane-2 row read through its inverting buffer
/// tap).
struct SweepRow {
  std::uint64_t first_term = 0;
  std::uint64_t num_terms = 0;
  bool complement = true;
};

/// The per-tier kernel table. All function pointers are non-null.
/// Raw-pointer signatures keep the SIMD translation units free of any
/// repo dependency; PatternBatch callers use the wrappers below.
struct LaneKernels {
  const char* name;

  /// dst[w] |= src[w] for w in [0, n).
  void (*or_into)(std::uint64_t* dst, const std::uint64_t* src,
                  std::uint64_t n);

  /// dst[w] |= ~src[w] for w in [0, n).
  void (*or_not_into)(std::uint64_t* dst, const std::uint64_t* src,
                      std::uint64_t n);

  /// dst[w] = ~dst[w] for w in [0, n), then dst[n-1] &= tail_mask.
  /// n must be > 0.
  void (*complement_masked)(std::uint64_t* dst, std::uint64_t n,
                            std::uint64_t tail_mask);

  /// The tiled plane sweep. Input lane l occupies words
  /// [l*words_per_lane, (l+1)*words_per_lane) of `in`; output row r
  /// likewise in `out`. Every output row is fully overwritten:
  /// row r = OR of its terms (complemented per term), then NOR'd when
  /// rows[r].complement, and the final word is ANDed with tail_mask.
  /// A row with zero terms is constant 1 (NOR) or 0 (OR). `in` and
  /// `out` must not alias.
  void (*plane_sweep)(const SweepRow* rows, std::uint64_t num_rows,
                      const SweepTerm* terms, const std::uint64_t* in,
                      std::uint64_t num_in_lanes, std::uint64_t words_per_lane,
                      std::uint64_t tail_mask, std::uint64_t* out);
};

/// The kernel table for cpu::active_tier() — one atomic load per call,
/// so per-sweep dispatch cost is negligible and AMBIT_FORCE_SCALAR /
/// cpu::force_tier() take effect on the next sweep.
const LaneKernels& kernels();

/// The kernel table for a specific tier, clamped to what this binary
/// and CPU can run (asking for an unavailable tier returns the scalar
/// table). Test/bench hook for comparing tiers in one process.
const LaneKernels& kernels_for(cpu::SimdTier tier);

/// PatternBatch-level wrapper over plane_sweep: evaluates `num_rows`
/// rows of terms over `in`'s lanes into `out`'s lanes (shapes checked
/// under AMBIT_CHECK). `out` must hold exactly `num_rows` signals over
/// `in.num_patterns()` patterns. Handles the 0-pattern and 0-row edge
/// cases by doing nothing.
void nor_plane_sweep(const SweepRow* rows, std::uint64_t num_rows,
                     const SweepTerm* terms, const PatternBatch& in,
                     PatternBatch& out);

// Registration hooks for the ISA-specific translation units: each
// returns its kernel table, or nullptr when that ISA is not compiled
// into this binary (wrong architecture / unsupported compiler). Used
// only by kernels_for(); callers never touch these.
const LaneKernels* avx2_kernels();
const LaneKernels* neon_kernels();
const LaneKernels& scalar_kernels();

}  // namespace lanes
}  // namespace ambit::logic
