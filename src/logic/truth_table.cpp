#include "logic/truth_table.h"

#include <bit>

#include "util/error.h"

namespace ambit::logic {

TruthTable::TruthTable(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  check(num_inputs >= 0 && num_inputs <= kMaxInputs,
        "TruthTable: input count out of range");
  check(num_outputs >= 1, "TruthTable: at least one output required");
  const std::uint64_t minterms = std::uint64_t{1} << num_inputs_;
  words_per_output_ = (minterms + 63) / 64;
  bits_.assign(words_per_output_ * static_cast<std::uint64_t>(num_outputs_), 0);
}

TruthTable TruthTable::from_cover(const Cover& cover) {
  TruthTable table(cover.num_inputs(), cover.num_outputs());
  const std::uint64_t minterms = table.num_minterms();
  for (const Cube& c : cover) {
    // Enumerate the minterms of the cube directly: iterate over the
    // assignments of its don't-care variables.
    std::vector<int> free_vars;
    std::uint64_t base = 0;
    bool cube_input_empty = false;
    for (int i = 0; i < cover.num_inputs(); ++i) {
      switch (c.input(i)) {
        case Literal::kOne: base |= std::uint64_t{1} << i; break;
        case Literal::kZero: break;
        case Literal::kDontCare: free_vars.push_back(i); break;
        case Literal::kEmpty: cube_input_empty = true; break;
      }
    }
    if (cube_input_empty) {
      continue;
    }
    const std::uint64_t combos = std::uint64_t{1} << free_vars.size();
    for (std::uint64_t k = 0; k < combos; ++k) {
      std::uint64_t minterm = base;
      for (std::size_t b = 0; b < free_vars.size(); ++b) {
        if ((k >> b) & 1) {
          minterm |= std::uint64_t{1} << free_vars[b];
        }
      }
      require(minterm < minterms, "TruthTable::from_cover: bad minterm");
      for (int j = 0; j < cover.num_outputs(); ++j) {
        if (c.output(j)) {
          table.set(minterm, j, true);
        }
      }
    }
  }
  return table;
}

TruthTable TruthTable::from_outputs(int num_inputs,
                                    const PatternBatch& outputs) {
  check(outputs.num_signals() >= 1,
        "TruthTable::from_outputs: at least one output lane required");
  TruthTable table(num_inputs, outputs.num_signals());
  check(outputs.num_patterns() == table.num_minterms(),
        "TruthTable::from_outputs: batch does not cover the minterm space");
  require(outputs.words_per_lane() == table.words_per_output_,
          "TruthTable::from_outputs: lane/word layout mismatch");
  for (int j = 0; j < table.num_outputs_; ++j) {
    const std::uint64_t* lane = outputs.lane(j);
    const std::uint64_t start =
        static_cast<std::uint64_t>(j) * table.words_per_output_;
    for (std::uint64_t w = 0; w < table.words_per_output_; ++w) {
      table.bits_[start + w] = lane[w];
    }
  }
  return table;
}

bool TruthTable::get(std::uint64_t minterm, int out) const {
  require(minterm < num_minterms(), "TruthTable::get: minterm out of range");
  require(out >= 0 && out < num_outputs_, "TruthTable::get: output out of range");
  const std::uint64_t idx =
      static_cast<std::uint64_t>(out) * words_per_output_ + minterm / 64;
  return ((bits_[idx] >> (minterm % 64)) & 1) != 0;
}

void TruthTable::set(std::uint64_t minterm, int out, bool value) {
  require(minterm < num_minterms(), "TruthTable::set: minterm out of range");
  require(out >= 0 && out < num_outputs_, "TruthTable::set: output out of range");
  const std::uint64_t idx =
      static_cast<std::uint64_t>(out) * words_per_output_ + minterm / 64;
  if (value) {
    bits_[idx] |= std::uint64_t{1} << (minterm % 64);
  } else {
    bits_[idx] &= ~(std::uint64_t{1} << (minterm % 64));
  }
}

std::uint64_t TruthTable::count_ones(int out) const {
  require(out >= 0 && out < num_outputs_, "TruthTable::count_ones: bad output");
  std::uint64_t count = 0;
  const std::uint64_t start = static_cast<std::uint64_t>(out) * words_per_output_;
  for (std::uint64_t w = 0; w < words_per_output_; ++w) {
    count += static_cast<std::uint64_t>(std::popcount(bits_[start + w]));
  }
  return count;
}

TruthTable TruthTable::complemented() const {
  TruthTable result(num_inputs_, num_outputs_);
  const std::uint64_t minterms = num_minterms();
  const std::uint64_t tail = minterms % 64;
  const std::uint64_t tail_mask =
      tail == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << tail) - 1);
  for (int j = 0; j < num_outputs_; ++j) {
    const std::uint64_t start = static_cast<std::uint64_t>(j) * words_per_output_;
    for (std::uint64_t w = 0; w < words_per_output_; ++w) {
      const bool last = (w + 1 == words_per_output_);
      result.bits_[start + w] = ~bits_[start + w] & (last ? tail_mask : ~std::uint64_t{0});
    }
  }
  return result;
}

std::uint64_t TruthTable::count_mismatches(const TruthTable& other,
                                           const TruthTable* dontcare) const {
  check(num_inputs_ == other.num_inputs_ && num_outputs_ == other.num_outputs_,
        "TruthTable::count_mismatches: shape mismatch");
  check(dontcare == nullptr || (dontcare->num_inputs_ == num_inputs_ &&
                                dontcare->num_outputs_ == num_outputs_),
        "TruthTable::count_mismatches: dontcare shape mismatch");
  std::uint64_t mismatches = 0;
  for (std::uint64_t w = 0; w < bits_.size(); ++w) {
    std::uint64_t diff = bits_[w] ^ other.bits_[w];
    if (dontcare != nullptr) {
      diff &= ~dontcare->bits_[w];
    }
    mismatches += static_cast<std::uint64_t>(std::popcount(diff));
  }
  return mismatches;
}

bool TruthTable::operator==(const TruthTable& other) const {
  return num_inputs_ == other.num_inputs_ &&
         num_outputs_ == other.num_outputs_ && bits_ == other.bits_;
}

bool equivalent(const Cover& cover, const TruthTable& table) {
  if (cover.num_inputs() != table.num_inputs() ||
      cover.num_outputs() != table.num_outputs()) {
    return false;
  }
  return TruthTable::from_cover(cover) == table;
}

bool equivalent(const Cover& a, const Cover& b) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  return TruthTable::from_cover(a) == TruthTable::from_cover(b);
}

bool contained_in(const Cover& a, const Cover& b) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  const TruthTable ta = TruthTable::from_cover(a);
  const TruthTable tb = TruthTable::from_cover(b);
  for (int j = 0; j < a.num_outputs(); ++j) {
    for (std::uint64_t m = 0; m < ta.num_minterms(); ++m) {
      if (ta.get(m, j) && !tb.get(m, j)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ambit::logic
