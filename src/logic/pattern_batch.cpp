#include "logic/pattern_batch.h"

#include <algorithm>
#include <string>

#include "util/check.h"
#include "util/error.h"

namespace ambit::logic {

namespace {

// Stripe constants for the low six exhaustive input lanes: lane i of an
// exhaustive batch repeats the 64-bit pattern where bit p is bit i of p.
constexpr std::uint64_t kStripe[6] = {
    0xAAAAAAAAAAAAAAAAULL,  // bit 0 of the pattern index
    0xCCCCCCCCCCCCCCCCULL,  // bit 1
    0xF0F0F0F0F0F0F0F0ULL,  // bit 2
    0xFF00FF00FF00FF00ULL,  // bit 3
    0xFFFF0000FFFF0000ULL,  // bit 4
    0xFFFFFFFF00000000ULL,  // bit 5
};

}  // namespace

PatternBatch::PatternBatch(int num_signals, std::uint64_t num_patterns)
    : num_signals_(num_signals), num_patterns_(num_patterns) {
  check(num_signals >= 0, "PatternBatch: negative signal count");
  check(num_patterns <= ~std::uint64_t{0} - 63,
        "PatternBatch: pattern count overflows the word layout");
  words_per_lane_ = (num_patterns + 63) / 64;
  const std::uint64_t tail = num_patterns % 64;
  tail_mask_ = tail == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << tail) - 1);
  words_.assign(words_per_lane_ * static_cast<std::uint64_t>(num_signals), 0);
}

PatternBatch PatternBatch::exhaustive(int num_inputs) {
  check(num_inputs >= 0 && num_inputs < 63,
        "PatternBatch::exhaustive: input count out of range");
  PatternBatch batch(num_inputs, std::uint64_t{1} << num_inputs);
  for (int i = 0; i < num_inputs; ++i) {
    std::uint64_t* words = batch.lane(i);
    if (i < 6) {
      for (std::uint64_t w = 0; w < batch.words_per_lane_; ++w) {
        words[w] = kStripe[i];
      }
    } else {
      // Signal i is bit i of the pattern index: within word w, all 64
      // patterns share that bit, which is bit (i - 6) of w.
      for (std::uint64_t w = 0; w < batch.words_per_lane_; ++w) {
        words[w] = ((w >> (i - 6)) & 1) ? ~std::uint64_t{0} : 0;
      }
    }
  }
  // Sub-word exhaustive batches (num_inputs < 6) must keep the tail
  // padding zero.
  if (batch.words_per_lane_ == 1) {
    for (int i = 0; i < num_inputs; ++i) {
      batch.lane(i)[0] &= batch.tail_mask_;
    }
  }
  return batch;
}

PatternBatch PatternBatch::from_patterns(
    const std::vector<std::vector<bool>>& patterns) {
  const int width =
      patterns.empty() ? 0 : static_cast<int>(patterns.front().size());
  PatternBatch batch(width, patterns.size());
  for (std::uint64_t p = 0; p < patterns.size(); ++p) {
    batch.set_pattern(p, patterns[p]);
  }
  return batch;
}

std::uint64_t PatternBatch::lane_start(int signal) const {
  check(signal >= 0 && signal < num_signals_,
        "PatternBatch: signal index out of range");
  return static_cast<std::uint64_t>(signal) * words_per_lane_;
}

bool PatternBatch::get(std::uint64_t pattern, int signal) const {
  check(pattern < num_patterns_, "PatternBatch::get: pattern out of range");
  return ((words_[lane_start(signal) + pattern / 64] >> (pattern % 64)) & 1) !=
         0;
}

void PatternBatch::set(std::uint64_t pattern, int signal, bool value) {
  check(pattern < num_patterns_, "PatternBatch::set: pattern out of range");
  std::uint64_t& word = words_[lane_start(signal) + pattern / 64];
  const std::uint64_t bit = std::uint64_t{1} << (pattern % 64);
  if (value) {
    word |= bit;
  } else {
    word &= ~bit;
  }
}

std::vector<bool> PatternBatch::pattern(std::uint64_t p) const {
  std::vector<bool> bits(static_cast<std::size_t>(num_signals_));
  for (int s = 0; s < num_signals_; ++s) {
    bits[static_cast<std::size_t>(s)] = get(p, s);
  }
  return bits;
}

void PatternBatch::set_pattern(std::uint64_t p, const std::vector<bool>& bits) {
  check(static_cast<int>(bits.size()) == num_signals_,
        "PatternBatch::set_pattern: width mismatch");
  for (int s = 0; s < num_signals_; ++s) {
    set(p, s, bits[static_cast<std::size_t>(s)]);
  }
}

const std::uint64_t* PatternBatch::lane(int signal) const {
  return words_.data() + lane_start(signal);
}

std::uint64_t* PatternBatch::lane(int signal) {
  return words_.data() + lane_start(signal);
}

void PatternBatch::copy_lane_from(const PatternBatch& src, int src_signal,
                                  int dst_signal) {
  check(src.num_patterns_ == num_patterns_,
        "PatternBatch::copy_lane_from: pattern count mismatch");
  const std::uint64_t* from = src.lane(src_signal);
  std::uint64_t* to = lane(dst_signal);
  for (std::uint64_t w = 0; w < words_per_lane_; ++w) {
    to[w] = from[w];
  }
}

void PatternBatch::assert_tail_clean(const char* where) const {
  if constexpr (invariants_enabled()) {
    if (words_per_lane_ == 0 || tail_mask_ == ~std::uint64_t{0}) {
      return;
    }
    for (int s = 0; s < num_signals_; ++s) {
      AMBIT_CHECK((lane(s)[words_per_lane_ - 1] & ~tail_mask_) == 0,
                  std::string(where) + ": tail padding of lane " +
                      std::to_string(s) + " carries set bits");
    }
  } else {
    (void)where;
  }
}

PatternBatch PatternBatch::slice(std::uint64_t first,
                                 std::uint64_t count) const {
  assert_tail_clean("PatternBatch::slice (source)");
  check(first % 64 == 0, "PatternBatch::slice: first must be word-aligned");
  check(first + count <= num_patterns_ && count > 0,
        "PatternBatch::slice: range out of bounds");
  check(count % 64 == 0 || first + count == num_patterns_,
        "PatternBatch::slice: partial word only allowed at the batch end");
  PatternBatch out(num_signals_, count);
  const std::uint64_t word0 = first / 64;
  for (int s = 0; s < num_signals_; ++s) {
    const std::uint64_t* from = lane(s) + word0;
    std::uint64_t* to = out.lane(s);
    for (std::uint64_t w = 0; w < out.words_per_lane_; ++w) {
      to[w] = from[w];
    }
    // The source's final word is already masked, so the slice's tail
    // padding stays zero by construction; re-mask anyway for safety.
    to[out.words_per_lane_ - 1] &= out.tail_mask_;
  }
  out.assert_tail_clean("PatternBatch::slice (result)");
  return out;
}

void PatternBatch::paste(const PatternBatch& src, std::uint64_t first) {
  src.assert_tail_clean("PatternBatch::paste (source)");
  check(src.num_signals_ == num_signals_,
        "PatternBatch::paste: signal count mismatch");
  check(first % 64 == 0, "PatternBatch::paste: first must be word-aligned");
  check(first + src.num_patterns_ <= num_patterns_,
        "PatternBatch::paste: source does not fit");
  check(src.num_patterns_ % 64 == 0 ||
            first + src.num_patterns_ == num_patterns_,
        "PatternBatch::paste: partial word only allowed at the batch end");
  const std::uint64_t word0 = first / 64;
  for (int s = 0; s < num_signals_; ++s) {
    const std::uint64_t* from = src.lane(s);
    std::uint64_t* to = lane(s) + word0;
    for (std::uint64_t w = 0; w < src.words_per_lane_; ++w) {
      to[w] = from[w];
    }
  }
  // A source slice ending mid-word is only legal at this batch's end,
  // so its (clean) tail padding lands exactly on ours. Assert only
  // from the paste that wrote the final word: sharded sweeps paste
  // disjoint word ranges concurrently, and the tail check reads every
  // lane's last word — from any other shard that read would race the
  // final shard's writes.
  if (first + src.num_patterns_ == num_patterns_) {
    assert_tail_clean("PatternBatch::paste (result)");
  }
}

namespace {

/// Copies `count` bits from bit offset `src_off` of `src` to bit offset
/// `dst_off` of `dst`, chunked so every shift stays strictly below 64.
/// Bits of `dst` outside the destination range are preserved.
void copy_bit_range(const std::uint64_t* src, std::uint64_t src_off,
                    std::uint64_t* dst, std::uint64_t dst_off,
                    std::uint64_t count) {
  while (count > 0) {
    const std::uint64_t s_bit = src_off % 64;
    const std::uint64_t d_bit = dst_off % 64;
    // The chunk ends at the nearest word boundary of EITHER side, so a
    // single masked read/modify/write per iteration suffices and the
    // full-word case (n == 64, only possible when both sides are
    // aligned) is the one place a 64-bit shift could occur.
    const std::uint64_t n =
        std::min({count, 64 - s_bit, 64 - d_bit});
    const std::uint64_t mask =
        n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    const std::uint64_t bits = (src[src_off / 64] >> s_bit) & mask;
    std::uint64_t& word = dst[dst_off / 64];
    word = (word & ~(mask << d_bit)) | (bits << d_bit);
    src_off += n;
    dst_off += n;
    count -= n;
  }
}

}  // namespace

void PatternBatch::copy_patterns_from(const PatternBatch& src,
                                      std::uint64_t src_first,
                                      std::uint64_t dst_first,
                                      std::uint64_t count) {
  check(src.num_signals_ == num_signals_,
        "PatternBatch::copy_patterns_from: signal count mismatch");
  check(src_first + count <= src.num_patterns_,
        "PatternBatch::copy_patterns_from: source range out of bounds");
  check(dst_first + count <= num_patterns_,
        "PatternBatch::copy_patterns_from: destination range out of bounds");
  if (src_first % 64 == 0 && dst_first % 64 == 0) {
    // Word-aligned fast path (the common case for sharded gathers):
    // whole words move by plain copy, and only a trailing partial word
    // needs the read-modify-write merge.
    const std::uint64_t full_words = count / 64;
    const std::uint64_t tail_bits = count % 64;
    for (int s = 0; s < num_signals_; ++s) {
      const std::uint64_t* from = src.lane(s) + src_first / 64;
      std::uint64_t* to = lane(s) + dst_first / 64;
      std::copy(from, from + full_words, to);
      if (tail_bits != 0) {
        const std::uint64_t mask = (std::uint64_t{1} << tail_bits) - 1;
        to[full_words] =
            (to[full_words] & ~mask) | (from[full_words] & mask);
      }
    }
  } else {
    for (int s = 0; s < num_signals_; ++s) {
      copy_bit_range(src.lane(s), src_first, lane(s), dst_first, count);
    }
  }
  // copy_bit_range preserves destination bits outside the copied range
  // BY CONTRACT — the coalescer's exactness proof leans on it — so a
  // clean destination must still be clean (a dirty source tail can only
  // reach our padding through an in-range copy of invalid source bits,
  // which the bounds checks above exclude).
  assert_tail_clean("PatternBatch::copy_patterns_from (result)");
}

void PatternBatch::load_words(const std::uint64_t* src, std::uint64_t count) {
  check(count == total_words(),
        "PatternBatch::load_words: expected " + std::to_string(total_words()) +
            " words, got " + std::to_string(count));
  std::copy(src, src + count, words_.begin());
  if (tail_mask_ != ~std::uint64_t{0}) {
    for (int s = 0; s < num_signals_; ++s) {
      lane(s)[words_per_lane_ - 1] &= tail_mask_;
    }
  }
  // The re-mask above is what makes a hostile EVALB frame with stray
  // tail bits harmless; this is the executable form of that promise.
  assert_tail_clean("PatternBatch::load_words (result)");
}

void PatternBatch::store_words(std::uint64_t* dst, std::uint64_t count) const {
  check(count == total_words(),
        "PatternBatch::store_words: expected " + std::to_string(total_words()) +
            " words, got " + std::to_string(count));
  std::copy(words_.begin(), words_.end(), dst);
}

void PatternBatch::complement_lane(int signal) {
  if (words_per_lane_ == 0) {
    (void)lane_start(signal);  // keep the index validation for 0-pattern lanes
    return;
  }
  lanes::kernels().complement_masked(lane(signal), words_per_lane_, tail_mask_);
}

}  // namespace ambit::logic
