// Word-packed input/output pattern batches for bit-parallel evaluation.
//
// A PatternBatch holds N boolean patterns over S signals in transposed
// ("bit-sliced") form: one lane of ceil(N/64) uint64 words per signal,
// with pattern p stored at bit (p % 64) of word (p / 64). Evaluating a
// NOR plane over a batch then reduces to word-wide AND/OR/NOT over the
// lanes — 64 patterns per machine operation — which is what makes
// exhaustive verification and Monte-Carlo sweeps throughput-bound
// instead of branch-bound (see core/evaluator.h).
//
// The layout is deliberately identical to TruthTable's output-major
// word layout: the batch returned by evaluating every minterm in
// ascending order IS a truth table, lane for lane.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/lane_kernels.h"
#include "util/aligned.h"

namespace ambit::logic {

/// A fixed-size batch of bit-packed patterns, one 64-bit lane set per
/// signal. Unused bits of the last word of every lane are kept zero.
class PatternBatch {
 public:
  /// An empty batch: `num_signals` lanes of `num_patterns` zero bits.
  PatternBatch(int num_signals, std::uint64_t num_patterns);

  /// The exhaustive batch over `num_inputs` signals: pattern m assigns
  /// bit i of m to signal i, for all 2^num_inputs minterms in order.
  /// Lane words follow the classic truth-table stripe patterns, so
  /// construction is O(signals · words), not O(signals · patterns).
  static PatternBatch exhaustive(int num_inputs);

  /// Packs a vector of same-width patterns (pattern-major to
  /// signal-major transpose).
  static PatternBatch from_patterns(
      const std::vector<std::vector<bool>>& patterns);

  int num_signals() const { return num_signals_; }
  std::uint64_t num_patterns() const { return num_patterns_; }
  std::uint64_t words_per_lane() const { return words_per_lane_; }

  bool get(std::uint64_t pattern, int signal) const;
  void set(std::uint64_t pattern, int signal, bool value);

  /// Pattern `p` unpacked back into one bool per signal.
  std::vector<bool> pattern(std::uint64_t p) const;
  void set_pattern(std::uint64_t p, const std::vector<bool>& bits);

  /// Raw lane access for word-parallel kernels. A lane is
  /// words_per_lane() consecutive uint64 values; lanes are stored
  /// contiguously signal-major, so lane(0) is also the base of the
  /// whole packed array.
  ///
  /// ALIGNMENT CONTRACT: the backing store is lanes::kLaneAlignment-
  /// byte aligned, but an individual lane pointer is aligned only when
  /// `signal * words_per_lane()` happens to land on a vector boundary.
  /// SIMD consumers must therefore use unaligned loads/stores
  /// (loadu/storeu) — see logic/lane_kernels.h.
  const std::uint64_t* lane(int signal) const;
  std::uint64_t* lane(int signal);

  /// Copies lane `src_signal` of `src` into lane `dst_signal` (both
  /// batches must hold the same number of patterns).
  void copy_lane_from(const PatternBatch& src, int src_signal,
                      int dst_signal);

  /// Copies patterns [first, first + count) of every lane into a new
  /// batch. `first` must be a multiple of 64 so the copy is word-wise:
  /// lane word k of the slice IS lane word first/64 + k of the source,
  /// which is what lets the sharded evaluation driver (core/evaluator.h)
  /// stay bit-identical to the unsharded run. A partial final word is
  /// only allowed at the very end of the batch.
  PatternBatch slice(std::uint64_t first, std::uint64_t count) const;

  /// Inverse of slice: copies every lane of `src` into this batch
  /// starting at word-aligned pattern `first`. Signal counts must
  /// match; `src` must fit, and may end mid-word only at this batch's
  /// end.
  void paste(const PatternBatch& src, std::uint64_t first);

  /// Bit-granular lane copy: patterns [src_first, src_first + count)
  /// of every lane of `src` land at [dst_first, dst_first + count) of
  /// this batch, with NO alignment requirement on either offset. Bits
  /// outside the destination range — neighbouring patterns and the
  /// tail padding — are left untouched, so back-to-back copies from
  /// many sources pack a batch bit-contiguously (this is what the
  /// serve coalescer uses to fuse many small requests into shared
  /// words; see serve/coalesce.h). Signal counts must match and both
  /// ranges must be in bounds.
  void copy_patterns_from(const PatternBatch& src, std::uint64_t src_first,
                          std::uint64_t dst_first, std::uint64_t count);

  /// Total packed words across all lanes: num_signals * words_per_lane.
  /// This is the payload size of the serve EVALB frame.
  std::uint64_t total_words() const {
    return static_cast<std::uint64_t>(num_signals_) * words_per_lane_;
  }

  /// Overwrites every lane from `count` consecutive words — lane 0's
  /// words first, then lane 1's, and so on (the EVALB wire layout).
  /// `count` must equal total_words(). Each lane's tail padding is
  /// re-masked, so a frame with stray bits beyond num_patterns() cannot
  /// corrupt downstream word-parallel kernels.
  void load_words(const std::uint64_t* src, std::uint64_t count);

  /// Copies every lane into `dst` in the same layout; `count` must
  /// equal total_words().
  void store_words(std::uint64_t* dst, std::uint64_t count) const;

  /// Complements lane `signal` over the valid pattern bits (the tail
  /// padding stays zero). Runs on the dispatched SIMD tier
  /// (logic/lane_kernels.h).
  void complement_lane(int signal);

  /// Mask selecting the valid bits of the LAST word of a lane; all
  /// earlier words are fully valid.
  std::uint64_t tail_mask() const { return tail_mask_; }

  /// Invariant probe (util/check.h): aborts via AMBIT_CHECK when any
  /// lane carries a set bit in its tail padding. No-op unless the
  /// AMBIT_ENABLE_INVARIANTS build option is on. slice/paste/
  /// copy_patterns_from/load_words run it on their operands and
  /// results, and the Evaluator runs it on every kernel result, so a
  /// kernel (or a caller scribbling through lane()) that dirties the
  /// padding is caught at the first word-parallel boundary instead of
  /// corrupting a downstream popcount. `where` names the caller in the
  /// failure report.
  void assert_tail_clean(const char* where) const;

  bool operator==(const PatternBatch& other) const = default;

 private:
  int num_signals_;
  std::uint64_t num_patterns_;
  std::uint64_t words_per_lane_;
  std::uint64_t tail_mask_;
  // Signal-major: lane s at s*words_per_lane_. Base pointer is
  // kLaneAlignment-byte aligned (see the lane() alignment contract).
  std::vector<std::uint64_t,
              AlignedAllocator<std::uint64_t, lanes::kLaneAlignment>>
      words_;

  std::uint64_t lane_start(int signal) const;
};

}  // namespace ambit::logic
