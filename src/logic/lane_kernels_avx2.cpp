// AVX2 tier of the lane kernels (logic/lane_kernels.h).
//
// This translation unit — and ONLY this one — is compiled with -mavx2
// (per-file property in CMakeLists.txt), so nothing outside it may call
// these functions directly: they are reached exclusively through the
// kernel table, which kernels_for() hands out only when cpuid reports
// AVX2 (util/cpu_features.h). Everything here uses unaligned
// loads/stores per the lane alignment contract.
//
// The plane sweep differs from the scalar tier in two ways that matter
// beyond vector width:
//   * register accumulation — each 8-word strip of an output row is
//     OR-reduced across all terms in registers and stored ONCE, versus
//     the scalar tier's read-modify-write pass per term (3 memory ops
//     per word per term);
//   * cache-blocked tiling — words are processed in tiles sized so one
//     tile of every input lane stays resident across all rows, which
//     is what keeps classifier-scale covers (hundreds of products over
//     shared inputs) from going memory-bound.
#include "logic/lane_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace ambit::logic::lanes {

namespace {

void avx2_or_into(std::uint64_t* dst, const std::uint64_t* src,
                  std::uint64_t n) {
  std::uint64_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, s));
  }
  for (; w < n; ++w) {
    dst[w] |= src[w];
  }
}

void avx2_or_not_into(std::uint64_t* dst, const std::uint64_t* src,
                      std::uint64_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::uint64_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, _mm256_xor_si256(s, ones)));
  }
  for (; w < n; ++w) {
    dst[w] |= ~src[w];
  }
}

void avx2_complement_masked(std::uint64_t* dst, std::uint64_t n,
                            std::uint64_t tail_mask) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::uint64_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_xor_si256(d, ones));
  }
  for (; w < n; ++w) {
    dst[w] = ~dst[w];
  }
  dst[n - 1] &= tail_mask;
}

/// Word budget per cache tile: tiles are sized so one tile of EVERY
/// input lane fits in this many bytes (half a typical 512 KiB L2, so
/// output-row stores and the term arrays fit alongside).
constexpr std::uint64_t kTileBudgetBytes = 256 * 1024;

void avx2_plane_sweep(const SweepRow* rows, std::uint64_t num_rows,
                      const SweepTerm* terms, const std::uint64_t* in,
                      std::uint64_t num_in_lanes, std::uint64_t words_per_lane,
                      std::uint64_t tail_mask, std::uint64_t* out) {
  if (words_per_lane == 0) {
    return;
  }
  std::uint64_t tile_words =
      num_in_lanes > 0 ? kTileBudgetBytes / 8 / num_in_lanes : words_per_lane;
  // Keep tiles strip-sized at minimum (so the vector loop always runs)
  // and round to a strip multiple so only the final tile has a scalar
  // remainder.
  tile_words = std::clamp<std::uint64_t>(tile_words - tile_words % 8, 8,
                                         words_per_lane);

  const __m256i ones = _mm256_set1_epi64x(-1);
  for (std::uint64_t t0 = 0; t0 < words_per_lane; t0 += tile_words) {
    const std::uint64_t t1 = std::min(words_per_lane, t0 + tile_words);
    for (std::uint64_t r = 0; r < num_rows; ++r) {
      std::uint64_t* lane = out + r * words_per_lane;
      const SweepRow& row = rows[r];
      const SweepTerm* row_terms = terms + row.first_term;
      std::uint64_t w = t0;
      // 8-word strips: two 256-bit accumulators reduced across every
      // term, one store per strip.
      for (; w + 8 <= t1; w += 8) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (std::uint64_t t = 0; t < row.num_terms; ++t) {
          const std::uint64_t* src =
              in + static_cast<std::uint64_t>(row_terms[t].lane) *
                       words_per_lane +
              w;
          __m256i v0 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
          __m256i v1 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 4));
          if (row_terms[t].invert) {
            v0 = _mm256_xor_si256(v0, ones);
            v1 = _mm256_xor_si256(v1, ones);
          }
          acc0 = _mm256_or_si256(acc0, v0);
          acc1 = _mm256_or_si256(acc1, v1);
        }
        if (row.complement) {
          acc0 = _mm256_xor_si256(acc0, ones);
          acc1 = _mm256_xor_si256(acc1, ones);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane + w), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane + w + 4), acc1);
      }
      // Scalar remainder of the tile (at most 7 words, final tile only).
      for (; w < t1; ++w) {
        std::uint64_t acc = 0;
        for (std::uint64_t t = 0; t < row.num_terms; ++t) {
          const std::uint64_t v =
              in[static_cast<std::uint64_t>(row_terms[t].lane) *
                     words_per_lane +
                 w];
          acc |= row_terms[t].invert ? ~v : v;
        }
        lane[w] = row.complement ? ~acc : acc;
      }
      if (t1 == words_per_lane) {
        lane[words_per_lane - 1] &= tail_mask;
      }
    }
  }
}

constexpr LaneKernels kAvx2Kernels = {
    .name = "avx2",
    .or_into = avx2_or_into,
    .or_not_into = avx2_or_not_into,
    .complement_masked = avx2_complement_masked,
    .plane_sweep = avx2_plane_sweep,
};

}  // namespace

const LaneKernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace ambit::logic::lanes

#else  // !__AVX2__

namespace ambit::logic::lanes {

const LaneKernels* avx2_kernels() { return nullptr; }

}  // namespace ambit::logic::lanes

#endif
