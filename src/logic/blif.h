// BLIF (Berkeley Logic Interchange Format) export.
//
// Lets downstream multi-level tools (SIS/ABC-class) consume AMBIT
// covers: each output becomes one .names block whose rows are the
// cubes asserting it. Multi-output sharing is representational only in
// BLIF, so shared cubes are simply repeated per output.
#pragma once

#include <iosfwd>
#include <string>

#include "logic/cover.h"

namespace ambit::logic {

/// Writes `cover` as a single-model BLIF netlist. Labels default to
/// in0…/out0… when the vectors are empty; arity is validated.
void write_blif(std::ostream& out, const Cover& cover,
                const std::string& model_name,
                const std::vector<std::string>& input_labels = {},
                const std::vector<std::string>& output_labels = {});

/// Writes to disk (creates/truncates `path`).
void write_blif_file(const std::string& path, const Cover& cover,
                     const std::string& model_name);

}  // namespace ambit::logic
