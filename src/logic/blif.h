// BLIF (Berkeley Logic Interchange Format) import/export.
//
// Export lets downstream multi-level tools (SIS/ABC-class) consume
// AMBIT covers: each output becomes one .names block whose rows are the
// cubes asserting it. Multi-output sharing is representational only in
// BLIF, so shared cubes are simply repeated per output.
//
// Import (read_blif) accepts the FLAT TWO-LEVEL subset — exactly the
// shape write_blif emits, which is also what two-level benchmark
// distributions ship:
//
//   .model <name>              optional, at most once, first
//   .inputs a b c ...          primary inputs (repeatable, appended)
//   .outputs f g ...           primary outputs (repeatable, appended)
//   .names <fanins...> <out>   one block per output; every fan-in must
//                              be a declared primary input and <out> a
//                              declared primary output
//   <rows>                     "<chars over 01-> 1" per cube; inputs
//                              the block does not mention stay
//                              don't-care. "0"-rows (OFF-set covers)
//                              are rejected, not misread.
//   .end                       optional
//
// '#' starts a comment; a trailing '\' continues a line. Multi-level
// netlists (.names driving intermediate signals), .latch, .subckt and
// every other directive are rejected with a line-numbered error —
// this reader feeds untrusted bytes into the Cover pipeline, so
// anything outside the documented subset must fail loudly (it is
// fuzzed continuously by fuzz/fuzz_blif.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/cover.h"

namespace ambit::logic {

/// A parsed flat BLIF model: ON-set cover plus labels.
struct BlifFile {
  std::string model;                       ///< .model (may be empty)
  std::vector<std::string> input_labels;   ///< .inputs, in order
  std::vector<std::string> output_labels;  ///< .outputs, in order
  Cover cover;                             ///< ON-set over those signals

  BlifFile() : cover(0, 1) {}

  int num_inputs() const { return cover.num_inputs(); }
  int num_outputs() const { return cover.num_outputs(); }
};

/// Parses the flat two-level BLIF subset above. Throws ambit::Error
/// with a "<name>:<line>" message on anything outside it.
BlifFile read_blif(std::istream& in, const std::string& name = "");

/// Parses a BLIF file from disk.
BlifFile read_blif_file(const std::string& path);

/// Writes `cover` as a single-model BLIF netlist. Labels default to
/// in0…/out0… when the vectors are empty; arity is validated.
void write_blif(std::ostream& out, const Cover& cover,
                const std::string& model_name,
                const std::vector<std::string>& input_labels = {},
                const std::vector<std::string>& output_labels = {});

/// Writes to disk (creates/truncates `path`).
void write_blif_file(const std::string& path, const Cover& cover,
                     const std::string& model_name);

}  // namespace ambit::logic
