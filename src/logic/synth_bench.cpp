#include "logic/synth_bench.h"

#include "util/error.h"
#include "util/rng.h"

namespace ambit::logic {

Cover generate_cover(const SynthSpec& spec, std::uint64_t seed) {
  check(spec.num_inputs >= 1, "generate_cover: need at least one input");
  check(spec.num_outputs >= 1, "generate_cover: need at least one output");
  check(spec.literals_per_cube >= 1 &&
            spec.literals_per_cube <= spec.num_inputs,
        "generate_cover: literals_per_cube out of range");
  Rng rng(seed);
  Cover f(spec.num_inputs, spec.num_outputs);
  for (int k = 0; k < spec.num_cubes; ++k) {
    Cube c(spec.num_inputs, spec.num_outputs);
    // Choose literal positions by shuffling the variable list.
    std::vector<int> vars(static_cast<std::size_t>(spec.num_inputs));
    for (int i = 0; i < spec.num_inputs; ++i) {
      vars[static_cast<std::size_t>(i)] = i;
    }
    rng.shuffle(vars);
    for (int l = 0; l < spec.literals_per_cube; ++l) {
      const int var = vars[static_cast<std::size_t>(l)];
      c.set_input(var, rng.next_bool() ? Literal::kOne : Literal::kZero);
    }
    c.set_output(static_cast<int>(rng.next_below(
                     static_cast<std::uint64_t>(spec.num_outputs))),
                 true);
    for (int j = 0; j < spec.num_outputs; ++j) {
      if (rng.next_bool(spec.extra_output_rate)) {
        c.set_output(j, true);
      }
    }
    f.add(std::move(c));
  }
  f.sort_and_dedup();
  return f;
}

}  // namespace ambit::logic
