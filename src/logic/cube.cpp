#include "logic/cube.h"

#include <bit>

#include "util/error.h"

namespace ambit::logic {
namespace {

constexpr std::uint64_t kEvenBits = 0x5555555555555555ULL;

int word_count(int bits) { return (bits + 63) / 64; }

}  // namespace

Cube::Cube(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs),
      num_outputs_(num_outputs),
      words_(static_cast<std::size_t>(word_count(2 * num_inputs + num_outputs)),
             0) {
  check(num_inputs >= 0, "Cube: negative input count");
  check(num_outputs >= 1, "Cube: at least one output required");
  // All inputs start as don't-care (11); outputs start clear.
  for (int i = 0; i < num_inputs_; ++i) {
    set_input(i, Literal::kDontCare);
  }
}

Cube Cube::universe(int num_inputs, int num_outputs) {
  Cube c(num_inputs, num_outputs);
  for (int j = 0; j < num_outputs; ++j) {
    c.set_output(j, true);
  }
  return c;
}

Cube Cube::parse(const std::string& inputs, const std::string& outputs) {
  Cube c(static_cast<int>(inputs.size()), static_cast<int>(outputs.size()));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    switch (inputs[i]) {
      case '0': c.set_input(static_cast<int>(i), Literal::kZero); break;
      case '1': c.set_input(static_cast<int>(i), Literal::kOne); break;
      case '-':
      case '2': c.set_input(static_cast<int>(i), Literal::kDontCare); break;
      default:
        throw Error("Cube::parse: bad input character '" +
                    std::string(1, inputs[i]) + "'");
    }
  }
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    switch (outputs[j]) {
      case '1': c.set_output(static_cast<int>(j), true); break;
      case '0': c.set_output(static_cast<int>(j), false); break;
      default:
        throw Error("Cube::parse: bad output character '" +
                    std::string(1, outputs[j]) + "'");
    }
  }
  return c;
}

Literal Cube::input(int i) const {
  require(i >= 0 && i < num_inputs_, "Cube::input index out of range");
  const int bit = 2 * i;
  const std::uint64_t pair = (words_[bit / 64] >> (bit % 64)) & 0x3;
  return static_cast<Literal>(pair);
}

void Cube::set_input(int i, Literal value) {
  require(i >= 0 && i < num_inputs_, "Cube::set_input index out of range");
  const int bit = 2 * i;
  std::uint64_t& word = words_[bit / 64];
  word &= ~(std::uint64_t{0x3} << (bit % 64));
  word |= static_cast<std::uint64_t>(value) << (bit % 64);
}

bool Cube::output(int j) const {
  require(j >= 0 && j < num_outputs_, "Cube::output index out of range");
  const int bit = 2 * num_inputs_ + j;
  return ((words_[bit / 64] >> (bit % 64)) & 1) != 0;
}

void Cube::set_output(int j, bool value) {
  require(j >= 0 && j < num_outputs_, "Cube::set_output index out of range");
  const int bit = 2 * num_inputs_ + j;
  if (value) {
    words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
  } else {
    words_[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
  }
}

bool Cube::input_empty() const {
  // An input part is empty when both of its bits are zero.
  for (int w = 0; 64 * w < 2 * num_inputs_; ++w) {
    const int bits_here = std::min(64, 2 * num_inputs_ - 64 * w);
    const std::uint64_t pair_mask =
        (bits_here == 64) ? kEvenBits : (kEvenBits & ((std::uint64_t{1} << bits_here) - 1));
    const std::uint64_t x = words_[w];
    const std::uint64_t empties = ~x & ~(x >> 1) & pair_mask;
    if (empties != 0) {
      return true;
    }
  }
  return false;
}

bool Cube::output_empty() const {
  for (int j = 0; j < num_outputs_; ++j) {
    if (output(j)) {
      return false;
    }
  }
  return true;
}

int Cube::input_literal_count() const {
  int count = 0;
  for (int i = 0; i < num_inputs_; ++i) {
    const Literal lit = input(i);
    if (lit == Literal::kZero || lit == Literal::kOne) {
      ++count;
    }
  }
  return count;
}

int Cube::output_count() const {
  int count = 0;
  for (int j = 0; j < num_outputs_; ++j) {
    if (output(j)) {
      ++count;
    }
  }
  return count;
}

int Cube::distance(const Cube& other) const {
  require(num_inputs_ == other.num_inputs_ && num_outputs_ == other.num_outputs_,
          "Cube::distance shape mismatch");
  int d = 0;
  // Input parts: 2-bit pairs never straddle a word boundary.
  for (int w = 0; 64 * w < 2 * num_inputs_; ++w) {
    const int bits_here = std::min(64, 2 * num_inputs_ - 64 * w);
    const std::uint64_t pair_mask =
        (bits_here == 64) ? kEvenBits : (kEvenBits & ((std::uint64_t{1} << bits_here) - 1));
    const std::uint64_t x = words_[w] & other.words_[w];
    const std::uint64_t empties = ~x & ~(x >> 1) & pair_mask;
    d += std::popcount(empties);
  }
  // Output part counts as a single part.
  bool output_meets = false;
  for (int j = 0; j < num_outputs_ && !output_meets; ++j) {
    output_meets = output(j) && other.output(j);
  }
  if (!output_meets) {
    ++d;
  }
  return d;
}

bool Cube::intersects(const Cube& other) const { return distance(other) == 0; }

Cube Cube::intersect(const Cube& other) const {
  require(num_inputs_ == other.num_inputs_ && num_outputs_ == other.num_outputs_,
          "Cube::intersect shape mismatch");
  Cube result = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] &= other.words_[w];
  }
  return result;
}

bool Cube::contains(const Cube& other) const {
  require(num_inputs_ == other.num_inputs_ && num_outputs_ == other.num_outputs_,
          "Cube::contains shape mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != other.words_[w]) {
      return false;
    }
  }
  return true;
}

bool Cube::input_contains(const Cube& other) const {
  require(num_inputs_ == other.num_inputs_, "Cube::input_contains shape mismatch");
  for (int w = 0; 64 * w < 2 * num_inputs_; ++w) {
    const int bits_here = std::min(64, 2 * num_inputs_ - 64 * w);
    const std::uint64_t mask =
        (bits_here == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits_here) - 1);
    const std::uint64_t a = words_[w] & mask;
    const std::uint64_t b = other.words_[w] & mask;
    if ((a & b) != b) {
      return false;
    }
  }
  return true;
}

Cube Cube::supercube(const Cube& other) const {
  require(num_inputs_ == other.num_inputs_ && num_outputs_ == other.num_outputs_,
          "Cube::supercube shape mismatch");
  Cube result = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    result.words_[w] |= other.words_[w];
  }
  return result;
}

Cube Cube::consensus(const Cube& other) const {
  Cube result = intersect(other);
  if (distance(other) != 1) {
    // Returns an explicitly empty cube (outputs cleared).
    for (int j = 0; j < num_outputs_; ++j) {
      result.set_output(j, false);
    }
    for (int i = 0; i < num_inputs_; ++i) {
      result.set_input(i, Literal::kEmpty);
    }
    return result;
  }
  // Exactly one part conflicts: raise that part to the union.
  for (int i = 0; i < num_inputs_; ++i) {
    if (result.input(i) == Literal::kEmpty) {
      const auto merged = static_cast<Literal>(
          static_cast<std::uint8_t>(input(i)) |
          static_cast<std::uint8_t>(other.input(i)));
      result.set_input(i, merged);
      return result;
    }
  }
  // The conflicting part is the output part.
  for (int j = 0; j < num_outputs_; ++j) {
    result.set_output(j, output(j) || other.output(j));
  }
  return result;
}

Cube Cube::cofactor(const Cube& p) const {
  require(num_inputs_ == p.num_inputs_ && num_outputs_ == p.num_outputs_,
          "Cube::cofactor shape mismatch");
  Cube result = *this;
  const std::uint64_t last_mask = last_word_mask();
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t mask =
        (w + 1 == words_.size()) ? last_mask : ~std::uint64_t{0};
    result.words_[w] = (words_[w] | (~p.words_[w] & mask));
  }
  return result;
}

bool Cube::covers_minterm(std::uint64_t minterm, int out) const {
  require(num_inputs_ <= 64, "Cube::covers_minterm supports at most 64 inputs");
  if (!output(out)) {
    return false;
  }
  for (int i = 0; i < num_inputs_; ++i) {
    const int value = static_cast<int>((minterm >> i) & 1);
    const int bit = 2 * i + value;
    if (((words_[bit / 64] >> (bit % 64)) & 1) == 0) {
      return false;
    }
  }
  return true;
}

std::string Cube::to_string() const {
  std::string text;
  text.reserve(static_cast<std::size_t>(num_inputs_ + 1 + num_outputs_));
  for (int i = 0; i < num_inputs_; ++i) {
    switch (input(i)) {
      case Literal::kEmpty: text += 'E'; break;
      case Literal::kZero: text += '0'; break;
      case Literal::kOne: text += '1'; break;
      case Literal::kDontCare: text += '-'; break;
    }
  }
  text += ' ';
  for (int j = 0; j < num_outputs_; ++j) {
    text += output(j) ? '1' : '0';
  }
  return text;
}

bool Cube::operator==(const Cube& other) const {
  return num_inputs_ == other.num_inputs_ &&
         num_outputs_ == other.num_outputs_ && words_ == other.words_;
}

bool Cube::lexicographic_less(const Cube& a, const Cube& b) {
  require(a.num_inputs_ == b.num_inputs_ && a.num_outputs_ == b.num_outputs_,
          "Cube::lexicographic_less shape mismatch");
  return a.words_ < b.words_;
}

std::uint64_t Cube::last_word_mask() const {
  const int rem = total_bits() % 64;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

std::string to_string(Literal lit) {
  switch (lit) {
    case Literal::kEmpty: return "ø";
    case Literal::kZero: return "0";
    case Literal::kOne: return "1";
    case Literal::kDontCare: return "-";
  }
  return "?";
}

}  // namespace ambit::logic
