// NEON tier of the lane kernels (logic/lane_kernels.h).
//
// AdvSIMD is architecturally mandatory on AArch64, so unlike the AVX2
// translation unit this one needs no special compile flags — it simply
// compiles to an empty registration everywhere else. Reached only
// through the kernel table (cpu::active_tier() == kNeon). Same
// structure as the AVX2 sweep — register accumulation per strip plus
// cache-blocked word tiling — at 128-bit width (4-word strips, two
// uint64x2 accumulators).
#include "logic/lane_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace ambit::logic::lanes {

namespace {

void neon_or_into(std::uint64_t* dst, const std::uint64_t* src,
                  std::uint64_t n) {
  std::uint64_t w = 0;
  for (; w + 2 <= n; w += 2) {
    vst1q_u64(dst + w, vorrq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
  }
  for (; w < n; ++w) {
    dst[w] |= src[w];
  }
}

void neon_or_not_into(std::uint64_t* dst, const std::uint64_t* src,
                      std::uint64_t n) {
  const uint64x2_t ones = vdupq_n_u64(~std::uint64_t{0});
  std::uint64_t w = 0;
  for (; w + 2 <= n; w += 2) {
    vst1q_u64(dst + w, vorrq_u64(vld1q_u64(dst + w),
                                 veorq_u64(vld1q_u64(src + w), ones)));
  }
  for (; w < n; ++w) {
    dst[w] |= ~src[w];
  }
}

void neon_complement_masked(std::uint64_t* dst, std::uint64_t n,
                            std::uint64_t tail_mask) {
  const uint64x2_t ones = vdupq_n_u64(~std::uint64_t{0});
  std::uint64_t w = 0;
  for (; w + 2 <= n; w += 2) {
    vst1q_u64(dst + w, veorq_u64(vld1q_u64(dst + w), ones));
  }
  for (; w < n; ++w) {
    dst[w] = ~dst[w];
  }
  dst[n - 1] &= tail_mask;
}

/// Same tile budget rationale as the AVX2 tier: one tile of every
/// input lane stays L2-resident across all rows.
constexpr std::uint64_t kTileBudgetBytes = 256 * 1024;

void neon_plane_sweep(const SweepRow* rows, std::uint64_t num_rows,
                      const SweepTerm* terms, const std::uint64_t* in,
                      std::uint64_t num_in_lanes, std::uint64_t words_per_lane,
                      std::uint64_t tail_mask, std::uint64_t* out) {
  if (words_per_lane == 0) {
    return;
  }
  std::uint64_t tile_words =
      num_in_lanes > 0 ? kTileBudgetBytes / 8 / num_in_lanes : words_per_lane;
  tile_words = std::clamp<std::uint64_t>(tile_words - tile_words % 4, 4,
                                         words_per_lane);

  const uint64x2_t ones = vdupq_n_u64(~std::uint64_t{0});
  for (std::uint64_t t0 = 0; t0 < words_per_lane; t0 += tile_words) {
    const std::uint64_t t1 = std::min(words_per_lane, t0 + tile_words);
    for (std::uint64_t r = 0; r < num_rows; ++r) {
      std::uint64_t* lane = out + r * words_per_lane;
      const SweepRow& row = rows[r];
      const SweepTerm* row_terms = terms + row.first_term;
      std::uint64_t w = t0;
      for (; w + 4 <= t1; w += 4) {
        uint64x2_t acc0 = vdupq_n_u64(0);
        uint64x2_t acc1 = vdupq_n_u64(0);
        for (std::uint64_t t = 0; t < row.num_terms; ++t) {
          const std::uint64_t* src =
              in + static_cast<std::uint64_t>(row_terms[t].lane) *
                       words_per_lane +
              w;
          uint64x2_t v0 = vld1q_u64(src);
          uint64x2_t v1 = vld1q_u64(src + 2);
          if (row_terms[t].invert) {
            v0 = veorq_u64(v0, ones);
            v1 = veorq_u64(v1, ones);
          }
          acc0 = vorrq_u64(acc0, v0);
          acc1 = vorrq_u64(acc1, v1);
        }
        if (row.complement) {
          acc0 = veorq_u64(acc0, ones);
          acc1 = veorq_u64(acc1, ones);
        }
        vst1q_u64(lane + w, acc0);
        vst1q_u64(lane + w + 2, acc1);
      }
      for (; w < t1; ++w) {
        std::uint64_t acc = 0;
        for (std::uint64_t t = 0; t < row.num_terms; ++t) {
          const std::uint64_t v =
              in[static_cast<std::uint64_t>(row_terms[t].lane) *
                     words_per_lane +
                 w];
          acc |= row_terms[t].invert ? ~v : v;
        }
        lane[w] = row.complement ? ~acc : acc;
      }
      if (t1 == words_per_lane) {
        lane[words_per_lane - 1] &= tail_mask;
      }
    }
  }
}

constexpr LaneKernels kNeonKernels = {
    .name = "neon",
    .or_into = neon_or_into,
    .or_not_into = neon_or_not_into,
    .complement_masked = neon_complement_masked,
    .plane_sweep = neon_plane_sweep,
};

}  // namespace

const LaneKernels* neon_kernels() { return &kNeonKernels; }

}  // namespace ambit::logic::lanes

#else  // !__aarch64__

namespace ambit::logic::lanes {

const LaneKernels* neon_kernels() { return nullptr; }

}  // namespace ambit::logic::lanes

#endif
