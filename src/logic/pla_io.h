// Espresso .pla file reader/writer.
//
// Supports the subset of the Berkeley PLA format used by the MCNC
// two-level benchmark suite referenced in the paper (Yang, "Logic
// Synthesis and Optimization Benchmarks", MCNC 1991):
//
//   .i N / .o M          input/output counts (required, first)
//   .p P                 product-term count (optional, validated)
//   .ilb a b c ...       input labels (optional)
//   .ob f g ...          output labels (optional)
//   .type f|fd           cover semantics (default fd)
//   <cube rows>          inputs over {0,1,-,2}; outputs over
//                        {0,1,-,2,~,4} with Espresso's meaning
//   .e / .end            end marker (optional)
//
// Output-character semantics per Espresso: '1'/'4' puts the cube in that
// output's ON-set, '-'/'2' in its DC-set, '0' and '~' assert nothing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/cover.h"

namespace ambit::logic {

/// Cover semantics declared by the .type directive.
enum class PlaType {
  kF,   ///< rows define the ON-set only
  kFd,  ///< rows define ON-set and DC-set
};

/// A parsed .pla file: ON-set, DC-set and labels.
struct PlaFile {
  std::string name;                        ///< derived from the file name (may be empty)
  PlaType type = PlaType::kFd;             ///< declared cover semantics
  std::vector<std::string> input_labels;   ///< .ilb, possibly empty
  std::vector<std::string> output_labels;  ///< .ob, possibly empty
  Cover onset;                             ///< F
  Cover dcset;                             ///< D (empty for .type f)

  PlaFile() : onset(0, 1), dcset(0, 1) {}

  int num_inputs() const { return onset.num_inputs(); }
  int num_outputs() const { return onset.num_outputs(); }
};

/// Parses a .pla stream. Throws ambit::Error with a line-numbered
/// message on malformed input.
PlaFile read_pla(std::istream& in, const std::string& name = "");

/// Parses a .pla file from disk.
PlaFile read_pla_file(const std::string& path);

/// Writes `pla` in canonical .pla form (always emits .type).
void write_pla(std::ostream& out, const PlaFile& pla);

/// Writes to disk; creates/truncates `path`.
void write_pla_file(const std::string& path, const PlaFile& pla);

/// Convenience: wraps a plain ON-set cover into a PlaFile with
/// generated labels (in0..inN-1 / out0..outM-1).
PlaFile make_pla(const Cover& onset, const std::string& name);

}  // namespace ambit::logic
