#include "logic/blif.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/error.h"

namespace ambit::logic {

namespace {

/// Throws the uniform "BLIF parse error at <where>:<line>: ..." error.
[[noreturn]] void fail(const std::string& where, int line,
                       const std::string& message) {
  throw Error("BLIF parse error at " + where + ":" + std::to_string(line) +
              ": " + message);
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace

BlifFile read_blif(std::istream& in, const std::string& name) {
  const std::string where = name.empty() ? "<blif>" : name;

  BlifFile file;
  std::unordered_map<std::string, int> input_index;
  std::unordered_map<std::string, int> output_index;

  // The cover is created when the first .names block freezes the
  // signal declarations; until then .inputs/.outputs may keep
  // appending (BLIF allows repeated declaration lines).
  std::optional<Cover> cover;
  std::vector<bool> output_defined;

  // Active .names block: fan-in columns (as input indices) and the
  // output the rows assert. -1 output = no block open.
  std::vector<int> fanin_columns;
  int open_output = -1;

  // A name containing '\' cannot survive re-emission: write_blif would
  // put it at the end of a .names header line, where a trailing
  // backslash reads back as a line continuation and swallows the next
  // line (found by fuzz_blif's printer/parser fixpoint check).
  const auto check_name = [&](const std::string& token, int line) {
    if (token.find('\\') != std::string::npos) {
      fail(where, line, "name '" + token + "' contains a backslash");
    }
  };

  const auto declare = [&](const std::string& signal, bool is_input,
                           int line) {
    check_name(signal, line);
    if (input_index.count(signal) != 0 || output_index.count(signal) != 0) {
      fail(where, line, "signal '" + signal + "' declared twice");
    }
    auto& labels = is_input ? file.input_labels : file.output_labels;
    auto& index = is_input ? input_index : output_index;
    index.emplace(signal, static_cast<int>(labels.size()));
    labels.push_back(signal);
  };

  const auto freeze_declarations = [&](int line) {
    if (cover.has_value()) {
      return;
    }
    if (file.output_labels.empty()) {
      fail(where, line, "model declares no outputs");
    }
    cover.emplace(static_cast<int>(file.input_labels.size()),
                  static_cast<int>(file.output_labels.size()));
    output_defined.assign(file.output_labels.size(), false);
  };

  std::string raw;
  int physical_line = 0;
  bool saw_model = false;
  bool saw_end = false;
  while (!saw_end && std::getline(in, raw)) {
    ++physical_line;
    const int line = physical_line;  // logical line = where it started

    // Trailing '\' joins the next physical line (before comment
    // stripping, matching the SIS reader).
    std::string text = raw;
    while (!text.empty() && text.back() == '\\') {
      text.pop_back();
      if (!std::getline(in, raw)) {
        fail(where, physical_line, "line continuation at end of input");
      }
      ++physical_line;
      text += raw;
    }
    if (const auto hash = text.find('#'); hash != std::string::npos) {
      text.resize(hash);
    }
    const std::vector<std::string> tokens = split_tokens(text);
    if (tokens.empty()) {
      continue;
    }

    if (tokens[0][0] == '.') {
      const std::string& directive = tokens[0];
      fanin_columns.clear();
      open_output = -1;  // any directive closes the open .names block

      if (directive == ".model") {
        if (saw_model) {
          fail(where, line, "duplicate .model");
        }
        if (!file.input_labels.empty() || !file.output_labels.empty() ||
            cover.has_value()) {
          fail(where, line, ".model must precede signal declarations");
        }
        if (tokens.size() > 2) {
          fail(where, line, ".model takes at most one name");
        }
        saw_model = true;
        if (tokens.size() == 2) {
          check_name(tokens[1], line);
          file.model = tokens[1];
        }
      } else if (directive == ".inputs" || directive == ".outputs") {
        if (cover.has_value()) {
          fail(where, line,
               directive + " after the first .names block");
        }
        for (std::size_t t = 1; t < tokens.size(); ++t) {
          declare(tokens[t], directive == ".inputs", line);
        }
      } else if (directive == ".names") {
        freeze_declarations(line);
        if (tokens.size() < 2) {
          fail(where, line, ".names needs at least an output signal");
        }
        const std::string& out_signal = tokens.back();
        const auto out_it = output_index.find(out_signal);
        if (out_it == output_index.end()) {
          fail(where, line,
               ".names drives '" + out_signal +
                   "', which is not a declared primary output "
                   "(multi-level BLIF is not supported)");
        }
        open_output = out_it->second;
        if (output_defined[static_cast<std::size_t>(open_output)]) {
          fail(where, line,
               "output '" + out_signal + "' has more than one .names block");
        }
        output_defined[static_cast<std::size_t>(open_output)] = true;
        for (std::size_t t = 1; t + 1 < tokens.size(); ++t) {
          const auto in_it = input_index.find(tokens[t]);
          if (in_it == input_index.end()) {
            fail(where, line,
                 ".names fan-in '" + tokens[t] +
                     "' is not a declared primary input "
                     "(multi-level BLIF is not supported)");
          }
          for (const int seen : fanin_columns) {
            if (seen == in_it->second) {
              fail(where, line,
                   "duplicate fan-in '" + tokens[t] + "' in .names");
            }
          }
          fanin_columns.push_back(in_it->second);
        }
      } else if (directive == ".end") {
        saw_end = true;
      } else {
        fail(where, line,
             "unsupported directive '" + directive +
                 "' (only flat two-level .model/.inputs/.outputs/"
                 ".names/.end BLIF is accepted)");
      }
      continue;
    }

    // A cube row of the open .names block.
    if (open_output < 0) {
      fail(where, line, "cube row outside a .names block");
    }
    const std::size_t expected_tokens = fanin_columns.empty() ? 1 : 2;
    if (tokens.size() != expected_tokens) {
      fail(where, line,
           "cube row does not match the .names fan-in count (" +
               std::to_string(fanin_columns.size()) + " inputs + output)");
    }
    const std::string plane = fanin_columns.empty() ? std::string() : tokens[0];
    const std::string& out_char = tokens[expected_tokens - 1];
    if (plane.size() != fanin_columns.size()) {
      fail(where, line,
           "cube row does not match the .names fan-in count (" +
               std::to_string(fanin_columns.size()) + " inputs + output)");
    }
    if (out_char != "1") {
      fail(where, line,
           "only ON-set rows (output '1') are supported, got '" + out_char +
               "'");
    }
    Cube cube(cover->num_inputs(), cover->num_outputs());
    cube.set_output(open_output, true);
    for (std::size_t c = 0; c < plane.size(); ++c) {
      const int var = fanin_columns[c];
      switch (plane[c]) {
        case '0': cube.set_input(var, Literal::kZero); break;
        case '1': cube.set_input(var, Literal::kOne); break;
        case '-': break;  // stays don't-care
        default:
          fail(where, line,
               std::string("bad character '") + plane[c] +
                   "' in cube row (expected 0, 1 or -)");
      }
    }
    cover->add(std::move(cube));
  }

  freeze_declarations(physical_line);
  file.cover = std::move(*cover);
  return file;
}

BlifFile read_blif_file(const std::string& path) {
  std::ifstream in(path);
  check(in.good(), "cannot open BLIF file: " + path);
  return read_blif(in, path);
}

void write_blif(std::ostream& out, const Cover& cover,
                const std::string& model_name,
                const std::vector<std::string>& input_labels,
                const std::vector<std::string>& output_labels) {
  check(input_labels.empty() ||
            static_cast<int>(input_labels.size()) == cover.num_inputs(),
        "write_blif: input label arity mismatch");
  check(output_labels.empty() ||
            static_cast<int>(output_labels.size()) == cover.num_outputs(),
        "write_blif: output label arity mismatch");
  const auto in_name = [&](int i) {
    return input_labels.empty() ? "in" + std::to_string(i)
                                : input_labels[static_cast<std::size_t>(i)];
  };
  const auto out_name = [&](int j) {
    return output_labels.empty() ? "out" + std::to_string(j)
                                 : output_labels[static_cast<std::size_t>(j)];
  };

  out << ".model " << model_name << "\n.inputs";
  for (int i = 0; i < cover.num_inputs(); ++i) {
    out << ' ' << in_name(i);
  }
  out << "\n.outputs";
  for (int j = 0; j < cover.num_outputs(); ++j) {
    out << ' ' << out_name(j);
  }
  out << "\n";

  for (int j = 0; j < cover.num_outputs(); ++j) {
    out << ".names";
    for (int i = 0; i < cover.num_inputs(); ++i) {
      out << ' ' << in_name(i);
    }
    out << ' ' << out_name(j) << "\n";
    bool any = false;
    for (const Cube& c : cover) {
      if (!c.output(j)) {
        continue;
      }
      any = true;
      for (int i = 0; i < cover.num_inputs(); ++i) {
        switch (c.input(i)) {
          case Literal::kZero: out << '0'; break;
          case Literal::kOne: out << '1'; break;
          default: out << '-'; break;
        }
      }
      out << " 1\n";
    }
    if (!any) {
      // Constant-0 output: .names block with no rows is exactly that,
      // but be explicit for tools that dislike empty blocks.
      out << "# constant 0\n";
    }
  }
  out << ".end\n";
}

void write_blif_file(const std::string& path, const Cover& cover,
                     const std::string& model_name) {
  std::ofstream out(path);
  check(out.good(), "cannot create BLIF file: " + path);
  write_blif(out, cover, model_name);
  check(out.good(), "error while writing BLIF file: " + path);
}

}  // namespace ambit::logic
