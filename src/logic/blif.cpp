#include "logic/blif.h"

#include <fstream>
#include <ostream>

#include "util/error.h"

namespace ambit::logic {

void write_blif(std::ostream& out, const Cover& cover,
                const std::string& model_name,
                const std::vector<std::string>& input_labels,
                const std::vector<std::string>& output_labels) {
  check(input_labels.empty() ||
            static_cast<int>(input_labels.size()) == cover.num_inputs(),
        "write_blif: input label arity mismatch");
  check(output_labels.empty() ||
            static_cast<int>(output_labels.size()) == cover.num_outputs(),
        "write_blif: output label arity mismatch");
  const auto in_name = [&](int i) {
    return input_labels.empty() ? "in" + std::to_string(i)
                                : input_labels[static_cast<std::size_t>(i)];
  };
  const auto out_name = [&](int j) {
    return output_labels.empty() ? "out" + std::to_string(j)
                                 : output_labels[static_cast<std::size_t>(j)];
  };

  out << ".model " << model_name << "\n.inputs";
  for (int i = 0; i < cover.num_inputs(); ++i) {
    out << ' ' << in_name(i);
  }
  out << "\n.outputs";
  for (int j = 0; j < cover.num_outputs(); ++j) {
    out << ' ' << out_name(j);
  }
  out << "\n";

  for (int j = 0; j < cover.num_outputs(); ++j) {
    out << ".names";
    for (int i = 0; i < cover.num_inputs(); ++i) {
      out << ' ' << in_name(i);
    }
    out << ' ' << out_name(j) << "\n";
    bool any = false;
    for (const Cube& c : cover) {
      if (!c.output(j)) {
        continue;
      }
      any = true;
      for (int i = 0; i < cover.num_inputs(); ++i) {
        switch (c.input(i)) {
          case Literal::kZero: out << '0'; break;
          case Literal::kOne: out << '1'; break;
          default: out << '-'; break;
        }
      }
      out << " 1\n";
    }
    if (!any) {
      // Constant-0 output: .names block with no rows is exactly that,
      // but be explicit for tools that dislike empty blocks.
      out << "# constant 0\n";
    }
  }
  out << ".end\n";
}

void write_blif_file(const std::string& path, const Cover& cover,
                     const std::string& model_name) {
  std::ofstream out(path);
  check(out.good(), "cannot create BLIF file: " + path);
  write_blif(out, cover, model_name);
  check(out.good(), "error while writing BLIF file: " + path);
}

}  // namespace ambit::logic
