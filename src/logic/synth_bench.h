// Deterministic synthetic benchmark functions.
//
// The MCNC two-level suite the paper uses (max46, apla, t2) is not
// redistributable here, so AMBIT reconstructs functions with the SAME
// minimized dimensions (inputs, outputs, products) — the only
// quantities the paper's area model consumes. generate_cover() draws a
// reproducible random cover from a seed; the committed files in
// benchmarks/data/ were produced by searching seeds until the Espresso
// result hit the published product count exactly (see DESIGN.md §4).
//
// The generator is also the workload source for property tests and for
// the crossover/phase-optimization sweeps.
#pragma once

#include <cstdint>

#include "logic/cover.h"

namespace ambit::logic {

/// Shape and style parameters of a synthetic cover.
struct SynthSpec {
  int num_inputs = 8;
  int num_outputs = 1;
  int num_cubes = 16;
  /// Literals per cube (rest are don't-care); higher values give more
  /// specific, harder-to-merge cubes.
  int literals_per_cube = 5;
  /// Mean asserted outputs per cube (at least 1 is always asserted).
  double extra_output_rate = 0.15;
};

/// Draws a deterministic random cover. Same (spec, seed) -> same cover
/// on every platform.
Cover generate_cover(const SynthSpec& spec, std::uint64_t seed);

}  // namespace ambit::logic
