#include "logic/lane_kernels.h"

#include <algorithm>
#include <string>

#include "logic/pattern_batch.h"
#include "util/check.h"

namespace ambit::logic::lanes {

namespace {

// ---- The portable u64 tier ------------------------------------------------
// These are the original PR-1 kernels, verbatim in structure: one
// read-modify-write pass over the full lane per term. They are the
// reference the SIMD tiers must match bit for bit, and the fallback
// every platform can run.

void scalar_or_into(std::uint64_t* dst, const std::uint64_t* src,
                    std::uint64_t n) {
  for (std::uint64_t w = 0; w < n; ++w) {
    dst[w] |= src[w];
  }
}

void scalar_or_not_into(std::uint64_t* dst, const std::uint64_t* src,
                        std::uint64_t n) {
  for (std::uint64_t w = 0; w < n; ++w) {
    dst[w] |= ~src[w];
  }
}

void scalar_complement_masked(std::uint64_t* dst, std::uint64_t n,
                              std::uint64_t tail_mask) {
  for (std::uint64_t w = 0; w < n; ++w) {
    dst[w] = ~dst[w];
  }
  dst[n - 1] &= tail_mask;
}

void scalar_plane_sweep(const SweepRow* rows, std::uint64_t num_rows,
                        const SweepTerm* terms, const std::uint64_t* in,
                        std::uint64_t num_in_lanes,
                        std::uint64_t words_per_lane, std::uint64_t tail_mask,
                        std::uint64_t* out) {
  (void)num_in_lanes;  // the scalar tier does not tile
  if (words_per_lane == 0) {
    return;
  }
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    std::uint64_t* lane = out + r * words_per_lane;
    std::fill(lane, lane + words_per_lane, 0);
    const SweepRow& row = rows[r];
    for (std::uint64_t t = 0; t < row.num_terms; ++t) {
      const SweepTerm& term = terms[row.first_term + t];
      const std::uint64_t* src =
          in + static_cast<std::uint64_t>(term.lane) * words_per_lane;
      if (term.invert) {
        scalar_or_not_into(lane, src, words_per_lane);
      } else {
        scalar_or_into(lane, src, words_per_lane);
      }
    }
    if (row.complement) {
      scalar_complement_masked(lane, words_per_lane, tail_mask);
    } else {
      // An inverted-term OR row can set padding bits; keep the tail
      // clean here so every row honors the PatternBatch invariant.
      lane[words_per_lane - 1] &= tail_mask;
    }
  }
}

constexpr LaneKernels kScalarKernels = {
    .name = "scalar",
    .or_into = scalar_or_into,
    .or_not_into = scalar_or_not_into,
    .complement_masked = scalar_complement_masked,
    .plane_sweep = scalar_plane_sweep,
};

}  // namespace

const LaneKernels& scalar_kernels() { return kScalarKernels; }

const LaneKernels& kernels_for(cpu::SimdTier tier) {
  switch (tier) {
    case cpu::SimdTier::kAvx2:
      if (const LaneKernels* k = avx2_kernels()) {
        return *k;
      }
      break;
    case cpu::SimdTier::kNeon:
      if (const LaneKernels* k = neon_kernels()) {
        return *k;
      }
      break;
    case cpu::SimdTier::kScalar:
      break;
  }
  return kScalarKernels;
}

const LaneKernels& kernels() { return kernels_for(cpu::active_tier()); }

void nor_plane_sweep(const SweepRow* rows, std::uint64_t num_rows,
                     const SweepTerm* terms, const PatternBatch& in,
                     PatternBatch& out) {
  AMBIT_CHECK(out.num_signals() == static_cast<int>(num_rows),
              "nor_plane_sweep: output batch holds " +
                  std::to_string(out.num_signals()) + " lanes, sweep has " +
                  std::to_string(num_rows) + " rows");
  AMBIT_CHECK(out.num_patterns() == in.num_patterns(),
              "nor_plane_sweep: pattern count mismatch");
  if (num_rows == 0 || in.words_per_lane() == 0) {
    return;  // 0-row plane or 0-pattern batch: nothing to write
  }
  // Lanes are stored contiguously signal-major in both batches, so the
  // whole sweep is one kernel call over the raw words.
  const std::uint64_t* in_base = in.num_signals() > 0 ? in.lane(0) : nullptr;
  kernels().plane_sweep(rows, num_rows, terms, in_base,
                        static_cast<std::uint64_t>(in.num_signals()),
                        in.words_per_lane(), in.tail_mask(), out.lane(0));
  out.assert_tail_clean("nor_plane_sweep (result)");
}

}  // namespace ambit::logic::lanes
