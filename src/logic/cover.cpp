#include "logic/cover.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace ambit::logic {

Cover::Cover(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  check(num_inputs >= 0, "Cover: negative input count");
  check(num_outputs >= 1, "Cover: at least one output required");
}

Cover Cover::universe(int num_inputs, int num_outputs) {
  Cover f(num_inputs, num_outputs);
  f.add(Cube::universe(num_inputs, num_outputs));
  return f;
}

Cover Cover::parse(int num_inputs, int num_outputs,
                   const std::vector<std::string>& rows) {
  Cover f(num_inputs, num_outputs);
  for (const auto& row : rows) {
    const auto fields = split_ws(row);
    check(fields.size() == 2, "Cover::parse: row must be '<inputs> <outputs>'");
    check(static_cast<int>(fields[0].size()) == num_inputs,
          "Cover::parse: wrong input arity in row '" + row + "'");
    check(static_cast<int>(fields[1].size()) == num_outputs,
          "Cover::parse: wrong output arity in row '" + row + "'");
    f.add(Cube::parse(fields[0], fields[1]));
  }
  return f;
}

void Cover::add(Cube cube) {
  check(cube.num_inputs() == num_inputs_ && cube.num_outputs() == num_outputs_,
        "Cover::add: cube shape mismatch");
  check(!cube.empty(), "Cover::add: empty cube");
  cubes_.push_back(std::move(cube));
}

void Cover::append(const Cover& other) {
  check(other.num_inputs_ == num_inputs_ && other.num_outputs_ == num_outputs_,
        "Cover::append: shape mismatch");
  cubes_.insert(cubes_.end(), other.cubes_.begin(), other.cubes_.end());
}

void Cover::remove_at(std::size_t i) {
  require(i < cubes_.size(), "Cover::remove_at: index out of range");
  cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
}

Cover Cover::cofactor(const Cube& p) const {
  Cover result(num_inputs_, num_outputs_);
  for (const Cube& c : cubes_) {
    if (c.intersects(p)) {
      result.cubes_.push_back(c.cofactor(p));
    }
  }
  return result;
}

Cover Cover::restricted_to_output(int j) const {
  check(j >= 0 && j < num_outputs_, "Cover::restricted_to_output: bad index");
  Cover result(num_inputs_, 1);
  for (const Cube& c : cubes_) {
    if (c.output(j)) {
      Cube single(num_inputs_, 1);
      for (int i = 0; i < num_inputs_; ++i) {
        single.set_input(i, c.input(i));
      }
      single.set_output(0, true);
      result.cubes_.push_back(std::move(single));
    }
  }
  return result;
}

bool Cover::has_universal_input_cube() const {
  for (const Cube& c : cubes_) {
    if (c.input_literal_count() == 0 && !c.output_empty()) {
      return true;
    }
  }
  return false;
}

void Cover::and_literal(int var, bool value) {
  check(var >= 0 && var < num_inputs_, "Cover::and_literal: bad variable");
  const Literal wanted = value ? Literal::kOne : Literal::kZero;
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (Cube& c : cubes_) {
    const Literal lit = c.input(var);
    if (lit == Literal::kDontCare) {
      c.set_input(var, wanted);
      kept.push_back(std::move(c));
    } else if (lit == wanted) {
      kept.push_back(std::move(c));
    }
    // Opposite literal or empty part: the cube vanishes under the AND.
  }
  cubes_ = std::move(kept);
}

void Cover::sort_and_dedup() {
  std::sort(cubes_.begin(), cubes_.end(), Cube::lexicographic_less);
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
}

void Cover::remove_single_cube_contained() {
  std::vector<bool> dead(cubes_.size(), false);
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < cubes_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (cubes_[i].contains(cubes_[j])) {
        // Ties (equal cubes) keep the earlier one.
        if (!(cubes_[j].contains(cubes_[i]) && j < i)) {
          dead[j] = true;
        }
      }
    }
  }
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (!dead[i]) {
      kept.push_back(std::move(cubes_[i]));
    }
  }
  cubes_ = std::move(kept);
}

VarOccurrence Cover::var_occurrence(int i) const {
  check(i >= 0 && i < num_inputs_, "Cover::var_occurrence: bad variable");
  VarOccurrence occ;
  for (const Cube& c : cubes_) {
    switch (c.input(i)) {
      case Literal::kZero: ++occ.zeros; break;
      case Literal::kOne: ++occ.ones; break;
      default: break;
    }
  }
  return occ;
}

bool Cover::is_unate() const {
  for (int i = 0; i < num_inputs_; ++i) {
    const VarOccurrence occ = var_occurrence(i);
    if (occ.zeros > 0 && occ.ones > 0) {
      return false;
    }
  }
  return true;
}

int Cover::most_binate_var() const {
  int best = -1;
  int best_min = -1;
  int best_total = -1;
  for (int i = 0; i < num_inputs_; ++i) {
    const VarOccurrence occ = var_occurrence(i);
    if (occ.zeros == 0 || occ.ones == 0) {
      continue;
    }
    const int lo = std::min(occ.zeros, occ.ones);
    const int total = occ.zeros + occ.ones;
    if (lo > best_min || (lo == best_min && total > best_total)) {
      best = i;
      best_min = lo;
      best_total = total;
    }
  }
  return best;
}

int Cover::most_frequent_var() const {
  int best = -1;
  int best_total = 0;
  for (int i = 0; i < num_inputs_; ++i) {
    const VarOccurrence occ = var_occurrence(i);
    const int total = occ.zeros + occ.ones;
    if (total > best_total) {
      best = i;
      best_total = total;
    }
  }
  return best;
}

int Cover::total_literals() const {
  int total = 0;
  for (const Cube& c : cubes_) {
    total += c.input_literal_count();
  }
  return total;
}

bool Cover::covers_minterm(std::uint64_t minterm, int out) const {
  for (const Cube& c : cubes_) {
    if (c.covers_minterm(minterm, out)) {
      return true;
    }
  }
  return false;
}

std::string Cover::to_string() const {
  std::string text;
  for (const Cube& c : cubes_) {
    text += c.to_string();
    text += '\n';
  }
  return text;
}

bool Cover::operator==(const Cover& other) const {
  return num_inputs_ == other.num_inputs_ &&
         num_outputs_ == other.num_outputs_ && cubes_ == other.cubes_;
}

}  // namespace ambit::logic
