// A cover: an ordered list of cubes over a common (inputs, outputs) shape.
//
// Covers are AMBIT's universal currency for two-level logic: the Espresso
// minimizer transforms them, the GNOR-PLA mapper consumes them, the
// switch-level simulator is verified against them. The representation is
// a plain vector of Cubes plus shape metadata; semantic operations that
// need recursion (tautology, complement) live in src/espresso.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.h"

namespace ambit::logic {

/// Per-input-variable literal occurrence counts within a cover.
struct VarOccurrence {
  int zeros = 0;  ///< cubes with literal x̄ (Literal::kZero)
  int ones = 0;   ///< cubes with literal x (Literal::kOne)
};

/// An ordered multi-output sum-of-products.
class Cover {
 public:
  /// An empty cover (constant 0 for every output).
  Cover(int num_inputs, int num_outputs);

  /// Single universal cube: constant 1 for every output.
  static Cover universe(int num_inputs, int num_outputs);

  /// Builds a cover from Espresso-style text rows, e.g.
  /// Cover::parse(2, 1, {"10 1", "01 1"}) is EXOR.
  static Cover parse(int num_inputs, int num_outputs,
                     const std::vector<std::string>& rows);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  const Cube& operator[](std::size_t i) const { return cubes_[i]; }
  Cube& operator[](std::size_t i) { return cubes_[i]; }

  std::vector<Cube>::const_iterator begin() const { return cubes_.begin(); }
  std::vector<Cube>::const_iterator end() const { return cubes_.end(); }
  const std::vector<Cube>& cubes() const { return cubes_; }

  /// Appends a cube; throws on shape mismatch. Empty cubes are rejected.
  void add(Cube cube);

  /// Appends all cubes of `other` (shapes must match).
  void append(const Cover& other);

  /// Removes the cube at index `i` (order of the rest preserved).
  void remove_at(std::size_t i);

  /// Espresso cofactor: cubes intersecting `p`, each cofactored by `p`.
  Cover cofactor(const Cube& p) const;

  /// The subset of cubes asserting output `j`, re-shaped to a
  /// single-output cover (input parts preserved, output part = "1").
  Cover restricted_to_output(int j) const;

  /// True when some cube has every input don't-care (the cover is a
  /// tautology for each output that cube asserts; used as a base case).
  bool has_universal_input_cube() const;

  /// ANDs literal (var=value) into every cube; cubes that become empty
  /// are dropped. Used to merge Shannon branches.
  void and_literal(int var, bool value);

  /// Sorts cubes canonically and removes exact duplicates.
  void sort_and_dedup();

  /// Removes every cube that is (bitwise) contained in another cube of
  /// the cover. O(n²) single-cube containment, not semantic coverage.
  void remove_single_cube_contained();

  /// Literal occurrence counts for input variable `i`.
  VarOccurrence var_occurrence(int i) const;

  /// True when no input variable appears in both polarities.
  bool is_unate() const;

  /// The input variable appearing in both polarities that maximizes
  /// min(zeros, ones) + total occurrences; -1 when the cover is unate.
  int most_binate_var() const;

  /// The input variable with the most literal occurrences; -1 when no
  /// cube has any literal.
  int most_frequent_var() const;

  /// Sum of input literal counts over all cubes.
  int total_literals() const;

  /// True when some cube covers (minterm, out).
  bool covers_minterm(std::uint64_t minterm, int out) const;

  /// Multi-line Espresso-style text (one cube per line).
  std::string to_string() const;

  bool operator==(const Cover& other) const;

 private:
  int num_inputs_;
  int num_outputs_;
  std::vector<Cube> cubes_;
};

}  // namespace ambit::logic
