// Exhaustive truth tables for verification.
//
// Truth tables are AMBIT's ground truth: tests and benches verify every
// transformation (Espresso, phase optimization, GNOR mapping, WPLA
// synthesis, switch-level simulation) by exhaustive comparison for
// functions of up to kMaxInputs inputs. One bit is stored per
// (minterm, output) pair.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/cover.h"
#include "logic/pattern_batch.h"

namespace ambit::logic {

/// Dense truth table for a multi-output function of up to 24 inputs.
class TruthTable {
 public:
  /// Largest supported input count (2^24 minterms per output).
  static constexpr int kMaxInputs = 24;

  TruthTable(int num_inputs, int num_outputs);

  /// Evaluates every cube of `cover` over the full input space.
  static TruthTable from_cover(const Cover& cover);

  /// Adopts the output lanes of a batch evaluation over the exhaustive
  /// minterm order as a truth table: lane j becomes output j. The batch
  /// must hold exactly 2^num_inputs patterns — PatternBatch lanes and
  /// TruthTable words share one layout, so this is a straight copy.
  static TruthTable from_outputs(int num_inputs, const PatternBatch& outputs);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  std::uint64_t num_minterms() const { return std::uint64_t{1} << num_inputs_; }

  bool get(std::uint64_t minterm, int out) const;
  void set(std::uint64_t minterm, int out, bool value);

  /// Number of ON minterms of output `out`.
  std::uint64_t count_ones(int out) const;

  /// Bitwise complement of every output.
  TruthTable complemented() const;

  /// Number of (minterm, output) pairs on which the two tables differ,
  /// counted word-parallel. Minterms asserted in `dontcare` (when
  /// non-null) are ignored. Shapes must match.
  std::uint64_t count_mismatches(const TruthTable& other,
                                 const TruthTable* dontcare = nullptr) const;

  bool operator==(const TruthTable& other) const;

 private:
  int num_inputs_;
  int num_outputs_;
  std::uint64_t words_per_output_;
  // Layout: output-major; each output owns words_per_output_ words.
  std::vector<std::uint64_t> bits_;
};

/// True when `cover` and `table` denote the same function.
bool equivalent(const Cover& cover, const TruthTable& table);

/// True when two covers denote the same function (exhaustive check;
/// both must have the same shape and at most TruthTable::kMaxInputs
/// inputs).
bool equivalent(const Cover& a, const Cover& b);

/// True when cover `a` is semantically contained in cover `b`
/// (every minterm of a is covered by b), checked exhaustively.
bool contained_in(const Cover& a, const Cover& b);

}  // namespace ambit::logic
