// Positional-cube representation of product terms.
//
// AMBIT uses the classical Espresso encoding for multi-output,
// single-bit-valued logic:
//
//   * each input variable occupies a 2-bit "part":
//       01 -> the cube covers input value 0   (literal x̄)
//       10 -> the cube covers input value 1   (literal x)
//       11 -> don't care                      (variable absent)
//       00 -> empty part                      (cube covers nothing)
//   * the outputs form one final part with one bit per output:
//       bit j set -> the cube is part of output j's cover.
//
// All parts are packed LSB-first into an array of 64-bit words, so cube
// algebra (intersection, containment, supercube) is word-parallel.
//
// Conventions used throughout AMBIT:
//   * a cube is EMPTY when any input part is 00 or the output part is
//     all zeroes — an empty cube covers no (minterm, output) pair;
//   * "distance" counts the parts at which two cubes fail to intersect
//     (Espresso's definition); distance 0 means they intersect.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ambit::logic {

/// State of one input variable inside a cube.
enum class Literal : std::uint8_t {
  kEmpty = 0,     ///< 00 — no value allowed (cube is empty)
  kZero = 1,      ///< 01 — complemented literal (covers input = 0)
  kOne = 2,       ///< 10 — positive literal (covers input = 1)
  kDontCare = 3,  ///< 11 — variable dropped from the product
};

/// A single product term over `num_inputs` binary inputs asserting a
/// subset of `num_outputs` outputs. Value-semantic, cheaply copyable.
class Cube {
 public:
  /// Constructs the cube with all inputs don't-care and NO outputs
  /// asserted (an empty cube until at least one output bit is set).
  Cube(int num_inputs, int num_outputs);

  /// The universal cube: all inputs don't-care, all outputs asserted.
  static Cube universe(int num_inputs, int num_outputs);

  /// Parses Espresso text, e.g. Cube::parse("10-1", "01"). Throws
  /// ambit::Error on malformed text.
  static Cube parse(const std::string& inputs, const std::string& outputs);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  /// Reads/writes the part for input variable `i`.
  Literal input(int i) const;
  void set_input(int i, Literal value);

  /// Reads/writes output membership bit `j`.
  bool output(int j) const;
  void set_output(int j, bool value);

  /// True when some input part is 00.
  bool input_empty() const;
  /// True when no output is asserted.
  bool output_empty() const;
  /// True when the cube covers no (minterm, output) pair.
  bool empty() const { return input_empty() || output_empty(); }

  /// Number of inputs that are not don't-care (the product's literals).
  int input_literal_count() const;
  /// Number of asserted outputs.
  int output_count() const;

  /// Espresso distance: number of parts (inputs + the single output
  /// part) at which the two cubes do not intersect.
  int distance(const Cube& other) const;
  /// True iff distance(other) == 0.
  bool intersects(const Cube& other) const;

  /// Part-wise intersection (bitwise AND). May be an empty cube.
  Cube intersect(const Cube& other) const;

  /// True when this cube covers `other` (bitwise superset).
  bool contains(const Cube& other) const;

  /// Containment restricted to the input parts (ignores outputs).
  bool input_contains(const Cube& other) const;

  /// Smallest cube containing both (bitwise OR).
  Cube supercube(const Cube& other) const;

  /// Consensus: the largest cube covered by this ∪ other that spans the
  /// single conflicting part. Returns an empty cube unless distance==1.
  Cube consensus(const Cube& other) const;

  /// Espresso cofactor of this cube against `p`: part-wise
  /// this_i | ~p_i. Caller must ensure intersects(p); the output part
  /// follows the same rule so multi-output cofactoring is uniform.
  Cube cofactor(const Cube& p) const;

  /// True when the cube covers input assignment `minterm` (bit i of
  /// `minterm` is the value of input i) for output `out`.
  bool covers_minterm(std::uint64_t minterm, int out) const;

  /// Espresso text form, e.g. "10-1 01".
  std::string to_string() const;

  bool operator==(const Cube& other) const;

  /// Deterministic strict weak ordering (for canonical sorting).
  static bool lexicographic_less(const Cube& a, const Cube& b);

  /// Raw word access for word-parallel algorithms.
  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> mutable_words() { return words_; }

  /// Mask of the valid bits in the last word (other bits are zero).
  std::uint64_t last_word_mask() const;

 private:
  friend class Cover;

  int num_inputs_;
  int num_outputs_;
  std::vector<std::uint64_t> words_;

  int total_bits() const { return 2 * num_inputs_ + num_outputs_; }
};

/// Human-readable name for a literal state ("0", "1", "-", "ø").
std::string to_string(Literal lit);

}  // namespace ambit::logic
