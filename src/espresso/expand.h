// EXPAND: raise every cube to a prime implicant against the OFF-set.
//
// Each cube of the cover is expanded — input literals lifted to
// don't-care and extra output bits raised — as long as the grown cube
// stays disjoint from every OFF-set cube that shares an output with it.
// Cubes that become (bitwise) contained in an expanded prime are
// dropped, which is where EXPAND reduces cover cardinality.
#pragma once

#include "logic/cover.h"

namespace ambit::espresso {

/// Expands every cube of `f` into a prime against blocking matrix
/// `off` (as produced by offset()), dropping cubes covered along the
/// way. Deterministic: processing order is by descending literal
/// count with lexicographic tie-break.
logic::Cover expand(const logic::Cover& f, const logic::Cover& off);

/// Expands a single cube to a prime against `off`. Exposed for tests.
logic::Cube expand_cube(const logic::Cube& cube, const logic::Cover& off);

}  // namespace ambit::espresso
