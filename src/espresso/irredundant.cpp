#include "espresso/irredundant.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "espresso/unate.h"
#include "util/error.h"

namespace ambit::espresso {

using logic::Cover;
using logic::Cube;

Cover irredundant(const Cover& f, const Cover& d) {
  check(f.num_inputs() == d.num_inputs() && f.num_outputs() == d.num_outputs(),
        "irredundant: shape mismatch");
  // Work on a copy; visit most-specific cubes first so that large
  // primes survive and absorb the small ones.
  std::vector<Cube> cubes(f.cubes());
  std::vector<std::size_t> order(cubes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int la = cubes[a].input_literal_count();
    const int lb = cubes[b].input_literal_count();
    if (la != lb) {
      return la > lb;
    }
    return Cube::lexicographic_less(cubes[a], cubes[b]);
  });

  std::vector<bool> alive(cubes.size(), true);
  for (const std::size_t idx : order) {
    Cover rest(f.num_inputs(), f.num_outputs());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      if (i != idx && alive[i]) {
        rest.add(cubes[i]);
      }
    }
    if (covers(rest, &d, cubes[idx])) {
      alive[idx] = false;
    }
  }

  Cover result(f.num_inputs(), f.num_outputs());
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (alive[i]) {
      result.add(cubes[i]);
    }
  }
  return result;
}

}  // namespace ambit::espresso
