// The Espresso two-level minimization loop.
//
// minimize() runs the classical iteration
//
//     EXPAND -> IRREDUNDANT -> ( REDUCE -> EXPAND -> IRREDUNDANT )*
//
// until the cover cost (cube count, then input literals, then output
// literals) stops improving, and returns the best cover seen. The
// result is a prime, irredundant cover of the same function:
//
//     onset  ⊆  result  ⊆  onset ∪ dcset     (semantically)
//
// This is the minimizer the paper relies on for Table 1 ("The area of
// the PLA implementing three functions from the MCNC suite"), for the
// Sasao-style phase optimization it cites ([7]), and for the
// Doppio-Espresso WPLA synthesis ([1]).
#pragma once

#include <cstddef>

#include "logic/cover.h"

namespace ambit::espresso {

/// Tuning knobs; defaults reproduce the standard loop.
struct EspressoOptions {
  /// Upper bound on REDUCE/EXPAND/IRREDUNDANT iterations.
  int max_loops = 16;
  /// Ablation knob: disable REDUCE (single EXPAND+IRREDUNDANT pass).
  bool use_reduce = true;
};

/// Run statistics for reporting and tests.
struct EspressoStats {
  std::size_t initial_cubes = 0;
  std::size_t after_first_expand = 0;
  std::size_t final_cubes = 0;
  int loops = 0;  ///< REDUCE iterations actually executed
};

/// Minimization result: the cover plus statistics.
struct EspressoResult {
  logic::Cover cover;
  EspressoStats stats;

  EspressoResult() : cover(0, 1) {}
};

/// Cover cost used to compare candidate solutions.
struct CoverCost {
  std::size_t cubes = 0;
  int input_literals = 0;
  int output_literals = 0;

  friend bool operator<(const CoverCost& a, const CoverCost& b) {
    if (a.cubes != b.cubes) return a.cubes < b.cubes;
    if (a.input_literals != b.input_literals) {
      return a.input_literals < b.input_literals;
    }
    return a.output_literals < b.output_literals;
  }
  friend bool operator==(const CoverCost& a, const CoverCost& b) {
    return a.cubes == b.cubes && a.input_literals == b.input_literals &&
           a.output_literals == b.output_literals;
  }
};

/// Computes the cost triple of a cover.
CoverCost cost_of(const logic::Cover& f);

/// Minimizes `onset` under don't-cares `dcset` (same shape, may be
/// empty). Deterministic for a given input.
EspressoResult minimize(const logic::Cover& onset, const logic::Cover& dcset,
                        const EspressoOptions& options = {});

/// Convenience overload with an empty don't-care set.
EspressoResult minimize(const logic::Cover& onset,
                        const EspressoOptions& options = {});

}  // namespace ambit::espresso
