// REDUCE: shrink each prime to the smallest cube still covering what
// only it covers, so that the next EXPAND can escape the local minimum.
//
// The classical formula: c̃ = c ∩ SCCC((F ∖ {c} ∪ D) cofactor c), where
// SCCC is the smallest cube containing the complement. Multi-output
// covers additionally lower output bits: output j is dropped from c
// when the remainder already covers c for j.
#pragma once

#include "logic/cover.h"

namespace ambit::espresso {

/// Sequentially reduces every cube of `f` against the rest of the
/// (partially reduced) cover plus don't-cares `d`. The result covers
/// exactly the same function as `f` (given the same `d`).
logic::Cover reduce(const logic::Cover& f, const logic::Cover& d);

}  // namespace ambit::espresso
