// Unate-recursive kernels: tautology, complement, coverage.
//
// These are the classical Espresso primitives (Brayton, Hachtel,
// McMullen, Sangiovanni-Vincentelli, "Logic Minimization Algorithms for
// VLSI Synthesis", 1984) implemented over AMBIT's positional-cube
// covers:
//
//   * tautology(f)    — Shannon recursion with unate reduction;
//   * complement(f)   — Shannon recursion with branch re-merging;
//   * covers(g, c)    — does cover g contain cube c (per output)?
//   * offset(f, d)    — per-output complement R = (F ∪ D)', the
//                       blocking matrix that EXPAND raises against.
//
// tautology/complement operate on *single-output* covers (the
// multi-output entry points in espresso.h decompose by output first);
// covers/offset accept the full multi-output shape.
#pragma once

#include "logic/cover.h"

namespace ambit::espresso {

/// True when the single-output cover `f` evaluates to 1 on every
/// minterm. Requires f.num_outputs() == 1 with all cubes asserting
/// output 0.
bool tautology(const logic::Cover& f);

/// Complement of a single-output cover: a cover of exactly the
/// minterms NOT covered by `f`. The result carries no redundancy
/// guarantees beyond single-cube containment cleanup.
logic::Cover complement(const logic::Cover& f);

/// Complement of one cube by De Morgan: one result cube per literal.
logic::Cover complement_cube(const logic::Cube& c);

/// True when cover `g` (multi-output, plus optional don't-care cover
/// `d`) covers cube `c`: for every output j asserted by c, the input
/// part of c is contained in (g ∪ d) restricted to j. `d` may be null.
bool covers(const logic::Cover& g, const logic::Cover* d, const logic::Cube& c);

/// The multi-output OFF-set: for each output j, the complement of
/// (onset_j ∪ dcset_j), tagged with output j alone. EXPAND treats this
/// as its blocking matrix.
logic::Cover offset(const logic::Cover& onset, const logic::Cover& dcset);

}  // namespace ambit::espresso
