// Output phase optimization (Sasao, IEEE Trans. Computers 1984 — the
// paper's reference [7], implemented in the MINI II heuristic).
//
// For each output the PLA may implement either f or f̄, whichever lets
// products be shared. A classical PLA pays an output inverter for a
// complemented phase; the paper's GNOR architecture gets the inversion
// for free because the second plane's per-product polarity is
// programmable — "the availability of the product-terms with both
// polarities allows a further degree of freedom in minimizing the PLA".
//
// The optimizer is a deterministic greedy search: starting all-positive,
// it repeatedly flips the output whose flip most reduces the minimized
// cover cost, until no flip helps (bounded pass count).
#pragma once

#include <vector>

#include "espresso/espresso.h"
#include "logic/cover.h"

namespace ambit::espresso {

/// Knobs for the phase search.
struct PhaseOptOptions {
  int max_passes = 3;          ///< full sweeps over the outputs
  EspressoOptions espresso{};  ///< minimizer settings for each trial
};

/// Result of output phase optimization.
struct PhaseOptResult {
  /// complemented[j] == true means the cover implements f̄_j; the
  /// consumer must re-invert output j (free on GNOR plane 2).
  std::vector<bool> complemented;
  /// Minimized cover of the chosen phases.
  logic::Cover cover;
  /// Minimized cube count with all phases positive, for comparison.
  std::size_t baseline_cubes = 0;

  PhaseOptResult() : cover(0, 1) {}
};

/// Builds the onset cover implementing phase assignment `complemented`
/// (per output: onset unchanged, or replaced with the complement of
/// onset ∪ dcset). The don't-care set is phase-independent.
logic::Cover apply_phases(const logic::Cover& onset, const logic::Cover& dcset,
                          const std::vector<bool>& complemented);

/// Runs the greedy phase search. Deterministic.
PhaseOptResult optimize_output_phases(const logic::Cover& onset,
                                      const logic::Cover& dcset,
                                      const PhaseOptOptions& options = {});

}  // namespace ambit::espresso
