#include "espresso/unate.h"

#include <map>
#include <vector>

#include "util/error.h"

namespace ambit::espresso {

using logic::Cover;
using logic::Cube;
using logic::Literal;

namespace {

/// Cofactor of a single-output cover against literal (var = value).
Cover literal_cofactor(const Cover& f, int var, bool value) {
  Cube p = Cube::universe(f.num_inputs(), 1);
  p.set_input(var, value ? Literal::kOne : Literal::kZero);
  return f.cofactor(p);
}

/// Unate reduction for tautology: for every variable appearing in only
/// one polarity, drop the cubes with a literal there (f is a tautology
/// iff the reduced cover is). Returns true when anything was dropped.
bool unate_reduce(Cover& f) {
  std::vector<int> unate_vars;
  for (int i = 0; i < f.num_inputs(); ++i) {
    const auto occ = f.var_occurrence(i);
    if ((occ.zeros > 0) != (occ.ones > 0)) {
      unate_vars.push_back(i);
    }
  }
  if (unate_vars.empty()) {
    return false;
  }
  Cover reduced(f.num_inputs(), 1);
  for (const Cube& c : f) {
    bool keep = true;
    for (const int v : unate_vars) {
      if (c.input(v) != Literal::kDontCare) {
        keep = false;
        break;
      }
    }
    if (keep) {
      reduced.add(c);
    }
  }
  f = std::move(reduced);
  return true;
}

bool tautology_rec(Cover f, int depth) {
  require(depth <= 2 * f.num_inputs() + 4, "tautology: runaway recursion");
  for (;;) {
    if (f.has_universal_input_cube()) {
      return true;
    }
    if (f.empty()) {
      return false;
    }
    if (!unate_reduce(f)) {
      break;
    }
  }
  const int x = f.most_binate_var();
  if (x < 0) {
    // After unate reduction every remaining literal column is binate;
    // no binate variable means no literals at all, and the universal
    // cube case was handled above, so the cover must have been emptied.
    return false;
  }
  return tautology_rec(literal_cofactor(f, x, true), depth + 1) &&
         tautology_rec(literal_cofactor(f, x, false), depth + 1);
}

/// Merges the two Shannon branches x·c1 + x̄·c0 of a complement:
/// cubes identical except for the split variable fuse into one cube
/// with x = don't-care. Both branches already carry their x literal.
Cover merge_branches(const Cover& c1, const Cover& c0, int x) {
  Cover merged(c1.num_inputs(), 1);
  // Key cubes by their text with x forced to don't-care.
  std::map<std::string, Cube> from_c0;
  std::vector<bool> used0(c0.size(), false);
  std::map<std::string, std::size_t> index0;
  for (std::size_t i = 0; i < c0.size(); ++i) {
    Cube key = c0[i];
    key.set_input(x, Literal::kDontCare);
    index0.emplace(key.to_string(), i);
  }
  for (const Cube& a : c1) {
    Cube key = a;
    key.set_input(x, Literal::kDontCare);
    const auto it = index0.find(key.to_string());
    if (it != index0.end() && !used0[it->second]) {
      used0[it->second] = true;
      merged.add(key);
    } else {
      merged.add(a);
    }
  }
  for (std::size_t i = 0; i < c0.size(); ++i) {
    if (!used0[i]) {
      merged.add(c0[i]);
    }
  }
  return merged;
}

Cover complement_rec(const Cover& f, int depth) {
  require(depth <= 2 * f.num_inputs() + 4, "complement: runaway recursion");
  if (f.has_universal_input_cube()) {
    return Cover(f.num_inputs(), 1);
  }
  if (f.empty()) {
    return Cover::universe(f.num_inputs(), 1);
  }
  if (f.size() == 1) {
    return complement_cube(f[0]);
  }
  int x = f.most_binate_var();
  if (x < 0) {
    x = f.most_frequent_var();
  }
  require(x >= 0, "complement: non-trivial cover without literals");

  Cover c1 = complement_rec(literal_cofactor(f, x, true), depth + 1);
  c1.and_literal(x, true);
  Cover c0 = complement_rec(literal_cofactor(f, x, false), depth + 1);
  c0.and_literal(x, false);

  Cover merged = merge_branches(c1, c0, x);
  merged.remove_single_cube_contained();
  return merged;
}

}  // namespace

bool tautology(const Cover& f) {
  check(f.num_outputs() == 1, "tautology: cover must be single-output");
  return tautology_rec(f, 0);
}

Cover complement(const Cover& f) {
  check(f.num_outputs() == 1, "complement: cover must be single-output");
  return complement_rec(f, 0);
}

Cover complement_cube(const Cube& c) {
  check(c.num_outputs() == 1, "complement_cube: cube must be single-output");
  Cover result(c.num_inputs(), 1);
  for (int i = 0; i < c.num_inputs(); ++i) {
    const Literal lit = c.input(i);
    if (lit == Literal::kZero || lit == Literal::kOne) {
      Cube piece = Cube::universe(c.num_inputs(), 1);
      piece.set_input(i, lit == Literal::kZero ? Literal::kOne : Literal::kZero);
      result.add(std::move(piece));
    }
  }
  // A literal-free cube is the universe; its complement is empty.
  return result;
}

bool covers(const Cover& g, const Cover* d, const Cube& c) {
  check(g.num_inputs() == c.num_inputs() && g.num_outputs() == c.num_outputs(),
        "covers: shape mismatch");
  Cube input_cube = Cube::universe(c.num_inputs(), 1);
  for (int i = 0; i < c.num_inputs(); ++i) {
    input_cube.set_input(i, c.input(i));
  }
  for (int j = 0; j < c.num_outputs(); ++j) {
    if (!c.output(j)) {
      continue;
    }
    Cover gj = g.restricted_to_output(j);
    if (d != nullptr) {
      gj.append(d->restricted_to_output(j));
    }
    if (!tautology(gj.cofactor(input_cube))) {
      return false;
    }
  }
  return true;
}

Cover offset(const Cover& onset, const Cover& dcset) {
  check(onset.num_inputs() == dcset.num_inputs() &&
            onset.num_outputs() == dcset.num_outputs(),
        "offset: onset/dcset shape mismatch");
  const int ni = onset.num_inputs();
  const int no = onset.num_outputs();
  Cover result(ni, no);
  for (int j = 0; j < no; ++j) {
    Cover fj = onset.restricted_to_output(j);
    fj.append(dcset.restricted_to_output(j));
    const Cover rj = complement(fj);
    for (const Cube& c : rj) {
      Cube tagged(ni, no);
      for (int i = 0; i < ni; ++i) {
        tagged.set_input(i, c.input(i));
      }
      tagged.set_output(j, true);
      result.add(std::move(tagged));
    }
  }
  return result;
}

}  // namespace ambit::espresso
