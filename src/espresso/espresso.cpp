#include "espresso/espresso.h"

#include "espresso/expand.h"
#include "espresso/irredundant.h"
#include "espresso/reduce.h"
#include "espresso/unate.h"
#include "util/error.h"

namespace ambit::espresso {

using logic::Cover;

CoverCost cost_of(const Cover& f) {
  CoverCost cost;
  cost.cubes = f.size();
  cost.input_literals = f.total_literals();
  for (const auto& c : f) {
    cost.output_literals += c.output_count();
  }
  return cost;
}

EspressoResult minimize(const Cover& onset, const Cover& dcset,
                        const EspressoOptions& options) {
  check(onset.num_inputs() == dcset.num_inputs() &&
            onset.num_outputs() == dcset.num_outputs(),
        "espresso: onset/dcset shape mismatch");

  EspressoResult result;
  result.stats.initial_cubes = onset.size();

  Cover f = onset;
  f.sort_and_dedup();
  f.remove_single_cube_contained();
  if (f.empty()) {
    result.cover = f;
    return result;
  }

  const Cover off = offset(onset, dcset);

  f = expand(f, off);
  result.stats.after_first_expand = f.size();
  f = irredundant(f, dcset);

  Cover best = f;
  CoverCost best_cost = cost_of(best);

  if (options.use_reduce) {
    for (int loop = 0; loop < options.max_loops; ++loop) {
      f = reduce(f, dcset);
      f = expand(f, off);
      f = irredundant(f, dcset);
      ++result.stats.loops;
      const CoverCost cost = cost_of(f);
      if (cost < best_cost) {
        best = f;
        best_cost = cost;
      } else {
        break;
      }
    }
  }

  best.sort_and_dedup();
  result.cover = std::move(best);
  result.stats.final_cubes = result.cover.size();
  return result;
}

EspressoResult minimize(const Cover& onset, const EspressoOptions& options) {
  const Cover empty_dc(onset.num_inputs(), onset.num_outputs());
  return minimize(onset, empty_dc, options);
}

}  // namespace ambit::espresso
