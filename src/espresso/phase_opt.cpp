#include "espresso/phase_opt.h"

#include "espresso/unate.h"
#include "util/error.h"

namespace ambit::espresso {

using logic::Cover;
using logic::Cube;

Cover apply_phases(const Cover& onset, const Cover& dcset,
                   const std::vector<bool>& complemented) {
  check(static_cast<int>(complemented.size()) == onset.num_outputs(),
        "apply_phases: phase vector arity mismatch");
  const int ni = onset.num_inputs();
  const int no = onset.num_outputs();
  Cover combined(ni, no);
  for (int j = 0; j < no; ++j) {
    Cover source(ni, 1);
    if (complemented[j]) {
      // f̄_j's ON-set is the complement of onset_j ∪ dcset_j.
      Cover fj = onset.restricted_to_output(j);
      fj.append(dcset.restricted_to_output(j));
      source = complement(fj);
    } else {
      source = onset.restricted_to_output(j);
    }
    for (const Cube& c : source) {
      Cube tagged(ni, no);
      for (int i = 0; i < ni; ++i) {
        tagged.set_input(i, c.input(i));
      }
      tagged.set_output(j, true);
      combined.add(std::move(tagged));
    }
  }
  return combined;
}

PhaseOptResult optimize_output_phases(const Cover& onset, const Cover& dcset,
                                      const PhaseOptOptions& options) {
  const int no = onset.num_outputs();
  PhaseOptResult result;
  result.complemented.assign(static_cast<std::size_t>(no), false);

  const auto minimize_phases = [&](const std::vector<bool>& phases) {
    const Cover candidate = apply_phases(onset, dcset, phases);
    return minimize(candidate, dcset, options.espresso);
  };

  EspressoResult current = minimize_phases(result.complemented);
  result.baseline_cubes = current.cover.size();
  CoverCost current_cost = cost_of(current.cover);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (int j = 0; j < no; ++j) {
      std::vector<bool> trial = result.complemented;
      trial[static_cast<std::size_t>(j)] = !trial[static_cast<std::size_t>(j)];
      EspressoResult attempt = minimize_phases(trial);
      const CoverCost cost = cost_of(attempt.cover);
      if (cost < current_cost) {
        result.complemented = std::move(trial);
        current = std::move(attempt);
        current_cost = cost;
        improved = true;
      }
    }
    if (!improved) {
      break;
    }
  }

  result.cover = std::move(current.cover);
  return result;
}

}  // namespace ambit::espresso
