// IRREDUNDANT: drop cubes whose removal leaves the function intact.
//
// A cube is redundant when (F ∖ {c}) ∪ D still covers it for every
// output it asserts; the check reduces to per-output tautology of the
// cofactored remainder. The greedy order (most-specific cubes first)
// matches what Espresso's partially-redundant processing achieves on
// the cover sizes AMBIT targets.
#pragma once

#include "logic/cover.h"

namespace ambit::espresso {

/// Returns `f` with redundant cubes removed, relative to don't-care
/// cover `d` (same shape; may be empty).
logic::Cover irredundant(const logic::Cover& f, const logic::Cover& d);

}  // namespace ambit::espresso
