#include "espresso/reduce.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "espresso/unate.h"
#include "util/error.h"

namespace ambit::espresso {

using logic::Cover;
using logic::Cube;
using logic::Literal;

namespace {

/// Extracts the input part of `c` as a single-output universe cube.
Cube input_cube_of(const Cube& c) {
  Cube input = Cube::universe(c.num_inputs(), 1);
  for (int i = 0; i < c.num_inputs(); ++i) {
    input.set_input(i, c.input(i));
  }
  return input;
}

/// Supercube over all cubes of a single-output cover; empty cover
/// yields an all-empty-parts cube flagged by `any = false`.
bool supercube_of(const Cover& f, Cube& result) {
  if (f.empty()) {
    return false;
  }
  result = f[0];
  for (std::size_t i = 1; i < f.size(); ++i) {
    result = result.supercube(f[i]);
  }
  return true;
}

}  // namespace

Cover reduce(const Cover& f, const Cover& d) {
  check(f.num_inputs() == d.num_inputs() && f.num_outputs() == d.num_outputs(),
        "reduce: shape mismatch");
  const int ni = f.num_inputs();
  const int no = f.num_outputs();

  // Espresso reduces the largest cubes first: they have the most room
  // to shrink, freeing space for the others.
  std::vector<Cube> cubes(f.cubes());
  std::vector<std::size_t> order(cubes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int la = cubes[a].input_literal_count();
    const int lb = cubes[b].input_literal_count();
    if (la != lb) {
      return la < lb;  // fewest literals = largest cube first
    }
    return Cube::lexicographic_less(cubes[a], cubes[b]);
  });

  std::vector<bool> alive(cubes.size(), true);
  for (const std::size_t idx : order) {
    const Cube c = cubes[idx];
    const Cube c_input = input_cube_of(c);

    // Per asserted output: what does c cover that nobody else does?
    Cube acc_super(ni, 1);        // union-of-SCCC accumulator (inputs only)
    bool acc_any = false;
    Cube lowered = c;
    for (int j = 0; j < no; ++j) {
      if (!c.output(j)) {
        continue;
      }
      Cover rest_j(ni, 1);
      for (std::size_t i = 0; i < cubes.size(); ++i) {
        if (i == idx || !alive[i] || !cubes[i].output(j)) {
          continue;
        }
        Cube single = input_cube_of(cubes[i]);
        rest_j.add(std::move(single));
      }
      for (const Cube& dc : d) {
        if (dc.output(j)) {
          rest_j.add(input_cube_of(dc));
        }
      }
      const Cover remainder = rest_j.cofactor(c_input);
      const Cover uncovered = complement(remainder);
      Cube sccc(ni, 1);
      if (!supercube_of(uncovered, sccc)) {
        // Remainder is a tautology inside c: output j no longer needs c.
        lowered.set_output(j, false);
        continue;
      }
      if (acc_any) {
        acc_super = acc_super.supercube(sccc);
      } else {
        acc_super = sccc;
        acc_any = true;
      }
    }

    if (lowered.output_empty()) {
      alive[idx] = false;
      continue;
    }
    require(acc_any, "reduce: kept outputs but no uncovered part");
    // Shrink the input part onto the uniquely covered region.
    for (int i = 0; i < ni; ++i) {
      const auto meet = static_cast<std::uint8_t>(c.input(i)) &
                        static_cast<std::uint8_t>(acc_super.input(i));
      lowered.set_input(i, static_cast<Literal>(meet));
    }
    require(!lowered.input_empty(), "reduce: produced empty input part");
    cubes[idx] = lowered;
  }

  Cover result(ni, no);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (alive[i]) {
      result.add(cubes[i]);
    }
  }
  return result;
}

}  // namespace ambit::espresso
