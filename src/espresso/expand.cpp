#include "espresso/expand.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace ambit::espresso {

using logic::Cover;
using logic::Cube;
using logic::Literal;

namespace {

/// True when the input parts of `a` and `b` intersect everywhere
/// (input distance 0).
bool inputs_intersect(const Cube& a, const Cube& b) {
  for (int i = 0; i < a.num_inputs(); ++i) {
    const auto pair = static_cast<std::uint8_t>(a.input(i)) &
                      static_cast<std::uint8_t>(b.input(i));
    if (pair == 0) {
      return false;
    }
  }
  return true;
}

bool outputs_overlap(const Cube& a, const Cube& b) {
  for (int j = 0; j < a.num_outputs(); ++j) {
    if (a.output(j) && b.output(j)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Cube expand_cube(const Cube& cube, const Cover& off) {
  check(cube.num_inputs() == off.num_inputs() &&
            cube.num_outputs() == off.num_outputs(),
        "expand_cube: shape mismatch");
  Cube c = cube;
  const int ni = c.num_inputs();
  const int no = c.num_outputs();

  // Blocking state per relevant OFF-set cube: at which input variables
  // does c currently miss it? A cube r stays blocked while it has at
  // least one blocking variable; raising the last one would make c
  // intersect r, which is illegal.
  struct Blocker {
    const Cube* r;
    std::vector<int> blocking_vars;
  };
  std::vector<Blocker> blockers;
  for (const Cube& r : off) {
    if (!outputs_overlap(c, r)) {
      continue;
    }
    Blocker b;
    b.r = &r;
    for (int i = 0; i < ni; ++i) {
      const auto pair = static_cast<std::uint8_t>(c.input(i)) &
                        static_cast<std::uint8_t>(r.input(i));
      if (pair == 0) {
        b.blocking_vars.push_back(i);
      }
    }
    // The ON-set must be disjoint from the OFF-set; a relevant blocker
    // with no blocking variable would mean they already intersect.
    require(!b.blocking_vars.empty(),
            "expand_cube: cube intersects the OFF-set");
    blockers.push_back(std::move(b));
  }

  const auto is_blocking_var = [&](const Blocker& b, int v) {
    return std::find(b.blocking_vars.begin(), b.blocking_vars.end(), v) !=
           b.blocking_vars.end();
  };

  // Raise input literals greedily until no raising is legal. At each
  // step prefer the variable whose raising leaves the most blockers
  // with slack (>= 2 blocking vars), a cheap proxy for Espresso's
  // "maximize the number of covered cubes" objective.
  std::vector<int> candidates;
  for (int i = 0; i < ni; ++i) {
    const Literal lit = c.input(i);
    if (lit == Literal::kZero || lit == Literal::kOne) {
      candidates.push_back(i);
    }
  }
  bool progress = true;
  while (progress) {
    progress = false;
    int best_var = -1;
    int best_score = -1;
    for (const int v : candidates) {
      if (c.input(v) == Literal::kDontCare) {
        continue;
      }
      bool legal = true;
      int slack = 0;
      for (const Blocker& b : blockers) {
        if (!is_blocking_var(b, v)) {
          ++slack;
          continue;
        }
        if (b.blocking_vars.size() == 1) {
          legal = false;
          break;
        }
      }
      if (legal && slack > best_score) {
        best_score = slack;
        best_var = v;
      }
    }
    if (best_var >= 0) {
      c.set_input(best_var, Literal::kDontCare);
      for (Blocker& b : blockers) {
        std::erase(b.blocking_vars, best_var);
      }
      progress = true;
    }
  }

  // Raise output bits: output j can join the cube when the expanded
  // input part misses every OFF-set cube of output j.
  for (int j = 0; j < no; ++j) {
    if (c.output(j)) {
      continue;
    }
    bool legal = true;
    for (const Cube& r : off) {
      if (r.output(j) && inputs_intersect(c, r)) {
        legal = false;
        break;
      }
    }
    if (legal) {
      c.set_output(j, true);
      // New outputs bring new blockers; input literals are already
      // maximal for the old outputs, but re-check for completeness:
      // raising more inputs now could intersect the new output's
      // OFF-set only, which the loop below guards against.
    }
  }
  return c;
}

Cover expand(const Cover& f, const Cover& off) {
  check(f.num_inputs() == off.num_inputs() &&
            f.num_outputs() == off.num_outputs(),
        "expand: shape mismatch");
  std::vector<std::size_t> order(f.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int la = f[a].input_literal_count();
    const int lb = f[b].input_literal_count();
    if (la != lb) {
      return la > lb;  // most specific cubes first
    }
    return Cube::lexicographic_less(f[a], f[b]);
  });

  std::vector<bool> covered(f.size(), false);
  Cover result(f.num_inputs(), f.num_outputs());
  for (const std::size_t idx : order) {
    if (covered[idx]) {
      continue;
    }
    const Cube prime = expand_cube(f[idx], off);
    covered[idx] = true;
    for (const std::size_t other : order) {
      if (!covered[other] && prime.contains(f[other])) {
        covered[other] = true;
      }
    }
    result.add(prime);
  }
  result.remove_single_cube_contained();
  return result;
}

}  // namespace ambit::espresso
