// Four-valued switch-level logic.
#pragma once

namespace ambit::simulate {

/// Node value in the switch-level simulator.
enum class Logic {
  k0,  ///< driven (or held) low
  k1,  ///< driven (or held) high
  kZ,  ///< floating with no retained charge
  kX,  ///< unknown / conflict
};

/// Human-readable name ("0", "1", "Z", "X").
const char* to_string(Logic v);

/// True for k0/k1.
inline bool is_definite(Logic v) { return v == Logic::k0 || v == Logic::k1; }

/// Converts a bool.
inline Logic from_bool(bool b) { return b ? Logic::k1 : Logic::k0; }

}  // namespace ambit::simulate
