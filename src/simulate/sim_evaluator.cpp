#include "simulate/sim_evaluator.h"

#include "util/error.h"

namespace ambit::simulate {

SimEvaluator::SimEvaluator(const core::GnorPla& pla,
                           const tech::CnfetElectrical& electrical)
    : sim_(pla, electrical) {}

std::vector<bool> SimEvaluator::do_evaluate(
    const std::vector<bool>& inputs) const {
  // One-pattern batch: the scalar path must agree with the batch path
  // by construction, not by a parallel implementation.
  logic::PatternBatch batch(num_inputs(), 1);
  batch.set_pattern(0, inputs);
  const BatchSimResult result = sim_.simulate_batch(batch);
  check(result.all_definite(),
        "SimEvaluator: output failed to settle to a definite value");
  return result.outputs.pattern(0);
}

logic::PatternBatch SimEvaluator::do_evaluate_batch(
    const logic::PatternBatch& inputs) const {
  BatchSimResult result = sim_.simulate_batch(inputs);
  check(result.all_definite(),
        "SimEvaluator: output failed to settle to a definite value");
  return std::move(result.outputs);
}

}  // namespace ambit::simulate
