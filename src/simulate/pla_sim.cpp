#include "simulate/pla_sim.h"

#include <algorithm>

#include "util/error.h"
#include "util/thread_pool.h"

namespace ambit::simulate {

using core::CellConfig;
using core::GnorPla;
using core::GnorPlane;
using core::PolarityState;

namespace {

double max_of(const std::vector<double>& values) {
  double worst = 0;
  for (const double v : values) {
    worst = std::max(worst, v);
  }
  return worst;
}

}  // namespace

BatchSimResult::BatchSimResult(int num_outputs, std::uint64_t num_patterns)
    : outputs(num_outputs, num_patterns),
      definite(num_outputs, num_patterns),
      precharge_delay_s(num_patterns),
      plane1_eval_delay_s(num_patterns),
      plane2_eval_delay_s(num_patterns) {}

bool BatchSimResult::all_definite() const {
  for (int o = 0; o < definite.num_signals(); ++o) {
    const std::uint64_t* lane = definite.lane(o);
    for (std::uint64_t w = 0; w < definite.words_per_lane(); ++w) {
      const bool last = (w + 1 == definite.words_per_lane());
      if (lane[w] != (last ? definite.tail_mask() : ~std::uint64_t{0})) {
        return false;
      }
    }
  }
  return true;
}

double BatchSimResult::cycle_s(std::uint64_t p) const {
  check(p < num_patterns(), "BatchSimResult::cycle_s: pattern out of range");
  return precharge_delay_s[p] + plane1_eval_delay_s[p] + plane2_eval_delay_s[p];
}

double BatchSimResult::worst_precharge_s() const {
  return max_of(precharge_delay_s);
}

double BatchSimResult::worst_plane1_eval_s() const {
  return max_of(plane1_eval_delay_s);
}

double BatchSimResult::worst_plane2_eval_s() const {
  return max_of(plane2_eval_delay_s);
}

std::uint64_t BatchSimResult::critical_pattern() const {
  std::uint64_t worst = 0;
  double worst_cycle = -1;
  for (std::uint64_t p = 0; p < num_patterns(); ++p) {
    const double c = cycle_s(p);
    if (c > worst_cycle) {
      worst_cycle = c;
      worst = p;
    }
  }
  return worst;
}

double BatchSimResult::mean_cycle_s() const {
  if (num_patterns() == 0) {
    return 0;
  }
  double total = 0;
  for (std::uint64_t p = 0; p < num_patterns(); ++p) {
    total += cycle_s(p);
  }
  return total / static_cast<double>(num_patterns());
}

GnorPlaSimulator::GnorPlaSimulator(const GnorPla& pla,
                                   const tech::CnfetElectrical& electrical)
    : pla_(pla), net_(electrical) {
  const NodeId vdd = net_.add_supply("vdd", Logic::k1);
  const NodeId gnd = net_.add_supply("gnd", Logic::k0);
  clk1_ = net_.add_input("clk1");
  clk2_ = net_.add_input("clk2");

  for (int i = 0; i < pla_.num_inputs(); ++i) {
    input_nodes_.push_back(net_.add_input("in" + std::to_string(i)));
  }

  // Builds one dynamic GNOR plane: per row a TPC (p-type, clocked), a
  // TEV foot (n-type, clocked) and one device per array position.
  const auto build_plane = [&](const GnorPlane& plane, const char* prefix,
                               NodeId clk,
                               const std::vector<NodeId>& column_signals,
                               std::vector<NodeId>& row_nodes,
                               std::vector<std::size_t>& cell_devices) {
    const double row_cap =
        plane.cols() * (electrical.c_cell_f + electrical.c_wire_per_cell_f);
    for (int r = 0; r < plane.rows(); ++r) {
      const std::string base = std::string(prefix) + std::to_string(r);
      const NodeId row = net_.add_node(base, row_cap);
      // Foot node between the pull-down cells and TEV.
      const NodeId foot = net_.add_node(base + "_foot", electrical.c_cell_f);
      // TPC: precharges the row while clk is low.
      net_.add_device(PolarityState::kPType, clk, vdd, row);
      // TEV: enables the pull-down network while clk is high.
      net_.add_device(PolarityState::kNType, clk, foot, gnd);
      for (int c = 0; c < plane.cols(); ++c) {
        cell_devices.push_back(net_.num_devices());
        net_.add_device(polarity_of(plane.cell(r, c)),
                        column_signals[static_cast<std::size_t>(c)], row,
                        foot);
      }
      row_nodes.push_back(row);
    }
  };

  build_plane(pla_.product_plane(), "p1r", clk1_, input_nodes_, p1_rows_,
              p1_cell_device_);
  // Plane 2 cell gates are driven directly by the plane-1 row nodes;
  // its evaluate clock fires only after plane 1 has settled.
  build_plane(pla_.output_plane(), "p2r", clk2_, p1_rows_, p2_rows_,
              p2_cell_device_);
}

GnorPlaSimulator::PhaseDelays GnorPlaSimulator::cycle_on(
    SwitchNetwork& net, const std::vector<Logic>& inputs) const {
  check(static_cast<int>(inputs.size()) == pla_.num_inputs(),
        "GnorPlaSimulator::run_cycle: input arity mismatch");
  PhaseDelays delays;

  // --- Precharge phase: both clocks low, inputs applied. ---
  net.set_value(clk1_, Logic::k0);
  net.set_value(clk2_, Logic::k0);
  for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
    net.set_value(input_nodes_[i], inputs[i]);
  }
  net.settle();
  for (const NodeId row : p1_rows_) {
    delays.precharge_s = std::max(delays.precharge_s, net.drive_delay_s(row));
  }
  for (const NodeId row : p2_rows_) {
    delays.precharge_s = std::max(delays.precharge_s, net.drive_delay_s(row));
  }

  // --- Evaluate plane 1 (clk1 high, clk2 still low). ---
  net.set_value(clk1_, Logic::k1);
  net.settle();
  for (const NodeId row : p1_rows_) {
    delays.plane1_s = std::max(delays.plane1_s, net.drive_delay_s(row));
  }

  // --- Evaluate plane 2 on the settled product lines. ---
  net.set_value(clk2_, Logic::k1);
  net.settle();
  for (const NodeId row : p2_rows_) {
    delays.plane2_s = std::max(delays.plane2_s, net.drive_delay_s(row));
  }
  return delays;
}

Logic GnorPlaSimulator::output_value(const SwitchNetwork& net, int o) const {
  Logic v = net.value(p2_rows_[static_cast<std::size_t>(o)]);
  if (pla_.buffer_inverted(o)) {
    if (v == Logic::k0) {
      v = Logic::k1;
    } else if (v == Logic::k1) {
      v = Logic::k0;
    }
  }
  return v;
}

PlaSimResult GnorPlaSimulator::run_cycle_logic(
    const std::vector<Logic>& inputs) {
  const PhaseDelays delays = cycle_on(net_, inputs);
  PlaSimResult result;
  result.precharge_delay_s = delays.precharge_s;
  result.plane1_eval_delay_s = delays.plane1_s;
  result.plane2_eval_delay_s = delays.plane2_s;
  result.product_lines.reserve(p1_rows_.size());
  for (const NodeId row : p1_rows_) {
    result.product_lines.push_back(net_.value(row));
  }
  result.outputs.reserve(static_cast<std::size_t>(pla_.num_outputs()));
  for (int o = 0; o < pla_.num_outputs(); ++o) {
    result.outputs.push_back(output_value(net_, o));
  }
  return result;
}

PlaSimResult GnorPlaSimulator::run_cycle(const std::vector<bool>& inputs) {
  std::vector<Logic> logic_inputs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    logic_inputs[i] = from_bool(inputs[i]);
  }
  return run_cycle_logic(logic_inputs);
}

PlaSimResult GnorPlaSimulator::simulate(const std::vector<bool>& inputs) {
  net_.reset();
  return run_cycle(inputs);
}

BatchSimResult GnorPlaSimulator::simulate_batch(
    const logic::PatternBatch& inputs, ThreadPool* pool) const {
  check(inputs.num_signals() == pla_.num_inputs(),
        "GnorPlaSimulator::simulate_batch: input width mismatch (got " +
            std::to_string(inputs.num_signals()) + ", expected " +
            std::to_string(pla_.num_inputs()) + ")");
  const std::uint64_t patterns = inputs.num_patterns();
  const int ni = pla_.num_inputs();
  const int no = pla_.num_outputs();
  BatchSimResult result(no, patterns);

  // Simulates patterns [lo, hi) on a private settle-state copy of the
  // ONE built network: topology and fault overrides are shared, charge
  // state is not, so shards never race and reset-per-pattern keeps
  // every result independent of pattern order.
  const auto run_range = [&](std::uint64_t lo, std::uint64_t hi) {
    SwitchNetwork net = net_;
    std::vector<Logic> in(static_cast<std::size_t>(ni));
    for (std::uint64_t p = lo; p < hi; ++p) {
      for (int i = 0; i < ni; ++i) {
        in[static_cast<std::size_t>(i)] = from_bool(inputs.get(p, i));
      }
      net.reset();
      const PhaseDelays delays = cycle_on(net, in);
      result.precharge_delay_s[p] = delays.precharge_s;
      result.plane1_eval_delay_s[p] = delays.plane1_s;
      result.plane2_eval_delay_s[p] = delays.plane2_s;
      for (int o = 0; o < no; ++o) {
        const Logic v = output_value(net, o);
        // Word-aligned shards touch disjoint result words, so these
        // read-modify-write bit sets need no synchronization.
        result.outputs.set(p, o, v == Logic::k1);
        result.definite.set(p, o, is_definite(v));
      }
    }
  };

  const std::uint64_t words = inputs.words_per_lane();
  // Unlike the word-cheap logic-level kernels, every simulated pattern
  // costs three full settles, so sharding pays from the second word on
  // (grain: one 64-pattern word).
  if (pool == nullptr || pool->num_workers() <= 1 || words < 2) {
    run_range(0, patterns);
  } else {
    pool->parallel_for(0, words, /*grain=*/1,
                       [&](std::uint64_t word_lo, std::uint64_t word_hi) {
                         run_range(word_lo * 64,
                                   std::min(patterns, word_hi * 64));
                       });
  }
  return result;
}

void GnorPlaSimulator::override_cell(int plane, int row, int col,
                                     PolarityState polarity) {
  check(plane == 1 || plane == 2, "override_cell: plane must be 1 or 2");
  const GnorPlane& target =
      plane == 1 ? pla_.product_plane() : pla_.output_plane();
  check(row >= 0 && row < target.rows() && col >= 0 && col < target.cols(),
        "override_cell: cell out of range");
  const auto& table = plane == 1 ? p1_cell_device_ : p2_cell_device_;
  const std::size_t device =
      table[static_cast<std::size_t>(row) *
                static_cast<std::size_t>(target.cols()) +
            static_cast<std::size_t>(col)];
  net_.set_device_polarity(device, polarity);
}

}  // namespace ambit::simulate
