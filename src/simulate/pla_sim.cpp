#include "simulate/pla_sim.h"

#include <algorithm>

#include "util/error.h"

namespace ambit::simulate {

using core::CellConfig;
using core::GnorPla;
using core::GnorPlane;
using core::PolarityState;

GnorPlaSimulator::GnorPlaSimulator(const GnorPla& pla,
                                   const tech::CnfetElectrical& electrical)
    : pla_(pla), net_(electrical) {
  const NodeId vdd = net_.add_supply("vdd", Logic::k1);
  const NodeId gnd = net_.add_supply("gnd", Logic::k0);
  clk1_ = net_.add_input("clk1");
  clk2_ = net_.add_input("clk2");

  for (int i = 0; i < pla_.num_inputs(); ++i) {
    input_nodes_.push_back(net_.add_input("in" + std::to_string(i)));
  }

  // Builds one dynamic GNOR plane: per row a TPC (p-type, clocked), a
  // TEV foot (n-type, clocked) and one device per array position.
  const auto build_plane = [&](const GnorPlane& plane, const char* prefix,
                               NodeId clk,
                               const std::vector<NodeId>& column_signals,
                               std::vector<NodeId>& row_nodes,
                               std::vector<std::size_t>& cell_devices) {
    const double row_cap =
        plane.cols() * (electrical.c_cell_f + electrical.c_wire_per_cell_f);
    for (int r = 0; r < plane.rows(); ++r) {
      const std::string base = std::string(prefix) + std::to_string(r);
      const NodeId row = net_.add_node(base, row_cap);
      // Foot node between the pull-down cells and TEV.
      const NodeId foot = net_.add_node(base + "_foot", electrical.c_cell_f);
      // TPC: precharges the row while clk is low.
      net_.add_device(PolarityState::kPType, clk, vdd, row);
      // TEV: enables the pull-down network while clk is high.
      net_.add_device(PolarityState::kNType, clk, foot, gnd);
      for (int c = 0; c < plane.cols(); ++c) {
        cell_devices.push_back(net_.num_devices());
        net_.add_device(polarity_of(plane.cell(r, c)),
                        column_signals[static_cast<std::size_t>(c)], row,
                        foot);
      }
      row_nodes.push_back(row);
    }
  };

  build_plane(pla_.product_plane(), "p1r", clk1_, input_nodes_, p1_rows_,
              p1_cell_device_);
  // Plane 2 cell gates are driven directly by the plane-1 row nodes;
  // its evaluate clock fires only after plane 1 has settled.
  build_plane(pla_.output_plane(), "p2r", clk2_, p1_rows_, p2_rows_,
              p2_cell_device_);
}

PlaSimResult GnorPlaSimulator::run_cycle(const std::vector<bool>& inputs) {
  check(static_cast<int>(inputs.size()) == pla_.num_inputs(),
        "GnorPlaSimulator::run_cycle: input arity mismatch");
  PlaSimResult result;

  // --- Precharge phase: both clocks low, inputs applied. ---
  net_.set_value(clk1_, Logic::k0);
  net_.set_value(clk2_, Logic::k0);
  for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
    net_.set_value(input_nodes_[i], from_bool(inputs[i]));
  }
  net_.settle();
  for (const NodeId row : p1_rows_) {
    result.precharge_delay_s =
        std::max(result.precharge_delay_s, net_.drive_delay_s(row));
  }
  for (const NodeId row : p2_rows_) {
    result.precharge_delay_s =
        std::max(result.precharge_delay_s, net_.drive_delay_s(row));
  }

  // --- Evaluate plane 1 (clk1 high, clk2 still low). ---
  net_.set_value(clk1_, Logic::k1);
  net_.settle();
  for (const NodeId row : p1_rows_) {
    result.product_lines.push_back(net_.value(row));
    result.plane1_eval_delay_s =
        std::max(result.plane1_eval_delay_s, net_.drive_delay_s(row));
  }

  // --- Evaluate plane 2 on the settled product lines. ---
  net_.set_value(clk2_, Logic::k1);
  net_.settle();
  for (int o = 0; o < pla_.num_outputs(); ++o) {
    const NodeId row = p2_rows_[static_cast<std::size_t>(o)];
    Logic v = net_.value(row);
    result.plane2_eval_delay_s =
        std::max(result.plane2_eval_delay_s, net_.drive_delay_s(row));
    if (pla_.buffer_inverted(o)) {
      if (v == Logic::k0) {
        v = Logic::k1;
      } else if (v == Logic::k1) {
        v = Logic::k0;
      }
    }
    result.outputs.push_back(v);
  }
  return result;
}

void GnorPlaSimulator::override_cell(int plane, int row, int col,
                                     PolarityState polarity) {
  check(plane == 1 || plane == 2, "override_cell: plane must be 1 or 2");
  const GnorPlane& target =
      plane == 1 ? pla_.product_plane() : pla_.output_plane();
  check(row >= 0 && row < target.rows() && col >= 0 && col < target.cols(),
        "override_cell: cell out of range");
  const auto& table = plane == 1 ? p1_cell_device_ : p2_cell_device_;
  const std::size_t device =
      table[static_cast<std::size_t>(row) *
                static_cast<std::size_t>(target.cols()) +
            static_cast<std::size_t>(col)];
  net_.set_device_polarity(device, polarity);
}

}  // namespace ambit::simulate
