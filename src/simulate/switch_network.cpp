#include "simulate/switch_network.h"

#include <cmath>
#include <limits>
#include <queue>

#include "util/error.h"

namespace ambit::simulate {
namespace {

constexpr double kLn2 = 0.6931471805599453;

/// Disjoint-set forest over node ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) {
      parent_[static_cast<std::size_t>(i)] = i;
    }
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

const char* to_string(Logic v) {
  switch (v) {
    case Logic::k0: return "0";
    case Logic::k1: return "1";
    case Logic::kZ: return "Z";
    case Logic::kX: return "X";
  }
  return "?";
}

SwitchNetwork::SwitchNetwork(const tech::CnfetElectrical& electrical)
    : electrical_(electrical) {}

NodeId SwitchNetwork::add_node(std::string name, double cap_f) {
  check(cap_f >= 0, "SwitchNetwork: negative capacitance");
  nodes_.push_back(Node{.name = std::move(name), .cap_f = cap_f});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId SwitchNetwork::add_supply(std::string name, Logic value) {
  check(is_definite(value), "SwitchNetwork: supply must be 0 or 1");
  nodes_.push_back(Node{.name = std::move(name),
                        .cap_f = 0,
                        .value = value,
                        .is_supply = true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId SwitchNetwork::add_input(std::string name) {
  nodes_.push_back(Node{.name = std::move(name),
                        .cap_f = 0,
                        .value = Logic::kZ,
                        .is_input = true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SwitchNetwork::add_device(core::PolarityState polarity, NodeId gate,
                               NodeId a, NodeId b, double width_factor) {
  check(gate >= 0 && gate < num_nodes() && a >= 0 && a < num_nodes() &&
            b >= 0 && b < num_nodes(),
        "SwitchNetwork::add_device: node out of range");
  check(width_factor > 0, "SwitchNetwork::add_device: width must be positive");
  devices_.push_back(Device{polarity, gate, a, b, width_factor});
}

void SwitchNetwork::set_device_polarity(std::size_t index,
                                        core::PolarityState polarity) {
  check(index < devices_.size(), "SwitchNetwork: device index out of range");
  devices_[index].polarity = polarity;
}

Logic SwitchNetwork::value(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::value: bad node");
  return nodes_[static_cast<std::size_t>(node)].value;
}

void SwitchNetwork::set_value(NodeId node, Logic value) {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::set_value: bad node");
  nodes_[static_cast<std::size_t>(node)].value = value;
}

const std::string& SwitchNetwork::node_name(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::node_name: bad node");
  return nodes_[static_cast<std::size_t>(node)].name;
}

double SwitchNetwork::drive_delay_s(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::drive_delay_s: bad node");
  return nodes_[static_cast<std::size_t>(node)].last_delay_s;
}

bool SwitchNetwork::sweep() {
  const int n = num_nodes();
  // 1. Conduction per device.
  enum class Conduction { kOn, kOff, kMaybe };
  std::vector<Conduction> state(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const Logic g = nodes_[static_cast<std::size_t>(devices_[d].gate)].value;
    if (devices_[d].polarity == core::PolarityState::kOff) {
      state[d] = Conduction::kOff;
    } else if (is_definite(g)) {
      state[d] = core::conducts(devices_[d].polarity, g == Logic::k1)
                     ? Conduction::kOn
                     : Conduction::kOff;
    } else {
      state[d] = Conduction::kMaybe;
    }
  }

  // 2. Components through conducting devices.
  UnionFind uf(n);
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (state[d] == Conduction::kOn) {
      uf.unite(devices_[d].a, devices_[d].b);
    }
  }

  // 3. Resolve each component.
  struct CompInfo {
    bool has0 = false, has1 = false, hasX = false;  // strong drivers
    double cap0 = 0, cap1 = 0, capx = 0;            // retained charge
    double cap_total = 0;
  };
  std::vector<int> root(static_cast<std::size_t>(n));
  std::vector<CompInfo> info(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    root[static_cast<std::size_t>(i)] = uf.find(i);
    CompInfo& ci = info[static_cast<std::size_t>(root[static_cast<std::size_t>(i)])];
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.is_supply || node.is_input) {
      switch (node.value) {
        case Logic::k0: ci.has0 = true; break;
        case Logic::k1: ci.has1 = true; break;
        case Logic::kX: ci.hasX = true; break;
        case Logic::kZ: break;  // undriven input contributes nothing
      }
    } else {
      ci.cap_total += node.cap_f;
      switch (node.value) {
        case Logic::k0: ci.cap0 += node.cap_f; break;
        case Logic::k1: ci.cap1 += node.cap_f; break;
        case Logic::kX: ci.capx += node.cap_f; break;
        case Logic::kZ: break;
      }
    }
  }
  const auto resolve = [](const CompInfo& ci) {
    if (ci.hasX || (ci.has0 && ci.has1)) {
      return Logic::kX;  // rail fight or unknown driver
    }
    if (ci.has0) return Logic::k0;
    if (ci.has1) return Logic::k1;
    // Floating: charge sharing.
    if (ci.capx > 0 || (ci.cap0 > 0 && ci.cap1 > 0)) {
      return Logic::kX;
    }
    if (ci.cap0 > 0) return Logic::k0;
    if (ci.cap1 > 0) return Logic::k1;
    return Logic::kZ;
  };
  std::vector<Logic> comp_value(static_cast<std::size_t>(n), Logic::kZ);
  for (int i = 0; i < n; ++i) {
    if (root[static_cast<std::size_t>(i)] == i) {
      comp_value[static_cast<std::size_t>(i)] =
          resolve(info[static_cast<std::size_t>(i)]);
    }
  }

  // 4. Maybe-conducting devices degrade conflicting neighbours to X.
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (state[d] != Conduction::kMaybe) {
      continue;
    }
    const int ra = root[static_cast<std::size_t>(devices_[d].a)];
    const int rb = root[static_cast<std::size_t>(devices_[d].b)];
    Logic& va = comp_value[static_cast<std::size_t>(ra)];
    Logic& vb = comp_value[static_cast<std::size_t>(rb)];
    if (va == vb) {
      continue;  // connecting equal values changes nothing
    }
    if (va == Logic::kZ) {
      va = vb;  // charge could leak across: adopt neighbour, pessimistic
    } else if (vb == Logic::kZ) {
      vb = va;
    } else {
      va = Logic::kX;
      vb = Logic::kX;
    }
  }

  // 5. Commit values; track changes.
  bool changed = false;
  for (int i = 0; i < n; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.is_supply || node.is_input) {
      continue;
    }
    const Logic v = comp_value[static_cast<std::size_t>(root[static_cast<std::size_t>(i)])];
    if (node.value != v) {
      node.value = v;
      changed = true;
    }
  }

  // 6. Delay annotation: Dijkstra from strong drivers inside each
  //    driven component, edge weight = device on-resistance.
  std::vector<std::vector<std::pair<int, double>>> adj(
      static_cast<std::size_t>(n));
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (state[d] == Conduction::kOn) {
      const double r = electrical_.r_on_ohm / devices_[d].width_factor;
      adj[static_cast<std::size_t>(devices_[d].a)].push_back({devices_[d].b, r});
      adj[static_cast<std::size_t>(devices_[d].b)].push_back({devices_[d].a, r});
    }
  }
  std::vector<double> rpath(static_cast<std::size_t>(n),
                            std::numeric_limits<double>::infinity());
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if ((node.is_supply || node.is_input) && is_definite(node.value)) {
      rpath[static_cast<std::size_t>(i)] = 0;
      heap.push({0, i});
    }
  }
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > rpath[static_cast<std::size_t>(u)]) {
      continue;
    }
    for (const auto& [v, r] : adj[static_cast<std::size_t>(u)]) {
      if (dist + r < rpath[static_cast<std::size_t>(v)]) {
        rpath[static_cast<std::size_t>(v)] = dist + r;
        heap.push({dist + r, v});
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    const double r = rpath[static_cast<std::size_t>(i)];
    if (std::isinf(r)) {
      node.last_delay_s = 0;  // retained/floating: no drive event
    } else {
      const double c =
          info[static_cast<std::size_t>(root[static_cast<std::size_t>(i)])]
              .cap_total;
      node.last_delay_s = kLn2 * r * c;
    }
  }
  return changed;
}

void SwitchNetwork::settle(int max_sweeps) {
  for (int i = 0; i < max_sweeps; ++i) {
    if (!sweep()) {
      return;
    }
  }
  throw Error("SwitchNetwork::settle: no convergence after " +
              std::to_string(max_sweeps) + " sweeps");
}

}  // namespace ambit::simulate
