#include "simulate/switch_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace ambit::simulate {
namespace {

constexpr double kLn2 = 0.6931471805599453;

}  // namespace

const char* to_string(Logic v) {
  switch (v) {
    case Logic::k0: return "0";
    case Logic::k1: return "1";
    case Logic::kZ: return "Z";
    case Logic::kX: return "X";
  }
  return "?";
}

SwitchNetwork::SwitchNetwork(const tech::CnfetElectrical& electrical)
    : electrical_(electrical) {}

NodeId SwitchNetwork::add_node(std::string name, double cap_f) {
  check(cap_f >= 0, "SwitchNetwork: negative capacitance");
  nodes_.push_back(Node{.name = std::move(name), .cap_f = cap_f});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId SwitchNetwork::add_supply(std::string name, Logic value) {
  check(is_definite(value), "SwitchNetwork: supply must be 0 or 1");
  nodes_.push_back(Node{.name = std::move(name),
                        .cap_f = 0,
                        .value = value,
                        .is_supply = true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId SwitchNetwork::add_input(std::string name) {
  nodes_.push_back(Node{.name = std::move(name),
                        .cap_f = 0,
                        .value = Logic::kZ,
                        .is_input = true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SwitchNetwork::add_device(core::PolarityState polarity, NodeId gate,
                               NodeId a, NodeId b, double width_factor) {
  check(gate >= 0 && gate < num_nodes() && a >= 0 && a < num_nodes() &&
            b >= 0 && b < num_nodes(),
        "SwitchNetwork::add_device: node out of range");
  check(width_factor > 0, "SwitchNetwork::add_device: width must be positive");
  devices_.push_back(Device{polarity, gate, a, b, width_factor});
  csr_.valid = false;  // topology grew; the static adjacency is stale
}

void SwitchNetwork::set_device_polarity(std::size_t index,
                                        core::PolarityState polarity) {
  check(index < devices_.size(), "SwitchNetwork: device index out of range");
  devices_[index].polarity = polarity;
}

Logic SwitchNetwork::value(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::value: bad node");
  return nodes_[static_cast<std::size_t>(node)].value;
}

void SwitchNetwork::set_value(NodeId node, Logic value) {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::set_value: bad node");
  nodes_[static_cast<std::size_t>(node)].value = value;
}

const std::string& SwitchNetwork::node_name(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::node_name: bad node");
  return nodes_[static_cast<std::size_t>(node)].name;
}

double SwitchNetwork::drive_delay_s(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "SwitchNetwork::drive_delay_s: bad node");
  return nodes_[static_cast<std::size_t>(node)].last_delay_s;
}

void SwitchNetwork::reset() {
  for (Node& node : nodes_) {
    if (!node.is_supply) {
      node.value = Logic::kZ;
    }
    node.last_delay_s = 0;
  }
}

int SwitchNetwork::find_root(int x) {
  std::vector<int>& parent = scratch_.parent;
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

bool SwitchNetwork::compute_conduction(std::vector<Conduction>& out) const {
  const std::size_t nd = devices_.size();
  out.resize(nd);
  bool has_maybe = false;
  for (std::size_t d = 0; d < nd; ++d) {
    const Logic g = nodes_[static_cast<std::size_t>(devices_[d].gate)].value;
    if (devices_[d].polarity == core::PolarityState::kOff) {
      out[d] = Conduction::kOff;
    } else if (is_definite(g)) {
      out[d] = core::conducts(devices_[d].polarity, g == Logic::k1)
                   ? Conduction::kOn
                   : Conduction::kOff;
    } else {
      out[d] = Conduction::kMaybe;
      has_maybe = true;
    }
  }
  return has_maybe;
}

bool SwitchNetwork::sweep_components() {
  const int n = num_nodes();
  const std::size_t nd = devices_.size();
  const std::vector<Conduction>& state = scratch_.state;

  // 2. Components through conducting devices.
  std::vector<int>& parent = scratch_.parent;
  parent.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    parent[static_cast<std::size_t>(i)] = i;
  }
  for (std::size_t d = 0; d < nd; ++d) {
    if (state[d] == Conduction::kOn) {
      parent[static_cast<std::size_t>(find_root(devices_[d].a))] =
          find_root(devices_[d].b);
    }
  }

  // 3. Resolve each component.
  std::vector<int>& root = scratch_.root;
  std::vector<CompInfo>& info = scratch_.info;
  root.resize(static_cast<std::size_t>(n));
  info.assign(static_cast<std::size_t>(n), CompInfo{});
  for (int i = 0; i < n; ++i) {
    root[static_cast<std::size_t>(i)] = find_root(i);
    CompInfo& ci = info[static_cast<std::size_t>(root[static_cast<std::size_t>(i)])];
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.is_supply || node.is_input) {
      switch (node.value) {
        case Logic::k0: ci.has0 = true; break;
        case Logic::k1: ci.has1 = true; break;
        case Logic::kX: ci.hasX = true; break;
        case Logic::kZ: break;  // undriven input contributes nothing
      }
    } else {
      ci.cap_total += node.cap_f;
      switch (node.value) {
        case Logic::k0: ci.cap0 += node.cap_f; break;
        case Logic::k1: ci.cap1 += node.cap_f; break;
        case Logic::kX: ci.capx += node.cap_f; break;
        case Logic::kZ: break;
      }
    }
  }
  const auto resolve = [](const CompInfo& ci) {
    if (ci.hasX || (ci.has0 && ci.has1)) {
      return Logic::kX;  // rail fight or unknown driver
    }
    if (ci.has0) return Logic::k0;
    if (ci.has1) return Logic::k1;
    // Floating: charge sharing.
    if (ci.capx > 0 || (ci.cap0 > 0 && ci.cap1 > 0)) {
      return Logic::kX;
    }
    if (ci.cap0 > 0) return Logic::k0;
    if (ci.cap1 > 0) return Logic::k1;
    return Logic::kZ;
  };
  std::vector<Logic>& comp_value = scratch_.comp_value;
  comp_value.assign(static_cast<std::size_t>(n), Logic::kZ);
  for (int i = 0; i < n; ++i) {
    if (root[static_cast<std::size_t>(i)] == i) {
      comp_value[static_cast<std::size_t>(i)] =
          resolve(info[static_cast<std::size_t>(i)]);
    }
  }

  // 4. Maybe-conducting devices degrade conflicting neighbours to X.
  for (std::size_t d = 0; d < nd; ++d) {
    if (state[d] != Conduction::kMaybe) {
      continue;
    }
    const int ra = root[static_cast<std::size_t>(devices_[d].a)];
    const int rb = root[static_cast<std::size_t>(devices_[d].b)];
    Logic& va = comp_value[static_cast<std::size_t>(ra)];
    Logic& vb = comp_value[static_cast<std::size_t>(rb)];
    if (va == vb) {
      continue;  // connecting equal values changes nothing
    }
    if (va == Logic::kZ) {
      va = vb;  // charge could leak across: adopt neighbour, pessimistic
    } else if (vb == Logic::kZ) {
      vb = va;
    } else {
      va = Logic::kX;
      vb = Logic::kX;
    }
  }

  // 5. Commit values; track changes.
  bool changed = false;
  for (int i = 0; i < n; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.is_supply || node.is_input) {
      continue;
    }
    const Logic v = comp_value[static_cast<std::size_t>(root[static_cast<std::size_t>(i)])];
    if (node.value != v) {
      node.value = v;
      changed = true;
    }
  }
  return changed;
}

void SwitchNetwork::build_static_csr() {
  const int n = num_nodes();
  csr_.offset.assign(static_cast<std::size_t>(n) + 1, 0);
  csr_.resistance.resize(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    ++csr_.offset[static_cast<std::size_t>(devices_[d].a) + 1];
    ++csr_.offset[static_cast<std::size_t>(devices_[d].b) + 1];
    csr_.resistance[d] = electrical_.r_on_ohm / devices_[d].width_factor;
  }
  for (int i = 0; i < n; ++i) {
    csr_.offset[static_cast<std::size_t>(i) + 1] +=
        csr_.offset[static_cast<std::size_t>(i)];
  }
  csr_.edges.resize(2 * devices_.size());
  std::vector<int> cursor(csr_.offset.begin(), csr_.offset.end() - 1);
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    csr_.edges[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(devices_[d].a)]++)] = {
        devices_[d].b, static_cast<int>(d)};
    csr_.edges[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(devices_[d].b)]++)] = {
        devices_[d].a, static_cast<int>(d)};
  }
  csr_.valid = true;
}

void SwitchNetwork::annotate_delays() {
  // Dijkstra from strong drivers inside each driven component, edge
  // weight = device on-resistance. Runs on the CONVERGED sweep state
  // (scratch_.state/root/info are those of the final sweep), so one
  // annotation per settle replaces the per-sweep Dijkstra the solver
  // used to pay, over the static endpoint adjacency (non-conducting
  // edges are skipped by state, not rebuilt away).
  const int n = num_nodes();
  const std::vector<Conduction>& state = scratch_.state;
  const std::vector<int>& root = scratch_.root;
  const std::vector<CompInfo>& info = scratch_.info;
  if (!csr_.valid) {
    build_static_csr();
  }

  std::vector<double>& rpath = scratch_.rpath;
  rpath.assign(static_cast<std::size_t>(n),
               std::numeric_limits<double>::infinity());
  // Min-heap on (resistance, node) via push_heap/pop_heap over a
  // reusable buffer (std::priority_queue would reallocate per settle).
  std::vector<std::pair<double, int>>& heap = scratch_.heap;
  heap.clear();
  const auto heap_greater = std::greater<std::pair<double, int>>{};
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if ((node.is_supply || node.is_input) && is_definite(node.value) &&
        csr_.offset[static_cast<std::size_t>(i)] !=
            csr_.offset[static_cast<std::size_t>(i) + 1]) {
      // Gate-only drivers (most primary inputs) have no channel edges:
      // they can reach nothing and their own delay is 0 either way
      // (r = 0 and r = inf both annotate as 0), so they stay out of
      // the frontier.
      rpath[static_cast<std::size_t>(i)] = 0;
      heap.push_back({0, i});
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const auto [dist, u] = heap.back();
    heap.pop_back();
    if (dist > rpath[static_cast<std::size_t>(u)]) {
      continue;
    }
    for (int e = csr_.offset[static_cast<std::size_t>(u)];
         e < csr_.offset[static_cast<std::size_t>(u) + 1]; ++e) {
      const auto& [v, d] = csr_.edges[static_cast<std::size_t>(e)];
      if (state[static_cast<std::size_t>(d)] != Conduction::kOn) {
        continue;
      }
      const double r = csr_.resistance[static_cast<std::size_t>(d)];
      if (dist + r < rpath[static_cast<std::size_t>(v)]) {
        rpath[static_cast<std::size_t>(v)] = dist + r;
        heap.push_back({dist + r, v});
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    const double r = rpath[static_cast<std::size_t>(i)];
    if (std::isinf(r)) {
      node.last_delay_s = 0;  // retained/floating: no drive event
    } else {
      const double c =
          info[static_cast<std::size_t>(root[static_cast<std::size_t>(i)])]
              .cap_total;
      node.last_delay_s = kLn2 * r * c;
    }
  }
}

void SwitchNetwork::settle(int max_sweeps) {
  for (int i = 0; i < max_sweeps; ++i) {
    const bool has_maybe = compute_conduction(scratch_.next);
    if (i > 0 && !has_maybe && scratch_.next == scratch_.state) {
      // Same conduction as the previous sweep, no external value change
      // in between, and every device definitely on or off: components
      // and resolution are forced to repeat themselves, so the previous
      // sweep's commit was already the fixed point (and its root/info
      // still describe it for the annotation). This turns each settle's
      // confirming sweep into one device pass plus a compare. Maybe-
      // conducting devices are excluded because their Z-adoption can
      // legitimately advance one hop per sweep UNDER unchanged
      // conduction — those settles must run the full sweeps.
      annotate_delays();
      return;
    }
    scratch_.state.swap(scratch_.next);
    if (!sweep_components()) {
      annotate_delays();
      return;
    }
  }
  throw Error("SwitchNetwork::settle: no convergence after " +
              std::to_string(max_sweeps) + " sweeps");
}

}  // namespace ambit::simulate
