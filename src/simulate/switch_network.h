// Generic switch-level network solver.
//
// A SwitchNetwork is a set of capacitive nodes connected by ambipolar
// CNFETs acting as switches (conducting or not depending on polarity
// and gate value). settle() computes the steady state of one clock
// phase:
//
//   1. device conduction is evaluated from current gate node values;
//   2. nodes group into electrical components through conducting
//      devices (union-find);
//   3. a component containing VDD and GND resolves to X (fight);
//      containing exactly one supply rail resolves to its value;
//      otherwise the component FLOATS and performs charge sharing:
//      the retained values of its nodes, weighted by capacitance,
//      decide the shared value (conflicting charge -> X);
//   4. devices whose gate is Z/X conduct "maybe": if a maybe-device
//      bridges components that would resolve differently, both sides
//      degrade to X (conservative).
//
// Because gates may depend on other nodes, settle() iterates to a
// fixed point (bounded; the PLA structures AMBIT builds are
// feed-forward per phase and converge in a few sweeps).
//
// The solver also reports a first-order Elmore delay per node: the
// series on-resistance along the conducting path from the driving rail
// times the total capacitance of the node's component. The annotation
// runs ONCE per settle, on the converged state — intermediate sweeps
// only relax values — and all sweep scratch lives in reusable member
// buffers, so a settle on an already-built network allocates nothing
// in steady state. That is what makes reset()-and-resettle cheap
// enough for the batch simulation path (pla_sim.h) to sweep thousands
// of patterns through one network instead of rebuilding it per
// pattern.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cnfet.h"
#include "simulate/logic_value.h"
#include "tech/technology.h"

namespace ambit::simulate {

/// Node id type (index into the network's node table).
using NodeId = int;

/// A switch-level network of CNFET pass devices.
class SwitchNetwork {
 public:
  explicit SwitchNetwork(const tech::CnfetElectrical& electrical);

  /// Adds a floating node with capacitance `cap_f`; initial value Z.
  NodeId add_node(std::string name, double cap_f);

  /// Adds a supply rail permanently driving `value`.
  NodeId add_supply(std::string name, Logic value);

  /// Adds an externally driven node (e.g. primary input, clock); its
  /// value is set with set_value() and never overwritten by settle().
  NodeId add_input(std::string name);

  /// Adds a CNFET between `a` and `b`, gated by node `gate`.
  /// `width_factor` scales conductance and capacitance.
  void add_device(core::PolarityState polarity, NodeId gate, NodeId a,
                  NodeId b, double width_factor = 1.0);

  /// Re-programs the polarity of device `index` (fault injection).
  void set_device_polarity(std::size_t index, core::PolarityState polarity);
  std::size_t num_devices() const { return devices_.size(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  Logic value(NodeId node) const;
  void set_value(NodeId node, Logic value);
  const std::string& node_name(NodeId node) const;

  /// Returns every node to its post-construction settle state: floating
  /// and input nodes back to Z (dropping any retained dynamic charge),
  /// delay annotations back to 0. Supplies keep driving their rails and
  /// the topology (devices, polarities — including fault overrides) is
  /// untouched. After reset() the next settle() behaves exactly as on a
  /// freshly built copy of the network, which is what lets one built
  /// network be REUSED across the patterns of a batch sweep instead of
  /// rebuilt per pattern (asserted in tests/switch_network_test.cpp).
  void reset();

  /// Settles the current phase; throws after `max_sweeps` without
  /// convergence (indicates oscillation, impossible in feed-forward
  /// structures).
  void settle(int max_sweeps = 64);

  /// Elmore-style delay estimate for the most recent settle():
  /// resistance of the conducting path that drove `node` times its
  /// component's total capacitance [s]; 0 for undriven/retained nodes.
  double drive_delay_s(NodeId node) const;

 private:
  struct Node {
    std::string name;
    double cap_f = 0;
    Logic value = Logic::kZ;
    bool is_supply = false;
    bool is_input = false;
    double last_delay_s = 0;
  };
  struct Device {
    core::PolarityState polarity;
    NodeId gate;
    NodeId a;
    NodeId b;
    double width_factor;
  };
  /// Resolution inputs of one electrical component (indexed by root).
  struct CompInfo {
    bool has0 = false, has1 = false, hasX = false;  // strong drivers
    double cap0 = 0, cap1 = 0, capx = 0;            // retained charge
    double cap_total = 0;
  };
  enum class Conduction : std::uint8_t { kOn, kOff, kMaybe };

  tech::CnfetElectrical electrical_;
  std::vector<Node> nodes_;
  std::vector<Device> devices_;

  // Sweep scratch, reused across sweeps/settles so the steady-state
  // solve is allocation-free (sized lazily to the network).
  struct Scratch {
    std::vector<Conduction> state;   // per device (current sweep)
    std::vector<Conduction> next;    // conduction staging/compare buffer
    std::vector<int> parent;         // union-find forest
    std::vector<int> root;           // per node: component root
    std::vector<CompInfo> info;      // per root
    std::vector<Logic> comp_value;   // per root
    std::vector<double> rpath;
    std::vector<std::pair<double, int>> heap;  // Dijkstra frontier
  };
  Scratch scratch_;

  // Static endpoint adjacency (CSR: node -> (neighbor, device)), built
  // lazily on first settle and reused until add_device grows the
  // topology (polarity overrides keep it valid — endpoints and widths
  // are untouched). Amortizing this per NETWORK instead of per settle
  // is part of what makes reset-and-resettle beat rebuild-per-pattern.
  struct StaticCsr {
    bool valid = false;
    std::vector<int> offset;                  // n + 1
    std::vector<std::pair<int, int>> edges;   // (neighbor node, device)
    std::vector<double> resistance;           // per device
  };
  StaticCsr csr_;

  int find_root(int x);

  /// Fills `out` with the per-device conduction for the current node
  /// values; returns true when any device is maybe-conducting (Z/X
  /// gate), which disables settle()'s conduction-equality early exit.
  bool compute_conduction(std::vector<Conduction>& out) const;

  /// The component/resolve/commit part of one sweep, for the conduction
  /// in scratch_.state; returns true when any node changed. Leaves
  /// scratch_.root/info describing the swept state for
  /// annotate_delays().
  bool sweep_components();

  /// Writes last_delay_s for every node from the converged sweep state.
  void annotate_delays();

  void build_static_csr();
};

}  // namespace ambit::simulate
