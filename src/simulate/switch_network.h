// Generic switch-level network solver.
//
// A SwitchNetwork is a set of capacitive nodes connected by ambipolar
// CNFETs acting as switches (conducting or not depending on polarity
// and gate value). settle() computes the steady state of one clock
// phase:
//
//   1. device conduction is evaluated from current gate node values;
//   2. nodes group into electrical components through conducting
//      devices (union-find);
//   3. a component containing VDD and GND resolves to X (fight);
//      containing exactly one supply rail resolves to its value;
//      otherwise the component FLOATS and performs charge sharing:
//      the retained values of its nodes, weighted by capacitance,
//      decide the shared value (conflicting charge -> X);
//   4. devices whose gate is Z/X conduct "maybe": if a maybe-device
//      bridges components that would resolve differently, both sides
//      degrade to X (conservative).
//
// Because gates may depend on other nodes, settle() iterates to a
// fixed point (bounded; the PLA structures AMBIT builds are
// feed-forward per phase and converge in a few sweeps).
//
// The solver also reports a first-order Elmore delay per node: the
// series on-resistance along the conducting path from the driving rail
// times the total capacitance of the node's component.
#pragma once

#include <string>
#include <vector>

#include "core/cnfet.h"
#include "simulate/logic_value.h"
#include "tech/technology.h"

namespace ambit::simulate {

/// Node id type (index into the network's node table).
using NodeId = int;

/// A switch-level network of CNFET pass devices.
class SwitchNetwork {
 public:
  explicit SwitchNetwork(const tech::CnfetElectrical& electrical);

  /// Adds a floating node with capacitance `cap_f`; initial value Z.
  NodeId add_node(std::string name, double cap_f);

  /// Adds a supply rail permanently driving `value`.
  NodeId add_supply(std::string name, Logic value);

  /// Adds an externally driven node (e.g. primary input, clock); its
  /// value is set with set_value() and never overwritten by settle().
  NodeId add_input(std::string name);

  /// Adds a CNFET between `a` and `b`, gated by node `gate`.
  /// `width_factor` scales conductance and capacitance.
  void add_device(core::PolarityState polarity, NodeId gate, NodeId a,
                  NodeId b, double width_factor = 1.0);

  /// Re-programs the polarity of device `index` (fault injection).
  void set_device_polarity(std::size_t index, core::PolarityState polarity);
  std::size_t num_devices() const { return devices_.size(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  Logic value(NodeId node) const;
  void set_value(NodeId node, Logic value);
  const std::string& node_name(NodeId node) const;

  /// Settles the current phase; throws after `max_sweeps` without
  /// convergence (indicates oscillation, impossible in feed-forward
  /// structures).
  void settle(int max_sweeps = 64);

  /// Elmore-style delay estimate for the most recent settle():
  /// resistance of the conducting path that drove `node` times its
  /// component's total capacitance [s]; 0 for undriven/retained nodes.
  double drive_delay_s(NodeId node) const;

 private:
  struct Node {
    std::string name;
    double cap_f = 0;
    Logic value = Logic::kZ;
    bool is_supply = false;
    bool is_input = false;
    double last_delay_s = 0;
  };
  struct Device {
    core::PolarityState polarity;
    NodeId gate;
    NodeId a;
    NodeId b;
    double width_factor;
  };

  tech::CnfetElectrical electrical_;
  std::vector<Node> nodes_;
  std::vector<Device> devices_;

  /// One relaxation sweep; returns true when any node changed.
  bool sweep();
};

}  // namespace ambit::simulate
