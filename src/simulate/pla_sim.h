// Switch-level simulation of a two-plane dynamic GNOR PLA.
//
// Builds the full transistor-level network of a mapped GnorPla — every
// array position gets a physical device (off-programmed cells too, so
// stuck-polarity faults can be injected), plus the TPC/TEV clocking
// devices of each row (paper §3, Fig. 2) — and runs precharge/evaluate
// cycles on it:
//
//   precharge (clk1 = clk2 = 0): every row charges high through its TPC;
//   evaluate plane 1 (clk1 = 1):  product rows discharge where the GNOR
//                                 fires; unfired rows HOLD their charge;
//   evaluate plane 2 (clk2 = 1):  output rows discharge on the settled
//                                 product values.
//
// The two-phase evaluate clocking is essential, not cosmetic: firing
// both planes together would let plane 2 discharge on the still-
// precharged (all-high) product lines, and dynamic charge retention
// would make that glitch permanent — the classic domino-cascade hazard.
//
// Timing comes from the solver's Elmore annotation: the evaluate
// latency of a plane is the slowest discharging row; a full PLA cycle
// is precharge + plane-1 evaluate + plane-2 evaluate, which reproduces
// the delay model in tech/delay_model.h from first principles.
#pragma once

#include <vector>

#include "core/gnor_pla.h"
#include "simulate/switch_network.h"

namespace ambit::simulate {

/// Result of one simulated PLA cycle.
struct PlaSimResult {
  std::vector<Logic> outputs;        ///< after output buffers
  std::vector<Logic> product_lines;  ///< plane-1 row values
  double precharge_delay_s = 0;
  double plane1_eval_delay_s = 0;
  double plane2_eval_delay_s = 0;

  /// Total cycle latency.
  double cycle_s() const {
    return precharge_delay_s + plane1_eval_delay_s + plane2_eval_delay_s;
  }
};

/// Transistor-level simulator for one GnorPla.
class GnorPlaSimulator {
 public:
  GnorPlaSimulator(const core::GnorPla& pla,
                   const tech::CnfetElectrical& electrical);

  /// Runs one full precharge+evaluate cycle.
  PlaSimResult run_cycle(const std::vector<bool>& inputs);

  /// Fault injection: overrides the programmed polarity of the device
  /// at (row, col) of plane 1 or 2 (plane index 1-based to match the
  /// paper's figures).
  void override_cell(int plane, int row, int col,
                     core::PolarityState polarity);

  const SwitchNetwork& network() const { return net_; }
  int num_inputs() const { return static_cast<int>(input_nodes_.size()); }

 private:
  core::GnorPla pla_;
  SwitchNetwork net_;
  NodeId clk1_;
  NodeId clk2_;
  std::vector<NodeId> input_nodes_;
  std::vector<NodeId> p1_rows_;
  std::vector<NodeId> p2_rows_;
  // Device index of cell (row, col) in each plane.
  std::vector<std::size_t> p1_cell_device_;
  std::vector<std::size_t> p2_cell_device_;
};

}  // namespace ambit::simulate
