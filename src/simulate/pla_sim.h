// Switch-level simulation of a two-plane dynamic GNOR PLA.
//
// Builds the full transistor-level network of a mapped GnorPla — every
// array position gets a physical device (off-programmed cells too, so
// stuck-polarity faults can be injected), plus the TPC/TEV clocking
// devices of each row (paper §3, Fig. 2) — and runs precharge/evaluate
// cycles on it:
//
//   precharge (clk1 = clk2 = 0): every row charges high through its TPC;
//   evaluate plane 1 (clk1 = 1):  product rows discharge where the GNOR
//                                 fires; unfired rows HOLD their charge;
//   evaluate plane 2 (clk2 = 1):  output rows discharge on the settled
//                                 product values.
//
// The two-phase evaluate clocking is essential, not cosmetic: firing
// both planes together would let plane 2 discharge on the still-
// precharged (all-high) product lines, and dynamic charge retention
// would make that glitch permanent — the classic domino-cascade hazard.
//
// Timing comes from the solver's Elmore annotation: the evaluate
// latency of a plane is the slowest discharging row; a full PLA cycle
// is precharge + plane-1 evaluate + plane-2 evaluate, which reproduces
// the delay model in tech/delay_model.h from first principles.
//
// Two evaluation granularities:
//
//   * run_cycle()/simulate() — one pattern at a time, full visibility
//     (product lines, 4-valued outputs, per-phase delays). simulate()
//     resets the settle state first, so its result never depends on
//     charge retained from an earlier pattern; run_cycle() deliberately
//     keeps the previous state (that is how the hazard tests drive
//     retention).
//   * simulate_batch() — the word-packed batch path: every pattern of a
//     logic::PatternBatch swept through ONE built network
//     (reset-and-resettle per pattern instead of rebuild — a ~2.5x
//     sequential win that bench/bench_sim_batch.cpp measures at >=5x
//     once the sweep also shards), optionally sharded word-aligned
//     across an ambit::ThreadPool. Results are
//     BIT-IDENTICAL to per-pattern simulate() for any worker count:
//     patterns are independent, every shard runs the same deterministic
//     solve on an identical copy of the network, and shards write
//     disjoint word ranges of the packed result.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gnor_pla.h"
#include "logic/pattern_batch.h"
#include "simulate/switch_network.h"

namespace ambit {
class ThreadPool;
}

namespace ambit::simulate {

/// Result of one simulated PLA cycle.
struct PlaSimResult {
  std::vector<Logic> outputs;        ///< after output buffers
  std::vector<Logic> product_lines;  ///< plane-1 row values
  double precharge_delay_s = 0;
  double plane1_eval_delay_s = 0;
  double plane2_eval_delay_s = 0;

  /// Total cycle latency.
  double cycle_s() const {
    return precharge_delay_s + plane1_eval_delay_s + plane2_eval_delay_s;
  }
};

/// Result of a batch timing sweep: per-pattern outputs packed as
/// PatternBatch lanes plus the per-pattern phase delays, with
/// worst-case cycle statistics derived on demand.
struct BatchSimResult {
  BatchSimResult(int num_outputs, std::uint64_t num_patterns);

  /// Lane o, bit p: output o of pattern p settled to 1.
  logic::PatternBatch outputs;
  /// Lane o, bit p: output o of pattern p settled to a definite 0/1
  /// (a clear bit marks X/Z — possible only under fault injection or
  /// non-digital stimuli; all-definite for any healthy mapped PLA).
  logic::PatternBatch definite;
  std::vector<double> precharge_delay_s;    ///< per pattern
  std::vector<double> plane1_eval_delay_s;  ///< per pattern
  std::vector<double> plane2_eval_delay_s;  ///< per pattern

  std::uint64_t num_patterns() const { return outputs.num_patterns(); }
  bool all_definite() const;

  /// Latency of pattern `p`'s cycle (sum of its three phases).
  double cycle_s(std::uint64_t p) const;

  /// Worst observed delay of each phase across the batch.
  double worst_precharge_s() const;
  double worst_plane1_eval_s() const;
  double worst_plane2_eval_s() const;

  /// The clock period the batch requires: each phase must accommodate
  /// its own worst pattern (the phases are clocked, not self-timed), so
  /// this is the SUM OF THE PHASE MAXIMA — >= the worst single
  /// pattern's cycle_s when different patterns stress different phases.
  double worst_cycle_s() const {
    return worst_precharge_s() + worst_plane1_eval_s() + worst_plane2_eval_s();
  }

  /// Pattern with the slowest individual cycle (first on ties; 0 when
  /// the batch is empty).
  std::uint64_t critical_pattern() const;

  /// Mean per-pattern cycle latency (0 when the batch is empty).
  double mean_cycle_s() const;
};

/// Transistor-level simulator for one GnorPla.
class GnorPlaSimulator {
 public:
  GnorPlaSimulator(const core::GnorPla& pla,
                   const tech::CnfetElectrical& electrical);

  /// Runs one full precharge+evaluate cycle ON THE CURRENT settle state
  /// (dynamic charge retained from earlier cycles persists — see
  /// simulate() for the state-independent variant).
  PlaSimResult run_cycle(const std::vector<bool>& inputs);

  /// Same, with 4-valued stimuli: X/Z inputs propagate pessimistically
  /// (a floating or unknown input degrades dependent rows to X rather
  /// than guessing), which is the edge-lane oracle the robustness tests
  /// drive. (Own name, not an overload: a braced bool list would be
  /// ambiguous against the vector<bool> entry point.)
  PlaSimResult run_cycle_logic(const std::vector<Logic>& inputs);

  /// State-independent single-pattern evaluation: resets the settle
  /// state (SwitchNetwork::reset), then runs one cycle. This is the
  /// scalar oracle the batch path is asserted bit-identical against.
  PlaSimResult simulate(const std::vector<bool>& inputs);

  /// Batch timing sweep: simulates every pattern of `inputs` through
  /// one built network (reset-and-resettle per pattern — never a
  /// rebuild), sharded across `pool` in word-aligned pattern ranges
  /// when one is given. Bit-identical outputs AND delays to per-pattern
  /// simulate() for any worker count. Throws ambit::Error on an input
  /// width mismatch. Const on purpose: each shard settles its own copy
  /// of the built network, so concurrent calls (e.g. from the serve
  /// layer) never share mutable state.
  BatchSimResult simulate_batch(const logic::PatternBatch& inputs,
                                ThreadPool* pool = nullptr) const;

  /// Fault injection: overrides the programmed polarity of the device
  /// at (row, col) of plane 1 or 2 (plane index 1-based to match the
  /// paper's figures). Overrides persist into simulate_batch sweeps
  /// (the shards copy the overridden network).
  void override_cell(int plane, int row, int col,
                     core::PolarityState polarity);

  const SwitchNetwork& network() const { return net_; }
  int num_inputs() const { return static_cast<int>(input_nodes_.size()); }
  int num_outputs() const { return pla_.num_outputs(); }

 private:
  /// Per-phase worst row delays of one cycle.
  struct PhaseDelays {
    double precharge_s = 0;
    double plane1_s = 0;
    double plane2_s = 0;
  };

  /// Runs the three clock phases of one cycle on `net` (which must be
  /// structurally identical to net_), recording each phase's worst row
  /// delay. Leaves `net` settled after plane 2 so the caller can read
  /// row and output values.
  PhaseDelays cycle_on(SwitchNetwork& net,
                       const std::vector<Logic>& inputs) const;

  /// Output o's post-buffer value on a settled network.
  Logic output_value(const SwitchNetwork& net, int o) const;

  core::GnorPla pla_;
  SwitchNetwork net_;
  NodeId clk1_;
  NodeId clk2_;
  std::vector<NodeId> input_nodes_;
  std::vector<NodeId> p1_rows_;
  std::vector<NodeId> p2_rows_;
  // Device index of cell (row, col) in each plane.
  std::vector<std::size_t> p1_cell_device_;
  std::vector<std::size_t> p2_cell_device_;
};

}  // namespace ambit::simulate
