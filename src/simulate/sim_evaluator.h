// The switch-level simulator behind the unified Evaluator interface.
//
// SimEvaluator makes the transistor-level GnorPlaSimulator a drop-in
// ambit::Evaluator: the same scalar/batch entry points, the same
// uniform width validation, the same word-packed PatternBatch results
// as the logic-level circuit models — so every existing batch≡scalar
// harness, equivalence checker and sweep driver can run the SIMULATOR
// as its device under test. That is the strongest oracle the repo has:
// transistor-level settles checked bit-for-bit against the logic-level
// evaluate_batch kernels across thousands of patterns
// (tests/pla_sim_test.cpp, tests/property_test.cpp).
//
// The adapter is deliberately strict about signal integrity: an output
// that fails to settle to a definite 0/1 (possible only under fault
// injection or non-digital stimuli) is an ambit::Error, never a
// silently coerced bit.
#pragma once

#include <vector>

#include "core/evaluator.h"
#include "core/gnor_pla.h"
#include "logic/pattern_batch.h"
#include "simulate/pla_sim.h"

namespace ambit::simulate {

/// Evaluates a GnorPla by full switch-level simulation.
class SimEvaluator : public Evaluator {
 public:
  SimEvaluator(const core::GnorPla& pla,
               const tech::CnfetElectrical& electrical);

  int num_inputs() const override { return sim_.num_inputs(); }
  int num_outputs() const override { return sim_.num_outputs(); }

  /// The wrapped simulator (e.g. for fault injection through
  /// override_cell before evaluating, or direct timing sweeps).
  GnorPlaSimulator& simulator() { return sim_; }
  const GnorPlaSimulator& simulator() const { return sim_; }

 protected:
  std::vector<bool> do_evaluate(
      const std::vector<bool>& inputs) const override;
  logic::PatternBatch do_evaluate_batch(
      const logic::PatternBatch& inputs) const override;

 private:
  // The evaluation hooks are const (the Evaluator contract lets callers
  // shard one evaluator across threads); simulate_batch already settles
  // per-shard copies of the built network, so no mutable state is
  // shared between concurrent calls.
  GnorPlaSimulator sim_;
};

}  // namespace ambit::simulate
