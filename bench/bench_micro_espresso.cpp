// Runtime characterization of the Espresso kernels (google-benchmark):
// tautology, complement, offset, full minimize, phase optimization.
#include <benchmark/benchmark.h>

#include "espresso/espresso.h"
#include "espresso/phase_opt.h"
#include "espresso/unate.h"
#include "logic/synth_bench.h"

using namespace ambit;

namespace {

logic::Cover make_cover(int inputs, int outputs, int cubes,
                        std::uint64_t seed) {
  const logic::SynthSpec spec{.num_inputs = inputs,
                              .num_outputs = outputs,
                              .num_cubes = cubes,
                              .literals_per_cube = (inputs + 1) / 2,
                              .extra_output_rate = 0.15};
  return logic::generate_cover(spec, seed);
}

void BM_Tautology(benchmark::State& state) {
  const int ni = static_cast<int>(state.range(0));
  auto f = make_cover(ni, 1, 3 * ni, 11);
  f.append(espresso::complement(f.restricted_to_output(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso::tautology(f.restricted_to_output(0)));
  }
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(12)->Arg(16);

void BM_Complement(benchmark::State& state) {
  const int ni = static_cast<int>(state.range(0));
  const auto f = make_cover(ni, 1, 3 * ni, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso::complement(f.restricted_to_output(0)));
  }
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12)->Arg(16);

void BM_Offset(benchmark::State& state) {
  const int ni = static_cast<int>(state.range(0));
  const auto f = make_cover(ni, 4, 3 * ni, 17);
  const logic::Cover dc(ni, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso::offset(f, dc));
  }
}
BENCHMARK(BM_Offset)->Arg(8)->Arg(12);

void BM_EspressoMinimize(benchmark::State& state) {
  const int ni = static_cast<int>(state.range(0));
  const auto f = make_cover(ni, 2, 4 * ni, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso::minimize(f));
  }
}
BENCHMARK(BM_EspressoMinimize)->Arg(8)->Arg(12)->Arg(16);

void BM_EspressoMax46Class(benchmark::State& state) {
  // The Table 1 workload class: 9 inputs, 1 output, ~48 cubes.
  const logic::SynthSpec spec{.num_inputs = 9, .num_outputs = 1,
                              .num_cubes = 48, .literals_per_cube = 7};
  const auto f = logic::generate_cover(spec, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso::minimize(f));
  }
}
BENCHMARK(BM_EspressoMax46Class);

void BM_PhaseOptimization(benchmark::State& state) {
  const auto f = make_cover(7, 3, 24, 23);
  const logic::Cover dc(7, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso::optimize_output_phases(f, dc));
  }
}
BENCHMARK(BM_PhaseOptimization);

}  // namespace

BENCHMARK_MAIN();
