// Fault tolerance (paper §5, reference [6]): "a fault-tolerant design
// approach for PLAs makes use of the regular architecture and is
// expected to improve the yield of the unreliable devices making up
// the PLA."
//
// Monte-Carlo yield of a GNOR PLA under per-cell defects (stuck-off /
// stuck-n / stuck-p), comparing naive in-place programming against the
// defect-aware row matcher with spare rows.
#include <cstdio>

#include "espresso/espresso.h"
#include "fault/yield.h"
#include "logic/pla_io.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace ambit;

int main() {
  std::printf("=== Yield vs defect rate: naive vs defect-aware mapping ===\n\n");

  const auto pla_file =
      logic::read_pla_file(std::string(AMBIT_DATA_DIR) + "/max46.pla");
  const auto minimized = espresso::minimize(pla_file.onset, pla_file.dcset);
  const auto pla = core::GnorPla::map_cover(minimized.cover);
  std::printf("array: max46 mapped as %d products x %d inputs\n",
              pla.num_products(), pla.num_inputs());

  const std::vector<double> rates = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05};
  for (const int spares : {0, 4, 8}) {
    // functional_check: every successful repair is re-verified against
    // the nominal function by an exhaustive bit-parallel batch sweep
    // (2^9 patterns per trial — affordable only because of the word-
    // packed Evaluator batch path). Trials fan across the machine; the
    // per-trial RNG streams keep the curve identical at any width.
    const auto curve = fault::yield_sweep(
        pla, rates,
        fault::YieldSpec{.spare_rows = spares, .trials = 300,
                         .functional_check = true,
                         .workers = ThreadPool::default_workers()});
    TextTable table({"defect rate", "naive yield", "repaired yield",
                     "functional yield", "mean relocations"});
    for (const auto& point : curve) {
      table.add_row({format_double(point.defect_rate * 100, 1) + "%",
                     format_double(point.naive_yield * 100, 1) + "%",
                     format_double(point.repaired_yield * 100, 1) + "%",
                     format_double(point.functional_yield * 100, 1) + "%",
                     format_double(point.mean_relocations, 1)});
    }
    std::printf("\nspare rows: %d\n%s", spares, table.render().c_str());
  }
  std::printf(
      "\nshape: defect-aware matching dominates naive programming at every\n"
      "rate, spare rows extend the usable defect-rate range — the\n"
      "regularity argument the paper borrows from [6] — and every repair\n"
      "the matcher accepts verifies functionally (repaired == functional).\n");
  return 0;
}
