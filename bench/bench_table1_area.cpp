// Table 1 reproduction: "Area of logic functions in 3 technologies".
//
// Pipeline: load the reconstructed MCNC-dimension functions from
// benchmarks/data (see DESIGN.md §4), Espresso-minimize, map onto the
// GNOR PLA and the classical baseline, and apply the paper's area
// model (classical (2i+o)·p at 40/100 L², GNOR (i+o)·p at 60 L²).
#include <cstdio>
#include <string>

#include "core/classical_pla.h"
#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "logic/pla_io.h"
#include "tech/area_model.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;

namespace {

struct PaperRow {
  const char* name;
  int inputs, outputs, products;
  double flash, eeprom, cnfet;
};

constexpr PaperRow kPaper[] = {
    {"max46", 9, 1, 46, 34960, 87400, 27600},
    {"apla", 10, 12, 25, 32000, 80000, 33000},
    {"t2", 17, 16, 52, 104000, 260000, 102960},
};

}  // namespace

int main() {
  std::printf("=== Table 1: area of logic functions in 3 technologies ===\n");
  std::printf("basic cells [L^2]: Flash %.0f, EEPROM %.0f, CNFET %.0f "
              "(paper: 40 / 100 / 60)\n\n",
              tech::flash_technology().cell_area_l2,
              tech::eeprom_technology().cell_area_l2,
              tech::cnfet_technology().cell_area_l2);

  TextTable table({"function", "i", "o", "p", "Flash [L^2]", "EEPROM [L^2]",
                   "CNFET [L^2]", "paper F/E/C", "vs Flash", "vs EEPROM"});
  bool all_exact = true;
  for (const PaperRow& row : kPaper) {
    const auto pla = logic::read_pla_file(std::string(AMBIT_DATA_DIR) + "/" +
                                          row.name + ".pla");
    const auto minimized = espresso::minimize(pla.onset, pla.dcset);
    const auto dim = tech::dimensions_of(minimized.cover);

    // Sanity: the mapped arrays agree with the model's cell counts.
    const auto gnor = core::GnorPla::map_cover(minimized.cover);
    const auto classical = core::ClassicalPla::map_cover(minimized.cover);

    const double flash = tech::pla_area_l2(tech::flash_technology(), dim);
    const double eeprom = tech::pla_area_l2(tech::eeprom_technology(), dim);
    const double cnfet = tech::pla_area_l2(tech::cnfet_technology(), dim);
    all_exact = all_exact && flash == row.flash && eeprom == row.eeprom &&
                cnfet == row.cnfet && dim.products == row.products &&
                gnor.cell_count() == tech::gnor_cell_count(dim) &&
                classical.cell_count() == tech::classical_cell_count(dim);

    char paper[48];
    std::snprintf(paper, sizeof(paper), "%.0f/%.0f/%.0f", row.flash,
                  row.eeprom, row.cnfet);
    table.add_row({row.name, std::to_string(dim.inputs),
                   std::to_string(dim.outputs), std::to_string(dim.products),
                   format_double(flash, 0), format_double(eeprom, 0),
                   format_double(cnfet, 0), paper,
                   format_percent(cnfet / flash - 1.0),
                   format_percent(cnfet / eeprom - 1.0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("all cells match the published Table 1 exactly: %s\n",
              all_exact ? "yes" : "NO");
  std::printf("paper claims reproduced: max46 saves ~21%% vs Flash and up to\n"
              "68%% vs EEPROM; apla shows the ~3%% overhead (o > i); t2 is\n"
              "~1%% smaller than Flash at i ~ o.\n");
  return all_exact ? 0 : 1;
}
