// Fig. 2 reproduction: the four-input dynamic GNOR gate configured as
// Y = NOR(A, B', D) with input C inhibited (C1=V+, C2=V-, C3=V0,
// C4=V+). Verified two ways: the functional GNOR model and the full
// transistor-level switch simulation with precharge/evaluate phases,
// including the §4 charge-programming step.
#include <cstdio>

#include "core/fig2.h"
#include "core/gnor_pla.h"
#include "core/programmer.h"
#include "simulate/pla_sim.h"
#include "util/error.h"
#include "util/table.h"

using namespace ambit;
using core::CellConfig;

int main() {
  const tech::CnfetElectrical e = tech::default_cnfet_electrical();
  std::printf("=== Fig. 2: GNOR gate configured as Y = NOR(A, B', D) ===\n\n");

  // The configured gate, as a 1-row GNOR plane.
  core::GnorPlane plane(1, 4);
  plane.set_cell(0, 0, CellConfig::kPass);    // C1 = V+ : A as-is
  plane.set_cell(0, 1, CellConfig::kInvert);  // C2 = V- : B inverted
  plane.set_cell(0, 2, CellConfig::kOff);     // C3 = V0 : C inhibited
  plane.set_cell(0, 3, CellConfig::kPass);    // C4 = V+ : D as-is
  std::printf("configured function: %s\n", plane.row_gate(0).function_string().c_str());

  // Program it through the §4 charge protocol and verify the decode.
  core::PlaneProgrammer prog(1, 4, e);
  const auto pulses = core::PlaneProgrammer::compile(plane, e);
  prog.apply_all(pulses);
  std::printf("programming pulses: %zu (one per non-off cell)\n", pulses.size());
  std::printf("decode-after-programming matches target: %s\n\n",
              prog.decode() == plane ? "yes" : "NO");

  // Wrap into a 1-product/1-output PLA so the switch-level simulator
  // can clock it — the SHARED Fig. 2 reference construction
  // (core/fig2.h), whose inverting buffer tap restores Y = P = the
  // configured NOR.
  const core::GnorPla pla = core::fig2_reference_pla();
  for (int c = 0; c < 4; ++c) {
    check(pla.product_plane().cell(0, c) == plane.cell(0, c),
          "fig2 reference drifted from the configured gate");
  }
  simulate::GnorPlaSimulator sim(pla, e);

  TextTable table({"A", "B", "C", "D", "Y=NOR(A,B',D)", "switch-level",
                   "eval delay [ps]"});
  bool all_match = true;
  double worst = 0;
  for (int m = 0; m < 16; ++m) {
    const bool a = (m & 1) != 0;
    const bool b = (m & 2) != 0;
    const bool c = (m & 4) != 0;
    const bool d = (m & 8) != 0;
    const bool expected = !(a || !b || d);
    const auto result = sim.run_cycle({a, b, c, d});
    const bool sim_value = result.outputs[0] == simulate::Logic::k1;
    all_match = all_match && (sim_value == expected) &&
                is_definite(result.outputs[0]);
    const double delay_ps = result.plane1_eval_delay_s * 1e12;
    worst = std::max(worst, delay_ps);
    char dbuf[32];
    std::snprintf(dbuf, sizeof(dbuf), "%.1f", delay_ps);
    table.add_row({a ? "1" : "0", b ? "1" : "0", c ? "1" : "0", d ? "1" : "0",
                   expected ? "1" : "0", sim_value ? "1" : "0", dbuf});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("functional == switch-level on all 16 vectors: %s\n",
              all_match ? "yes" : "NO");
  std::printf("worst-case evaluate delay: %.1f ps; C never influences Y\n",
              worst);
  return 0;
}
