// Fig. 3/4 reproduction: the PLA architecture with GNOR planes and the
// programmable interconnect. Builds the interleaved fabric — GNOR
// plane, crossbar, GNOR plane, crossbar, ... — maps a function that
// needs a NOR-plane cascade (an EXOR tree does not fit one SOP level
// cheaply), verifies it exhaustively, and prints the configured arrays
// in the paper's array-dot style.
#include <cstdio>

#include "core/fabric.h"
#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "logic/truth_table.h"
#include "util/table.h"

using namespace ambit;
using core::CellConfig;

int main() {
  std::printf("=== Fig. 3/4: interleaved GNOR planes + crossbar fabric ===\n\n");

  // Target: F = (a XOR b) XOR (c XOR d), computed as two cascaded
  // two-plane PLAs: PLA1 computes g0 = a XOR b, g1 = c XOR d; PLA2
  // computes F = g0 XOR g1. The interconnect crossbar between them
  // routes PLA1's outputs onto PLA2's columns.
  const auto exor2 = logic::Cover::parse(4, 2,
                                         {"10-- 10", "01-- 10",
                                          "--10 01", "--01 01"});
  const auto pla1 = core::GnorPla::map_cover(exor2);
  const auto exor_top = logic::Cover::parse(2, 1, {"10 1", "01 1"});
  const auto pla2 = core::GnorPla::map_cover(exor_top);

  core::Fabric fabric(4);
  // Stage 1-2: PLA1 planes with identity routing.
  fabric.add_stage(core::FabricStage(core::Fabric::identity_routing(4, 4),
                                     pla1.product_plane()));
  fabric.add_stage(core::FabricStage(core::Fabric::identity_routing(4, 4),
                                     pla1.output_plane()));
  // Interconnect: plane-2 rows carry ¬g; PLA2's product plane expects
  // g as its column inputs, so the crossbar routes them straight and
  // the next plane's polarity cells absorb the inversion (swap the
  // pass/invert roles — the GNOR freedom at work).
  core::GnorPlane p2_products(pla2.product_plane().rows(), 2);
  for (int r = 0; r < pla2.product_plane().rows(); ++r) {
    for (int c = 0; c < 2; ++c) {
      // Invert the mapped polarity: the incoming signal is ¬g.
      switch (pla2.product_plane().cell(r, c)) {
        case CellConfig::kPass:
          p2_products.set_cell(r, c, CellConfig::kInvert);
          break;
        case CellConfig::kInvert:
          p2_products.set_cell(r, c, CellConfig::kPass);
          break;
        case CellConfig::kOff:
          break;
      }
    }
  }
  fabric.add_stage(core::FabricStage(core::Fabric::identity_routing(2, 2),
                                     std::move(p2_products)));
  fabric.add_stage(core::FabricStage(core::Fabric::identity_routing(2, 2),
                                     pla2.output_plane()));

  std::printf("fabric: 4 GNOR planes + 4 crossbars, %lld programmable cells\n",
              fabric.cell_count());
  std::printf("stage 1 product plane ('+' pass, '-' invert, '.' off):\n%s",
              fabric.stage(0).plane.to_ascii().c_str());
  std::printf("stage 3 product plane (polarity-absorbed inversion):\n%s\n",
              fabric.stage(2).plane.to_ascii().c_str());

  // Exhaustive verification through the batch path: all 16 patterns in
  // one bit-parallel pass. The final bus row carries ¬F.
  const logic::PatternBatch in = logic::PatternBatch::exhaustive(4);
  const logic::PatternBatch out = fabric.evaluate_batch(in);
  TextTable table({"a", "b", "c", "d", "F = (a^b)^(c^d)", "fabric"});
  bool all_ok = true;
  for (std::uint64_t m = 0; m < 16; ++m) {
    const bool a = in.get(m, 0), b = in.get(m, 1), c = in.get(m, 2),
               d = in.get(m, 3);
    const bool expected = (a != b) != (c != d);
    const bool got = !out.get(m, 0);  // final NOR row = ¬F
    all_ok = all_ok && got == expected;
    table.add_row({a ? "1" : "0", b ? "1" : "0", c ? "1" : "0", d ? "1" : "0",
                   expected ? "1" : "0", got ? "1" : "0"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cascade of NOR planes realizes the 4-input EXOR exactly: %s\n",
              all_ok ? "yes" : "NO");
  std::printf("(\"Interleaving PLA and interconnects enables cascades of NOR\n"
              "planes and realizes any logic function\" — paper, Section 4.)\n");
  return all_ok ? 0 : 1;
}
