// Fig. 1 reproduction (behavioural): the ambipolar CNFET's three
// states. Sweeps the polarity gate and prints the transfer
// characteristic — n-type conduction at PG = V+, p-type at PG = V−,
// and the "always off" conduction minimum at V0 = VDD/2 — plus the
// discrete state table the architecture relies on.
#include <cstdio>

#include "core/cnfet.h"
#include "tech/technology.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;

int main() {
  const tech::CnfetElectrical e = tech::default_cnfet_electrical();
  std::printf("=== Fig. 1: ambipolar CNFET device behaviour ===\n");
  std::printf("paper: PG=V+ -> n-type, PG=V- -> p-type, PG=V0=VDD/2 -> off\n");
  std::printf("VDD=%.2f V, V+=%.2f V, V-=%.2f V, V0=%.2f V\n\n", e.vdd,
              e.v_polarity_high, e.v_polarity_low, e.v_polarity_off);

  TextTable sweep({"VPG [V]", "I(CG=VDD) [A]", "I(CG=0) [A]", "state"});
  for (double vpg = 0.0; vpg <= e.vdd + 1e-9; vpg += e.vdd / 12) {
    const double i_hi = core::drain_current(e.vdd, vpg, e);
    const double i_lo = core::drain_current(0.0, vpg, e);
    char hi[32], lo[32];
    std::snprintf(hi, sizeof(hi), "%.3e", i_hi);
    std::snprintf(lo, sizeof(lo), "%.3e", i_lo);
    sweep.add_row({format_double(vpg, 2), hi, lo,
                   core::to_string(core::polarity_from_pg(vpg, e))});
  }
  std::printf("%s\n", sweep.render().c_str());

  const double on = core::drain_current(e.vdd, e.v_polarity_high, e);
  const double off = core::drain_current(e.vdd, e.v_polarity_off, e);
  std::printf("on/off ratio at V0: %.0f (conduction minimum at mid-rail)\n\n",
              on / off);

  TextTable states({"polarity state", "CG low", "CG high"});
  for (const auto state : {core::PolarityState::kNType,
                           core::PolarityState::kPType,
                           core::PolarityState::kOff}) {
    states.add_row({core::to_string(state),
                    core::conducts(state, false) ? "conducts" : "off",
                    core::conducts(state, true) ? "conducts" : "off"});
  }
  std::printf("%s", states.render().c_str());
  std::printf("\nexpected: n follows CG, p inverts CG, V0 never conducts\n");
  return 0;
}
