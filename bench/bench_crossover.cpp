// Crossover ablation (paper §5: "the CNFET implementation can only
// save area compared to Flash if the PLA has a large number of
// inputs").
//
// Analytically, CNFET beats Flash iff inputs > outputs:
//     60·(i+o) < 40·(2i+o)  <=>  o < i.
// This bench sweeps (i, o) analytically AND measures real minimized
// covers from the synthetic generator to confirm the crossover line,
// and reproduces the per-benchmark savings the paper quotes.
#include <cstdio>

#include "espresso/espresso.h"
#include "logic/synth_bench.h"
#include "tech/area_model.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;

int main() {
  std::printf("=== Crossover: CNFET vs Flash area as (inputs, outputs) vary ===\n\n");
  std::printf("analytic ratio 60(i+o)/40(2i+o); '<1' = CNFET smaller\n\n");

  TextTable grid({"i \\ o", "1", "2", "4", "8", "16", "32"});
  const int outputs[] = {1, 2, 4, 8, 16, 32};
  for (const int i : {2, 4, 8, 9, 16, 17, 32}) {
    std::vector<std::string> row{std::to_string(i)};
    for (const int o : outputs) {
      const tech::PlaDimensions dim{.inputs = i, .outputs = o, .products = 16};
      row.push_back(format_double(
          tech::cnfet_area_ratio(tech::flash_technology(), dim), 2));
    }
    grid.add_row(row);
  }
  std::printf("%s\n", grid.render().c_str());
  std::printf("crossover exactly at o = i (ratio 1.00), as the model predicts.\n\n");

  // Measured: real minimized covers on both sides of the line.
  std::printf("measured on Espresso-minimized synthetic functions:\n");
  TextTable measured({"shape", "i", "o", "p (minimized)", "CNFET/Flash",
                      "CNFET/EEPROM", "winner vs Flash"});
  struct Case {
    const char* label;
    logic::SynthSpec spec;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {"many inputs, 1 output",
       {.num_inputs = 12, .num_outputs = 1, .num_cubes = 24,
        .literals_per_cube = 7},
       3},
      {"inputs ~ outputs",
       {.num_inputs = 8, .num_outputs = 8, .num_cubes = 20,
        .literals_per_cube = 5},
       5},
      {"many outputs, few inputs",
       {.num_inputs = 4, .num_outputs = 12, .num_cubes = 14,
        .literals_per_cube = 3},
       7},
  };
  for (const Case& c : cases) {
    const auto minimized =
        espresso::minimize(logic::generate_cover(c.spec, c.seed)).cover;
    const auto dim = tech::dimensions_of(minimized);
    const double vs_flash =
        tech::cnfet_area_ratio(tech::flash_technology(), dim);
    const double vs_eeprom =
        tech::cnfet_area_ratio(tech::eeprom_technology(), dim);
    measured.add_row({c.label, std::to_string(dim.inputs),
                      std::to_string(dim.outputs),
                      std::to_string(dim.products),
                      format_double(vs_flash, 3), format_double(vs_eeprom, 3),
                      vs_flash < 1 ? "CNFET" : "Flash"});
  }
  std::printf("%s\n", measured.render().c_str());
  std::printf("CNFET always beats EEPROM (60(i+o) < 100(2i+o) for all i,o),\n"
              "and beats Flash exactly when the function has more inputs\n"
              "than outputs — the paper's max46 (9/1) vs apla (10/12) story.\n");
  return 0;
}
