// Runtime characterization of the FPGA flow kernels (google-benchmark):
// packing, placement, routing and the complete flow, on the Table 2
// workload class.
#include <benchmark/benchmark.h>

#include "fpga/flow.h"

using namespace ambit;
using namespace ambit::fpga;

namespace {

Netlist table2_netlist(int blocks) {
  CircuitSpec spec;
  spec.num_primary_inputs = 24;
  spec.num_primary_outputs = 12;
  spec.num_logic_blocks = blocks;
  return generate_circuit(spec, 2026);
}

FpgaArch table2_arch() {
  auto arch = make_standard_arch(12, 12, tech::default_cnfet_electrical());
  arch.channel_width = 20;
  return arch;
}

void BM_Pack(benchmark::State& state) {
  const Netlist nl = table2_netlist(static_cast<int>(state.range(0)));
  const FpgaArch arch = table2_arch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(nl, arch, PackMode::kDualRail));
  }
}
BENCHMARK(BM_Pack)->Arg(200)->Arg(425);

void BM_Place(benchmark::State& state) {
  const Netlist nl = table2_netlist(static_cast<int>(state.range(0)));
  const FpgaArch arch = table2_arch();
  const PackedNetlist packed = pack(nl, arch, PackMode::kDualRail);
  for (auto _ : state) {
    benchmark::DoNotOptimize(place(packed, arch));
  }
}
BENCHMARK(BM_Place)->Arg(200)->Arg(425);

void BM_Route(benchmark::State& state) {
  const Netlist nl = table2_netlist(static_cast<int>(state.range(0)));
  const FpgaArch arch = table2_arch();
  const PackedNetlist packed = pack(nl, arch, PackMode::kDualRail);
  const Placement placement = place(packed, arch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route(packed, arch, placement));
  }
}
BENCHMARK(BM_Route)->Arg(200)->Arg(425);

void BM_FullFlowStandard(benchmark::State& state) {
  const Netlist nl = table2_netlist(425);
  const FpgaArch arch = table2_arch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_flow(nl, arch, {.mode = PackMode::kDualRail}));
  }
}
BENCHMARK(BM_FullFlowStandard);

void BM_FullFlowCnfet(benchmark::State& state) {
  const Netlist nl = table2_netlist(425);
  const FpgaArch arch =
      make_cnfet_arch(table2_arch(), tech::default_cnfet_electrical());
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_flow(nl, arch, {.mode = PackMode::kGnor}));
  }
}
BENCHMARK(BM_FullFlowCnfet);

}  // namespace

BENCHMARK_MAIN();
