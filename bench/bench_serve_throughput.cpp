// End-to-end serve throughput: sharded batch speedup, protocol
// throughput, the EVALB binary bulk frame, concurrent connections,
// cross-connection request coalescing, and the cost of the metrics
// instrumentation itself.
//
// Six measurements, against >= 16-input Espresso-minimized GNOR PLAs
// (smaller under --smoke):
//
//   1. evaluate_batch sharding: the exhaustive input space swept
//      sequentially vs across 2 / 4 / hardware worker counts, with the
//      parallel output checked BIT-IDENTICAL to the sequential sweep
//      (PatternBatch operator==, every word of every lane).
//   2. protocol throughput: a full LOAD + EVAL storm + VERIFY session
//      driven through Server::serve_stream, reported as requests/s and
//      patterns/s.
//   3. EVALB bulk frame: the same pattern volume once as per-line hex
//      EVAL requests and once as a single binary frame — the ratio is
//      what the hex parser was costing.
//   4. concurrent connections: 4 clients hammering one Unix-socket
//      server, aggregate throughput with sequential accepts
//      (--max-connections 1, the old prototype's behavior) vs
//      concurrent accepts, responses checked against direct evaluation.
//   5. many small clients, over the TCP transport: 8 clients of tiny
//      EVAL requests against a heavy circuit, served once with
//      coalescing off and once with a coalescing window — fused
//      requests share lane words (a 4-pattern request stops paying a
//      full 64-bit word sweep), so the coalesced run must WIN, not
//      merely tie. Running this section over serve_tcp also makes the
//      --smoke TSan run race the TCP accept loop and the coalescer.
//   6. instrumentation overhead: the same serve_stream EVAL storm once
//      with per-request metrics recording enabled and once with
//      ServerOptions::enable_metrics = false — the gap is what the
//      counters, histograms, and phase timers cost the hot path.
//
// Every section reports latency distributions — p50 / p99 / max from
// util/metrics.h histograms (the serve layer's own per-request
// `ambit_serve_request_us` where a server is involved, a bench-local
// histogram over repeated sweeps elsewhere) — not throughput means
// alone, and the bench ends with one machine-readable `BENCH_JSON:`
// line for perf-trajectory tracking across PRs.
//
// Acceptance bars: >= 3x sharded speedup at 4+ workers (ISSUE 2),
// >= 2x aggregate multi-client speedup over the sequential-accept
// baseline (ISSUE 3), >= 1.5x many-small-clients gain from coalescing
// (ISSUE 5), and <= 5% instrumentation overhead (ISSUE 7). Bars are
// only meaningful when the machine HAS 4 hardware threads and the
// build is uninstrumented, so they are enforced exactly then;
// otherwise the bench still verifies bit-identity and reports the
// measured numbers. --smoke shrinks every section for sanitizer CI
// runs (races still fire, bars don't).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "logic/pattern_batch.h"
#include "logic/pla_io.h"
#include "logic/synth_bench.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

#ifndef _WIN32
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

using namespace ambit;
using logic::Cover;
using logic::PatternBatch;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// p50 / p99 / max snapshot of a latency histogram — the three numbers
/// every section reports alongside its throughput. All zero in a
/// -DAMBIT_METRICS=OFF build (observe() is compiled out), which the
/// main() banner calls out.
struct LatencyStats {
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

LatencyStats stats_of(const metrics::Histogram& hist) {
  return {hist.quantile(0.5), hist.quantile(0.99), hist.max_observed()};
}

LatencyStats stats_of(const metrics::Histogram* hist) {
  return hist != nullptr ? stats_of(*hist) : LatencyStats{};
}

std::string format_latency(const LatencyStats& stats) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "p50 %llu / p99 %llu / max %llu us",
                static_cast<unsigned long long>(stats.p50_us),
                static_cast<unsigned long long>(stats.p99_us),
                static_cast<unsigned long long>(stats.max_us));
  return buf;
}

/// Accumulates the flat key -> value map behind the one BENCH_JSON:
/// summary line. Keys are emitted in insertion order so diffs between
/// runs line up; values render with %.6g (integers stay integers).
class BenchJson {
 public:
  void add(const std::string& key, double value) {
    fields_.emplace_back(key, value);
  }
  void add(const std::string& key, const LatencyStats& stats) {
    add(key + "_p50_us", static_cast<double>(stats.p50_us));
    add(key + "_p99_us", static_cast<double>(stats.p99_us));
    add(key + "_max_us", static_cast<double>(stats.max_us));
  }
  std::string render() const {
    std::string out = "BENCH_JSON: {";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", fields_[i].second);
      if (i != 0) {
        out += ", ";
      }
      out += '"';
      out += fields_[i].first;
      out += "\": ";
      out += buf;
    }
    out += '}';
    return out;
  }

 private:
  std::vector<std::pair<std::string, double>> fields_;
};

/// Sweeps the exhaustive input space repeatedly until >= min_secs and
/// returns patterns/sec. When `latency` is given, each sweep's wall
/// time lands in it, so sections report distributions, not just means.
template <typename Sweep>
double measure_pps(std::uint64_t patterns, double min_secs, const Sweep& sweep,
                   metrics::Histogram* latency = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double secs = 0;
  do {
    const auto sweep_start = std::chrono::steady_clock::now();
    sweep();
    if (latency != nullptr) {
      latency->observe(static_cast<std::uint64_t>(
          seconds_since(sweep_start) * 1e6));
    }
    ++reps;
    secs = seconds_since(start);
  } while (secs < min_secs);
  return static_cast<double>(patterns) * reps / secs;
}

/// One random input pattern as a hex token.
std::string random_hex_pattern(int width, Rng& rng) {
  std::vector<bool> bits(static_cast<std::size_t>(width));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = rng.next_bool();
  }
  return serve::hex_encode(bits);
}

#ifndef _WIN32

// connect_with_retry / socket_transact come from serve/client.h — the
// one shared Unix-socket client implementation used by this bench AND
// tests/serve_test.cpp.
using serve::connect_with_retry;
using serve::socket_transact;

struct StormResult {
  double seconds = 0;
  std::uint64_t requests = 0;
  bool all_identical = true;
  bool all_served = true;
};

/// `clients` threads hammer one server — serve_unix on `socket_path`,
/// or serve_tcp on an ephemeral 127.0.0.1 port when `socket_path` is
/// empty — under the given options; every response is checked against
/// direct evaluation of the mapped array (== sequential serving).
StormResult run_storm(const core::GnorPla& pla, serve::Session& session,
                      const std::string& socket_path,
                      serve::ServerOptions options, int clients,
                      int requests_per_client, int patterns_per_request) {
  const bool over_tcp = socket_path.empty();
  serve::Server server(session, options);
  // A transport failure must become a bench failure with a message —
  // an exception escaping a bare thread body would call std::terminate.
  std::atomic<bool> server_failed{false};
  std::atomic<int> tcp_port{0};
  std::thread server_thread([&] {
    try {
      if (over_tcp) {
        server.serve_tcp("127.0.0.1", 0, &tcp_port);
      } else {
        server.serve_unix(socket_path);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_serve_throughput: storm server: %s\n",
                   e.what());
      server_failed.store(true);
      tcp_port.store(-1);
    }
  });
  const auto connect_client = [&]() -> int {
    if (!over_tcp) {
      return connect_with_retry(socket_path);
    }
    const int port = serve::await_bound_port(tcp_port);
    return port > 0 ? serve::connect_tcp_with_retry("127.0.0.1", port) : -1;
  };

  // Pre-build every client's pipelined request script and the expected
  // responses OUTSIDE the timed region.
  std::vector<std::string> scripts(static_cast<std::size_t>(clients));
  std::vector<std::vector<std::string>> expected(
      static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    Rng rng(static_cast<std::uint64_t>(1000 + c));
    std::string& script = scripts[static_cast<std::size_t>(c)];
    for (int r = 0; r < requests_per_client; ++r) {
      script += "EVAL bench";
      std::string response = "OK";
      for (int p = 0; p < patterns_per_request; ++p) {
        const std::string hex = random_hex_pattern(pla.num_inputs(), rng);
        script += ' ';
        script += hex;
        response += ' ';
        response += serve::hex_encode(
            pla.evaluate(serve::hex_decode(hex, pla.num_inputs())));
      }
      script += '\n';
      expected[static_cast<std::size_t>(c)].push_back(response);
    }
    script += "QUIT\n";
  }

  StormResult result;
  result.requests = static_cast<std::uint64_t>(clients) *
                    static_cast<std::uint64_t>(requests_per_client);
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  // Each client retries its connect until the listener is up, so the
  // first iteration absorbs the server start-up latency equally in the
  // sequential and the concurrent run.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = connect_client();
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      const auto lines = socket_transact(
          fd, scripts[static_cast<std::size_t>(c)],
          static_cast<std::size_t>(requests_per_client) + 1);
      ::close(fd);
      if (lines.size() !=
          static_cast<std::size_t>(requests_per_client) + 1) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < requests_per_client; ++r) {
        if (lines[static_cast<std::size_t>(r)] !=
            expected[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(r)]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  result.seconds = seconds_since(start);

  const int ctl = connect_client();
  if (ctl >= 0) {
    socket_transact(ctl, "SHUTDOWN\n", 1);
    ::close(ctl);
  } else if (!server_failed.load()) {
    // No way to deliver SHUTDOWN to a server that is (as far as we can
    // tell) still accepting: abort loudly rather than hang the join.
    std::fprintf(stderr,
                 "bench_serve_throughput: cannot reach storm server for "
                 "shutdown\n");
    std::exit(1);
  }
  server_thread.join();
  result.all_identical = mismatches.load() == 0 && !server_failed.load();
  result.all_served = failures.load() == 0;
  return result;
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_serve_throughput [--smoke]\n");
      return 2;
    }
  }

  std::printf("=== ambit::serve throughput%s ===\n\n",
              smoke ? " (smoke)" : "");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("hardware threads: %d\n\n", hw);
  const double min_measure_secs = smoke ? 0.0 : 0.2;

  // --- 1. Parallel sharded evaluate_batch ---------------------------------
  const logic::SynthSpec spec{.num_inputs = smoke ? 12 : 16,
                              .num_outputs = 6,
                              .num_cubes = smoke ? 24 : 48,
                              .literals_per_cube = 8};
  const Cover cover = espresso::minimize(logic::generate_cover(spec, 42)).cover;
  const auto pla = core::GnorPla::map_cover(cover);
  std::printf("cover: %d inputs, %d outputs, %d products\n", pla.num_inputs(),
              pla.num_outputs(), pla.num_products());

  const PatternBatch inputs = PatternBatch::exhaustive(pla.num_inputs());
  const PatternBatch sequential = pla.evaluate_batch(inputs);
  metrics::Histogram seq_latency(metrics::Histogram::default_latency_bounds_us());
  const double seq_pps =
      measure_pps(inputs.num_patterns(), min_measure_secs,
                  [&] { (void)pla.evaluate_batch(inputs); }, &seq_latency);

  BenchJson json;
  json.add("smoke", smoke ? 1 : 0);
  json.add("hw_threads", hw);
  json.add("sharded_seq_mpps", seq_pps / 1e6);
  json.add("sharded_seq_sweep", stats_of(seq_latency));
  if (!metrics::metrics_enabled()) {
    std::printf("NOTE: -DAMBIT_METRICS=OFF build — latency histograms are "
                "compiled out, p50/p99/max report 0\n");
  }

  TextTable table({"workers", "Mpatterns/s", "speedup", "sweep p50/p99/max us",
                   "bit-identical"});
  const auto latency_cell = [](const LatencyStats& stats) {
    return std::to_string(stats.p50_us) + " / " + std::to_string(stats.p99_us) +
           " / " + std::to_string(stats.max_us);
  };
  table.add_row({"1 (sequential)", format_double(seq_pps / 1e6, 1), "1.0x",
                 latency_cell(stats_of(seq_latency)), "yes"});
  bool all_identical = true;
  double best_speedup_4plus = 0;
  std::vector<int> worker_counts = {2, 4};
  if (hw > 4) {
    worker_counts.push_back(hw);
  }
  for (const int workers : worker_counts) {
    ThreadPool pool(workers);
    const PatternBatch parallel = pla.evaluate_batch(inputs, pool);
    const bool identical = parallel == sequential;
    all_identical = all_identical && identical;
    metrics::Histogram latency(metrics::Histogram::default_latency_bounds_us());
    const double pps =
        measure_pps(inputs.num_patterns(), min_measure_secs,
                    [&] { (void)pla.evaluate_batch(inputs, pool); }, &latency);
    const double speedup = pps / seq_pps;
    if (workers >= 4 && speedup > best_speedup_4plus) {
      best_speedup_4plus = speedup;
    }
    table.add_row({std::to_string(workers), format_double(pps / 1e6, 1),
                   format_double(speedup, 1) + "x",
                   latency_cell(stats_of(latency)), identical ? "yes" : "NO"});
  }
  std::printf("\n%s\n", table.render().c_str());
  json.add("sharded_best_speedup_4plus", best_speedup_4plus);

  // --- 2. End-to-end protocol throughput ----------------------------------
  const std::string pla_path =
      (std::filesystem::temp_directory_path() / "ambit_bench_serve.pla")
          .string();
  logic::write_pla_file(pla_path, logic::make_pla(cover, "bench"));

  const int eval_requests = smoke ? 200 : 2000;
  constexpr int kPatternsPerRequest = 8;
  std::ostringstream script;
  script << "LOAD bench " << pla_path << "\n";
  Rng rng(7);
  for (int r = 0; r < eval_requests; ++r) {
    script << "EVAL bench";
    for (int p = 0; p < kPatternsPerRequest; ++p) {
      script << ' ' << random_hex_pattern(pla.num_inputs(), rng);
    }
    script << "\n";
  }
  script << "VERIFY bench\nSTATS\nQUIT\n";

  serve::Session session(hw >= 4 ? 4 : 1);
  // The server's own per-request histogram (an isolated registry, so
  // counts are exactly this session's) supplies the latency numbers —
  // the same ambit_serve_request_us a production scrape would read.
  metrics::Registry protocol_registry;
  serve::ServerOptions protocol_options;
  protocol_options.registry = &protocol_registry;
  serve::Server server(session, protocol_options);
  std::istringstream in(script.str());
  std::ostringstream out;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t served = server.serve_stream(in, out);
  const double secs = seconds_since(start);

  // Every response must be OK — count the ERR lines instead of parsing.
  int errors = 0;
  std::istringstream responses(out.str());
  for (std::string line; std::getline(responses, line);) {
    errors += starts_with(line, "ERR");
  }
  const LatencyStats protocol_eval = stats_of(protocol_registry.find_histogram(
      "ambit_serve_request_us", {{"verb", "EVAL"}}));
  std::printf("protocol session: %llu requests in %.3f s -> %.0f req/s, "
              "%.2f Mpatterns/s through EVAL, EVAL %s, %d error(s)\n",
              static_cast<unsigned long long>(served), secs, served / secs,
              static_cast<double>(eval_requests) * kPatternsPerRequest / secs /
                  1e6,
              format_latency(protocol_eval).c_str(), errors);
  json.add("protocol_req_per_s", served / secs);
  json.add("protocol_eval", protocol_eval);

  // --- 3. EVALB bulk frame vs per-line hex --------------------------------
  // The same pattern volume once as hex EVAL lines and once as one
  // binary frame; the ratio is the per-line parse cost the frame
  // eliminates.
  const std::uint64_t bulk_patterns = smoke ? (1u << 10) : (1u << 15);
  PatternBatch bulk(pla.num_inputs(), bulk_patterns);
  Rng bulk_rng(19);
  for (std::uint64_t p = 0; p < bulk_patterns; ++p) {
    for (int s = 0; s < pla.num_inputs(); ++s) {
      bulk.set(p, s, bulk_rng.next_bool());
    }
  }
  serve::Session bulk_session(1);
  bulk_session.load("bench", pla_path);
  serve::Server bulk_server(bulk_session);

  std::string hex_script;
  for (std::uint64_t p = 0; p < bulk_patterns; p += 8) {
    hex_script += "EVAL bench";
    for (std::uint64_t q = p; q < p + 8 && q < bulk_patterns; ++q) {
      hex_script += ' ';
      hex_script += serve::hex_encode(bulk.pattern(q));
    }
    hex_script += '\n';
  }
  hex_script += "QUIT\n";
  metrics::Histogram hex_latency(metrics::Histogram::default_latency_bounds_us());
  const double hex_pps = measure_pps(
      bulk_patterns, min_measure_secs,
      [&] {
        std::istringstream hex_in(hex_script);
        std::ostringstream hex_out;
        bulk_server.serve_stream(hex_in, hex_out);
      },
      &hex_latency);

  std::vector<std::uint64_t> bulk_words(bulk.total_words());
  bulk.store_words(bulk_words.data(), bulk_words.size());
  std::string frame_script = "EVALB bench " + std::to_string(bulk_patterns) +
                             " " + std::to_string(bulk_words.size()) + "\n";
  frame_script.append(reinterpret_cast<const char*>(bulk_words.data()),
                      bulk_words.size() * sizeof(std::uint64_t));
  frame_script += "QUIT\n";
  metrics::Histogram frame_latency(
      metrics::Histogram::default_latency_bounds_us());
  const double frame_pps = measure_pps(
      bulk_patterns, min_measure_secs,
      [&] {
        std::istringstream frame_in(frame_script);
        std::ostringstream frame_out;
        bulk_server.serve_stream(frame_in, frame_out);
      },
      &frame_latency);

  // Bit-identity of the frame path against direct evaluation.
  bool evalb_identical = false;
  {
    std::istringstream frame_in(frame_script);
    std::ostringstream frame_out;
    bulk_server.serve_stream(frame_in, frame_out);
    const PatternBatch expected = pla.evaluate_batch(bulk);
    std::vector<std::uint64_t> out_words;
    std::size_t consumed = 0;
    if (serve::decode_evalb_response(frame_out.str(), bulk_patterns,
                                     expected.total_words(), out_words,
                                     consumed)) {
      PatternBatch got(expected.num_signals(), bulk_patterns);
      got.load_words(out_words.data(), out_words.size());
      evalb_identical = got == expected;
    }
  }
  std::printf("bulk %llu patterns: EVAL hex %.2f Mpatterns/s (session %s), "
              "EVALB frame %.2f Mpatterns/s (session %s, %.1fx), "
              "bit-identical: %s\n",
              static_cast<unsigned long long>(bulk_patterns), hex_pps / 1e6,
              format_latency(stats_of(hex_latency)).c_str(), frame_pps / 1e6,
              format_latency(stats_of(frame_latency)).c_str(),
              frame_pps / hex_pps, evalb_identical ? "yes" : "NO");
  json.add("bulk_hex_mpps", hex_pps / 1e6);
  json.add("bulk_frame_mpps", frame_pps / 1e6);
  json.add("bulk_hex_session", stats_of(hex_latency));
  json.add("bulk_frame_session", stats_of(frame_latency));

  // --- 4. Concurrent connections over a Unix socket -----------------------
  bool storm_identical = true;
  bool storm_served = true;
  bool storm_ran = false;
  double conc_speedup = 0;
#ifndef _WIN32
  {
    const int clients = 4;
    const int requests_per_client = smoke ? 50 : 400;
    const int patterns_per_request = 4;
    const std::string socket_path =
        (std::filesystem::temp_directory_path() / "ambit_bench_serve.sock")
            .string();
    // One worker pool slot (inline evaluation): the parallelism under
    // test is ACROSS connections, not inside one EVAL.
    serve::Session seq_session(1);
    seq_session.load("bench", pla_path);
    serve::ServerOptions seq_options;
    seq_options.max_connections = 1;
    const StormResult seq =
        run_storm(pla, seq_session, socket_path, seq_options, clients,
                  requests_per_client, patterns_per_request);
    serve::Session conc_session(1);
    conc_session.load("bench", pla_path);
    metrics::Registry conc_registry;
    serve::ServerOptions conc_options;
    conc_options.max_connections = clients;
    conc_options.registry = &conc_registry;
    const StormResult conc =
        run_storm(pla, conc_session, socket_path, conc_options, clients,
                  requests_per_client, patterns_per_request);
    storm_identical = seq.all_identical && conc.all_identical;
    storm_served = seq.all_served && conc.all_served;
    storm_ran = true;
    conc_speedup = seq.seconds / conc.seconds;
    const LatencyStats conc_eval = stats_of(conc_registry.find_histogram(
        "ambit_serve_request_us", {{"verb", "EVAL"}}));
    std::printf(
        "%d clients x %d requests: sequential accepts %.0f req/s, "
        "concurrent accepts %.0f req/s (%.1fx, EVAL %s), responses %s\n",
        clients, requests_per_client,
        static_cast<double>(seq.requests) / seq.seconds,
        static_cast<double>(conc.requests) / conc.seconds, conc_speedup,
        format_latency(conc_eval).c_str(),
        storm_identical && storm_served ? "bit-identical" : "WRONG");
    json.add("storm_conc_req_per_s",
             static_cast<double>(conc.requests) / conc.seconds);
    json.add("storm_speedup", conc_speedup);
    json.add("storm_conc_eval", conc_eval);
  }
#else
  std::printf("concurrent-connection storm skipped: no Unix sockets\n");
#endif

  // --- 5. Cross-connection coalescing: many small clients, over TCP -------
  // The workload coalescing exists for: many clients, each sending
  // requests of a FEW patterns against a heavy circuit. Uncoalesced,
  // every 4-pattern request pays a full word sweep over every
  // product/output lane (64-bit words it leaves 94% empty);
  // coalesced, concurrent requests pack bit-contiguously into shared
  // words, so the same traffic costs a fraction of the lane work.
  // Responses are checked against direct evaluation in BOTH arms.
  bool coalesce_identical = true;
  bool coalesce_served = true;
  bool coalesce_ran = false;
  double coalesce_speedup = 0;
#ifndef _WIN32
  {
    // A deliberately heavy cover — wide output plane, many products —
    // so per-request lane work dominates parse/syscall overhead the
    // way it does for real classification fabrics.
    const logic::SynthSpec heavy_spec{.num_inputs = 16,
                                      .num_outputs = smoke ? 8 : 32,
                                      .num_cubes = smoke ? 32 : 224,
                                      .literals_per_cube = 5};
    const Cover heavy_cover =
        espresso::minimize(logic::generate_cover(heavy_spec, 11)).cover;
    const auto heavy = core::GnorPla::map_cover(heavy_cover);
    const std::string heavy_path =
        (std::filesystem::temp_directory_path() / "ambit_bench_coal.pla")
            .string();
    logic::write_pla_file(heavy_path, logic::make_pla(heavy_cover, "bench"));
    std::printf("\nheavy cover for coalescing: %d inputs, %d outputs, %d "
                "products\n",
                heavy.num_inputs(), heavy.num_outputs(),
                heavy.num_products());

    const int small_clients = 8;
    const int small_requests = smoke ? 40 : 400;
    const int small_patterns = 4;
    // Single-worker sessions on purpose: the contest is per-request
    // word sweeps vs shared word sweeps, not pool sharding (tiny
    // batches never shard anyway).
    serve::Session plain_session(1);
    plain_session.load("bench", heavy_path);
    serve::ServerOptions plain_options;
    const StormResult plain =
        run_storm(heavy, plain_session, /*socket_path=*/"", plain_options,
                  small_clients, small_requests, small_patterns);
    serve::Session coal_session(1);
    coal_session.load("bench", heavy_path);
    metrics::Registry coal_registry;
    serve::ServerOptions coal_options;
    coal_options.coalesce.window_us = 200;
    coal_options.coalesce.min_patterns =
        static_cast<std::uint64_t>(small_clients) * small_patterns / 2;
    coal_options.registry = &coal_registry;
    const StormResult coal =
        run_storm(heavy, coal_session, /*socket_path=*/"", coal_options,
                  small_clients, small_requests, small_patterns);
    coalesce_identical = plain.all_identical && coal.all_identical;
    coalesce_served = plain.all_served && coal.all_served;
    coalesce_ran = true;
    coalesce_speedup = plain.seconds / coal.seconds;
    const LatencyStats coal_eval = stats_of(coal_registry.find_histogram(
        "ambit_serve_request_us", {{"verb", "EVAL"}}));
    const metrics::Counter* fused = coal_registry.find_counter(
        "ambit_serve_coalesce_fused_total");
    std::printf(
        "%d small clients x %d requests x %d patterns over TCP: "
        "uncoalesced %.0f req/s, coalesced %.0f req/s (%.2fx, EVAL %s, "
        "%llu fused), responses %s\n",
        small_clients, small_requests, small_patterns,
        static_cast<double>(plain.requests) / plain.seconds,
        static_cast<double>(coal.requests) / coal.seconds, coalesce_speedup,
        format_latency(coal_eval).c_str(),
        static_cast<unsigned long long>(fused != nullptr ? fused->value() : 0),
        coalesce_identical && coalesce_served ? "bit-identical" : "WRONG");
    json.add("coalesce_req_per_s",
             static_cast<double>(coal.requests) / coal.seconds);
    json.add("coalesce_speedup", coalesce_speedup);
    json.add("coalesce_eval", coal_eval);
    std::filesystem::remove(heavy_path);
  }
#else
  std::printf("coalescing storm skipped: no sockets\n");
#endif

  // --- 6. Instrumentation overhead ----------------------------------------
  // The exact workload PR 6 benchmarked — a serve_stream EVAL storm —
  // once with per-request recording live and once with
  // enable_metrics = false (one branch at the top of serve_line, the
  // runtime twin of the -DAMBIT_METRICS=OFF compile-out). Arms are
  // interleaved best-of-N so a background scheduler blip cannot charge
  // one arm only; the gap is the tentpole's <= 5% budget.
  double metrics_overhead_pct = 0;
  {
    const int overhead_requests = smoke ? 100 : 1000;
    std::string overhead_script;
    Rng overhead_rng(23);
    for (int r = 0; r < overhead_requests; ++r) {
      overhead_script += "EVAL bench";
      for (int p = 0; p < kPatternsPerRequest; ++p) {
        overhead_script += ' ';
        overhead_script += random_hex_pattern(pla.num_inputs(), overhead_rng);
      }
      overhead_script += '\n';
    }
    overhead_script += "QUIT\n";
    const std::uint64_t overhead_patterns =
        static_cast<std::uint64_t>(overhead_requests) * kPatternsPerRequest;

    serve::Session overhead_session(1);
    overhead_session.load("bench", pla_path);
    metrics::Registry overhead_registry;
    serve::ServerOptions on_options;
    on_options.registry = &overhead_registry;
    serve::Server on_server(overhead_session, on_options);
    serve::ServerOptions off_options;
    off_options.enable_metrics = false;
    off_options.registry = &overhead_registry;
    serve::Server off_server(overhead_session, off_options);
    const auto run_arm = [&](serve::Server& arm) {
      return measure_pps(overhead_patterns, min_measure_secs, [&] {
        std::istringstream arm_in(overhead_script);
        std::ostringstream arm_out;
        arm.serve_stream(arm_in, arm_out);
      });
    };
    double on_pps = 0;
    double off_pps = 0;
    for (int round = 0; round < (smoke ? 1 : 3); ++round) {
      off_pps = std::max(off_pps, run_arm(off_server));
      on_pps = std::max(on_pps, run_arm(on_server));
    }
    metrics_overhead_pct = (off_pps - on_pps) / off_pps * 100.0;
    const LatencyStats overhead_eval =
        stats_of(overhead_registry.find_histogram("ambit_serve_request_us",
                                                  {{"verb", "EVAL"}}));
    std::printf(
        "\ninstrumentation overhead: metrics off %.2f Mpatterns/s, "
        "metrics on %.2f Mpatterns/s (%+.1f%%), instrumented EVAL %s\n",
        off_pps / 1e6, on_pps / 1e6, -metrics_overhead_pct,
        format_latency(overhead_eval).c_str());
    json.add("metrics_off_mpps", off_pps / 1e6);
    json.add("metrics_on_mpps", on_pps / 1e6);
    json.add("metrics_overhead_pct", metrics_overhead_pct);
    json.add("overhead_eval", overhead_eval);
  }

  // --- 7. C10k: thousands of SIMULTANEOUSLY open connections --------------
  // The event-loop transport's reason to exist: every client below
  // connects and STAYS connected while one EVAL per client flows
  // through — the thread-per-connection model would need one stack per
  // client for the same shape. The threads arm churns the identical
  // request count through its 64 connection slots for comparison.
  // Self-skips (reported, not failed) when RLIMIT_NOFILE cannot cover
  // both ends of every connection living in this one process.
  std::uint64_t c10k_clients = 0;
  std::uint64_t c10k_epoll_served = 0;
  std::uint64_t c10k_threads_served = 0;
  std::uint64_t c10k_peak_active = 0;
  double c10k_epoll_req_per_s = 0;
  double c10k_threads_req_per_s = 0;
  LatencyStats c10k_eval{};
  bool c10k_ran = false;
#ifdef __linux__
  {
    const std::uint64_t want_clients = smoke ? 128 : 2200;
    rlimit nofile{};
    ::getrlimit(RLIMIT_NOFILE, &nofile);
    if (nofile.rlim_cur < nofile.rlim_max) {
      rlimit raised = nofile;
      raised.rlim_cur = raised.rlim_max;
      if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
        nofile = raised;
      }
    }
    const rlim_t need = static_cast<rlim_t>(2 * want_clients + 128);
    if (nofile.rlim_cur < need) {
      std::printf("\nC10k section skipped: RLIMIT_NOFILE %llu < %llu needed "
                  "for %llu clients\n",
                  static_cast<unsigned long long>(nofile.rlim_cur),
                  static_cast<unsigned long long>(need),
                  static_cast<unsigned long long>(want_clients));
    } else {
      c10k_ran = true;
      const std::string socket_path =
          (std::filesystem::temp_directory_path() / "ambit_bench_c10k.sock")
              .string();

      // Epoll arm: connect everyone, prove the concurrency with STATS,
      // then one EVAL per held-open connection.
      {
        serve::Session c10k_session(1);
        c10k_session.load("bench", pla_path);
        metrics::Registry c10k_registry;
        serve::ServerOptions c10k_options;
        c10k_options.io_model = serve::IoModel::kEpoll;
        c10k_options.max_connections = static_cast<int>(want_clients) + 8;
        c10k_options.registry = &c10k_registry;
        serve::Server c10k_server(c10k_session, c10k_options);
        std::thread server_thread(
            [&] { c10k_server.serve_unix(socket_path); });

        std::vector<int> fds;
        fds.reserve(want_clients);
        while (fds.size() < want_clients) {
          const int fd = serve::connect_with_retry(socket_path);
          if (fd < 0) {
            break;
          }
          fds.push_back(fd);
        }
        c10k_clients = fds.size();

        const int ctl = serve::connect_with_retry(socket_path);
        if (ctl >= 0) {
          const auto stats_lines = serve::socket_transact(ctl, "STATS\n", 1);
          if (stats_lines.size() == 1) {
            const std::size_t at = stats_lines[0].find("connections=");
            if (at != std::string::npos) {
              // "connections=<active>/<accepted>": active includes this
              // control connection — report the held-open clients only.
              const std::uint64_t active = std::strtoull(
                  stats_lines[0].c_str() + at + std::strlen("connections="),
                  nullptr, 10);
              c10k_peak_active = active > 0 ? active - 1 : 0;
            }
          }
        }

        Rng c10k_rng(77);
        const auto start = std::chrono::steady_clock::now();
        for (const int fd : fds) {
          const std::string request =
              "EVAL bench " + random_hex_pattern(pla.num_inputs(), c10k_rng) +
              "\n";
          std::size_t sent = 0;
          while (sent < request.size()) {
            const ssize_t n = ::send(fd, request.data() + sent,
                                     request.size() - sent, MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR) {
              continue;
            }
            if (n <= 0) {
              break;
            }
            sent += static_cast<std::size_t>(n);
          }
        }
        for (const int fd : fds) {
          std::string line;
          char byte = 0;
          while (::read(fd, &byte, 1) == 1 && byte != '\n') {
            line += byte;
          }
          if (line.compare(0, 3, "OK ") == 0) {
            ++c10k_epoll_served;
          }
        }
        const double secs = seconds_since(start);
        c10k_epoll_req_per_s =
            secs > 0 ? static_cast<double>(c10k_epoll_served) / secs : 0;
        for (const int fd : fds) {
          ::close(fd);
        }
        if (ctl >= 0) {
          serve::socket_transact(ctl, "SHUTDOWN\n", 1);
          ::close(ctl);
        }
        server_thread.join();
        c10k_eval = stats_of(c10k_registry.find_histogram(
            "ambit_serve_request_us", {{"verb", "EVAL"}}));
      }

      // Threads arm: the same request count churned through 64 slots —
      // connections cannot be held open past the slot cap, so each
      // client is one connect/EVAL/QUIT round trip.
      {
        serve::Session threads_session(1);
        threads_session.load("bench", pla_path);
        serve::ServerOptions threads_options;
        threads_options.io_model = serve::IoModel::kThreads;
        threads_options.max_connections = 64;
        serve::Server threads_server(threads_session, threads_options);
        std::thread server_thread(
            [&] { threads_server.serve_unix(socket_path); });

        const int churners = 8;
        std::atomic<std::uint64_t> ok_count{0};
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> churn;
        for (int t = 0; t < churners; ++t) {
          churn.emplace_back([&, t] {
            Rng churn_rng(100 + t);
            const std::uint64_t share =
                c10k_clients / churners +
                (static_cast<std::uint64_t>(t) < c10k_clients % churners ? 1
                                                                         : 0);
            for (std::uint64_t i = 0; i < share; ++i) {
              const int fd = serve::connect_with_retry(socket_path);
              if (fd < 0) {
                continue;
              }
              const auto lines = serve::socket_transact(
                  fd,
                  "EVAL bench " +
                      random_hex_pattern(pla.num_inputs(), churn_rng) +
                      "\nQUIT\n",
                  2);
              if (lines.size() == 2 && lines[0].compare(0, 3, "OK ") == 0) {
                ok_count.fetch_add(1);
              }
              ::close(fd);
            }
          });
        }
        for (std::thread& t : churn) {
          t.join();
        }
        const double secs = seconds_since(start);
        c10k_threads_served = ok_count.load();
        c10k_threads_req_per_s =
            secs > 0 ? static_cast<double>(c10k_threads_served) / secs : 0;
        const int ctl = serve::connect_with_retry(socket_path);
        if (ctl >= 0) {
          serve::socket_transact(ctl, "SHUTDOWN\n", 1);
          ::close(ctl);
        }
        server_thread.join();
      }

      std::printf(
          "\nC10k: %llu clients held open concurrently (peak active %llu): "
          "epoll served %llu (%.0f req/s, EVAL %s); "
          "threads @64 slots churned %llu (%.0f req/s)\n",
          static_cast<unsigned long long>(c10k_clients),
          static_cast<unsigned long long>(c10k_peak_active),
          static_cast<unsigned long long>(c10k_epoll_served),
          c10k_epoll_req_per_s, format_latency(c10k_eval).c_str(),
          static_cast<unsigned long long>(c10k_threads_served),
          c10k_threads_req_per_s);
      json.add("c10k_clients", static_cast<double>(c10k_clients));
      json.add("c10k_peak_active", static_cast<double>(c10k_peak_active));
      json.add("c10k_epoll_served", static_cast<double>(c10k_epoll_served));
      json.add("c10k_threads_served",
               static_cast<double>(c10k_threads_served));
      json.add("c10k_epoll_req_per_s", c10k_epoll_req_per_s);
      json.add("c10k_threads_req_per_s", c10k_threads_req_per_s);
      json.add("c10k_eval", c10k_eval);
    }
  }
#else
  std::printf("\nC10k section skipped: the epoll transport is Linux-only\n");
#endif

  std::filesystem::remove(pla_path);

  // --- Verdict -------------------------------------------------------------
  // The bars need real parallel hardware and an uninstrumented build;
  // under ThreadSanitizer (which serializes heavily) or on small
  // containers the bench still verifies bit-identity and reports.
  bool instrumented = false;
#if defined(__SANITIZE_THREAD__)
  instrumented = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  instrumented = true;
#endif
#endif
  const bool enforce_speedup = hw >= 4 && !instrumented && !smoke;
  std::printf("\nparallel outputs bit-identical to sequential: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("EVALB frame bit-identical: %s\n", evalb_identical ? "yes" : "NO");
  std::printf("multi-client responses correct: %s\n",
              storm_identical && storm_served ? "yes" : "NO");
  std::printf("coalesced responses correct: %s\n",
              coalesce_identical && coalesce_served ? "yes" : "NO");
  // The C10k bars: every held-open client must be served whenever the
  // section ran at all (a correctness bar, enforced even in smoke);
  // the >= 2000 simultaneous-connection floor only outside smoke /
  // sanitizer runs (smoke deliberately shrinks the client count).
  const bool c10k_all_served = !c10k_ran || (c10k_epoll_served == c10k_clients &&
                                             c10k_threads_served == c10k_clients);
  const bool enforce_c10k_scale = c10k_ran && !smoke && !instrumented;
  if (c10k_ran) {
    std::printf("C10k epoll served every held-open client: %s\n",
                c10k_all_served ? "yes" : "NO");
    if (enforce_c10k_scale) {
      std::printf("C10k simultaneous connections: %llu (bar: >= 2000)\n",
                  static_cast<unsigned long long>(c10k_peak_active));
    } else {
      std::printf("C10k simultaneous connections: %llu (bar NOT enforced)\n",
                  static_cast<unsigned long long>(c10k_peak_active));
    }
  }
  if (enforce_speedup) {
    std::printf("best sharded speedup at 4+ workers: %.1fx (bar: >= 3x)\n",
                best_speedup_4plus);
    std::printf("multi-client aggregate speedup: %.1fx (bar: >= 2x)\n",
                conc_speedup);
    std::printf("many-small-clients coalescing speedup: %.2fx (bar: >= 1.5x)\n",
                coalesce_speedup);
    std::printf("metrics instrumentation overhead: %.1f%% (bar: <= 5%%)\n",
                metrics_overhead_pct);
  } else {
    std::printf("best sharded speedup at 4+ workers: %.1fx (bar NOT "
                "enforced: %s)\n",
                best_speedup_4plus,
                instrumented ? "sanitizer build"
                : smoke      ? "smoke run"
                             : "fewer than 4 hardware threads");
    std::printf("multi-client aggregate speedup: %.1fx (bar NOT enforced)\n",
                conc_speedup);
    std::printf(
        "many-small-clients coalescing speedup: %.2fx (bar NOT enforced)\n",
        coalesce_speedup);
    std::printf("metrics instrumentation overhead: %.1f%% (bar NOT enforced)\n",
                metrics_overhead_pct);
  }
  // The concurrency bars only apply where the storms could run (no
  // sockets -> no storm -> no bar). The overhead bar only means
  // something when the instrumentation is compiled in at all.
  const bool pass = all_identical && evalb_identical && storm_identical &&
                    storm_served && coalesce_identical && coalesce_served &&
                    errors == 0 && c10k_all_served &&
                    (!enforce_c10k_scale || c10k_peak_active >= 2000) &&
                    (!enforce_speedup ||
                     (best_speedup_4plus >= 3.0 &&
                      (!storm_ran || conc_speedup >= 2.0) &&
                      (!coalesce_ran || coalesce_speedup >= 1.5) &&
                      (!metrics::metrics_enabled() ||
                       metrics_overhead_pct <= 5.0)));
  std::printf("\n%s\n", json.render().c_str());
  return pass ? 0 : 1;
}
