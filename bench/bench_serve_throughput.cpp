// End-to-end serve throughput and parallel sharded batch speedup.
//
// Two measurements, both against a >= 16-input Espresso-minimized
// GNOR PLA:
//
//   1. evaluate_batch sharding: the exhaustive input space swept
//      sequentially vs across 2 / 4 / hardware worker counts, with the
//      parallel output checked BIT-IDENTICAL to the sequential sweep
//      (PatternBatch operator==, every word of every lane).
//   2. protocol throughput: a full LOAD + EVAL storm + VERIFY session
//      driven through Server::serve_stream, reported as requests/s and
//      patterns/s.
//
// Acceptance bar (ISSUE 2): >= 3x speedup at 4+ workers. A speedup bar
// is only meaningful when the machine HAS 4 hardware threads, so the
// bar is enforced exactly then; on smaller containers the bench still
// verifies bit-identity and reports the measured numbers.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "logic/pattern_batch.h"
#include "logic/pla_io.h"
#include "logic/synth_bench.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace ambit;
using logic::Cover;
using logic::PatternBatch;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Sweeps the exhaustive input space repeatedly until >= 0.2 s and
/// returns patterns/sec.
template <typename Sweep>
double measure_pps(std::uint64_t patterns, const Sweep& sweep) {
  const auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double secs = 0;
  do {
    sweep();
    ++reps;
    secs = seconds_since(start);
  } while (secs < 0.2);
  return static_cast<double>(patterns) * reps / secs;
}

}  // namespace

int main() {
  std::printf("=== ambit::serve throughput ===\n\n");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("hardware threads: %d\n\n", hw);

  // --- 1. Parallel sharded evaluate_batch ---------------------------------
  const logic::SynthSpec spec{.num_inputs = 16,
                              .num_outputs = 6,
                              .num_cubes = 48,
                              .literals_per_cube = 8};
  const Cover cover = espresso::minimize(logic::generate_cover(spec, 42)).cover;
  const auto pla = core::GnorPla::map_cover(cover);
  std::printf("cover: %d inputs, %d outputs, %d products\n", pla.num_inputs(),
              pla.num_outputs(), pla.num_products());

  const PatternBatch inputs = PatternBatch::exhaustive(pla.num_inputs());
  const PatternBatch sequential = pla.evaluate_batch(inputs);
  const double seq_pps = measure_pps(
      inputs.num_patterns(), [&] { (void)pla.evaluate_batch(inputs); });

  TextTable table({"workers", "Mpatterns/s", "speedup", "bit-identical"});
  table.add_row({"1 (sequential)", format_double(seq_pps / 1e6, 1), "1.0x",
                 "yes"});
  bool all_identical = true;
  double best_speedup_4plus = 0;
  std::vector<int> worker_counts = {2, 4};
  if (hw > 4) {
    worker_counts.push_back(hw);
  }
  for (const int workers : worker_counts) {
    ThreadPool pool(workers);
    const PatternBatch parallel = pla.evaluate_batch(inputs, pool);
    const bool identical = parallel == sequential;
    all_identical = all_identical && identical;
    const double pps = measure_pps(
        inputs.num_patterns(), [&] { (void)pla.evaluate_batch(inputs, pool); });
    const double speedup = pps / seq_pps;
    if (workers >= 4 && speedup > best_speedup_4plus) {
      best_speedup_4plus = speedup;
    }
    table.add_row({std::to_string(workers), format_double(pps / 1e6, 1),
                   format_double(speedup, 1) + "x", identical ? "yes" : "NO"});
  }
  std::printf("\n%s\n", table.render().c_str());

  // --- 2. End-to-end protocol throughput ----------------------------------
  const std::string pla_path =
      (std::filesystem::temp_directory_path() / "ambit_bench_serve.pla")
          .string();
  logic::write_pla_file(pla_path, logic::make_pla(cover, "bench"));

  constexpr int kEvalRequests = 2000;
  constexpr int kPatternsPerRequest = 8;
  std::ostringstream script;
  script << "LOAD bench " << pla_path << "\n";
  Rng rng(7);
  for (int r = 0; r < kEvalRequests; ++r) {
    script << "EVAL bench";
    for (int p = 0; p < kPatternsPerRequest; ++p) {
      std::vector<bool> bits(static_cast<std::size_t>(pla.num_inputs()));
      for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] = rng.next_bool();
      }
      script << ' ' << serve::hex_encode(bits);
    }
    script << "\n";
  }
  script << "VERIFY bench\nSTATS\nQUIT\n";

  serve::Session session(hw >= 4 ? 4 : 1);
  serve::Server server(session);
  std::istringstream in(script.str());
  std::ostringstream out;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t served = server.serve_stream(in, out);
  const double secs = seconds_since(start);

  // Every response must be OK — count the ERR lines instead of parsing.
  int errors = 0;
  std::istringstream responses(out.str());
  for (std::string line; std::getline(responses, line);) {
    errors += starts_with(line, "ERR");
  }
  std::printf("protocol session: %llu requests in %.3f s -> %.0f req/s, "
              "%.2f Mpatterns/s through EVAL, %d error(s)\n",
              static_cast<unsigned long long>(served), secs, served / secs,
              static_cast<double>(kEvalRequests) * kPatternsPerRequest / secs /
                  1e6,
              errors);
  std::filesystem::remove(pla_path);

  // --- Verdict -------------------------------------------------------------
  // The bar needs real parallel hardware and an uninstrumented build;
  // under ThreadSanitizer (which serializes heavily) or on small
  // containers the bench still verifies bit-identity and reports.
  bool instrumented = false;
#if defined(__SANITIZE_THREAD__)
  instrumented = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  instrumented = true;
#endif
#endif
  const bool enforce_speedup = hw >= 4 && !instrumented;
  std::printf("\nparallel outputs bit-identical to sequential: %s\n",
              all_identical ? "yes" : "NO");
  if (enforce_speedup) {
    std::printf("best speedup at 4+ workers: %.1fx (acceptance bar: >= 3x)\n",
                best_speedup_4plus);
  } else {
    std::printf("best speedup at 4+ workers: %.1fx (bar NOT enforced: %s)\n",
                best_speedup_4plus,
                instrumented ? "sanitizer build"
                             : "fewer than 4 hardware threads");
  }
  const bool pass = all_identical && errors == 0 &&
                    (!enforce_speedup || best_speedup_4plus >= 3.0);
  return pass ? 0 : 1;
}
