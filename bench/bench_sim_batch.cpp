// Switch-level batch simulation throughput.
//
// The simulator used to be the last scalar island: one pattern per
// call, and per-pattern isolation meant REBUILDING the transistor
// network per pattern (construction was the only way to guarantee no
// dynamic charge carried over). The batch path keeps ONE built network,
// resets its settle state per pattern, and shards patterns word-aligned
// across the ThreadPool. This bench measures that claim on the paper's
// Fig. 2 reference PLA — the 4-input gate Y = NOR(A, B', D) wrapped as
// a 1-product/1-output dynamic PLA — and on a larger synthetic PLA:
//
//   1. rebuild-per-pattern vs reuse-and-reset (sequential) vs the full
//      shipped path (reuse + sharded sweep). Outputs and per-pattern
//      delays must be BIT-IDENTICAL across all three. The >= 5x
//      acceptance bar applies to the shipped path and — like the
//      >= 3x @ 4 workers bar of bench_serve_throughput — is enforced
//      on machines with >= 4 hardware threads (the design target; a
//      single-core container cannot express the sharded axis). The
//      sequential reuse arm alone must clear 1.5x everywhere.
//   2. sequential vs sharded simulate_batch on an 8-input PLA,
//      bit-identity always, >= 2x at 4+ hardware threads.
//   3. the oracle price: SimEvaluator vs the word-packed functional
//      evaluate_batch (informational — this is the factor the
//      cross-validation suites pay for transistor-level confidence).
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/fig2.h"
#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "logic/pattern_batch.h"
#include "logic/synth_bench.h"
#include "simulate/pla_sim.h"
#include "simulate/sim_evaluator.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace ambit;
using logic::Cover;
using logic::PatternBatch;
using simulate::BatchSimResult;
using simulate::GnorPlaSimulator;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// `count` patterns cycling through the full 4-input space.
PatternBatch fig2_patterns(std::uint64_t count) {
  PatternBatch batch(4, count);
  for (std::uint64_t p = 0; p < count; ++p) {
    for (int i = 0; i < 4; ++i) {
      batch.set(p, i, ((p % 16) >> i) & 1);
    }
  }
  return batch;
}

bool same_results(const BatchSimResult& a, const BatchSimResult& b) {
  return a.outputs == b.outputs && a.definite == b.definite &&
         a.precharge_delay_s == b.precharge_delay_s &&
         a.plane1_eval_delay_s == b.plane1_eval_delay_s &&
         a.plane2_eval_delay_s == b.plane2_eval_delay_s;
}

}  // namespace

int main() {
  const tech::CnfetElectrical e = tech::default_cnfet_electrical();
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("=== Batch switch-level simulation ===\n\n");
  bool ok = true;

  // --- 1. Rebuild vs reuse vs reuse+sharded (Fig. 2 PLA). ------------------
  const core::GnorPla fig2 = core::fig2_reference_pla();
  constexpr std::uint64_t kFig2Patterns = 8192;
  const PatternBatch fig2_in = fig2_patterns(kFig2Patterns);

  // Rebuild arm: what per-pattern isolation cost before reset() — a
  // fresh simulator (full network construction) for every pattern.
  BatchSimResult rebuilt(fig2.num_outputs(), kFig2Patterns);
  const auto rebuild_start = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < kFig2Patterns; ++p) {
    GnorPlaSimulator fresh(fig2, e);
    const simulate::PlaSimResult r = fresh.run_cycle(fig2_in.pattern(p));
    for (int o = 0; o < fig2.num_outputs(); ++o) {
      rebuilt.outputs.set(p, o,
                          r.outputs[static_cast<std::size_t>(o)] ==
                              simulate::Logic::k1);
      rebuilt.definite.set(p, o,
                           is_definite(r.outputs[static_cast<std::size_t>(o)]));
    }
    rebuilt.precharge_delay_s[p] = r.precharge_delay_s;
    rebuilt.plane1_eval_delay_s[p] = r.plane1_eval_delay_s;
    rebuilt.plane2_eval_delay_s[p] = r.plane2_eval_delay_s;
  }
  const double rebuild_secs = seconds_since(rebuild_start);

  // Reuse arm, sequential: one built network, reset per pattern.
  GnorPlaSimulator sim(fig2, e);
  BatchSimResult reused = sim.simulate_batch(fig2_in);
  int reps = 1;
  const auto reuse_start = std::chrono::steady_clock::now();
  double reuse_secs = 0;
  do {
    reused = sim.simulate_batch(fig2_in);
    ++reps;
    reuse_secs = seconds_since(reuse_start);
  } while (reuse_secs < 0.2);
  reuse_secs /= (reps - 1);

  // Shipped arm: reuse + word-aligned sharding across the pool.
  const int workers = ThreadPool::default_workers();
  ThreadPool pool(workers);
  BatchSimResult sharded = sim.simulate_batch(fig2_in, &pool);
  reps = 1;
  const auto sharded_start = std::chrono::steady_clock::now();
  double sharded_secs = 0;
  do {
    sharded = sim.simulate_batch(fig2_in, &pool);
    ++reps;
    sharded_secs = seconds_since(sharded_start);
  } while (sharded_secs < 0.2);
  sharded_secs /= (reps - 1);

  const bool identical =
      same_results(reused, rebuilt) && same_results(sharded, rebuilt);
  const double rebuild_pps = static_cast<double>(kFig2Patterns) / rebuild_secs;
  const double reuse_pps = static_cast<double>(kFig2Patterns) / reuse_secs;
  const double sharded_pps = static_cast<double>(kFig2Patterns) / sharded_secs;
  const double reuse_speedup = reuse_pps / rebuild_pps;
  const double shipped_speedup = sharded_pps / rebuild_pps;
  ok = ok && identical;

  TextTable reuse_table({"strategy", "patterns/s", "speedup"});
  reuse_table.add_row({"rebuild per pattern", format_double(rebuild_pps, 0),
                       "1.0x"});
  reuse_table.add_row({"reuse + reset (sequential)",
                       format_double(reuse_pps, 0),
                       format_double(reuse_speedup, 1) + "x"});
  reuse_table.add_row({"reuse + reset, sharded x" + std::to_string(workers),
                       format_double(sharded_pps, 0),
                       format_double(shipped_speedup, 1) + "x"});
  std::printf("Fig. 2 reference PLA, %llu patterns:\n%s\n",
              static_cast<unsigned long long>(kFig2Patterns),
              reuse_table.render().c_str());
  std::printf("outputs + per-pattern delays bit-identical across all "
              "strategies: %s\n",
              identical ? "yes" : "NO");
  std::printf("network-reuse speedup: %.1fx sequential, %.1fx shipped "
              "(acceptance bar: >= 5x shipped, enforced at >= 4 hardware "
              "threads; this machine: %u)\n",
              reuse_speedup, shipped_speedup, hw_threads);
  std::printf("worst-case clock period: %.2f ps "
              "(pre %.2f + plane1 %.2f + plane2 %.2f), critical pattern "
              "%llu\n\n",
              reused.worst_cycle_s() * 1e12,
              reused.worst_precharge_s() * 1e12,
              reused.worst_plane1_eval_s() * 1e12,
              reused.worst_plane2_eval_s() * 1e12,
              static_cast<unsigned long long>(reused.critical_pattern()));

  if (reuse_speedup < 1.5) {
    std::printf("FAIL: sequential reuse speedup %.1fx below the 1.5x sanity "
                "bar\n",
                reuse_speedup);
    ok = false;
  }
  const bool enforce_shipped = hw_threads >= 4 && workers >= 4;
  if (enforce_shipped && shipped_speedup < 5.0) {
    std::printf("FAIL: shipped speedup %.1fx below the 5x bar on a %u-thread "
                "machine\n",
                shipped_speedup, hw_threads);
    ok = false;
  }

  // --- 2. Sequential vs sharded sweep (synthetic 8-input PLA). -------------
  const logic::SynthSpec spec{.num_inputs = 8,
                              .num_outputs = 3,
                              .num_cubes = 24,
                              .literals_per_cube = 4};
  const Cover cover = espresso::minimize(logic::generate_cover(spec, 7)).cover;
  const core::GnorPla big = core::GnorPla::map_cover(cover);
  GnorPlaSimulator big_sim(big, e);
  constexpr std::uint64_t kShardPatterns = 8192;
  PatternBatch shard_in(8, kShardPatterns);
  for (std::uint64_t p = 0; p < kShardPatterns; ++p) {
    for (int i = 0; i < 8; ++i) {
      shard_in.set(p, i, ((p * 2654435761u) >> i) & 1);
    }
  }

  // Same repeat-until-stable discipline as the Fig. 2 arms: this
  // ratio gates CI, so a single-sample scheduling hiccup must not be
  // able to fail the job.
  BatchSimResult seq = big_sim.simulate_batch(shard_in);
  int seq_reps = 1;
  const auto seq_start = std::chrono::steady_clock::now();
  double seq_secs = 0;
  do {
    seq = big_sim.simulate_batch(shard_in);
    ++seq_reps;
    seq_secs = seconds_since(seq_start);
  } while (seq_secs < 0.2);
  seq_secs /= (seq_reps - 1);

  BatchSimResult par = big_sim.simulate_batch(shard_in, &pool);
  int par_reps = 1;
  const auto par_start = std::chrono::steady_clock::now();
  double par_secs = 0;
  do {
    par = big_sim.simulate_batch(shard_in, &pool);
    ++par_reps;
    par_secs = seconds_since(par_start);
  } while (par_secs < 0.2);
  par_secs /= (par_reps - 1);

  const bool shard_identical = same_results(par, seq);
  const double shard_speedup = seq_secs / par_secs;
  ok = ok && shard_identical;

  std::printf("sharded sweep, %d x %d x %d PLA, %llu patterns, %d worker(s):\n",
              big.num_inputs(), big.num_products(), big.num_outputs(),
              static_cast<unsigned long long>(kShardPatterns), workers);
  std::printf("  sequential %.0f patterns/s, sharded %.0f patterns/s "
              "(%.1fx)\n",
              static_cast<double>(kShardPatterns) / seq_secs,
              static_cast<double>(kShardPatterns) / par_secs, shard_speedup);
  std::printf("  sharded == sequential, words and delays: %s\n\n",
              shard_identical ? "yes" : "NO");
  if (enforce_shipped && shard_speedup < 2.0) {
    std::printf("FAIL: sharded speedup %.1fx below the 2x bar on a %u-thread "
                "machine\n",
                shard_speedup, hw_threads);
    ok = false;
  }

  // --- 3. The oracle price: simulator vs functional batch path. ------------
  const simulate::SimEvaluator oracle(big, e);
  const PatternBatch functional = big.evaluate_batch(shard_in);
  const auto oracle_start = std::chrono::steady_clock::now();
  const PatternBatch simulated = oracle.evaluate_batch(shard_in, pool);
  const double oracle_secs = seconds_since(oracle_start);
  const auto func_start = std::chrono::steady_clock::now();
  PatternBatch func_again(big.num_outputs(), kShardPatterns);
  int func_reps = 0;
  double func_secs = 0;
  do {
    func_again = big.evaluate_batch(shard_in);
    ++func_reps;
    func_secs = seconds_since(func_start);
  } while (func_secs < 0.05);
  func_secs /= func_reps;
  const bool oracle_identical = simulated == functional;
  ok = ok && oracle_identical;
  std::printf("oracle cross-check: switch-level == functional on %llu "
              "patterns: %s (simulator %.0f patterns/s vs functional %.0f "
              "patterns/s, %.0fx price)\n",
              static_cast<unsigned long long>(kShardPatterns),
              oracle_identical ? "yes" : "NO",
              static_cast<double>(kShardPatterns) / oracle_secs,
              static_cast<double>(kShardPatterns) / func_secs,
              oracle_secs / func_secs);

  std::printf("\n%s\n", ok ? "PASS: batch simulation bars met"
                           : "FAIL: batch simulation bars NOT met");
  return ok ? 0 : 1;
}
