// Ablation: which parts of the minimization stack earn their keep?
//
//   * REDUCE loop off  -> single EXPAND+IRREDUNDANT pass only;
//   * phase opt on/off -> Sasao output-phase freedom.
//
// Reported per benchmark function as minimized product counts; the
// design-choice deltas back DESIGN.md §6.
#include <cstdio>

#include "espresso/phase_opt.h"
#include "logic/pla_io.h"
#include "logic/synth_bench.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;

int main() {
  std::printf("=== Ablation: Espresso loop and phase freedom ===\n\n");
  TextTable table({"function", "raw cubes", "expand+irr only", "full loop",
                   "full + phase opt"});

  struct Entry {
    std::string name;
    logic::Cover onset;
    logic::Cover dcset;
  };
  std::vector<Entry> suite;
  for (const char* name : {"max46", "apla", "t2"}) {
    auto pla = logic::read_pla_file(std::string(AMBIT_DATA_DIR) + "/" + name +
                                    ".pla");
    suite.push_back({pla.name, pla.onset, pla.dcset});
  }
  // A cover whose first prime selection is a local minimum that only
  // the REDUCE loop escapes (see espresso_test).
  suite.push_back({"trap",
                   logic::Cover::parse(4, 1,
                                       {"1-00 1", "-100 1", "1--1 1",
                                        "011- 1", "0-11 1", "-011 1"}),
                   logic::Cover(4, 1)});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const logic::SynthSpec spec{.num_inputs = 8,
                                .num_outputs = 4,
                                .num_cubes = 40,
                                .literals_per_cube = 4,
                                .extra_output_rate = 0.2};
    suite.push_back({"rnd" + std::to_string(seed),
                     logic::generate_cover(spec, seed), logic::Cover(8, 4)});
  }

  for (const Entry& entry : suite) {
    const espresso::EspressoOptions no_reduce{.max_loops = 0,
                                              .use_reduce = false};
    const auto single = espresso::minimize(entry.onset, entry.dcset, no_reduce);
    const auto full = espresso::minimize(entry.onset, entry.dcset);
    const auto phased =
        espresso::optimize_output_phases(entry.onset, entry.dcset);
    table.add_row({entry.name, std::to_string(entry.onset.size()),
                   std::to_string(single.cover.size()),
                   std::to_string(full.cover.size()),
                   std::to_string(phased.cover.size())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("full loop <= expand+irredundant <= raw on every function;\n"
              "phase freedom helps where the OFF-set is cheaper than the\n"
              "ON-set for some output.\n");
  return 0;
}
