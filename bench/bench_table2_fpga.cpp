// Table 2 reproduction: "Frequency of standard FPGA and CNFET FPGA".
//
// Methodology mirrors the paper's emulation: one synthetic circuit
// sized to fill the standard 12x12 PLA-based FPGA to ~99%, implemented
// twice —
//   * standard: dual-rail signals (complements routed), full-size CLBs;
//   * CNFET: GNOR CLBs at half area on the same die (twice the tiles,
//     pitch / sqrt(2)), single-rail signals.
// Channel width is the minimum at which the STANDARD design routes
// (the die is provisioned for the product it ships). Absolute MHz
// depends on our calibrated RC constants; the paper's testbed was an
// unnamed commercial FPGA, so the comparison targets the SHAPE:
// occupancy ratio ~1/2 and frequency ratio ~2x.
#include <cstdio>

#include "fpga/flow.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;
using namespace ambit::fpga;

int main() {
  const auto e = tech::default_cnfet_electrical();
  std::printf("=== Table 2: standard FPGA vs ambipolar-CNFET FPGA ===\n\n");

  FpgaArch std_arch = make_standard_arch(12, 12, e);
  // Size the circuit so the standard FPGA is essentially full (the
  // paper: "the standard one is full", 99%).
  CircuitSpec spec;
  spec.num_primary_inputs = 24;
  spec.num_primary_outputs = 12;
  spec.num_levels = 9;
  int blocks = 430;
  Netlist netlist = generate_circuit(spec, 2026);
  for (; blocks >= 300; blocks -= 5) {
    spec.num_logic_blocks = blocks;
    netlist = generate_circuit(spec, 2026);
    const auto packed = pack(netlist, std_arch, PackMode::kDualRail);
    if (packed.num_logic_clusters() <= std_arch.num_tiles() - 1) {
      break;
    }
  }

  // Minimal channel width at which the standard design routes.
  FlowReport std_rep;
  for (int cw = 12; cw <= 48; cw += 2) {
    std_arch.channel_width = cw;
    std_rep = run_flow(netlist, std_arch, {.mode = PackMode::kDualRail});
    if (std_rep.routing.success) {
      break;
    }
  }

  FpgaArch cn_arch = make_cnfet_arch(std_arch, e);
  const FlowReport cn_rep = run_flow(netlist, cn_arch, {.mode = PackMode::kGnor});

  std::printf("circuit: %d logic blocks, depth %d; channel width %d "
              "(minimal for the standard design)\n",
              spec.num_logic_blocks, spec.num_levels, std_arch.channel_width);
  std::printf("standard die: %dx%d full-size CLBs; CNFET die: %dx%d "
              "half-size CLBs (same area)\n\n",
              std_arch.grid_width, std_arch.grid_height, cn_arch.grid_width,
              cn_arch.grid_height);

  TextTable table({"", "Standard FPGA", "CNFET FPGA", "paper (std)",
                   "paper (CNFET)"});
  table.add_row({"occupied area",
                 format_percent(std_rep.occupancy).substr(1),
                 format_percent(cn_rep.occupancy).substr(1), "99%", "44.9%"});
  table.add_row({"frequency",
                 format_double(std_rep.timing.fmax_hz / 1e6, 0) + " MHz",
                 format_double(cn_rep.timing.fmax_hz / 1e6, 0) + " MHz",
                 "154 MHz", "349 MHz"});
  table.add_separator();
  table.add_row({"CLBs used", std::to_string(std_rep.logic_clusters),
                 std::to_string(cn_rep.logic_clusters), "-", "-"});
  table.add_row({"signals routed", std::to_string(std_rep.nets_routed),
                 std::to_string(cn_rep.nets_routed), "-", "-"});
  table.add_row({"routed ok",
                 std_rep.routing.success ? "yes" : "NO",
                 cn_rep.routing.success ? "yes" : "NO", "-", "-"});
  table.add_row({"total wirelength [tiles]",
                 std::to_string(std_rep.routing.total_wirelength),
                 std::to_string(cn_rep.routing.total_wirelength), "-", "-"});
  table.add_row({"critical path",
                 format_double(std_rep.timing.critical_path_s * 1e9, 2) + " ns",
                 format_double(cn_rep.timing.critical_path_s * 1e9, 2) + " ns",
                 "6.49 ns", "2.87 ns"});
  table.add_row({"CLB delay",
                 format_double(std_arch.clb_delay_s * 1e9, 3) + " ns",
                 format_double(cn_arch.clb_delay_s * 1e9, 3) + " ns", "-",
                 "-"});
  std::printf("%s\n", table.render().c_str());

  const double freq_ratio = cn_rep.timing.fmax_hz / std_rep.timing.fmax_hz;
  const double sig_ratio = static_cast<double>(std_rep.nets_routed) /
                           cn_rep.nets_routed;
  std::printf("frequency ratio: %.2fx (paper: 2.27x, headline ~2x)\n",
              freq_ratio);
  std::printf("signals-to-route ratio: %.2fx (paper: \"almost the factor 2\")\n",
              sig_ratio);
  std::printf("occupancy ratio: %.2f (paper: 44.9/99 = 0.45)\n",
              cn_rep.occupancy / std_rep.occupancy);
  return 0;
}
