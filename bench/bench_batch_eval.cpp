// Scalar vs bit-parallel batch evaluation throughput.
//
// The Evaluator redesign claims exhaustive sweeps get an order of
// magnitude faster when the GNOR inner loop runs word-wide over packed
// PatternBatch lanes instead of branching per bit. This bench measures
// it instead of asserting it: for synthetic benchmark covers of
// increasing width (logic/synth_bench.h), sweep the full input space
// through both paths, check the outputs are BIT-IDENTICAL, and report
// patterns/sec. The acceptance bar is >= 10x on the 16-input cover.
//
// A second section compares the dispatched SIMD lane kernels
// (logic/lane_kernels.h — AVX2 or NEON) against the portable u64 tier
// on a classifier-scale cover, forcing each tier in turn through
// cpu::force_tier(). Bar: >= 2x on SIMD-capable hosts, bit-identical
// always. On a scalar-only host the bar self-skips with a printed
// reason; `--smoke` runs everything once with no timing bars (CI
// sanitizer legs use this — elapsed times there can round to zero,
// which is why every patterns/sec division below clamps its
// denominator).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/classical_pla.h"
#include "core/gnor_pla.h"
#include "core/wpla.h"
#include "espresso/espresso.h"
#include "logic/pattern_batch.h"
#include "logic/synth_bench.h"
#include "util/cpu_features.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;
using logic::Cover;
using logic::PatternBatch;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// patterns/sec that never divides by zero: a sub-resolution elapsed
/// time (possible under --smoke with one rep) reports through a 1ns
/// floor instead of inf/nan.
double per_second(double patterns, double secs) {
  return patterns / std::max(secs, 1e-9);
}

struct Throughput {
  double scalar_pps = 0;  ///< patterns/sec, scalar path
  double batch_pps = 0;   ///< patterns/sec, batch path
  bool identical = false;
};

/// Sweeps the full input space of `e` through both paths and compares
/// the outputs word for word.
Throughput sweep(const Evaluator& e, bool smoke) {
  const int ni = e.num_inputs();
  const std::uint64_t patterns = std::uint64_t{1} << ni;
  const PatternBatch inputs = PatternBatch::exhaustive(ni);

  // Scalar path: one evaluate() per minterm, packed into lanes so the
  // comparison against the batch result is exact.
  PatternBatch scalar_out(e.num_outputs(), patterns);
  const auto scalar_start = std::chrono::steady_clock::now();
  std::vector<bool> in(static_cast<std::size_t>(ni));
  for (std::uint64_t m = 0; m < patterns; ++m) {
    for (int i = 0; i < ni; ++i) {
      in[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    }
    const std::vector<bool> out = e.evaluate(in);
    for (int j = 0; j < e.num_outputs(); ++j) {
      scalar_out.set(m, j, out[static_cast<std::size_t>(j)]);
    }
  }
  const double scalar_secs = seconds_since(scalar_start);

  // Batch path: repeat until the measurement is long enough to trust
  // (one rep under --smoke, where nothing is enforced anyway).
  PatternBatch batch_out(e.num_outputs(), patterns);
  const double min_secs = smoke ? 0.0 : 0.05;
  int reps = 0;
  const auto batch_start = std::chrono::steady_clock::now();
  double batch_secs = 0;
  do {
    batch_out = e.evaluate_batch(inputs);
    ++reps;
    batch_secs = seconds_since(batch_start);
  } while (batch_secs < min_secs);

  Throughput t;
  t.scalar_pps = per_second(static_cast<double>(patterns), scalar_secs);
  t.batch_pps = per_second(static_cast<double>(patterns) * reps, batch_secs);
  t.identical = scalar_out == batch_out;
  return t;
}

/// A reproducible random batch: splitmix64 words, tail re-masked so the
/// padding invariant holds.
PatternBatch random_batch(int num_signals, std::uint64_t num_patterns,
                          std::uint64_t seed) {
  PatternBatch batch(num_signals, num_patterns);
  std::uint64_t state = seed;
  const auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const std::uint64_t wpl = batch.words_per_lane();
  for (int s = 0; s < num_signals; ++s) {
    std::uint64_t* lane = batch.lane(s);
    for (std::uint64_t w = 0; w < wpl; ++w) {
      lane[w] = next();
    }
    if (wpl > 0) {
      lane[wpl - 1] &= batch.tail_mask();
    }
  }
  batch.assert_tail_clean("bench random_batch");
  return batch;
}

/// Times evaluate_batch(in) under the CURRENTLY ACTIVE tier, repeating
/// until the measurement is trustworthy, and leaves the last result in
/// *out. Returns Mpatterns/sec.
double time_batch_mpps(const Evaluator& e, const PatternBatch& in,
                       PatternBatch* out, bool smoke) {
  const double min_secs = smoke ? 0.0 : 0.2;
  int reps = 0;
  const auto start = std::chrono::steady_clock::now();
  double secs = 0;
  do {
    *out = e.evaluate_batch(in);
    ++reps;
    secs = seconds_since(start);
  } while (secs < min_secs);
  return per_second(static_cast<double>(in.num_patterns()) * reps, secs) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  bool instrumented = false;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  instrumented = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  instrumented = true;
#endif
#endif

  std::printf("=== Scalar vs bit-parallel batch evaluation ===\n\n");
  TextTable table({"circuit", "i x p x o", "scalar [Mpat/s]",
                   "batch [Mpat/s]", "speedup", "bit-identical"});

  bool all_identical = true;
  double speedup_16 = 0;
  for (const int ni : {8, 12, 16}) {
    const logic::SynthSpec spec{.num_inputs = ni,
                                .num_outputs = 4,
                                .num_cubes = 3 * ni,
                                .literals_per_cube = ni / 2};
    const Cover cover =
        espresso::minimize(logic::generate_cover(spec, 42)).cover;
    const auto pla = core::GnorPla::map_cover(cover);
    const Throughput t = sweep(pla, smoke);
    all_identical = all_identical && t.identical;
    const double speedup = t.batch_pps / t.scalar_pps;
    if (ni == 16) {
      speedup_16 = speedup;
    }
    table.add_row({"GnorPla",
                   std::to_string(pla.num_inputs()) + " x " +
                       std::to_string(pla.num_products()) + " x " +
                       std::to_string(pla.num_outputs()),
                   format_double(t.scalar_pps / 1e6, 2),
                   format_double(t.batch_pps / 1e6, 1),
                   format_double(speedup, 1) + "x",
                   t.identical ? "yes" : "NO"});

    if (ni == 12) {
      // The classical baseline and the four-plane WPLA ride the same
      // interface, so the comparison is one call each.
      const auto classical = core::ClassicalPla::map_cover(cover);
      const Throughput tc = sweep(classical, smoke);
      all_identical = all_identical && tc.identical;
      table.add_row({"ClassicalPla",
                     std::to_string(classical.num_inputs()) + " x " +
                         std::to_string(classical.num_products()) + " x " +
                         std::to_string(classical.num_outputs()),
                     format_double(tc.scalar_pps / 1e6, 2),
                     format_double(tc.batch_pps / 1e6, 1),
                     format_double(tc.batch_pps / tc.scalar_pps, 1) + "x",
                     tc.identical ? "yes" : "NO"});

      const auto synth = core::synthesize_wpla(cover);
      const core::Wpla wpla(synth.stage_a, synth.stage_b, ni);
      const Throughput tw = sweep(wpla, smoke);
      all_identical = all_identical && tw.identical;
      table.add_row({"Wpla",
                     std::to_string(wpla.num_inputs()) + " x (" +
                         std::to_string(wpla.num_intermediates()) + ") x " +
                         std::to_string(wpla.num_outputs()),
                     format_double(tw.scalar_pps / 1e6, 2),
                     format_double(tw.batch_pps / 1e6, 1),
                     format_double(tw.batch_pps / tw.scalar_pps, 1) + "x",
                     tw.identical ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // ── SIMD tier vs portable u64 tier ──────────────────────────────
  //
  // Classifier-scale cover (the serve bench's synthetic "wide match
  // unit": 16 inputs, 32 outputs, a couple hundred products) over a
  // large random batch, evaluated twice in-process: once with the lane
  // kernels pinned to the portable u64 tier, once on the widest tier
  // this host detects. Same batch, same plane — the outputs must be
  // bit-identical, and on SIMD hardware the register-accumulating tiled
  // sweep must win by >= 2x.
  std::printf("=== SIMD lane kernels vs portable u64 tier ===\n\n");
  const cpu::SimdTier entry_tier = cpu::active_tier();
  const cpu::SimdTier simd_tier = cpu::detected_tier();
  const bool has_simd = simd_tier != cpu::SimdTier::kScalar;

  const logic::SynthSpec classifier_spec{.num_inputs = 16,
                                         .num_outputs = 32,
                                         .num_cubes = 224,
                                         .literals_per_cube = 6};
  const Cover classifier =
      espresso::minimize(logic::generate_cover(classifier_spec, 7)).cover;
  const std::uint64_t simd_patterns =
      smoke ? (std::uint64_t{1} << 12) : (std::uint64_t{1} << 20);
  const PatternBatch simd_inputs = random_batch(16, simd_patterns, 1234);

  const auto gnor = core::GnorPla::map_cover(classifier);
  const auto classical = core::ClassicalPla::map_cover(classifier);

  TextTable simd_table({"circuit", "u64 [Mpat/s]",
                        std::string(cpu::tier_name(simd_tier)) + " [Mpat/s]",
                        "speedup", "bit-identical"});
  bool simd_identical = true;
  double simd_speedup_gnor = 0;
  struct Arm {
    const char* name;
    const Evaluator* e;
  };
  const Arm arms[] = {{"GnorPla", &gnor}, {"ClassicalPla", &classical}};
  for (const Arm& arm : arms) {
    PatternBatch u64_out(arm.e->num_outputs(), simd_patterns);
    cpu::force_tier(cpu::SimdTier::kScalar);
    const double u64_mpps =
        time_batch_mpps(*arm.e, simd_inputs, &u64_out, smoke);

    PatternBatch simd_out(arm.e->num_outputs(), simd_patterns);
    cpu::force_tier(simd_tier);
    const double simd_mpps =
        time_batch_mpps(*arm.e, simd_inputs, &simd_out, smoke);

    const bool identical = u64_out == simd_out;
    simd_identical = simd_identical && identical;
    const double speedup = simd_mpps / std::max(u64_mpps, 1e-9);
    if (arm.e == &gnor) {
      simd_speedup_gnor = speedup;
    }
    simd_table.add_row({arm.name, format_double(u64_mpps, 1),
                        format_double(simd_mpps, 1),
                        format_double(speedup, 2) + "x",
                        identical ? "yes" : "NO"});
  }
  cpu::force_tier(entry_tier);
  std::printf("%s\n", simd_table.render().c_str());

  const bool enforce_bars = !smoke && !instrumented;
  const bool enforce_simd = enforce_bars && has_simd;
  std::printf("all sweeps bit-identical scalar vs batch: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("SIMD tier bit-identical to u64 tier: %s\n",
              simd_identical ? "yes" : "NO");
  if (enforce_bars) {
    std::printf("16-input GNOR PLA speedup: %.1fx (bar: >= 10x)\n",
                speedup_16);
  } else {
    std::printf("16-input GNOR PLA speedup: %.1fx (bar NOT enforced: %s)\n",
                speedup_16, smoke ? "smoke run" : "sanitizer build");
  }
  if (enforce_simd) {
    std::printf("%s vs u64 on 16x%dx32 cover: %.2fx (bar: >= 2x)\n",
                cpu::tier_name(simd_tier), gnor.num_products(),
                simd_speedup_gnor);
  } else {
    std::printf("%s vs u64 on 16x%dx32 cover: %.2fx (bar NOT enforced: %s)\n",
                cpu::tier_name(simd_tier), gnor.num_products(),
                simd_speedup_gnor,
                !has_simd     ? "host has no AVX2/NEON tier"
                : smoke       ? "smoke run"
                              : "sanitizer build");
  }

  bool pass = all_identical && simd_identical;
  if (enforce_bars) {
    pass = pass && speedup_16 >= 10.0;
  }
  if (enforce_simd) {
    pass = pass && simd_speedup_gnor >= 2.0;
  }
  return pass ? 0 : 1;
}
