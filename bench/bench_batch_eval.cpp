// Scalar vs bit-parallel batch evaluation throughput.
//
// The Evaluator redesign claims exhaustive sweeps get an order of
// magnitude faster when the GNOR inner loop runs word-wide over packed
// PatternBatch lanes instead of branching per bit. This bench measures
// it instead of asserting it: for synthetic benchmark covers of
// increasing width (logic/synth_bench.h), sweep the full input space
// through both paths, check the outputs are BIT-IDENTICAL, and report
// patterns/sec. The acceptance bar is >= 10x on the 16-input cover.
#include <chrono>
#include <cstdio>

#include "core/classical_pla.h"
#include "core/gnor_pla.h"
#include "core/wpla.h"
#include "espresso/espresso.h"
#include "logic/pattern_batch.h"
#include "logic/synth_bench.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;
using logic::Cover;
using logic::PatternBatch;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Throughput {
  double scalar_pps = 0;  ///< patterns/sec, scalar path
  double batch_pps = 0;   ///< patterns/sec, batch path
  bool identical = false;
};

/// Sweeps the full input space of `e` through both paths and compares
/// the outputs word for word.
Throughput sweep(const Evaluator& e) {
  const int ni = e.num_inputs();
  const std::uint64_t patterns = std::uint64_t{1} << ni;
  const PatternBatch inputs = PatternBatch::exhaustive(ni);

  // Scalar path: one evaluate() per minterm, packed into lanes so the
  // comparison against the batch result is exact.
  PatternBatch scalar_out(e.num_outputs(), patterns);
  const auto scalar_start = std::chrono::steady_clock::now();
  std::vector<bool> in(static_cast<std::size_t>(ni));
  for (std::uint64_t m = 0; m < patterns; ++m) {
    for (int i = 0; i < ni; ++i) {
      in[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    }
    const std::vector<bool> out = e.evaluate(in);
    for (int j = 0; j < e.num_outputs(); ++j) {
      scalar_out.set(m, j, out[static_cast<std::size_t>(j)]);
    }
  }
  const double scalar_secs = seconds_since(scalar_start);

  // Batch path: repeat until the measurement is long enough to trust.
  PatternBatch batch_out(e.num_outputs(), patterns);
  int reps = 0;
  const auto batch_start = std::chrono::steady_clock::now();
  double batch_secs = 0;
  do {
    batch_out = e.evaluate_batch(inputs);
    ++reps;
    batch_secs = seconds_since(batch_start);
  } while (batch_secs < 0.05);

  Throughput t;
  t.scalar_pps = static_cast<double>(patterns) / scalar_secs;
  t.batch_pps = static_cast<double>(patterns) * reps / batch_secs;
  t.identical = scalar_out == batch_out;
  return t;
}

}  // namespace

int main() {
  std::printf("=== Scalar vs bit-parallel batch evaluation ===\n\n");
  TextTable table({"circuit", "i x p x o", "scalar [Mpat/s]",
                   "batch [Mpat/s]", "speedup", "bit-identical"});

  bool all_identical = true;
  double speedup_16 = 0;
  for (const int ni : {8, 12, 16}) {
    const logic::SynthSpec spec{.num_inputs = ni,
                                .num_outputs = 4,
                                .num_cubes = 3 * ni,
                                .literals_per_cube = ni / 2};
    const Cover cover =
        espresso::minimize(logic::generate_cover(spec, 42)).cover;
    const auto pla = core::GnorPla::map_cover(cover);
    const Throughput t = sweep(pla);
    all_identical = all_identical && t.identical;
    const double speedup = t.batch_pps / t.scalar_pps;
    if (ni == 16) {
      speedup_16 = speedup;
    }
    table.add_row({"GnorPla",
                   std::to_string(pla.num_inputs()) + " x " +
                       std::to_string(pla.num_products()) + " x " +
                       std::to_string(pla.num_outputs()),
                   format_double(t.scalar_pps / 1e6, 2),
                   format_double(t.batch_pps / 1e6, 1),
                   format_double(speedup, 1) + "x",
                   t.identical ? "yes" : "NO"});

    if (ni == 12) {
      // The classical baseline and the four-plane WPLA ride the same
      // interface, so the comparison is one call each.
      const auto classical = core::ClassicalPla::map_cover(cover);
      const Throughput tc = sweep(classical);
      all_identical = all_identical && tc.identical;
      table.add_row({"ClassicalPla",
                     std::to_string(classical.num_inputs()) + " x " +
                         std::to_string(classical.num_products()) + " x " +
                         std::to_string(classical.num_outputs()),
                     format_double(tc.scalar_pps / 1e6, 2),
                     format_double(tc.batch_pps / 1e6, 1),
                     format_double(tc.batch_pps / tc.scalar_pps, 1) + "x",
                     tc.identical ? "yes" : "NO"});

      const auto synth = core::synthesize_wpla(cover);
      const core::Wpla wpla(synth.stage_a, synth.stage_b, ni);
      const Throughput tw = sweep(wpla);
      all_identical = all_identical && tw.identical;
      table.add_row({"Wpla",
                     std::to_string(wpla.num_inputs()) + " x (" +
                         std::to_string(wpla.num_intermediates()) + ") x " +
                         std::to_string(wpla.num_outputs()),
                     format_double(tw.scalar_pps / 1e6, 2),
                     format_double(tw.batch_pps / 1e6, 1),
                     format_double(tw.batch_pps / tw.scalar_pps, 1) + "x",
                     tw.identical ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("16-input GNOR PLA speedup: %.1fx (acceptance bar: >= 10x)\n",
              speedup_16);
  std::printf("all sweeps bit-identical scalar vs batch: %s\n",
              all_identical ? "yes" : "NO");
  return (all_identical && speedup_16 >= 10.0) ? 0 : 1;
}
