// Output phase optimization (paper §5, reference [7] = Sasao): "A
// logic minimizer ... showing a significant area saving after logic
// minimization."
//
// For a suite of functions, compares the minimized product count with
// all-positive phases against Sasao-style per-output phase selection.
// On the GNOR PLA the complemented phases are free (plane-2 polarity /
// buffer tap); a classical PLA would pay peripheral inverters.
#include <cstdio>

#include "espresso/phase_opt.h"
#include "logic/pla_io.h"
#include "logic/synth_bench.h"
#include "tech/area_model.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;

int main() {
  std::printf("=== Output phase optimization (Sasao [7]) on the GNOR PLA ===\n\n");
  TextTable table({"function", "i", "o", "p (positive)", "p (phase-opt)",
                   "flipped outputs", "area saving"});

  struct Entry {
    std::string name;
    logic::Cover onset;
    logic::Cover dcset;
  };
  std::vector<Entry> suite;
  // The reconstructed MCNC-dimension functions.
  for (const char* name : {"max46", "apla"}) {
    auto pla = logic::read_pla_file(std::string(AMBIT_DATA_DIR) + "/" + name +
                                    ".pla");
    suite.push_back({pla.name, pla.onset, pla.dcset});
  }
  // Dense synthetic functions, where complemented phases pay off most
  // (a nearly-full ON-set has a tiny OFF-set cover).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const logic::SynthSpec spec{.num_inputs = 7,
                                .num_outputs = 3,
                                .num_cubes = 26,
                                .literals_per_cube = 3,
                                .extra_output_rate = 0.3};
    suite.push_back({"dense" + std::to_string(seed),
                     logic::generate_cover(spec, seed),
                     logic::Cover(7, 3)});
  }

  double total_before = 0;
  double total_after = 0;
  for (const Entry& entry : suite) {
    const auto result =
        espresso::optimize_output_phases(entry.onset, entry.dcset);
    int flipped = 0;
    for (const bool f : result.complemented) {
      flipped += f;
    }
    const auto before = static_cast<double>(result.baseline_cubes);
    const auto after = static_cast<double>(result.cover.size());
    total_before += before;
    total_after += after;
    table.add_row({entry.name, std::to_string(entry.onset.num_inputs()),
                   std::to_string(entry.onset.num_outputs()),
                   format_double(before, 0), format_double(after, 0),
                   std::to_string(flipped),
                   format_percent(after / before - 1.0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("suite total: %0.f -> %0.f products (%s); every flipped output\n"
              "is free on the GNOR PLA because plane 2 provides the product\n"
              "terms in both polarities.\n",
              total_before, total_after,
              format_percent(total_after / total_before - 1.0).c_str());
  return 0;
}
