// The abstract's headline claims, measured end-to-end:
//   1. "area saving up to ~21%"  (max46 vs Flash; 68% vs EEPROM)
//   2. "decrease of the delay in PLA-based FPGA by 50%"  (~2x Fmax)
//   3. signals to route "reduced by almost the factor 2"
//   4. (conclusions) GNOR PLA delay advantage at equal function
#include <cstdio>

#include "espresso/espresso.h"
#include "fpga/flow.h"
#include "logic/pla_io.h"
#include "tech/area_model.h"
#include "tech/delay_model.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;

int main() {
  std::printf("=== Headline claims: paper vs AMBIT ===\n\n");
  TextTable table({"claim", "paper", "AMBIT measured"});

  // --- Claim 1: area saving (Table 1 pipeline on max46). ---
  {
    const auto pla =
        logic::read_pla_file(std::string(AMBIT_DATA_DIR) + "/max46.pla");
    const auto dim =
        tech::dimensions_of(espresso::minimize(pla.onset, pla.dcset).cover);
    const double vs_flash =
        1.0 - tech::cnfet_area_ratio(tech::flash_technology(), dim);
    const double vs_eeprom =
        1.0 - tech::cnfet_area_ratio(tech::eeprom_technology(), dim);
    table.add_row({"area saving vs Flash (max46)", "~21%",
                   format_percent(vs_flash).substr(1)});
    table.add_row({"area saving vs EEPROM (max46)", "up to 68%",
                   format_percent(vs_eeprom).substr(1)});
  }

  // --- Claims 2 & 3: FPGA emulation (Table 2 pipeline, compact). ---
  {
    const auto e = tech::default_cnfet_electrical();
    fpga::FpgaArch std_arch = fpga::make_standard_arch(12, 12, e);
    std_arch.channel_width = 20;
    fpga::CircuitSpec spec;
    spec.num_primary_inputs = 24;
    spec.num_primary_outputs = 12;
    spec.num_logic_blocks = 430;
    const fpga::Netlist netlist = fpga::generate_circuit(spec, 2026);
    const auto std_rep =
        fpga::run_flow(netlist, std_arch, {.mode = fpga::PackMode::kDualRail});
    const auto cn_arch = fpga::make_cnfet_arch(std_arch, e);
    const auto cn_rep =
        fpga::run_flow(netlist, cn_arch, {.mode = fpga::PackMode::kGnor});
    const double ratio = cn_rep.timing.fmax_hz / std_rep.timing.fmax_hz;
    table.add_row({"FPGA frequency gain", "2.27x (154->349 MHz)",
                   format_double(ratio, 2) + "x (" +
                       format_double(std_rep.timing.fmax_hz / 1e6, 0) + "->" +
                       format_double(cn_rep.timing.fmax_hz / 1e6, 0) +
                       " MHz)"});
    table.add_row(
        {"FPGA delay reduction", "~50%",
         format_percent(1.0 - std_rep.timing.fmax_hz / cn_rep.timing.fmax_hz)
             .substr(1)});
    table.add_row({"signals to route",
                   "reduced by almost 2x",
                   format_double(static_cast<double>(std_rep.nets_routed) /
                                     cn_rep.nets_routed,
                                 2) +
                       "x fewer"});
    table.add_row({"occupied area", "99% -> 44.9%",
                   format_percent(std_rep.occupancy).substr(1) + " -> " +
                       format_percent(cn_rep.occupancy).substr(1)});
  }

  // --- Claim 4: GNOR PLA cycle faster at equal function. ---
  {
    const auto e = tech::default_cnfet_electrical();
    const tech::PlaDimensions dim{.inputs = 9, .outputs = 1, .products = 46};
    const double gnor = tech::gnor_pla_cycle_s(dim, e);
    const double classical = tech::classical_pla_cycle_s(dim, e);
    table.add_row({"PLA cycle, GNOR vs classical (max46)",
                   "(implied by half the input columns)",
                   format_double(gnor * 1e9, 2) + " ns vs " +
                       format_double(classical * 1e9, 2) + " ns"});
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
