// Whirlpool PLA (paper §5, reference [1]): "The cascade of 4 NOR plane
// instead of 2 makes the implementation of WPLAs ... possible. WPLAs
// outperform other PLA types and a more compact implementation can be
// obtained by using ... Doppio-Espresso."
//
// Synthesizes flat two-plane GNOR PLAs and four-plane WPLAs for a
// suite of structured control-style functions and compares cell
// counts; every WPLA is verified exhaustively against the original.
#include <cstdio>

#include "core/wpla.h"
#include "logic/truth_table.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ambit;
using logic::Cover;
using logic::Cube;
using logic::Literal;

namespace {

/// Control-style function generator: `shared` products over the low
/// half of the inputs feed all outputs; each output adds `private_p`
/// products over the high half.
Cover structured(int ni, int no, int shared, int private_p,
                 std::uint64_t seed) {
  Rng rng(seed);
  Cover f(ni, no);
  const int half = ni / 2;
  for (int s = 0; s < shared; ++s) {
    Cube c(ni, no);
    for (int i = 0; i < half; ++i) {
      if (rng.next_bool(0.7)) {
        c.set_input(i, rng.next_bool() ? Literal::kOne : Literal::kZero);
      }
    }
    if (c.input_literal_count() == 0) {
      c.set_input(static_cast<int>(s % half), Literal::kOne);
    }
    for (int j = 0; j < no; ++j) {
      c.set_output(j, true);
    }
    f.add(c);
  }
  // Output 0 is exactly the shared SOP (the OR-divisor); the others
  // add private products on the high half of the inputs.
  for (int j = 1; j < no; ++j) {
    for (int s = 0; s < private_p; ++s) {
      Cube c(ni, no);
      for (int i = half; i < ni; ++i) {
        if (rng.next_bool(0.6)) {
          c.set_input(i, rng.next_bool() ? Literal::kOne : Literal::kZero);
        }
      }
      if (c.input_literal_count() == 0) {
        c.set_input(half + (s % (ni - half)), Literal::kZero);
      }
      c.set_output(j, true);
      f.add(c);
    }
  }
  f.sort_and_dedup();
  return f;
}

bool verify(const Cover& f, const core::WplaSynthesis& synth) {
  // Exhaustive check through the bit-parallel Evaluator batch path.
  const core::Wpla wpla(synth.stage_a, synth.stage_b, f.num_inputs());
  return equivalent(wpla, logic::TruthTable::from_cover(f));
}

}  // namespace

int main() {
  std::printf("=== Whirlpool PLA vs flat PLA (Doppio-Espresso, ref [1]) ===\n\n");
  TextTable table({"function", "i", "o", "intermediates", "flat cells",
                   "WPLA cells", "saving", "equivalent"});
  double total_flat = 0;
  double total_wpla = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Cover f = structured(10, 4, 5, 2, seed);
    const auto synth = core::synthesize_wpla(f);
    const bool ok = verify(f, synth);
    total_flat += static_cast<double>(synth.flat_cells);
    total_wpla += static_cast<double>(synth.wpla_cells);
    table.add_row(
        {"ctrl" + std::to_string(seed), std::to_string(f.num_inputs()),
         std::to_string(f.num_outputs()),
         std::to_string(synth.intermediate_outputs.size()),
         std::to_string(synth.flat_cells), std::to_string(synth.wpla_cells),
         format_percent(static_cast<double>(synth.wpla_cells) /
                            static_cast<double>(synth.flat_cells) -
                        1.0),
         ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("suite total: %.0f -> %.0f cells (%s) with all four-plane\n"
              "cascades verified exhaustively. The GNOR array's per-plane\n"
              "polarity freedom is what lets all four planes be plain NOR\n"
              "planes (the paper's enabling argument for WPLA).\n",
              total_flat, total_wpla,
              format_percent(total_wpla / total_flat - 1.0).c_str());
  return 0;
}
