#!/usr/bin/env bash
# Replays every checked-in fuzz corpus — seeds plus recorded
# regressions — through the fuzz/ harness binaries of a build tree,
# optionally following up with a wall-clock random-mutation run per
# harness. CI runs this inside the ASan+UBSan build; locally a longer
# budget digs deeper:
#
#   scripts/fuzz_smoke.sh build-asan        # replay only
#   scripts/fuzz_smoke.sh build-asan 60     # replay + 60 s fuzzing each
#
# Harness binaries are the fuzz_*.cpp names; a missing binary fails the
# run (it means AMBIT_BUILD_FUZZERS was off, not that there is nothing
# to test).
set -euo pipefail

build_dir=${1:?usage: fuzz_smoke.sh <build-dir> [fuzz-seconds]}
fuzz_seconds=${2:-0}
repo_root=$(cd "$(dirname "$0")/.." && pwd)

# Oversized-but-in-spec bulk headers may ask for payload buffers the
# harness process cannot serve; the code under test treats bad_alloc as
# a clean failure, so ASan must return null rather than hard-error.
export ASAN_OPTIONS="allocator_may_return_null=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}"

status=0
for source in "$repo_root"/fuzz/fuzz_*.cpp; do
  name=$(basename "$source" .cpp)
  bin="$build_dir/$name"
  if [[ ! -x "$bin" ]]; then
    echo "fuzz_smoke: missing harness binary $bin" \
         "(configure with -DAMBIT_BUILD_FUZZERS=ON)" >&2
    status=1
    continue
  fi
  args=("$repo_root/fuzz/corpus/$name"
        "$repo_root/tests/data/fuzz_regressions/$name")
  if [[ "$fuzz_seconds" -gt 0 ]]; then
    args=(--fuzz "$fuzz_seconds" "${args[@]}")
  fi
  echo "fuzz_smoke: running $name"
  "$bin" "${args[@]}" || status=1
done
exit $status
