#!/usr/bin/env python3
"""End-to-end scrape smoke over a live ambit_serve process.

CI runs this against the plain, TSan, and ASan+UBSan builds: it boots
`ambit_serve --tcp 127.0.0.1:0 --metrics 127.0.0.1:0` with a preloaded
array, hammers the protocol port from several client threads, and —
while the storm is running — scrapes `/metrics` and `/healthz` off the
HTTP side port exactly the way a Prometheus scraper would. The run
fails on malformed exposition output (a text-format 0.0.4 lint lives
below, a deliberately independent reimplementation of the C++ lint in
tests/prometheus_lint.h), on any non-OK protocol response, on wrong
HTTP status codes (404/405/400 probes included), or on counters that
move backwards between scrapes.

Usage: serve_scrape_smoke.py <path-to-ambit_serve>
"""

import re
import socket
import subprocess
import sys
import tempfile
import threading
import time

NUM_INPUTS = 4
CLIENTS = 4
REQUESTS_PER_CLIENT = 200

# f-type PLA: 2 outputs over 4 inputs, enough products that EVAL does
# real lane work.
PLA_TEXT = """.i 4
.o 2
.p 4
1--- 10
-1-- 01
--11 11
0-0- 01
.e
"""


def fail(message):
    print(f"serve_scrape_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def read_bound_ports(proc, deadline):
    """Parses the two 'bound port' announcements off the server's
    stderr; everything else is echoed through for the CI log."""
    tcp_port = None
    metrics_port = None
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        sys.stderr.write(line)
        match = re.search(r"ambit_serve: tcp bound port (\d+)", line)
        if match:
            tcp_port = int(match.group(1))
        match = re.search(r"ambit_serve: metrics bound port (\d+)", line)
        if match:
            metrics_port = int(match.group(1))
        if tcp_port is not None and metrics_port is not None:
            return tcp_port, metrics_port
    fail("server did not announce both bound ports "
         f"(tcp={tcp_port}, metrics={metrics_port})")


def recv_line(sock):
    out = b""
    while not out.endswith(b"\n"):
        chunk = sock.recv(1)
        if not chunk:
            fail(f"protocol connection closed mid-line (got {out!r})")
        out += chunk
    return out.decode()


def protocol_connect(port):
    return socket.create_connection(("127.0.0.1", port), timeout=10)


def storm_client(port, seed, errors):
    try:
        with protocol_connect(port) as sock:
            for i in range(REQUESTS_PER_CLIENT):
                pattern = format((seed * 7 + i) % (1 << NUM_INPUTS), "x")
                sock.sendall(f"EVAL smoke {pattern}\n".encode())
                line = recv_line(sock)
                if not line.startswith("OK "):
                    errors.append(f"EVAL answered {line!r}")
                    return
            sock.sendall(b"QUIT\n")
            if recv_line(sock) != "OK bye\n":
                errors.append("QUIT not answered with OK bye")
    except Exception as exc:  # propagated to the main thread's check
        errors.append(f"storm client: {exc!r}")


def http_transact(port, raw_request):
    """Raw-socket HTTP/1.0 round trip (the side listener closes the
    connection after one response, so read-to-EOF is the framing)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(raw_request)
        out = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return out.decode(errors="replace")
            out += chunk


def http_get(port, target):
    response = http_transact(
        port, f"GET {target} HTTP/1.0\r\n\r\n".encode())
    head, sep, body = response.partition("\r\n\r\n")
    if not sep:
        fail(f"GET {target}: no header/body separator in {response!r}")
    status = head.split("\r\n")[0]
    match = re.search(r"Content-Length: (\d+)", head)
    if not match or int(match.group(1)) != len(body.encode()):
        fail(f"GET {target}: Content-Length disagrees with body")
    return status, head, body


SAMPLE_RE = re.compile(
    r'^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{((?:[A-Za-z_][A-Za-z0-9_]*='
    r'"(?:[^"\\]|\\["\\n])*",?)*)\})? ([0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?)$')


def lint_prometheus(page):
    """Text-format 0.0.4 lint; returns {(name, labels): value}."""
    samples = {}
    types = {}
    helped = set()
    last_family = ""
    for line in page.splitlines():
        if line.startswith("# HELP "):
            name = line.split(" ")[2]
            if name in helped:
                fail(f"family emitted twice: {name}")
            helped.add(name)
            if name <= last_family and last_family:
                fail(f"families not sorted: {last_family} then {name}")
            last_family = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if parts[2] not in helped:
                fail(f"# TYPE before # HELP: {line}")
            if parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"bad TYPE: {line}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#") or not line:
            fail(f"unexpected line in exposition: {line!r}")
        match = SAMPLE_RE.match(line)
        if not match:
            fail(f"sample fails the grammar: {line!r}")
        name, labels, value = match.group(1), match.group(2) or "", match.group(3)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
        if family not in types:
            fail(f"sample without TYPE: {line!r}")
        if (family != name) != (types[family] == "histogram"):
            fail(f"child/type mismatch: {line!r}")
        samples[(name, labels)] = float(value)
    # Histogram coherence: per label-group, le increases, counts are
    # cumulative, +Inf equals _count.
    groups = {}
    for (name, labels), value in samples.items():
        for family, ftype in types.items():
            if ftype != "histogram" or name != family + "_bucket":
                continue
            le = re.search(r'le="([^"]*)"', labels).group(1)
            rest = re.sub(r',?le="[^"]*"', "", labels).strip(",")
            groups.setdefault((family, rest), []).append((le, value))
    for (family, rest), buckets in groups.items():
        finite = sorted(
            (float(le), v) for le, v in buckets if le != "+Inf")
        if [v for _, v in finite] != sorted(v for _, v in finite):
            fail(f"bucket counts not cumulative: {family}{{{rest}}}")
        inf = [v for le, v in buckets if le == "+Inf"]
        count_labels = rest
        count = samples.get((family + "_count", count_labels))
        if len(inf) != 1 or count is None or inf[0] != count:
            fail(f"+Inf bucket / _count mismatch: {family}{{{rest}}}")
        if (family + "_sum", count_labels) not in samples:
            fail(f"histogram without _sum: {family}{{{rest}}}")
    return samples


def scrape_metrics(port):
    status, head, body = http_get(port, "/metrics")
    if "200 OK" not in status:
        fail(f"/metrics answered {status}")
    if "text/plain; version=0.0.4" not in head:
        fail(f"/metrics content-type wrong: {head!r}")
    return lint_prometheus(body)


def metrics_over_verb(port):
    with protocol_connect(port) as sock:
        sock.sendall(b"METRICS\n")
        header = recv_line(sock)
        match = re.match(r"OK METRICS (\d+)\n", header)
        if not match:
            fail(f"METRICS verb answered {header!r}")
        want = int(match.group(1))
        page = b""
        while len(page) < want:
            chunk = sock.recv(want - len(page))
            if not chunk:
                fail("METRICS page truncated")
            page += chunk
        sock.sendall(b"QUIT\n")
        if recv_line(sock) != "OK bye\n":
            fail("QUIT after METRICS not answered")
    return lint_prometheus(page.decode())


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    serve_bin = sys.argv[1]
    with tempfile.NamedTemporaryFile("w", suffix=".pla") as pla:
        pla.write(PLA_TEXT)
        pla.flush()
        proc = subprocess.Popen(
            [serve_bin, "--tcp", "127.0.0.1:0", "--metrics", "127.0.0.1:0",
             "--preload", f"smoke={pla.name}", "--max-connections",
             str(CLIENTS), "--slow-request-us", "1000000"],
            stderr=subprocess.PIPE, text=True)
        try:
            tcp_port, metrics_port = read_bound_ports(
                proc, time.monotonic() + 30)

            # Baseline scrape before any traffic, then the storm with
            # mid-storm scrapes from a scraper "process" of its own.
            before = scrape_metrics(metrics_port)
            errors = []
            threads = [
                threading.Thread(
                    target=storm_client, args=(tcp_port, c, errors))
                for c in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            mid = scrape_metrics(metrics_port)
            status, _, body = http_get(metrics_port, "/healthz")
            if "200 OK" not in status or body != "ok\n":
                fail(f"/healthz answered {status} {body!r}")
            status, _, _ = http_get(metrics_port, "/nope")
            if "404" not in status:
                fail(f"/nope answered {status}")
            response = http_transact(
                metrics_port, b"DELETE /metrics HTTP/1.0\r\n\r\n")
            if "405" not in response.split("\r\n")[0]:
                fail(f"DELETE answered {response!r}")
            response = http_transact(metrics_port, b"not http at all\r\n\r\n")
            if "400" not in response.split("\r\n")[0]:
                fail(f"garbage request answered {response!r}")
            for thread in threads:
                thread.join()
            if errors:
                fail("; ".join(errors))

            # Post-storm: counters settled — they must have moved
            # forward, never backward, and the verb transport must
            # serve the identical (linted) page.
            after = scrape_metrics(metrics_port)
            eval_key = ('ambit_serve_requests_total', 'verb="EVAL"')
            for key in (eval_key,
                        ('ambit_serve_connections_accepted_total', '')):
                if not before.get(key, 0) <= mid[key] <= after[key]:
                    fail(f"counter moved backwards: {key}")
            expected_evals = CLIENTS * REQUESTS_PER_CLIENT
            if after[eval_key] not in (0, expected_evals):
                fail(f"EVAL count {after[eval_key]} != {expected_evals}")
            if after[eval_key] == 0:
                # -DAMBIT_METRICS=OFF build: the page is still valid,
                # it just records nothing; the smoke still proved the
                # scrape path.
                print("serve_scrape_smoke: metrics compiled out, "
                      "grammar checks only")
            verb_page = metrics_over_verb(tcp_port)
            if verb_page[eval_key] < after[eval_key]:
                fail("METRICS verb page behind the side-port page")

            with protocol_connect(tcp_port) as sock:
                sock.sendall(b"SHUTDOWN\n")
                if recv_line(sock) != "OK shutting down\n":
                    fail("SHUTDOWN not acknowledged")
            if proc.wait(timeout=30) != 0:
                fail(f"server exited {proc.returncode}")
        finally:
            if proc.poll() is None:
                proc.kill()
            for line in proc.stderr:
                sys.stderr.write(line)
    print(f"serve_scrape_smoke: OK ({CLIENTS} clients x "
          f"{REQUESTS_PER_CLIENT} requests, scrapes linted mid-storm)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
