#!/usr/bin/env python3
"""Repo-specific concurrency lint: lock discipline the compilers can't see.

Clang Thread Safety Analysis (the CI thread-safety job) checks that
annotated locks are HELD where required; this lint checks the rules
that make the annotation layer airtight in the first place, across
every first-party C++ file:

  R1 naked-std-sync      std::mutex / std::lock_guard / std::unique_lock /
                         std::scoped_lock / std::condition_variable (and
                         the recursive/timed/shared variants) appear only
                         in src/util/mutex.h + src/util/mutex.cpp — all
                         other code must use the annotated, ranked
                         ambit::Mutex family, or TSA and the lock-order
                         detector are blind to it.
  R2 thread-detach       no .detach() anywhere: a detached thread
                         outlives every shutdown path and invalidates
                         the serve join-all contract.
  R3 lock-in-parallel-for  no lock acquisition (MutexLock, lock_guard,
                         unique_lock, scoped_lock, .lock()) inside the
                         argument list of a parallel_for call site:
                         chunk bodies run on pool workers, and a lock
                         taken per chunk serializes the sweep at best
                         and deadlocks against a lock-holding caller at
                         worst. Record through atomics and reduce after
                         the join instead.
  R4 unranked-mutex      every `Mutex name...;` declaration names a
                         LockRank:: in its initializer — a mutex outside
                         the documented hierarchy (docs/CONCURRENCY.md)
                         can't be order-checked.

Findings are normalized to "path: [rule]" and gated against
scripts/check_concurrency_baseline.txt exactly like
scripts/run_clang_tidy.py gates clang-tidy findings: the baseline is
kept EMPTY, so any finding fails the run; --update-baseline rewrites it
for reviewed, deliberate adoptions.

Usage:
    scripts/check_concurrency.py [--build-dir build] [--update-baseline]

--build-dir is optional: the file set is discovered by walking the
first-party directories, and a build tree's compile_commands.json only
ADDS translation units (e.g. generated sources) that the walk missed.
"""

import argparse
import json
import os
import re
import sys

DEFAULT_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose C++ files we own (relative to the repo root) —
# same set as scripts/run_clang_tidy.py.
FIRST_PARTY_DIRS = ("src", "fuzz", "tests", "tools", "bench")
CXX_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")

# The ONLY files allowed to touch the raw std synchronization types:
# the annotated wrapper layer itself.
RAW_SYNC_ALLOWED = ("src/util/mutex.h", "src/util/mutex.cpp")

RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?"
    r"(?:mutex|lock_guard|unique_lock|scoped_lock|condition_variable(?:_any)?)\b"
)
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
PARALLEL_FOR_RE = re.compile(r"\bparallel_for\s*\(")
LOCK_IN_CHUNK_RE = re.compile(
    r"\bMutexLock\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b"
    r"|\.\s*lock\s*\("
)
# `Mutex` followed by an identifier is a declaration ("MutexLock x" does
# not match: no whitespace after "Mutex"). References, pointers, and
# parameters ("const Mutex&", "Mutex*") don't match either.
MUTEX_DECL_RE = re.compile(r"\bMutex\s+\w+")


def blank_comments_and_strings(text):
    """Replaces comment/string/char-literal bodies with spaces.

    Keeps every newline (line numbers survive) and the overall length,
    so regex matches land on real code only.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append(text[i] if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append(text[i] if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def argument_span(code, open_paren):
    """[start, end) of the argument list starting at code[open_paren]."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return open_paren + 1, i
    return open_paren + 1, len(code)  # unbalanced: scan to EOF


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


def check_file(rel_path, text):
    """Yields (rule, line, message) findings for one file."""
    code = blank_comments_and_strings(text)
    posix = rel_path.replace(os.sep, "/")

    if posix not in RAW_SYNC_ALLOWED:
        for match in RAW_SYNC_RE.finditer(code):
            yield ("naked-std-sync", line_of(code, match.start()),
                   f"{match.group(0)} outside src/util/mutex.*: use the "
                   "annotated ambit::Mutex/MutexLock/CondVar layer "
                   "(util/mutex.h)")

    for match in DETACH_RE.finditer(code):
        yield ("thread-detach", line_of(code, match.start()),
               ".detach() breaks the join-all shutdown contract; keep the "
               "handle and join it")

    for match in PARALLEL_FOR_RE.finditer(code):
        begin, end = argument_span(code, match.end() - 1)
        args = code[begin:end]
        lock = LOCK_IN_CHUNK_RE.search(args)
        if lock:
            yield ("lock-in-parallel-for", line_of(code, begin + lock.start()),
                   "lock acquisition inside a parallel_for argument (chunk "
                   "bodies run on pool workers): record through atomics and "
                   "reduce after the join")

    for match in MUTEX_DECL_RE.finditer(code):
        stmt_end = code.find(";", match.start())
        stmt = code[match.start():stmt_end if stmt_end != -1 else len(code)]
        if "LockRank::" not in stmt:
            yield ("unranked-mutex", line_of(code, match.start()),
                   f"`{match.group(0)}` declares no LockRank — every mutex "
                   "joins the documented hierarchy (docs/CONCURRENCY.md)")


def discover_files(repo, build_dir):
    files = set()
    for top in FIRST_PARTY_DIRS:
        top_abs = os.path.join(repo, top)
        for root, _dirs, names in os.walk(top_abs):
            for name in names:
                if name.endswith(CXX_EXTENSIONS):
                    files.add(os.path.join(root, name))
    if build_dir:
        db_path = os.path.join(build_dir, "compile_commands.json")
        if not os.path.exists(db_path):
            sys.exit(f"error: {db_path} not found (configure the build first)")
        with open(db_path, encoding="utf-8") as db:
            for entry in json.load(db):
                path = os.path.normpath(
                    os.path.join(entry.get("directory", ""), entry["file"]))
                rel = os.path.relpath(path, repo)
                if rel.startswith(".."):
                    continue
                if rel.split(os.sep, 1)[0] in FIRST_PARTY_DIRS:
                    files.add(path)
    return sorted(files)


def load_baseline(path):
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as baseline:
        return {
            line.strip()
            for line in baseline
            if line.strip() and not line.startswith("#")
        }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir",
                        help="build tree whose compile_commands.json extends "
                             "the scanned file set")
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="repository root to scan (default: the repo "
                             "this script lives in; overridden by the "
                             "self-test's fixture trees)")
    parser.add_argument("--baseline",
                        help="accepted-findings file (default: "
                             "<root>/scripts/check_concurrency_baseline.txt)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    args = parser.parse_args()
    repo = os.path.abspath(args.root)
    if args.baseline is None:
        args.baseline = os.path.join(repo, "scripts",
                                     "check_concurrency_baseline.txt")

    files = discover_files(repo, args.build_dir)
    if not files:
        sys.exit("error: no first-party C++ files found")

    findings = set()
    details = []
    for path in files:
        rel = os.path.relpath(path, repo).replace(os.sep, "/")
        with open(path, encoding="utf-8") as source:
            text = source.read()
        for rule, line, message in check_file(os.path.relpath(path, repo),
                                              text):
            findings.add(f"{rel}: [{rule}]")
            details.append(f"{rel}:{line}: [{rule}] {message}")

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as baseline:
            baseline.write(
                "# Accepted concurrency-lint findings (one '<path>: [<rule>]'"
                " per line).\n# Kept empty on purpose: new findings must be "
                "fixed, not listed.\n"
            )
            for finding in sorted(findings):
                baseline.write(finding + "\n")
        print(f"baseline rewritten with {len(findings)} findings")
        return 0

    baseline = load_baseline(args.baseline)
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for finding in fixed:
        print(f"note: baseline entry no longer fires: {finding}")
    if new:
        print(f"\n{len(new)} new concurrency-lint finding(s):",
              file=sys.stderr)
        for detail in sorted(details):
            key = f"{detail.split(':', 1)[0]}: [{detail.split('[', 1)[1].split(']', 1)[0]}]"
            if key in new:
                print(f"  {detail}", file=sys.stderr)
        print("\nFix them (preferred) or, if reviewed and accepted, rerun "
              "with --update-baseline.", file=sys.stderr)
        return 1
    print(f"concurrency lint clean over {len(files)} files "
          f"({len(findings)} baselined, 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
