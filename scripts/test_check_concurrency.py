#!/usr/bin/env python3
"""Self-test for scripts/check_concurrency.py (run by ctest).

The concurrency lint is a CI gate; this fixture test keeps the gate
honest. It builds one source tree that obeys every rule and one tree
violating each rule exactly once, runs the real linter as a subprocess
against both (via --root), and verifies that each rule fires where it
must, stays silent where it must — including the comment/string and
wrapper-layer exemptions — and that the baseline flow works.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

LINTER = Path(__file__).resolve().parent / "check_concurrency.py"

CLEAN_TREE = {
    # The wrapper layer itself: the ONE place raw std sync may appear.
    "src/util/mutex.h": """
#include <mutex>
#include <condition_variable>
namespace ambit {
class Mutex {
  std::mutex raw_;
};
class MutexLock {
  std::unique_lock<std::mutex> lock_;
};
}  // namespace ambit
""",
    "src/util/mutex.cpp": """
#include "util/mutex.h"
// std::mutex may appear here too.
""",
    "src/core/thing.cpp": """
// A comment saying std::mutex or .detach() must not fire the lint.
// Nor "parallel_for(MutexLock" inside this comment.
namespace ambit {
const char* label = "std::mutex inside a string literal";
mutable Mutex mutex_{LockRank::kTest};
void sweep(Pool& pool) {
  pool.parallel_for(0, 64, 1, [&](int lo, int hi) {
    record[lo] = hi;  // lock-free chunk body
  });
  const MutexLock lock(mutex_);  // after the call: legal
}
}  // namespace ambit
""",
}

VIOLATIONS = {
    # R1: raw std::mutex outside the wrapper layer.
    "src/serve/bad_sync.cpp": ("naked-std-sync", """
#include <mutex>
std::mutex g_bad;
void touch() { const std::lock_guard<std::mutex> lock(g_bad); }
"""),
    # R2: detached thread.
    "src/serve/bad_detach.cpp": ("thread-detach", """
#include <thread>
void fire() { std::thread([] {}).detach(); }
"""),
    # R3: lock acquisition inside a parallel_for chunk body.
    "src/core/bad_chunk.cpp": ("lock-in-parallel-for", """
void sweep(Pool& pool, Mutex& mutex, int* out) {
  pool.parallel_for(0, 64, 1, [&](int lo, int hi) {
    const MutexLock lock(mutex);
    out[lo] = hi;
  });
}
"""),
    # R4: a Mutex declared without a LockRank.
    "src/core/bad_rank.cpp": ("unranked-mutex", """
#include "util/mutex.h"
namespace ambit {
Mutex g_unranked;
}
"""),
}


def write_tree(root, files):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


def run_linter(root, *flags):
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root), *flags],
        capture_output=True,
        text=True,
        check=False,
    )


def expect(condition, label, result):
    if not condition:
        sys.exit(f"FAIL {label}\nexit={result.returncode}\n"
                 f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    print(f"ok: {label}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        good = Path(tmp) / "good"
        write_tree(good, CLEAN_TREE)
        result = run_linter(good)
        expect(result.returncode == 0 and "0 new" in result.stdout,
               "clean tree passes (wrapper-layer and comment/string "
               "exemptions hold)", result)

        bad = Path(tmp) / "bad"
        write_tree(bad, CLEAN_TREE)
        write_tree(bad, {rel: text for rel, (_, text) in VIOLATIONS.items()})
        result = run_linter(bad)
        expect(result.returncode == 1, "violating tree fails", result)
        for rel, (rule, _) in VIOLATIONS.items():
            expect(f"{rel}: [{rule}]" in result.stderr
                   or f"[{rule}]" in result.stderr and rel in result.stderr,
                   f"rule {rule} fires on {rel}", result)
        clean_names = "\n".join(CLEAN_TREE)
        expect("src/core/thing.cpp" not in result.stderr,
               f"no false positives among clean files ({clean_names!r})",
               result)

        # Baseline flow: adopting the findings makes the same tree pass,
        # and fixing one is reported as a stale entry, not a failure.
        baseline = bad / "scripts" / "check_concurrency_baseline.txt"
        baseline.parent.mkdir(parents=True)
        result = run_linter(bad, "--update-baseline")
        expect(result.returncode == 0 and "baseline rewritten" in result.stdout,
               "--update-baseline adopts findings", result)
        result = run_linter(bad)
        expect(result.returncode == 0, "baselined tree passes", result)
        (bad / "src/serve/bad_detach.cpp").write_text(
            "void fire() {}\n", encoding="utf-8")
        result = run_linter(bad)
        expect(result.returncode == 0 and "no longer fires" in result.stdout,
               "fixed finding reported as stale baseline entry", result)
    print("check_concurrency self-test: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
