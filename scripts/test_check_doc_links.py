#!/usr/bin/env python3
"""Self-test for scripts/check_doc_links.py (run by ctest).

The link checker is itself a CI gate; this fixture test keeps the gate
honest: it builds one documentation tree where every link resolves and
one with each class of breakage, runs the real checker as a subprocess
against both (via --root), and verifies the verdicts, the exit codes
and the --quiet contract.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

CHECKER = Path(__file__).resolve().parent / "check_doc_links.py"


def run_checker(root, *flags):
    return subprocess.run(
        [sys.executable, str(CHECKER), "--root", str(root), *flags],
        capture_output=True,
        text=True,
        check=False,
    )


def write_tree(root, readme, architecture):
    (root / "docs").mkdir()
    (root / "README.md").write_text(readme, encoding="utf-8")
    (root / "docs" / "ARCHITECTURE.md").write_text(architecture,
                                                   encoding="utf-8")


def expect(condition, label, result):
    if not condition:
        sys.exit(f"FAIL {label}\nexit={result.returncode}\n"
                 f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    print(f"ok: {label}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        good = Path(tmp) / "good"
        good.mkdir()
        write_tree(
            good,
            readme=("# AMBIT\n\nSee [the docs](docs/ARCHITECTURE.md) and "
                    "[one section](docs/ARCHITECTURE.md#correctness-tooling)"
                    " or [below](#ambit). External: "
                    "[x](https://example.com/nope).\n"),
            architecture=("# Architecture\n\n## Correctness tooling\n\n"
                          "Back to [README](../README.md).\n"),
        )
        result = run_checker(good)
        expect(result.returncode == 0 and "OK (2 files)" in result.stdout,
               "clean tree passes and reports", result)
        result = run_checker(good, "--quiet")
        expect(result.returncode == 0 and result.stdout == "",
               "--quiet clean tree prints nothing", result)

        bad = Path(tmp) / "bad"
        bad.mkdir()
        write_tree(
            bad,
            readme=("# AMBIT\n\n[gone](docs/NO_SUCH.md) and "
                    "[bad anchor](docs/ARCHITECTURE.md#missing-heading)\n"),
            architecture="# Architecture\n",
        )
        result = run_checker(bad)
        expect(result.returncode == 1, "broken tree fails", result)
        expect("dead link target 'docs/NO_SUCH.md'" in result.stdout,
               "dead file link reported", result)
        expect("missing heading anchor '#missing-heading'" in result.stdout,
               "dead anchor reported", result)
        result = run_checker(bad, "--quiet")
        expect(result.returncode == 1 and "dead link" in result.stdout,
               "--quiet still prints failures", result)

        empty = Path(tmp) / "empty"
        empty.mkdir()
        result = run_checker(empty)
        expect(result.returncode == 1 and "expected file missing"
               in result.stdout, "missing README fails", result)
    print("check_doc_links self-test: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
