#!/usr/bin/env python3
"""Run clang-tidy over the repository and gate on NEW findings.

Drives clang-tidy (configured by the checked-in .clang-tidy) across
every first-party translation unit in a build tree's
compile_commands.json, normalizes the findings, and compares them
against scripts/clang_tidy_baseline.txt:

  * a finding not in the baseline fails the run (exit 1) — this is the
    CI gate, and since the baseline is kept EMPTY it means "zero
    findings";
  * a baseline entry that no longer fires is reported so the baseline
    can shrink (never a failure);
  * --update-baseline rewrites the baseline from the current findings
    (for reviewed, deliberate adoptions only).

Usage:
    scripts/run_clang_tidy.py --build-dir build [--jobs N]
    scripts/run_clang_tidy.py --build-dir build --update-baseline

Requires clang-tidy (any version with the configured checks); the
build tree must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS
(the top-level CMakeLists.txt always sets it).
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO, "scripts", "clang_tidy_baseline.txt")

# Directories whose translation units we own (relative to the repo
# root). Everything else in compile_commands.json — fetched googletest,
# generated sources — is not ours to lint.
FIRST_PARTY_DIRS = ("src", "fuzz", "tests", "tools", "bench")

# "path:line:col: warning: message [check-name]"
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[^\]]+)\]\s*$"
)


def first_party_sources(build_dir):
    """The repo-owned .cpp files listed in compile_commands.json."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"error: {db_path} not found (configure the build first)")
    with open(db_path, encoding="utf-8") as db:
        entries = json.load(db)
    sources = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        rel = os.path.relpath(path, REPO)
        if rel.startswith("..") or not rel.split(os.sep, 1)[0] in FIRST_PARTY_DIRS:
            continue
        sources.add(path)
    return sorted(sources)


def run_one(clang_tidy, build_dir, source):
    """Runs clang-tidy on one file; returns normalized finding keys."""
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", source],
        capture_output=True,
        text=True,
        check=False,
    )
    findings = set()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if not match:
            continue
        path = os.path.normpath(match.group("path"))
        if os.path.isabs(path):
            rel = os.path.relpath(path, REPO)
            if rel.startswith(".."):
                continue  # finding in a system or fetched header
            path = rel
        findings.add(f"{path.replace(os.sep, '/')}: [{match.group('check')}]")
    # clang-tidy exits non-zero on hard errors (missing headers, bad
    # flags) without necessarily printing a [check] line — surface that
    # rather than silently passing the file.
    broken = proc.returncode != 0 and not findings
    return findings, proc.stderr if broken else ""


def load_baseline(path):
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as baseline:
        return {
            line.strip()
            for line in baseline
            if line.strip() and not line.startswith("#")
        }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True,
                        help="build tree with compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy executable (default: clang-tidy)")
    parser.add_argument("--jobs", type=int,
                        default=max(os.cpu_count() or 1, 1),
                        help="parallel clang-tidy processes")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="accepted-findings file (default: %(default)s)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"error: {args.clang_tidy} not found on PATH")

    sources = first_party_sources(args.build_dir)
    if not sources:
        sys.exit("error: no first-party sources in compile_commands.json")
    print(f"clang-tidy over {len(sources)} translation units "
          f"({args.jobs} jobs)")

    findings = set()
    errors = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {
            pool.submit(run_one, args.clang_tidy, args.build_dir, src): src
            for src in sources
        }
        for future in concurrent.futures.as_completed(futures):
            file_findings, error = future.result()
            findings |= file_findings
            if error:
                errors.append((futures[future], error))

    if errors:
        for source, error in errors:
            rel = os.path.relpath(source, REPO)
            print(f"error: clang-tidy failed on {rel}:\n{error}",
                  file=sys.stderr)
        return 1

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as baseline:
            baseline.write(
                "# Accepted clang-tidy findings (one '<path>: [<check>]' "
                "per line).\n# Kept empty on purpose: new findings must be "
                "fixed, not listed.\n"
            )
            for finding in sorted(findings):
                baseline.write(finding + "\n")
        print(f"baseline rewritten with {len(findings)} findings")
        return 0

    baseline = load_baseline(args.baseline)
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for finding in fixed:
        print(f"note: baseline entry no longer fires: {finding}")
    if new:
        print(f"\n{len(new)} new clang-tidy finding(s):", file=sys.stderr)
        for finding in new:
            print(f"  {finding}", file=sys.stderr)
        print("\nFix them (preferred) or, if reviewed and accepted, rerun "
              "with --update-baseline.", file=sys.stderr)
        return 1
    print(f"clang-tidy clean ({len(findings)} baselined, 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
