#!/usr/bin/env python3
"""Link-checks the repo's markdown documentation.

Verifies every intra-repo link in README.md and docs/*.md:

  * relative link targets (files or directories) must exist;
  * fragment links into markdown files (foo.md#section, or #section
    within the same file) must match a real heading's GitHub-style
    anchor.

External links (http/https/mailto) are NOT fetched — this guard is
about the repo's own structure, and CI must not flake on the network.

Exits non-zero listing every dead link. Run from anywhere:

    python3 scripts/check_doc_links.py            # check this repo
    python3 scripts/check_doc_links.py --quiet    # failures only
    python3 scripts/check_doc_links.py --root X   # check another tree

--root exists for the checker's own test fixture
(scripts/test_check_doc_links.py, wired into ctest), which must point
it at synthetic good/bad trees.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading '!' is unnecessary (image
# targets must exist too). Nested ()/[] in link text are out of scope.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
    punctuation (except hyphens/underscores) dropped, backticks
    ignored."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(markdown_path: Path) -> set:
    text = markdown_path.read_text(encoding="utf-8")
    return {github_anchor(h) for h in HEADING.findall(text)}


def check_file(markdown_path: Path, root: Path) -> list:
    failures = []
    text = markdown_path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (markdown_path.parent / path_part).resolve()
            if not resolved.exists():
                failures.append(f"{markdown_path.relative_to(root)}: "
                                f"dead link target '{target}'")
                continue
        else:
            resolved = markdown_path
        if fragment:
            if resolved.suffix != ".md" or not resolved.is_file():
                # Fragments into non-markdown targets (e.g. source
                # files) are line anchors GitHub resolves itself.
                continue
            if fragment not in anchors_of(resolved):
                failures.append(f"{markdown_path.relative_to(root)}: "
                                f"'{target}' points at a missing heading "
                                f"anchor '#{fragment}'")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Link-check the repo's markdown documentation.")
    parser.add_argument("--quiet", action="store_true",
                        help="print nothing when every link resolves")
    parser.add_argument("--root", type=Path, default=REPO,
                        help="tree to check (default: this repository)")
    args = parser.parse_args()
    root = args.root.resolve()

    candidates = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    missing = [p for p in candidates if not p.is_file()]
    if missing:
        for path in missing:
            print(f"check_doc_links: expected file missing: {path}")
        return 1
    failures = []
    for path in candidates:
        failures.extend(check_file(path, root))
    for failure in failures:
        print(f"check_doc_links: {failure}")
    checked = len(candidates)
    if failures:
        print(f"check_doc_links: {len(failures)} dead link(s) across "
              f"{checked} file(s)")
        return 1
    if not args.quiet:
        print(f"check_doc_links: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
