// Tests for the generic switch-level solver: pass gates, dynamic charge
// retention, rail fights, charge sharing, maybe-conduction, delays.
#include <gtest/gtest.h>

#include "simulate/switch_network.h"
#include "util/error.h"

namespace ambit::simulate {
namespace {

using core::PolarityState;
using tech::CnfetElectrical;
using tech::default_cnfet_electrical;

class SwitchNetworkTest : public testing::Test {
 protected:
  SwitchNetworkTest() : net_(default_cnfet_electrical()) {
    vdd_ = net_.add_supply("vdd", Logic::k1);
    gnd_ = net_.add_supply("gnd", Logic::k0);
  }
  SwitchNetwork net_;
  NodeId vdd_ = 0;
  NodeId gnd_ = 0;
};

TEST_F(SwitchNetworkTest, NPassGateFollowsGate) {
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kNType, g, vdd_, out);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::k1);
  net_.set_value(g, Logic::k0);
  net_.settle();
  // Switch open: node floats but retains its charge.
  EXPECT_EQ(net_.value(out), Logic::k1);
}

TEST_F(SwitchNetworkTest, PPassGateConductsOnLowGate) {
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kPType, g, gnd_, out);
  net_.set_value(g, Logic::k0);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::k0);
}

TEST_F(SwitchNetworkTest, OffDeviceNeverConducts) {
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kOff, g, vdd_, out);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::kZ);
}

TEST_F(SwitchNetworkTest, RailFightResolvesToX) {
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kNType, g, vdd_, out);
  net_.add_device(PolarityState::kNType, g, gnd_, out);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::kX);
}

TEST_F(SwitchNetworkTest, DynamicNodeRetainsChargeAcrossPhases) {
  // Classic dynamic logic: precharge, isolate, conditional discharge.
  const NodeId clk = net_.add_input("clk");
  const NodeId in = net_.add_input("in");
  const NodeId row = net_.add_node("row", 5e-15);
  const NodeId foot = net_.add_node("foot", 1e-16);
  net_.add_device(PolarityState::kPType, clk, vdd_, row);   // TPC
  net_.add_device(PolarityState::kNType, clk, foot, gnd_);  // TEV
  net_.add_device(PolarityState::kNType, in, row, foot);    // cell

  // Precharge with in=0.
  net_.set_value(clk, Logic::k0);
  net_.set_value(in, Logic::k0);
  net_.settle();
  EXPECT_EQ(net_.value(row), Logic::k1);

  // Evaluate with in=0: no pull-down path; charge retained.
  net_.set_value(clk, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(row), Logic::k1);

  // Precharge again, then evaluate with in=1: row discharges.
  net_.set_value(clk, Logic::k0);
  net_.settle();
  net_.set_value(in, Logic::k1);
  net_.set_value(clk, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(row), Logic::k0);
}

TEST_F(SwitchNetworkTest, ChargeSharingMixedValuesGiveX) {
  const NodeId g = net_.add_input("g");
  const NodeId a = net_.add_node("a", 1e-15);
  const NodeId b = net_.add_node("b", 1e-15);
  net_.add_device(PolarityState::kNType, g, a, b);
  net_.set_value(a, Logic::k1);
  net_.set_value(b, Logic::k0);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(a), Logic::kX);
  EXPECT_EQ(net_.value(b), Logic::kX);
}

TEST_F(SwitchNetworkTest, ChargeSharingSameValueIsStable) {
  const NodeId g = net_.add_input("g");
  const NodeId a = net_.add_node("a", 1e-15);
  const NodeId b = net_.add_node("b", 2e-15);
  net_.add_device(PolarityState::kNType, g, a, b);
  net_.set_value(a, Logic::k1);
  net_.set_value(b, Logic::k1);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(a), Logic::k1);
  EXPECT_EQ(net_.value(b), Logic::k1);
}

TEST_F(SwitchNetworkTest, UnknownGatePropagatesPessimistically) {
  const NodeId g = net_.add_input("g");  // left at Z
  const NodeId out = net_.add_node("out", 1e-15);
  net_.set_value(out, Logic::k0);
  net_.add_device(PolarityState::kNType, g, vdd_, out);
  net_.settle();
  // Maybe-conducting bridge between VDD(1) and out(0): X.
  EXPECT_EQ(net_.value(out), Logic::kX);
}

TEST_F(SwitchNetworkTest, SeriesChainConducts) {
  const NodeId g = net_.add_input("g");
  const NodeId mid = net_.add_node("mid", 1e-16);
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kNType, g, vdd_, mid);
  net_.add_device(PolarityState::kNType, g, mid, out);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::k1);
  EXPECT_EQ(net_.value(mid), Logic::k1);
}

TEST_F(SwitchNetworkTest, GateFedByInternalNodeSettles) {
  // Two-stage structure: stage1 drives the gate of stage2.
  const NodeId g1 = net_.add_input("g1");
  const NodeId n1 = net_.add_node("n1", 1e-15);
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kNType, g1, vdd_, n1);
  net_.add_device(PolarityState::kNType, n1, gnd_, out);
  net_.set_value(g1, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(n1), Logic::k1);
  EXPECT_EQ(net_.value(out), Logic::k0);
}

TEST_F(SwitchNetworkTest, DelayGrowsWithPathResistanceAndCap) {
  const NodeId g = net_.add_input("g");
  const NodeId a = net_.add_node("a", 1e-15);
  const NodeId b1 = net_.add_node("b1", 1e-15);
  const NodeId b2 = net_.add_node("b2", 1e-15);
  net_.add_device(PolarityState::kNType, g, vdd_, a);
  net_.add_device(PolarityState::kNType, g, a, b1);
  net_.add_device(PolarityState::kNType, g, b1, b2);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_GT(net_.drive_delay_s(a), 0);
  EXPECT_GT(net_.drive_delay_s(b1), net_.drive_delay_s(a));
  EXPECT_GT(net_.drive_delay_s(b2), net_.drive_delay_s(b1));
}

TEST_F(SwitchNetworkTest, WidthFactorReducesDelay) {
  const NodeId g = net_.add_input("g");
  const NodeId slim = net_.add_node("slim", 1e-15);
  const NodeId wide = net_.add_node("wide", 1e-15);
  net_.add_device(PolarityState::kNType, g, vdd_, slim, 1.0);
  net_.add_device(PolarityState::kNType, g, vdd_, wide, 4.0);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_NEAR(net_.drive_delay_s(slim) / net_.drive_delay_s(wide), 4.0, 1e-9);
}

TEST_F(SwitchNetworkTest, FloatingNodeHasNoDriveDelay) {
  const NodeId n = net_.add_node("n", 1e-15);
  net_.settle();
  EXPECT_DOUBLE_EQ(net_.drive_delay_s(n), 0.0);
  EXPECT_EQ(net_.value(n), Logic::kZ);
}

TEST_F(SwitchNetworkTest, DevicePolarityOverride) {
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kOff, g, vdd_, out);
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::kZ);
  net_.set_device_polarity(0, PolarityState::kNType);  // stuck-on fault
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::k1);
}

TEST_F(SwitchNetworkTest, MultiHopMaybeChainStillPropagates) {
  // A pessimistic Z-adoption chain advances one hop per sweep while the
  // conduction picture stays IDENTICAL — the convergence fast path must
  // not cut it short. Devices are ordered adversarially (far hop
  // first) so one maybe-pass cannot finish the chain in a single
  // sweep.
  const NodeId g = net_.add_input("g");  // left at Z: both devices maybe
  const NodeId n1 = net_.add_node("n1", 1e-15);
  const NodeId n2 = net_.add_node("n2", 1e-15);
  net_.add_device(PolarityState::kNType, g, n1, n2);    // far hop first
  net_.add_device(PolarityState::kNType, g, vdd_, n1);  // source hop last
  net_.settle();
  EXPECT_EQ(net_.value(n1), Logic::k1);
  EXPECT_EQ(net_.value(n2), Logic::k1);
}

TEST_F(SwitchNetworkTest, ResetClearsRetainedDynamicCharge) {
  // The latent state-reuse hazard the batch path must be guarded
  // against: an isolated node RETAINS charge from an earlier phase, so
  // re-using a settled network for a fresh pattern without reset()
  // reports stale state a freshly built network would not have.
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kNType, g, vdd_, out);
  net_.set_value(g, Logic::k1);
  net_.settle();
  ASSERT_EQ(net_.value(out), Logic::k1);
  net_.set_value(g, Logic::k0);
  net_.settle();
  // Hazard demonstrated: the isolated node still reads the old charge.
  ASSERT_EQ(net_.value(out), Logic::k1);

  // reset() drops the charge: the same stimulus now settles exactly as
  // a fresh build would (floating, never driven -> Z).
  net_.reset();
  net_.set_value(g, Logic::k0);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::kZ);
  EXPECT_DOUBLE_EQ(net_.drive_delay_s(out), 0.0);
}

TEST_F(SwitchNetworkTest, SecondSettleAfterResetEqualsFreshBuild) {
  // Drive a dynamic row through a charge-heavy history, reset, and
  // replay a stimulus on it: every node value AND delay must equal a
  // freshly built twin settling the same stimulus — this is what makes
  // reuse-and-reset a sound replacement for rebuild-per-pattern.
  const auto build = [](SwitchNetwork& net, NodeId vdd, NodeId gnd,
                        NodeId& clk, NodeId& in, NodeId& row, NodeId& foot) {
    clk = net.add_input("clk");
    in = net.add_input("in");
    row = net.add_node("row", 5e-15);
    foot = net.add_node("foot", 1e-16);
    net.add_device(PolarityState::kPType, clk, vdd, row);   // TPC
    net.add_device(PolarityState::kNType, clk, foot, gnd);  // TEV
    net.add_device(PolarityState::kNType, in, row, foot);   // cell
  };
  NodeId clk = 0, in = 0, row = 0, foot = 0;
  build(net_, vdd_, gnd_, clk, in, row, foot);

  // History: precharge, evaluate-discharge, then a half-cycle that
  // leaves the row floating low — retained charge everywhere.
  net_.set_value(clk, Logic::k0);
  net_.set_value(in, Logic::k1);
  net_.settle();
  net_.set_value(clk, Logic::k1);
  net_.settle();
  ASSERT_EQ(net_.value(row), Logic::k0);

  // Replay stimulus S after reset() on the used network...
  net_.reset();
  net_.set_value(clk, Logic::k0);
  net_.set_value(in, Logic::k0);
  net_.settle();
  net_.set_value(clk, Logic::k1);
  net_.settle();

  // ...and the same S on a freshly built twin.
  SwitchNetwork fresh(default_cnfet_electrical());
  const NodeId fvdd = fresh.add_supply("vdd", Logic::k1);
  const NodeId fgnd = fresh.add_supply("gnd", Logic::k0);
  NodeId fclk = 0, fin = 0, frow = 0, ffoot = 0;
  build(fresh, fvdd, fgnd, fclk, fin, frow, ffoot);
  fresh.set_value(fclk, Logic::k0);
  fresh.set_value(fin, Logic::k0);
  fresh.settle();
  fresh.set_value(fclk, Logic::k1);
  fresh.settle();

  for (const auto& [used, twin] :
       {std::pair{row, frow}, {foot, ffoot}, {clk, fclk}, {in, fin}}) {
    EXPECT_EQ(net_.value(used), fresh.value(twin))
        << net_.node_name(used);
    EXPECT_EQ(net_.drive_delay_s(used), fresh.drive_delay_s(twin))
        << net_.node_name(used);
  }
}

TEST_F(SwitchNetworkTest, ResetKeepsTopologyAndPolarityOverrides) {
  // reset() clears settle STATE only: devices, widths and fault
  // overrides survive (the batch path copies an overridden network).
  const NodeId g = net_.add_input("g");
  const NodeId out = net_.add_node("out", 1e-15);
  net_.add_device(PolarityState::kOff, g, vdd_, out);
  net_.set_device_polarity(0, PolarityState::kNType);
  net_.reset();
  net_.set_value(g, Logic::k1);
  net_.settle();
  EXPECT_EQ(net_.value(out), Logic::k1);  // the override still conducts
}

TEST_F(SwitchNetworkTest, ValidationErrors) {
  EXPECT_THROW(net_.add_supply("bad", Logic::kX), ambit::Error);
  EXPECT_THROW(net_.add_node("neg", -1.0), ambit::Error);
  EXPECT_THROW(net_.add_device(PolarityState::kNType, 0, 0, 99), ambit::Error);
  EXPECT_THROW(net_.value(99), ambit::Error);
  EXPECT_THROW(net_.set_device_polarity(0, PolarityState::kNType),
               ambit::Error);
}

}  // namespace
}  // namespace ambit::simulate
