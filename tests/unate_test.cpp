// Tests for the unate-recursive kernels: tautology, complement, covers,
// offset. Includes randomized property sweeps cross-checked against
// exhaustive truth tables.
#include <gtest/gtest.h>

#include "espresso/unate.h"
#include "logic/truth_table.h"
#include "util/error.h"
#include "util/rng.h"

namespace ambit::espresso {
namespace {

using logic::Cover;
using logic::Cube;
using logic::Literal;
using logic::TruthTable;

Cover random_cover(ambit::Rng& rng, int ni, int max_cubes) {
  Cover f(ni, 1);
  const int cubes = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(max_cubes)));
  for (int k = 0; k < cubes; ++k) {
    Cube c(ni, 1);
    c.set_output(0, true);
    for (int i = 0; i < ni; ++i) {
      const auto r = rng.next_below(4);
      // Bias toward don't-care so cubes are reasonably large.
      c.set_input(i, r == 0   ? Literal::kZero
                     : r == 1 ? Literal::kOne
                              : Literal::kDontCare);
    }
    f.add(c);
  }
  return f;
}

TEST(TautologyTest, EmptyCoverIsNotTautology) {
  EXPECT_FALSE(tautology(Cover(3, 1)));
}

TEST(TautologyTest, UniverseIsTautology) {
  EXPECT_TRUE(tautology(Cover::universe(3, 1)));
}

TEST(TautologyTest, XPlusNotXIsTautology) {
  EXPECT_TRUE(tautology(Cover::parse(1, 1, {"1 1", "0 1"})));
}

TEST(TautologyTest, SingleLiteralIsNot) {
  EXPECT_FALSE(tautology(Cover::parse(1, 1, {"1 1"})));
}

TEST(TautologyTest, ShannonExpansionOfMajority) {
  // maj(a,b,c) is not a tautology; maj + its complement is.
  const Cover maj = Cover::parse(3, 1, {"11- 1", "1-1 1", "-11 1"});
  EXPECT_FALSE(tautology(maj));
  Cover both = maj;
  both.append(Cover::parse(3, 1, {"00- 1", "0-0 1", "-00 1"}));
  EXPECT_TRUE(tautology(both));
}

TEST(TautologyTest, UnateReductionPath) {
  // Positive-unate cover that is not a tautology: must exercise the
  // unate-reduction branch, not just base cases.
  const Cover f = Cover::parse(3, 1, {"1-- 1", "11- 1", "1-1 1"});
  EXPECT_FALSE(tautology(f));
}

TEST(TautologyTest, MatchesTruthTableOnRandomCovers) {
  ambit::Rng rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    const int ni = 3 + static_cast<int>(rng.next_below(6));
    const Cover f = random_cover(rng, ni, 10);
    const TruthTable t = TruthTable::from_cover(f);
    const bool expected = t.count_ones(0) == t.num_minterms();
    EXPECT_EQ(tautology(f), expected) << "cover:\n" << f.to_string();
  }
}

TEST(ComplementTest, ComplementOfEmptyIsUniverse) {
  const Cover r = complement(Cover(3, 1));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].input_literal_count(), 0);
}

TEST(ComplementTest, ComplementOfUniverseIsEmpty) {
  EXPECT_TRUE(complement(Cover::universe(3, 1)).empty());
}

TEST(ComplementTest, DeMorganOnSingleCube) {
  // (x0 x̄2)' = x̄0 + x2.
  const Cover f = Cover::parse(3, 1, {"1-0 1"});
  const Cover r = complement(f);
  const TruthTable tf = TruthTable::from_cover(f);
  const TruthTable tr = TruthTable::from_cover(r);
  EXPECT_EQ(tr, tf.complemented());
  EXPECT_EQ(r.size(), 2u);
}

TEST(ComplementTest, ComplementCubeOfUniverseIsEmpty) {
  EXPECT_TRUE(complement_cube(Cube::universe(4, 1)).empty());
}

TEST(ComplementTest, MatchesTruthTableOnRandomCovers) {
  ambit::Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const int ni = 3 + static_cast<int>(rng.next_below(6));
    const Cover f = random_cover(rng, ni, 10);
    const Cover r = complement(f);
    const TruthTable expected = TruthTable::from_cover(f).complemented();
    EXPECT_TRUE(logic::equivalent(r, expected))
        << "cover:\n" << f.to_string() << "complement:\n" << r.to_string();
  }
}

TEST(ComplementTest, DoubleComplementIsIdentity) {
  ambit::Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    const Cover f = random_cover(rng, 6, 8);
    EXPECT_TRUE(logic::equivalent(complement(complement(f)), f));
  }
}

TEST(ComplementTest, ComplementDisjointFromOriginal) {
  ambit::Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    const Cover f = random_cover(rng, 5, 8);
    const Cover r = complement(f);
    const TruthTable tf = TruthTable::from_cover(f);
    const TruthTable tr = TruthTable::from_cover(r);
    for (std::uint64_t m = 0; m < tf.num_minterms(); ++m) {
      EXPECT_NE(tf.get(m, 0), tr.get(m, 0));
    }
  }
}

TEST(CoversTest, CubeCoveredByItsCover) {
  const Cover f = Cover::parse(3, 1, {"1-- 1", "-1- 1"});
  EXPECT_TRUE(covers(f, nullptr, Cube::parse("11-", "1")));
  EXPECT_TRUE(covers(f, nullptr, Cube::parse("1--", "1")));
}

TEST(CoversTest, SplitCoverageNeedsBothCubes) {
  // "1-" and "0-" jointly cover the universe cube.
  const Cover f = Cover::parse(2, 1, {"1- 1", "0- 1"});
  EXPECT_TRUE(covers(f, nullptr, Cube::universe(2, 1)));
}

TEST(CoversTest, UncoveredCubeDetected) {
  const Cover f = Cover::parse(3, 1, {"1-- 1"});
  EXPECT_FALSE(covers(f, nullptr, Cube::parse("0--", "1")));
  EXPECT_FALSE(covers(f, nullptr, Cube::universe(3, 1)));
}

TEST(CoversTest, DontCaresParticipate) {
  const Cover f = Cover::parse(2, 1, {"1- 1"});
  const Cover d = Cover::parse(2, 1, {"0- 1"});
  EXPECT_FALSE(covers(f, nullptr, Cube::universe(2, 1)));
  EXPECT_TRUE(covers(f, &d, Cube::universe(2, 1)));
}

TEST(CoversTest, MultiOutputChecksEveryAssertedOutput) {
  const Cover g = Cover::parse(2, 2, {"1- 10", "-1 01"});
  // Covered for output 0 only.
  EXPECT_TRUE(covers(g, nullptr, Cube::parse("1-", "10")));
  EXPECT_FALSE(covers(g, nullptr, Cube::parse("1-", "11")));
  EXPECT_FALSE(covers(g, nullptr, Cube::parse("10", "01")));
}

TEST(OffsetTest, OffsetOfExorIsXnor) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const Cover off = offset(f, Cover(2, 1));
  const TruthTable t = TruthTable::from_cover(off);
  EXPECT_TRUE(t.get(0b00, 0));
  EXPECT_TRUE(t.get(0b11, 0));
  EXPECT_FALSE(t.get(0b01, 0));
  EXPECT_FALSE(t.get(0b10, 0));
}

TEST(OffsetTest, DontCaresExcludedFromOffset) {
  const Cover f = Cover::parse(2, 1, {"11 1"});
  const Cover d = Cover::parse(2, 1, {"10 1"});
  const Cover off = offset(f, d);
  const TruthTable t = TruthTable::from_cover(off);
  EXPECT_FALSE(t.get(0b11, 0));  // onset
  EXPECT_FALSE(t.get(0b01, 0));  // don't-care: not in offset
  EXPECT_TRUE(t.get(0b00, 0));
  EXPECT_TRUE(t.get(0b10, 0));
}

TEST(OffsetTest, PerOutputTagging) {
  const Cover f = Cover::parse(1, 2, {"1 10", "0 01"});
  const Cover off = offset(f, Cover(1, 2));
  // Offset of out0 is x̄; of out1 is x. Each tagged with its own output.
  const TruthTable t = TruthTable::from_cover(off);
  EXPECT_TRUE(t.get(0, 0));
  EXPECT_FALSE(t.get(1, 0));
  EXPECT_TRUE(t.get(1, 1));
  EXPECT_FALSE(t.get(0, 1));
}

TEST(OffsetTest, OnsetPlusOffsetIsTautologyPerOutput) {
  ambit::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const Cover f = random_cover(rng, 5, 8);
    const Cover off = offset(f, Cover(5, 1));
    Cover both = f;
    both.append(off);
    EXPECT_TRUE(tautology(both.restricted_to_output(0)));
  }
}

TEST(KernelGuards, SingleOutputEnforced) {
  const Cover multi = Cover::parse(2, 2, {"1- 11"});
  EXPECT_THROW(tautology(multi), ambit::Error);
  EXPECT_THROW(complement(multi), ambit::Error);
}

}  // namespace
}  // namespace ambit::espresso
