// Tests for TruthTable and the exhaustive equivalence helpers.
#include <gtest/gtest.h>

#include "logic/truth_table.h"
#include "util/error.h"
#include "util/rng.h"

namespace ambit::logic {
namespace {

TEST(TruthTableTest, FromCoverExor) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const TruthTable t = TruthTable::from_cover(f);
  EXPECT_FALSE(t.get(0b00, 0));
  EXPECT_TRUE(t.get(0b01, 0));
  EXPECT_TRUE(t.get(0b10, 0));
  EXPECT_FALSE(t.get(0b11, 0));
  EXPECT_EQ(t.count_ones(0), 2u);
}

TEST(TruthTableTest, FromCoverMultiOutput) {
  const Cover f = Cover::parse(2, 2, {"1- 10", "-1 01"});
  const TruthTable t = TruthTable::from_cover(f);
  EXPECT_TRUE(t.get(0b01, 0));   // x0=1 -> out0
  EXPECT_FALSE(t.get(0b01, 1));  // x1=0 -> no out1
  EXPECT_TRUE(t.get(0b10, 1));
  EXPECT_FALSE(t.get(0b10, 0));
  EXPECT_TRUE(t.get(0b11, 0));
  EXPECT_TRUE(t.get(0b11, 1));
}

TEST(TruthTableTest, EmptyCoverAllZero) {
  const Cover f(3, 1);
  const TruthTable t = TruthTable::from_cover(f);
  EXPECT_EQ(t.count_ones(0), 0u);
}

TEST(TruthTableTest, UniverseCoverAllOnes) {
  const Cover f = Cover::universe(3, 2);
  const TruthTable t = TruthTable::from_cover(f);
  EXPECT_EQ(t.count_ones(0), 8u);
  EXPECT_EQ(t.count_ones(1), 8u);
}

TEST(TruthTableTest, ComplementFlipsEveryBit) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const TruthTable t = TruthTable::from_cover(f);
  const TruthTable n = t.complemented();
  for (std::uint64_t m = 0; m < 4; ++m) {
    EXPECT_NE(t.get(m, 0), n.get(m, 0));
  }
  EXPECT_EQ(n.count_ones(0), 2u);
}

TEST(TruthTableTest, ComplementIsInvolution) {
  const Cover f = Cover::parse(3, 2, {"1-- 10", "-11 01", "000 11"});
  const TruthTable t = TruthTable::from_cover(f);
  EXPECT_EQ(t.complemented().complemented(), t);
}

TEST(TruthTableTest, SetGetRoundTrip) {
  TruthTable t(4, 2);
  t.set(13, 1, true);
  EXPECT_TRUE(t.get(13, 1));
  EXPECT_FALSE(t.get(13, 0));
  t.set(13, 1, false);
  EXPECT_FALSE(t.get(13, 1));
}

TEST(TruthTableTest, SixPlusInputsUseMultipleWords) {
  TruthTable t(8, 1);  // 256 minterms = 4 words
  t.set(255, 0, true);
  t.set(64, 0, true);
  EXPECT_TRUE(t.get(255, 0));
  EXPECT_TRUE(t.get(64, 0));
  EXPECT_EQ(t.count_ones(0), 2u);
}

TEST(TruthTableTest, RejectsOversizedInputCount) {
  EXPECT_THROW(TruthTable(40, 1), Error);
}

TEST(EquivalenceTest, EquivalentCoversDifferentSyntax) {
  // x + x̄y == x + y.
  const Cover a = Cover::parse(2, 1, {"1- 1", "01 1"});
  const Cover b = Cover::parse(2, 1, {"1- 1", "-1 1"});
  EXPECT_TRUE(equivalent(a, b));
}

TEST(EquivalenceTest, InequivalentCoversDetected) {
  const Cover a = Cover::parse(2, 1, {"1- 1"});
  const Cover b = Cover::parse(2, 1, {"-1 1"});
  EXPECT_FALSE(equivalent(a, b));
}

TEST(EquivalenceTest, ShapeMismatchNotEquivalent) {
  const Cover a = Cover::parse(2, 1, {"1- 1"});
  const Cover b = Cover::parse(3, 1, {"1-- 1"});
  EXPECT_FALSE(equivalent(a, b));
}

TEST(EquivalenceTest, ContainmentIsReflexiveAndDirectional) {
  const Cover small = Cover::parse(2, 1, {"11 1"});
  const Cover big = Cover::parse(2, 1, {"1- 1"});
  EXPECT_TRUE(contained_in(small, big));
  EXPECT_FALSE(contained_in(big, small));
  EXPECT_TRUE(contained_in(big, big));
}

TEST(EquivalenceTest, RandomCoverEquivalentToItsMintermExpansion) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int ni = 4 + static_cast<int>(rng.next_below(4));
    Cover f(ni, 1);
    const int cubes = 1 + static_cast<int>(rng.next_below(6));
    for (int k = 0; k < cubes; ++k) {
      Cube c(ni, 1);
      c.set_output(0, true);
      for (int i = 0; i < ni; ++i) {
        const auto r = rng.next_below(3);
        c.set_input(i, r == 0   ? Literal::kZero
                       : r == 1 ? Literal::kOne
                                : Literal::kDontCare);
      }
      f.add(c);
    }
    // Expand to minterms and compare.
    const TruthTable t = TruthTable::from_cover(f);
    Cover minterms(ni, 1);
    for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
      if (!t.get(m, 0)) continue;
      Cube c(ni, 1);
      c.set_output(0, true);
      for (int i = 0; i < ni; ++i) {
        c.set_input(i, ((m >> i) & 1) ? Literal::kOne : Literal::kZero);
      }
      minterms.add(c);
    }
    EXPECT_TRUE(equivalent(f, minterms));
  }
}

}  // namespace
}  // namespace ambit::logic
