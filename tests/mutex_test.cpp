// Tests for the annotated, ranked locking layer (util/mutex.h): the
// RAII scope, early unlock / re-lock, CondVar signaling, the rank
// bookkeeping that the dynamic lock-order detector builds on, and the
// rank names used in its reports. The VIOLATION side — out-of-rank,
// recursive, and same-rank acquisitions aborting — lives in
// tests/invariant_test.cpp with the other death tests.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/mutex.h"

namespace ambit {
namespace {

bool invariants_on() {
#ifdef AMBIT_ENABLE_INVARIANTS
  return true;
#else
  return false;
#endif
}

TEST(MutexTest, MutexProvidesExclusion) {
  Mutex mutex(LockRank::kTest);
  std::uint64_t counter = 0;  // guarded by `mutex` (local, so no TSA)
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 4000u);
}

TEST(MutexTest, AscendingRankChainIsLegal) {
  // The whole production hierarchy, acquired in order on one thread:
  // this is the shape the detector exists to protect, so it must pass.
  Mutex coalesce(LockRank::kCoalesce);
  Mutex registry(LockRank::kSessionRegistry);
  Mutex verify(LockRank::kCircuitVerify);
  Mutex pool(LockRank::kThreadPool);
  Mutex log(LockRank::kLogSink);
  const MutexLock l1(coalesce);
  const MutexLock l2(registry);
  const MutexLock l3(verify);
  const MutexLock l4(pool);
  const MutexLock l5(log);
  if (invariants_on()) {
    EXPECT_EQ(held_lock_depth(), 5);
  } else {
    EXPECT_EQ(held_lock_depth(), 0);
  }
}

TEST(MutexTest, HeldLockDepthTracksScopes) {
  Mutex low(LockRank::kSessionRegistry);
  Mutex high(LockRank::kThreadPool);
  const int base = invariants_on() ? 1 : 0;
  EXPECT_EQ(held_lock_depth(), 0);
  {
    const MutexLock outer(low);
    EXPECT_EQ(held_lock_depth(), base);
    {
      const MutexLock inner(high);
      EXPECT_EQ(held_lock_depth(), 2 * base);
    }
    EXPECT_EQ(held_lock_depth(), base);
  }
  EXPECT_EQ(held_lock_depth(), 0);
}

TEST(MutexTest, SameRankSequentiallyIsLegal) {
  // The rank rule forbids same-rank locks HELD TOGETHER, not same-rank
  // locks used one after the other — per-circuit verify mutexes are
  // siblings taken sequentially all the time.
  Mutex first(LockRank::kCircuitVerify);
  Mutex second(LockRank::kCircuitVerify);
  {
    const MutexLock lock(first);
  }
  {
    const MutexLock lock(second);
  }
  EXPECT_EQ(held_lock_depth(), 0);
}

TEST(MutexTest, EarlyUnlockAndRelockWork) {
  // The coalescer's leader path drops the queue lock before the fused
  // sweep; this is that shape, including depth bookkeeping.
  Mutex low(LockRank::kSessionRegistry);
  Mutex high(LockRank::kThreadPool);
  MutexLock lock(high);
  lock.unlock();
  EXPECT_EQ(held_lock_depth(), 0);
  {
    // With `high` released, a LOWER rank is acquirable again.
    const MutexLock other(low);
  }
  lock.lock();
  EXPECT_EQ(held_lock_depth(), invariants_on() ? 1 : 0);
}

TEST(MutexTest, CondVarWakesWaiter) {
  Mutex mutex(LockRank::kTest);
  CondVar cv;
  bool ready = false;  // guarded by `mutex` (local, so no TSA)
  bool seen = false;
  std::thread waiter([&] {
    MutexLock lock(mutex);
    while (!ready) {
      cv.wait(lock);
    }
    seen = true;
  });
  {
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(seen);
}

TEST(MutexTest, CondVarWaitUntilTimesOut) {
  Mutex mutex(LockRank::kTest);
  CondVar cv;
  MutexLock lock(mutex);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(5);
  // Nobody notifies: the deadline must fire, with the lock re-held.
  EXPECT_EQ(cv.wait_until(lock, deadline), std::cv_status::timeout);
  EXPECT_EQ(held_lock_depth(), invariants_on() ? 1 : 0);
}

TEST(MutexTest, RankAccessorAndNamesAreStable) {
  // Violation reports and docs/CONCURRENCY.md both quote these names;
  // renames must be deliberate.
  const Mutex mutex(LockRank::kCoalesce);
  EXPECT_EQ(mutex.rank(), LockRank::kCoalesce);
  EXPECT_STREQ(lock_rank_name(LockRank::kCoalesce), "coalesce");
  EXPECT_STREQ(lock_rank_name(LockRank::kSessionRegistry),
               "session-registry");
  EXPECT_STREQ(lock_rank_name(LockRank::kCircuitVerify), "circuit-verify");
  EXPECT_STREQ(lock_rank_name(LockRank::kCircuitSim), "circuit-sim");
  EXPECT_STREQ(lock_rank_name(LockRank::kConnectionRegistry),
               "connection-registry");
  EXPECT_STREQ(lock_rank_name(LockRank::kThreadPool), "thread-pool");
  EXPECT_STREQ(lock_rank_name(LockRank::kPoolJoin), "pool-join");
  EXPECT_STREQ(lock_rank_name(LockRank::kMetricsRegistry),
               "metrics-registry");
  EXPECT_STREQ(lock_rank_name(LockRank::kLogSink), "log-sink");
  EXPECT_STREQ(lock_rank_name(LockRank::kTest), "test");
}

}  // namespace
}  // namespace ambit
