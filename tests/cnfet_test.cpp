// Tests for the ambipolar CNFET device model: discrete polarity states,
// switch behaviour, and the analytic I–V shape of Fig. 1 / §2.
#include <gtest/gtest.h>

#include "core/cnfet.h"
#include "tech/technology.h"

namespace ambit::core {
namespace {

using tech::CnfetElectrical;
using tech::default_cnfet_electrical;

TEST(PolarityTest, HighPgIsNType) {
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_EQ(polarity_from_pg(e.v_polarity_high, e), PolarityState::kNType);
}

TEST(PolarityTest, LowPgIsPType) {
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_EQ(polarity_from_pg(e.v_polarity_low, e), PolarityState::kPType);
}

TEST(PolarityTest, MidRailIsOff) {
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_EQ(polarity_from_pg(e.v_polarity_off, e), PolarityState::kOff);
}

TEST(PolarityTest, OffBandWidthRespected) {
  const CnfetElectrical e = default_cnfet_electrical();
  const double v0 = e.v_polarity_off;
  EXPECT_EQ(polarity_from_pg(v0 + 0.2, e, 0.6), PolarityState::kOff);
  EXPECT_EQ(polarity_from_pg(v0 + 0.4, e, 0.6), PolarityState::kNType);
  EXPECT_EQ(polarity_from_pg(v0 - 0.2, e, 0.6), PolarityState::kOff);
  EXPECT_EQ(polarity_from_pg(v0 - 0.4, e, 0.6), PolarityState::kPType);
}

TEST(ConductionTest, NTypeFollowsGate) {
  EXPECT_TRUE(conducts(PolarityState::kNType, true));
  EXPECT_FALSE(conducts(PolarityState::kNType, false));
}

TEST(ConductionTest, PTypeInverts) {
  EXPECT_FALSE(conducts(PolarityState::kPType, true));
  EXPECT_TRUE(conducts(PolarityState::kPType, false));
}

TEST(ConductionTest, OffNeverConducts) {
  EXPECT_FALSE(conducts(PolarityState::kOff, true));
  EXPECT_FALSE(conducts(PolarityState::kOff, false));
}

TEST(IvModelTest, NBranchConductsWithHighPgAndHighCg) {
  const CnfetElectrical e = default_cnfet_electrical();
  const double i_on = drain_current(e.vdd, e.v_polarity_high, e);
  const double i_gated_off = drain_current(0.0, e.v_polarity_high, e);
  EXPECT_GT(i_on, 100 * i_gated_off);
}

TEST(IvModelTest, PBranchConductsWithLowPgAndLowCg) {
  const CnfetElectrical e = default_cnfet_electrical();
  const double i_on = drain_current(0.0, e.v_polarity_low, e);
  const double i_gated_off = drain_current(e.vdd, e.v_polarity_low, e);
  EXPECT_GT(i_on, 100 * i_gated_off);
}

TEST(IvModelTest, ConductionMinimumAtV0) {
  // "Between these two values of PG, there is a voltage V0 = VDD/2 …
  //  for which the conduction is poor and the device is always off."
  const CnfetElectrical e = default_cnfet_electrical();
  const double at_v0_cg_high = drain_current(e.vdd, e.v_polarity_off, e);
  const double at_v0_cg_low = drain_current(0.0, e.v_polarity_off, e);
  const double n_on = drain_current(e.vdd, e.v_polarity_high, e);
  EXPECT_LT(at_v0_cg_high, n_on / 100);
  EXPECT_LT(at_v0_cg_low, n_on / 100);
}

TEST(IvModelTest, TransferCurveIsVShapedInPg) {
  // Sweeping PG at CG tied to the matching rail gives high current at
  // both ends and a minimum near V0.
  const CnfetElectrical e = default_cnfet_electrical();
  const double left = drain_current(0.0, 0.0, e);        // p side
  const double right = drain_current(e.vdd, e.vdd, e);   // n side
  double minimum = 1e9;
  for (double vpg = 0; vpg <= e.vdd; vpg += 0.05) {
    const double i = std::max(drain_current(e.vdd, vpg, e),
                              drain_current(0.0, vpg, e));
    minimum = std::min(minimum, i);
  }
  EXPECT_GT(left, 1000 * minimum);
  EXPECT_GT(right, 1000 * minimum);
}

TEST(IvModelTest, OnOffRatioAtLeastFourDecades) {
  const CnfetElectrical e = default_cnfet_electrical();
  const double on = drain_current(e.vdd, e.v_polarity_high, e);
  const double off = drain_current(e.vdd, e.v_polarity_off, e);
  EXPECT_GT(on / off, 1e4);
}

TEST(DeviceStructTest, WidthFactorScalesRAndC) {
  const CnfetElectrical e = default_cnfet_electrical();
  AmbipolarCnfet narrow{.polarity = PolarityState::kNType, .width_factor = 1.0};
  AmbipolarCnfet wide{.polarity = PolarityState::kNType, .width_factor = 4.0};
  EXPECT_DOUBLE_EQ(wide.r_on(e), narrow.r_on(e) / 4.0);
  EXPECT_DOUBLE_EQ(wide.c_drain(e), narrow.c_drain(e) * 4.0);
}

TEST(NamesTest, PolarityNames) {
  EXPECT_STREQ(to_string(PolarityState::kNType), "n");
  EXPECT_STREQ(to_string(PolarityState::kPType), "p");
  EXPECT_STREQ(to_string(PolarityState::kOff), "off");
}

}  // namespace
}  // namespace ambit::core
