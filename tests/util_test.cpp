// Tests for src/util: RNG determinism and distribution sanity, string
// helpers, ASCII table rendering, error helpers.
#include <gtest/gtest.h>

#include <set>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace ambit {
namespace {

TEST(ErrorTest, CheckThrowsOnFalse) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), Error);
}

TEST(ErrorTest, RequireAnnotatesInvariantViolations) {
  try {
    require(false, "the invariant");
    FAIL() << "require(false) must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("the invariant"), std::string::npos);
  }
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngStreamTest, SameSeedAndIndexReproduce) {
  Rng a = Rng::stream(99, 17);
  Rng b = Rng::stream(99, 17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngStreamTest, ConsecutiveIndicesDecohere) {
  // Nearby stream indices must yield unrelated sequences — this is
  // what makes per-trial streams safe for parallel Monte-Carlo.
  Rng a = Rng::stream(99, 0);
  Rng b = Rng::stream(99, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64();
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStreamTest, StreamZeroIsNotThePlainGenerator) {
  Rng plain(99);
  Rng stream0 = Rng::stream(99, 0);
  EXPECT_NE(plain.next_u64(), stream0.next_u64());
}

TEST(RngStreamTest, StreamsAreStatisticallyUniform) {
  // Pool one draw from each of many streams; the pooled doubles must
  // still look uniform (coarse mean test).
  double sum = 0;
  constexpr int kStreams = 2000;
  for (int s = 0; s < kStreams; ++s) {
    sum += Rng::stream(7, static_cast<std::uint64_t>(s)).next_double();
  }
  EXPECT_NEAR(sum / kStreams, 0.5, 0.05);
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.next_u64() != b.next_u64();
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.next_below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.next_bool(0.25);
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ZeroBoundRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(StringsTest, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, SplitWsSkipsEmptyTokens) {
  const auto tokens = split_ws("  a  bb\tccc \n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
}

TEST(StringsTest, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringsTest, SplitOnKeepsEmptyFields) {
  const auto fields = split_on("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with(".i 4", ".i"));
  EXPECT_FALSE(starts_with(".i", ".i 4"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 0), "-0");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(format_percent(-0.2105, 1), "-21.1%");
  EXPECT_EQ(format_percent(0.684, 1), "+68.4%");
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "7"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 7     |"), std::string::npos);
}

TEST(TableTest, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, SeparatorRendersRule) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule + separator + closing rule + top rule = 4 rules.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

}  // namespace
}  // namespace ambit
