// Tests for output phase optimization (Sasao-style).
#include <gtest/gtest.h>

#include "espresso/phase_opt.h"
#include "espresso/unate.h"
#include "logic/truth_table.h"
#include "util/error.h"
#include "util/rng.h"

namespace ambit::espresso {
namespace {

using logic::Cover;
using logic::Cube;
using logic::Literal;
using logic::TruthTable;

/// Recovers the positive-phase truth table from a phase-optimized
/// result: flipped outputs are complemented back.
TruthTable recover(const PhaseOptResult& result, int ni, int no) {
  const TruthTable raw = TruthTable::from_cover(result.cover);
  TruthTable fixed(ni, no);
  for (int j = 0; j < no; ++j) {
    for (std::uint64_t m = 0; m < raw.num_minterms(); ++m) {
      const bool v = raw.get(m, j);
      fixed.set(m, j, result.complemented[static_cast<std::size_t>(j)] ? !v : v);
    }
  }
  return fixed;
}

TEST(ApplyPhasesTest, AllPositiveIsOriginalOnset) {
  const Cover f = Cover::parse(2, 2, {"10 10", "01 01"});
  const Cover g = apply_phases(f, Cover(2, 2), {false, false});
  EXPECT_TRUE(logic::equivalent(f, g));
}

TEST(ApplyPhasesTest, FlippedOutputIsComplement) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});  // EXOR
  const Cover g = apply_phases(f, Cover(2, 1), {true});
  const TruthTable tg = TruthTable::from_cover(g);
  EXPECT_TRUE(tg.get(0b00, 0));
  EXPECT_TRUE(tg.get(0b11, 0));
  EXPECT_FALSE(tg.get(0b01, 0));
}

TEST(ApplyPhasesTest, DontCaresAbsorbedIntoFlippedPhase) {
  // f = x0, dc = x̄0x1. Complemented phase onset = complement(f ∪ d).
  const Cover f = Cover::parse(2, 1, {"1- 1"});
  const Cover d = Cover::parse(2, 1, {"01 1"});
  const Cover g = apply_phases(f, d, {true});
  const TruthTable tg = TruthTable::from_cover(g);
  EXPECT_TRUE(tg.get(0b00, 0));    // x0=0,x1=0: off in f, on in f̄
  EXPECT_FALSE(tg.get(0b01, 0));   // onset of f
  EXPECT_FALSE(tg.get(0b10, 0));   // don't-care: excluded from f̄ onset
}

TEST(PhaseOptTest, ComplementCheaperFunctionGetsFlipped) {
  // f = OR of all minterms except one: f̄ is a single minterm, so the
  // complemented phase yields a 1-cube cover.
  Cover f(3, 1);
  for (std::uint64_t m = 1; m < 8; ++m) {
    Cube c(3, 1);
    c.set_output(0, true);
    for (int i = 0; i < 3; ++i) {
      c.set_input(i, ((m >> i) & 1) ? Literal::kOne : Literal::kZero);
    }
    f.add(c);
  }
  const auto result = optimize_output_phases(f, Cover(3, 1));
  ASSERT_EQ(result.complemented.size(), 1u);
  EXPECT_TRUE(result.complemented[0]);
  EXPECT_EQ(result.cover.size(), 1u);
  EXPECT_LT(result.cover.size(), result.baseline_cubes);
}

TEST(PhaseOptTest, SymmetricFunctionKeepsPositivePhase) {
  // EXOR: both phases cost 2 cubes; no flip should be accepted.
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const auto result = optimize_output_phases(f, Cover(2, 1));
  EXPECT_FALSE(result.complemented[0]);
  EXPECT_EQ(result.cover.size(), 2u);
}

TEST(PhaseOptTest, RecoveredFunctionMatchesOriginal) {
  ambit::Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const int ni = 4;
    const int no = 2;
    Cover f(ni, no);
    for (int k = 0; k < 8; ++k) {
      Cube c(ni, no);
      for (int i = 0; i < ni; ++i) {
        const auto r = rng.next_below(3);
        c.set_input(i, r == 0   ? Literal::kZero
                       : r == 1 ? Literal::kOne
                                : Literal::kDontCare);
      }
      c.set_output(static_cast<int>(rng.next_below(no)), true);
      f.add(c);
    }
    const auto result = optimize_output_phases(f, Cover(ni, no));
    EXPECT_EQ(recover(result, ni, no), TruthTable::from_cover(f));
  }
}

TEST(PhaseOptTest, NeverWorseThanBaseline) {
  ambit::Rng rng(456);
  for (int trial = 0; trial < 8; ++trial) {
    const int ni = 5;
    const int no = 3;
    Cover f(ni, no);
    for (int k = 0; k < 12; ++k) {
      Cube c(ni, no);
      for (int i = 0; i < ni; ++i) {
        const auto r = rng.next_below(4);
        c.set_input(i, r == 0   ? Literal::kZero
                       : r == 1 ? Literal::kOne
                                : Literal::kDontCare);
      }
      c.set_output(static_cast<int>(rng.next_below(no)), true);
      f.add(c);
    }
    const auto result = optimize_output_phases(f, Cover(ni, no));
    EXPECT_LE(result.cover.size(), result.baseline_cubes);
  }
}

TEST(PhaseOptTest, PhaseVectorArityChecked) {
  const Cover f = Cover::parse(2, 2, {"10 11"});
  EXPECT_THROW(apply_phases(f, Cover(2, 2), {true}), ambit::Error);
}

}  // namespace
}  // namespace ambit::espresso
