// Tests for the §4 charge-programming protocol: pulse compilation,
// individual cell selection, retention/leakage, decode round trips.
#include <gtest/gtest.h>

#include "core/gnor_pla.h"
#include "core/programmer.h"
#include "util/error.h"

namespace ambit::core {
namespace {

using tech::CnfetElectrical;
using tech::default_cnfet_electrical;

GnorPlane sample_plane() {
  GnorPlane plane(3, 4);
  plane.set_cell(0, 0, CellConfig::kPass);
  plane.set_cell(0, 3, CellConfig::kInvert);
  plane.set_cell(1, 1, CellConfig::kInvert);
  plane.set_cell(2, 2, CellConfig::kPass);
  return plane;
}

TEST(ProgrammerTest, BlankArrayDecodesToAllOff) {
  const CnfetElectrical e = default_cnfet_electrical();
  const PlaneProgrammer prog(3, 4, e);
  const GnorPlane decoded = prog.decode();
  EXPECT_EQ(decoded.active_cells(), 0);
}

TEST(ProgrammerTest, CompileSkipsOffCells) {
  const CnfetElectrical e = default_cnfet_electrical();
  const auto pulses = PlaneProgrammer::compile(sample_plane(), e);
  // Only the four programmed cells need pulses.
  EXPECT_EQ(pulses.size(), 4u);
}

TEST(ProgrammerTest, CompiledPulsesCarryPolarityVoltages) {
  const CnfetElectrical e = default_cnfet_electrical();
  const auto pulses = PlaneProgrammer::compile(sample_plane(), e);
  for (const auto& pulse : pulses) {
    EXPECT_TRUE(pulse.vpg == e.v_polarity_high ||
                pulse.vpg == e.v_polarity_low);
  }
}

TEST(ProgrammerTest, ProgramDecodeRoundTrip) {
  const CnfetElectrical e = default_cnfet_electrical();
  const GnorPlane target = sample_plane();
  PlaneProgrammer prog(target.rows(), target.cols(), e);
  prog.apply_all(PlaneProgrammer::compile(target, e));
  EXPECT_EQ(prog.decode(), target);
}

TEST(ProgrammerTest, IndividualSelectionTouchesOneCell) {
  // §4: "every ambipolar CNFET is selected individually".
  const CnfetElectrical e = default_cnfet_electrical();
  PlaneProgrammer prog(2, 2, e);
  prog.apply(ProgramPulse{.row = 1, .col = 0, .vpg = e.v_polarity_high});
  EXPECT_DOUBLE_EQ(prog.charge(1, 0), e.v_polarity_high);
  EXPECT_DOUBLE_EQ(prog.charge(0, 0), e.v_polarity_off);
  EXPECT_DOUBLE_EQ(prog.charge(0, 1), e.v_polarity_off);
  EXPECT_DOUBLE_EQ(prog.charge(1, 1), e.v_polarity_off);
}

TEST(ProgrammerTest, ReprogrammingOverwrites) {
  const CnfetElectrical e = default_cnfet_electrical();
  PlaneProgrammer prog(1, 1, e);
  prog.apply(ProgramPulse{.row = 0, .col = 0, .vpg = e.v_polarity_high});
  EXPECT_EQ(prog.decode().cell(0, 0), CellConfig::kPass);
  prog.apply(ProgramPulse{.row = 0, .col = 0, .vpg = e.v_polarity_low});
  EXPECT_EQ(prog.decode().cell(0, 0), CellConfig::kInvert);
}

TEST(ProgrammerTest, MildLeakageKeepsConfiguration) {
  const CnfetElectrical e = default_cnfet_electrical();
  const GnorPlane target = sample_plane();
  PlaneProgrammer prog(target.rows(), target.cols(), e);
  prog.apply_all(PlaneProgrammer::compile(target, e));
  prog.leak_toward(e.v_polarity_off, 0.2);  // 20% drift toward mid-rail
  EXPECT_EQ(prog.decode(), target);
}

TEST(ProgrammerTest, SevereLeakageCollapsesToOff) {
  const CnfetElectrical e = default_cnfet_electrical();
  const GnorPlane target = sample_plane();
  PlaneProgrammer prog(target.rows(), target.cols(), e);
  prog.apply_all(PlaneProgrammer::compile(target, e));
  prog.leak_toward(e.v_polarity_off, 0.95);
  EXPECT_EQ(prog.decode().active_cells(), 0);
}

TEST(ProgrammerTest, LeakFractionValidated) {
  const CnfetElectrical e = default_cnfet_electrical();
  PlaneProgrammer prog(1, 1, e);
  EXPECT_THROW(prog.leak_toward(0.0, 1.5), ambit::Error);
  EXPECT_THROW(prog.leak_toward(0.0, -0.1), ambit::Error);
}

TEST(ProgrammerTest, SetChargeFaultInjection) {
  const CnfetElectrical e = default_cnfet_electrical();
  PlaneProgrammer prog(2, 2, e);
  prog.apply(ProgramPulse{.row = 0, .col = 0, .vpg = e.v_polarity_high});
  // A retention defect drags the charge into the off band.
  prog.set_charge(0, 0, e.v_polarity_off + 0.1);
  EXPECT_EQ(prog.decode().cell(0, 0), CellConfig::kOff);
}

TEST(ProgrammerTest, BoundsChecked) {
  const CnfetElectrical e = default_cnfet_electrical();
  PlaneProgrammer prog(2, 2, e);
  EXPECT_THROW(prog.charge(2, 0), ambit::Error);
  EXPECT_THROW(prog.apply(ProgramPulse{.row = 0, .col = 5, .vpg = 0}),
               ambit::Error);
}

TEST(ProgrammerTest, FullPlaProgrammingFlow) {
  // Map a cover, program both planes through pulses, decode, and check
  // the decoded array equals the mapped one.
  const auto f = logic::Cover::parse(3, 2, {"10- 11", "-01 01"});
  const CnfetElectrical e = default_cnfet_electrical();
  const GnorPla pla = GnorPla::map_cover(f);

  PlaneProgrammer p1(pla.product_plane().rows(), pla.product_plane().cols(), e);
  p1.apply_all(PlaneProgrammer::compile(pla.product_plane(), e));
  PlaneProgrammer p2(pla.output_plane().rows(), pla.output_plane().cols(), e);
  p2.apply_all(PlaneProgrammer::compile(pla.output_plane(), e));

  EXPECT_EQ(p1.decode(), pla.product_plane());
  EXPECT_EQ(p2.decode(), pla.output_plane());
}

}  // namespace
}  // namespace ambit::core
