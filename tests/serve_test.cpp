// Tests for the ambit::serve subsystem: protocol parsing and hex
// codecs, the session registry (LOAD pipeline, sharded EVAL, cached
// VERIFY), the server driven end-to-end over both transports — a
// stream pipe and a Unix-domain socket — and the observability
// surface: the METRICS verb, the HTTP side listener, and exact
// per-verb accounting under a concurrent mixed-verb hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gnor_pla.h"
#include "logic/pla_io.h"
#include "prometheus_lint.h"
#include "serve/client.h"
#include "serve/coalesce.h"
#include "serve/metrics_http.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "simulate/pla_sim.h"
#include "tech/technology.h"
#include "util/error.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/strings.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#endif

namespace ambit::serve {
namespace {

using logic::Cover;
using logic::PatternBatch;

/// Writes a small 3-input/2-output cover to a temp .pla file and
/// returns its path.
std::string write_sample_pla(const std::string& filename) {
  const Cover f = Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"});
  const std::string path = testing::TempDir() + "/" + filename;
  logic::write_pla_file(path, logic::make_pla(f, "sample"));
  return path;
}

// ---------------------------------------------------------------------------
// Protocol: request parsing and the hex codec.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParsesEveryVerb) {
  EXPECT_EQ(parse_request("LOAD adder /tmp/a.pla").verb, Verb::kLoad);
  EXPECT_EQ(parse_request("EVAL adder ff 0").verb, Verb::kEval);
  EXPECT_EQ(parse_request("VERIFY adder").verb, Verb::kVerify);
  EXPECT_EQ(parse_request("STATS").verb, Verb::kStats);
  EXPECT_EQ(parse_request("METRICS").verb, Verb::kMetrics);
  EXPECT_EQ(parse_request("UNLOAD adder").verb, Verb::kUnload);
  EXPECT_EQ(parse_request("HELP").verb, Verb::kHelp);
  EXPECT_EQ(parse_request("QUIT").verb, Verb::kQuit);
  EXPECT_EQ(parse_request("SHUTDOWN").verb, Verb::kShutdown);
}

TEST(ProtocolTest, LoadCarriesNameAndPath) {
  const Request r = parse_request("  LOAD  c17   /data/c17.pla ");
  EXPECT_EQ(r.name, "c17");
  EXPECT_EQ(r.path, "/data/c17.pla");
}

TEST(ProtocolTest, EvalCarriesAllPatterns) {
  const Request r = parse_request("EVAL f 0 1f 0x2a");
  EXPECT_EQ(r.name, "f");
  EXPECT_EQ(r.patterns, (std::vector<std::string>{"0", "1f", "0x2a"}));
}

TEST(ProtocolTest, MalformedRequestsRejected) {
  EXPECT_THROW(parse_request(""), Error);
  EXPECT_THROW(parse_request("FROBNICATE x"), Error);
  EXPECT_THROW(parse_request("LOAD just_a_name"), Error);
  EXPECT_THROW(parse_request("EVAL name_but_no_patterns"), Error);
  EXPECT_THROW(parse_request("VERIFY"), Error);
  EXPECT_THROW(parse_request("STATS extra"), Error);
  EXPECT_THROW(parse_request("METRICS extra"), Error);
}

TEST(ProtocolTest, ParsesEvalbHeader) {
  const Request r = parse_request("EVALB f 130 9");
  EXPECT_EQ(r.verb, Verb::kEvalB);
  EXPECT_EQ(r.name, "f");
  EXPECT_EQ(r.num_patterns, 130u);
  EXPECT_EQ(r.num_words, 9u);
}

TEST(ProtocolTest, MalformedEvalbHeadersRejected) {
  EXPECT_THROW(parse_request("EVALB f"), Error);
  EXPECT_THROW(parse_request("EVALB f 128"), Error);
  EXPECT_THROW(parse_request("EVALB f 128 6 extra"), Error);
  EXPECT_THROW(parse_request("EVALB f abc 6"), Error);
  EXPECT_THROW(parse_request("EVALB f 128 -6"), Error);
  EXPECT_THROW(parse_request("EVALB f 12x8 6"), Error);
  EXPECT_THROW(parse_request("EVALB f 99999999999999999999999 6"), Error);
}

TEST(ProtocolTest, EvalbResponseHeaderFormat) {
  EXPECT_EQ(evalb_response_header(128, 6), "OK EVALB 128 6");
}

TEST(ProtocolTest, ParsesSimVerbs) {
  const Request sim = parse_request("SIM f 0 1f 0x2a");
  EXPECT_EQ(sim.verb, Verb::kSim);
  EXPECT_EQ(sim.name, "f");
  EXPECT_EQ(sim.patterns, (std::vector<std::string>{"0", "1f", "0x2a"}));

  const Request simb = parse_request("SIMB f 130 9");
  EXPECT_EQ(simb.verb, Verb::kSimB);
  EXPECT_EQ(simb.name, "f");
  EXPECT_EQ(simb.num_patterns, 130u);
  EXPECT_EQ(simb.num_words, 9u);
  EXPECT_TRUE(is_bulk_verb(Verb::kSimB));
  EXPECT_TRUE(is_bulk_verb(Verb::kEvalB));
  EXPECT_FALSE(is_bulk_verb(Verb::kSim));
}

TEST(ProtocolTest, MalformedSimRequestsRejected) {
  EXPECT_THROW(parse_request("SIM name_but_no_patterns"), Error);
  EXPECT_THROW(parse_request("SIMB f"), Error);
  EXPECT_THROW(parse_request("SIMB f 128"), Error);
  EXPECT_THROW(parse_request("SIMB f 128 6 extra"), Error);
  EXPECT_THROW(parse_request("SIMB f abc 6"), Error);
  EXPECT_THROW(parse_request("SIMB f 128 -6"), Error);
  EXPECT_THROW(parse_request("SIMB f 99999999999999999999999 6"), Error);
}

TEST(ProtocolTest, SimbResponseHeaderAndSimTokenFormat) {
  EXPECT_EQ(simb_response_header(128, 390), "OK SIMB 128 390");
  // 1 ps / 2 ps / 3 ps, outputs {1,0} -> hex "1".
  EXPECT_EQ(sim_token({true, false}, 1e-12, 2e-12, 3e-12), "1@1/2/3");
  // %.6g keeps sub-ps resolution without drift-prone padding.
  EXPECT_EQ(sim_token({false}, 26.8594e-12, 39.856e-12, 19.0615e-12),
            "0@26.8594/39.856/19.0615");
}

TEST(ProtocolTest, HexRoundTrip) {
  for (const int width : {1, 3, 4, 8, 13, 64, 70}) {
    std::vector<bool> bits(static_cast<std::size_t>(width));
    for (int i = 0; i < width; i += 3) {
      bits[static_cast<std::size_t>(i)] = true;
    }
    EXPECT_EQ(hex_decode(hex_encode(bits), width), bits) << "width " << width;
  }
}

TEST(ProtocolTest, HexRoundTripOddAndWideWidths) {
  // Odd widths (partial final digit) and widths far beyond 64 (the
  // value can never materialize as an integer) with several densities.
  for (const int width : {5, 7, 9, 31, 63, 65, 66, 127, 128, 129, 200}) {
    for (const int stride : {1, 2, 7}) {
      std::vector<bool> bits(static_cast<std::size_t>(width));
      for (int i = 0; i < width; i += stride) {
        bits[static_cast<std::size_t>(i)] = true;
      }
      // The top bit set exercises the width-boundary check exactly.
      bits[static_cast<std::size_t>(width - 1)] = true;
      const std::string hex = hex_encode(bits);
      EXPECT_EQ(static_cast<int>(hex.size()), (width + 3) / 4);
      EXPECT_EQ(hex_decode(hex, width), bits)
          << "width " << width << " stride " << stride;
    }
  }
}

TEST(ProtocolTest, HexEncodeIsFixedWidth) {
  EXPECT_EQ(hex_encode({false, false, false, false, false}), "00");
  EXPECT_EQ(hex_encode({true, false, true}), "5");
  EXPECT_EQ(hex_encode(std::vector<bool>(8, true)), "ff");
}

TEST(ProtocolTest, HexDecodeAcceptsPrefixAndCase) {
  EXPECT_EQ(hex_decode("0x2A", 6), hex_decode("2a", 6));
  // The "0X" prefix (uppercase X) is part of the grammar too.
  EXPECT_EQ(hex_decode("0X2A", 6), hex_decode("2a", 6));
  EXPECT_EQ(hex_decode("0XfF", 8), hex_decode("ff", 8));
}

TEST(ProtocolTest, HexDecodeRejectsBadInput) {
  EXPECT_THROW(hex_decode("zz", 8), Error);
  EXPECT_THROW(hex_decode("", 8), Error);
  EXPECT_THROW(hex_decode("0x", 8), Error);
  EXPECT_THROW(hex_decode("0X", 8), Error);
  // Malformed digits buried mid-token, including a second prefix.
  EXPECT_THROW(hex_decode("1g4", 12), Error);
  EXPECT_THROW(hex_decode("0x0x11", 12), Error);
  EXPECT_THROW(hex_decode("ff ", 8), Error);
  // Bit 4 set, but only 3 inputs wide.
  EXPECT_THROW(hex_decode("10", 3), Error);
  // Same boundary check past 64 signals: bit 68 set, 68 wide.
  EXPECT_THROW(hex_decode("100000000000000000", 68), Error);
}

TEST(ProtocolTest, ResponseFormatting) {
  EXPECT_EQ(ok_response(), "OK");
  EXPECT_EQ(ok_response("loaded x"), "OK loaded x");
  EXPECT_EQ(err_response("bad\nthing"), "ERR bad thing");
}

TEST(ProtocolTest, HelpListsEveryVerb) {
  // The drift guard behind the HELP audit: every verb the parser
  // dispatches must appear in the HELP text AS A WORD, so a new
  // command cannot land without documenting itself. Word boundaries
  // matter: a plain substring search would let "EVALB" satisfy "EVAL"
  // and "SIMB" satisfy "SIM" — exactly the omission class this test
  // exists to catch. verb_names() is maintained next to parse_request
  // for exactly this check.
  const auto contains_word = [](const std::string& text,
                                const std::string& word) {
    const auto is_word_char = [](char c) {
      return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
             (c >= '0' && c <= '9');
    };
    for (std::size_t at = text.find(word); at != std::string::npos;
         at = text.find(word, at + 1)) {
      const bool left_ok = at == 0 || !is_word_char(text[at - 1]);
      const std::size_t end = at + word.size();
      const bool right_ok = end == text.size() || !is_word_char(text[end]);
      if (left_ok && right_ok) {
        return true;
      }
    }
    return false;
  };
  const std::vector<std::string> names = verb_names();
  ASSERT_EQ(names.size(), 12u);  // grows with the grammar
  const std::string help = help_text();
  for (const std::string& name : names) {
    EXPECT_TRUE(contains_word(help, name))
        << "HELP omits the " << name << " command";
  }
  // Every listed name really is a dispatchable verb (the list cannot
  // drift ahead of the parser either): an unknown verb raises "unknown
  // verb", a known one either parses or complains about ARGUMENTS.
  for (const std::string& name : names) {
    try {
      parse_request(name + " x y z w");
    } catch (const Error& e) {
      EXPECT_EQ(std::string(e.what()).find("unknown verb"),
                std::string::npos)
          << name << " is listed in verb_names() but not dispatched";
    }
  }
  // HELP points at the normative reference and states the revision.
  EXPECT_NE(help.find("docs/PROTOCOL.md"), std::string::npos);
  EXPECT_NE(help.find("v" + std::to_string(kProtocolVersion)),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Session: the LOAD pipeline and the sharded answer paths.
// ---------------------------------------------------------------------------

TEST(SessionTest, LoadEvalVerifyUnload) {
  const std::string path = write_sample_pla("serve_session.pla");
  Session session(/*workers=*/2);
  const std::shared_ptr<const LoadedCircuit> circuit = session.load("s", path);
  EXPECT_EQ(circuit->gnor.num_inputs(), 3);
  EXPECT_EQ(circuit->gnor.num_outputs(), 2);

  // EVAL answers must match direct evaluation of the mapped array.
  PatternBatch inputs = PatternBatch::exhaustive(3);
  const PatternBatch outputs = session.eval("s", inputs);
  EXPECT_EQ(outputs, circuit->gnor.evaluate_batch(inputs));

  EXPECT_TRUE(session.verify("s"));
  // Second verify rides the cached reference tables.
  EXPECT_TRUE(session.verify("s"));
  EXPECT_EQ(session.get("s")->verifies.load(), 2u);

  session.unload("s");
  EXPECT_EQ(session.find("s"), nullptr);
  EXPECT_THROW(session.eval("s", inputs), Error);
  // The shared_ptr handed out before the unload stays valid: an
  // in-flight evaluation can never dangle.
  EXPECT_EQ(circuit->gnor.num_inputs(), 3);
}

TEST(SessionTest, VerifyCatchesCorruptedArray) {
  const std::string path = write_sample_pla("serve_corrupt.pla");
  Session session(1);
  session.load("s", path);
  ASSERT_TRUE(session.verify("s"));
  // Sabotage the mapped array behind the session's back; VERIFY must
  // notice. (The const_cast stands in for radiation/defect drift — the
  // protocol has no mutation verb.)
  auto& gnor = const_cast<core::GnorPla&>(session.get("s")->gnor);
  gnor.set_buffer_inverted(0, !gnor.buffer_inverted(0));
  EXPECT_FALSE(session.verify("s"));
}

TEST(SessionTest, UnknownNamesThrow) {
  Session session(1);
  EXPECT_THROW(session.get("ghost"), Error);
  EXPECT_THROW(session.verify("ghost"), Error);
  EXPECT_THROW(session.unload("ghost"), Error);
}

TEST(SessionTest, ReloadReplacesCircuit) {
  const std::string path = write_sample_pla("serve_reload.pla");
  Session session(1);
  session.load("s", path);
  const Cover g = Cover::parse(2, 1, {"11 1"});
  const std::string path2 = testing::TempDir() + "/serve_reload2.pla";
  logic::write_pla_file(path2, logic::make_pla(g, "g"));
  session.load("s", path2);
  EXPECT_EQ(session.get("s")->gnor.num_inputs(), 2);
  EXPECT_EQ(session.stats().loads, 2u);
  EXPECT_EQ(session.stats().circuits, 1);
}

TEST(SessionTest, FailedLoadKeepsExistingCircuit) {
  const std::string path = write_sample_pla("serve_keep.pla");
  Session session(1);
  session.load("s", path);
  EXPECT_THROW(session.load("s", "/nonexistent/nope.pla"), Error);
  EXPECT_EQ(session.get("s")->gnor.num_inputs(), 3);
}

TEST(SessionTest, StatsAccumulate) {
  const std::string path = write_sample_pla("serve_stats.pla");
  Session session(1);
  session.load("a", path);
  session.load("b", path);
  session.eval("a", PatternBatch::exhaustive(3));
  session.eval("b", PatternBatch::exhaustive(3));
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.circuits, 2);
  EXPECT_EQ(stats.evals, 2u);
  EXPECT_EQ(stats.patterns, 16u);
  // Counters are session-cumulative: dropping or replacing circuits
  // must never make STATS go backwards.
  session.unload("a");
  session.load("b", path);
  EXPECT_EQ(session.stats().evals, 2u);
  EXPECT_EQ(session.stats().patterns, 16u);
  EXPECT_EQ(session.stats().circuits, 1);
}

TEST(SessionTest, SimMatchesDirectSimulatorAndCounts) {
  const std::string path = write_sample_pla("serve_sim.pla");
  Session session(/*workers=*/2);
  const std::shared_ptr<const LoadedCircuit> circuit = session.load("s", path);

  const PatternBatch inputs = PatternBatch::exhaustive(3);
  const simulate::BatchSimResult served = session.sim("s", inputs);
  // Reference: a directly built simulator over the SAME mapped array.
  simulate::GnorPlaSimulator direct(circuit->gnor,
                                    tech::default_cnfet_electrical());
  const simulate::BatchSimResult expected = direct.simulate_batch(inputs);
  EXPECT_EQ(served.outputs, expected.outputs);
  EXPECT_EQ(served.precharge_delay_s, expected.precharge_delay_s);
  EXPECT_EQ(served.plane1_eval_delay_s, expected.plane1_eval_delay_s);
  EXPECT_EQ(served.plane2_eval_delay_s, expected.plane2_eval_delay_s);
  EXPECT_TRUE(served.all_definite());

  // And against the functional batch path: the oracle chain holds
  // through the serve layer too.
  EXPECT_EQ(served.outputs, session.eval("s", inputs));

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.sims, 1u);
  EXPECT_EQ(stats.sim_patterns, 8u);
  EXPECT_EQ(stats.evals, 1u);  // the eval() above
  EXPECT_EQ(session.get("s")->sims.load(), 1u);
  // Width mismatches surface as ambit::Error, same as eval.
  EXPECT_THROW(session.sim("s", PatternBatch(2, 4)), Error);
  EXPECT_THROW(session.sim("ghost", inputs), Error);
}

// ---------------------------------------------------------------------------
// Cross-connection coalescing: fused sweeps must be bit-identical to
// direct evaluation, with exact per-request accounting.
// ---------------------------------------------------------------------------

/// A deterministic small batch over `width` signals (distinct per
/// (seed, size) so fused neighbours never accidentally match).
PatternBatch make_request_batch(int width, std::uint64_t num_patterns,
                                std::uint64_t seed) {
  PatternBatch batch(width, num_patterns);
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (std::uint64_t p = 0; p < num_patterns; ++p) {
    for (int s = 0; s < width; ++s) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      batch.set(p, s, (state >> 60) & 1);
    }
  }
  return batch;
}

TEST(CoalesceTest, WindowExpiryMatchesDirectEval) {
  // A lone request whose window expires with no company must come back
  // exactly as if coalescing were off — and count as one eval.
  const std::string path = write_sample_pla("serve_coal_alone.pla");
  Session session(1);
  const auto circuit = session.load("s", path);
  CoalescingQueue queue(session, CoalesceOptions{.window_us = 500,
                                                 .min_patterns = 64});
  const PatternBatch inputs = make_request_batch(3, 5, 1);
  const PatternBatch outputs = queue.eval(circuit, inputs);
  EXPECT_EQ(outputs, circuit->gnor.evaluate_batch(inputs));
  const CoalesceStats stats = queue.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.fused, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(session.stats().evals, 1u);
  EXPECT_EQ(session.stats().patterns, 5u);
}

TEST(CoalesceTest, LargeRequestsBypassTheQueue) {
  const std::string path = write_sample_pla("serve_coal_large.pla");
  Session session(1);
  const auto circuit = session.load("s", path);
  CoalescingQueue queue(session, CoalesceOptions{.window_us = 500,
                                                 .min_patterns = 8});
  const PatternBatch inputs = make_request_batch(3, 8, 2);  // == min
  const PatternBatch outputs = queue.eval(circuit, inputs);
  EXPECT_EQ(outputs, circuit->gnor.evaluate_batch(inputs));
  EXPECT_EQ(queue.stats().requests, 0u);  // went straight to the session
  EXPECT_EQ(session.stats().evals, 1u);
}

TEST(CoalesceTest, ConcurrentRequestsFuseBitIdentically) {
  // Eight connection threads with DIFFERENT small batches against one
  // circuit: min_patterns equals the combined size, so the leader
  // flushes exactly when the last member arrives, one fused sweep
  // serves all eight, and every scattered response must equal direct
  // evaluation of that thread's own batch.
  const std::string path = write_sample_pla("serve_coal_fuse.pla");
  Session session(1);
  const auto circuit = session.load("s", path);
  constexpr int kThreads = 8;
  std::uint64_t total = 0;
  std::vector<PatternBatch> inputs;
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t np = static_cast<std::uint64_t>(t) % 7 + 1;
    inputs.push_back(make_request_batch(3, np, 10 + static_cast<std::uint64_t>(t)));
    total += np;
  }
  // The window is a LIVENESS bound only (a straggler past it still gets
  // a correct answer from its own sweep); generous so slow CI cannot
  // split the group.
  CoalescingQueue queue(session,
                        CoalesceOptions{.window_us = 10'000'000,
                                        .min_patterns = total});
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const PatternBatch out =
          queue.eval(circuit, inputs[static_cast<std::size_t>(t)]);
      if (out != circuit->gnor.evaluate_batch(
                     inputs[static_cast<std::size_t>(t)])) {
        mismatches[static_cast<std::size_t>(t)] = 1;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
  const CoalesceStats stats = queue.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.fused, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.batches, 1u);
  // Per-request accounting: exactly what uncoalesced serving reports.
  EXPECT_EQ(session.stats().evals, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(session.stats().patterns, total);
}

TEST(CoalesceTest, BitIdenticalForAnyWindowAndMinPatternSettings) {
  // The acceptance property: whatever the knobs — windows from 1 us to
  // 100 ms, thresholds from "bypass everything" to "wait for a full
  // word" — every response equals direct evaluation and the session
  // counters equal the uncoalesced run's.
  const std::string path = write_sample_pla("serve_coal_sweep.pla");
  struct Config {
    std::uint64_t window_us;
    std::uint64_t min_patterns;
  };
  const std::vector<Config> configs = {
      {1, 1}, {1, 64}, {50, 2}, {1000, 8}, {100'000, 3}, {5000, 64}};
  for (const Config& config : configs) {
    Session session(1);
    const auto circuit = session.load("s", path);
    CoalescingQueue queue(session,
                          CoalesceOptions{.window_us = config.window_us,
                                          .min_patterns = config.min_patterns});
    constexpr int kThreads = 4;
    constexpr int kRequestsPerThread = 5;
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> patterns_sent{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kRequestsPerThread; ++r) {
          const std::uint64_t np =
              static_cast<std::uint64_t>(t * 13 + r * 7) % 70 + 1;
          const PatternBatch batch = make_request_batch(
              3, np, static_cast<std::uint64_t>(t * 100 + r));
          patterns_sent.fetch_add(np);
          const PatternBatch out = queue.eval(circuit, batch);
          if (out != circuit->gnor.evaluate_batch(batch)) {
            mismatches[static_cast<std::size_t>(t)] = 1;
          }
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
          << "window_us=" << config.window_us
          << " min_patterns=" << config.min_patterns << " thread " << t;
    }
    EXPECT_EQ(session.stats().evals,
              static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
    EXPECT_EQ(session.stats().patterns, patterns_sent.load());
  }
}

// ---------------------------------------------------------------------------
// Server over a stream pipe: the full protocol round trip.
// ---------------------------------------------------------------------------

TEST(ServerTest, StreamSessionRoundTrip) {
  const std::string path = write_sample_pla("serve_stream.pla");
  Session session(2);
  Server server(session);

  std::istringstream in("HELP\n"
                        "LOAD s " + path + "\n"
                        "EVAL s 0 7 3\n"
                        "VERIFY s\n"
                        "STATS\n"
                        "UNLOAD s\n"
                        "QUIT\n"
                        "EVAL s 0\n");  // after QUIT: must not be served
  std::ostringstream out;
  const std::uint64_t served = server.serve_stream(in, out);
  EXPECT_EQ(served, 7u);

  std::vector<std::string> lines;
  std::istringstream responses(out.str());
  for (std::string line; std::getline(responses, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_TRUE(starts_with(lines[0], "OK commands:"));
  EXPECT_TRUE(starts_with(lines[1], "OK loaded s: 3 inputs, 2 outputs"));
  // The sample cover on {000, 111, 110}: check against the real array.
  const core::GnorPla pla = core::GnorPla::map_cover(
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"}));
  const std::string expected =
      "OK " + hex_encode(pla.evaluate(hex_decode("0", 3))) + " " +
      hex_encode(pla.evaluate(hex_decode("7", 3))) + " " +
      hex_encode(pla.evaluate(hex_decode("3", 3)));
  EXPECT_EQ(lines[2], expected);
  EXPECT_TRUE(starts_with(lines[3], "OK verified s: equivalent over 8"));
  EXPECT_TRUE(starts_with(lines[4], "OK circuits=1"));
  EXPECT_EQ(lines[5], "OK unloaded s");
  EXPECT_EQ(lines[6], "OK bye");
}

TEST(ServerTest, ErrorsAreResponsesNotCrashes) {
  Session session(1);
  Server server(session);
  EXPECT_TRUE(starts_with(server.handle_line("NONSENSE"), "ERR"));
  EXPECT_TRUE(starts_with(server.handle_line("EVAL ghost ff"), "ERR"));
  EXPECT_TRUE(
      starts_with(server.handle_line("LOAD x /nonexistent/x.pla"), "ERR"));
}

TEST(ServerTest, MalformedPlaLoadReportsFileAndLine) {
  // A cube row wider than .i/.o declares must come back as an ERR
  // response carrying file:line context — the serve LOAD path makes
  // malformed input a routine event.
  const std::string path = testing::TempDir() + "/serve_malformed.pla";
  std::ofstream file(path);
  file << ".i 2\n.o 1\n101 1\n.e\n";
  file.close();
  Session session(1);
  Server server(session);
  const std::string response = server.handle_line("LOAD bad " + path);
  EXPECT_TRUE(starts_with(response, "ERR"));
  EXPECT_NE(response.find("serve_malformed:3"), std::string::npos) << response;
  EXPECT_NE(response.find(".i declares 2"), std::string::npos) << response;
}

TEST(ServerTest, BlankLinesAreIgnored) {
  Session session(1);
  Server server(session);
  std::istringstream in("\n   \nHELP\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 2u);
}

TEST(ServerTest, HandleLineRejectsEvalbWithoutTransport) {
  // handle_line is text-only; the binary payload needs a transport.
  Session session(1);
  Server server(session);
  EXPECT_TRUE(starts_with(server.handle_line("EVALB f 64 3"), "ERR"));
}

// ---------------------------------------------------------------------------
// METRICS: the Prometheus page framed over the line protocol.
// ---------------------------------------------------------------------------

/// Splits one "OK METRICS <nbytes>\n" + <nbytes> raw page bytes frame
/// off the front of `buffer`. Returns false until the frame is whole.
bool decode_metrics_response(const std::string& buffer, std::string& page,
                             std::size_t& consumed) {
  if (!starts_with(buffer, "OK METRICS ")) {
    return false;
  }
  const std::size_t eol = buffer.find('\n');
  if (eol == std::string::npos) {
    return false;
  }
  const std::size_t nbytes = static_cast<std::size_t>(
      std::stoull(buffer.substr(11, eol - 11)));
  if (buffer.size() < eol + 1 + nbytes) {
    return false;
  }
  page = buffer.substr(eol + 1, nbytes);
  consumed = eol + 1 + nbytes;
  return true;
}

TEST(ServerTest, MetricsVerbOverStreamLintsAndCountsExactly) {
  // METRICS is length-framed like the bulk verbs (the page is
  // multi-line, the protocol is line-oriented): the header declares the
  // byte count, the raw page follows, and the NEXT response line is
  // intact right after it.
  const std::string path = write_sample_pla("serve_metrics_stream.pla");
  Session session(1);
  metrics::Registry registry;  // fresh: counts are exactly this test's
  ServerOptions options;
  options.registry = &registry;
  Server server(session, options);

  std::istringstream in("LOAD s " + path + "\nEVAL s 7\nEVAL s 0\n" +
                        "METRICS\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 5u);

  const std::string wire = out.str();
  // Skip the LOAD and two EVAL response lines.
  std::size_t cursor = 0;
  for (int line = 0; line < 3; ++line) {
    cursor = wire.find('\n', cursor) + 1;
  }
  std::string page;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_metrics_response(wire.substr(cursor), page, consumed))
      << wire.substr(cursor, 200);
  EXPECT_EQ(wire.substr(cursor + consumed), "OK bye\n");

  const auto samples = testing_support::lint_prometheus_page(page);
  if (!metrics::metrics_enabled()) {
    return;  // page still renders and lints; values are zeros
  }
  // Per-verb counters are bumped AFTER the response bytes go out, so
  // the page a METRICS request returns excludes that request itself.
  EXPECT_EQ(testing_support::prom_value(samples, "ambit_serve_requests_total",
                                        "verb=\"LOAD\""),
            1.0);
  EXPECT_EQ(testing_support::prom_value(samples, "ambit_serve_requests_total",
                                        "verb=\"EVAL\""),
            2.0);
  EXPECT_EQ(testing_support::prom_value(samples, "ambit_serve_requests_total",
                                        "verb=\"METRICS\""),
            0.0);
  EXPECT_EQ(testing_support::prom_value(samples, "ambit_serve_request_us_count",
                                        "verb=\"EVAL\""),
            2.0);
  EXPECT_EQ(testing_support::prom_value(samples,
                                        "ambit_serve_malformed_requests_total"),
            0.0);
  // The pool gauges are refreshed at scrape time (a <=1-worker session
  // runs inline: zero pool threads is the truthful answer).
  EXPECT_EQ(testing_support::prom_value(samples, "ambit_pool_workers"),
            static_cast<double>(session.pool().num_workers()));
}

TEST(ServerTest, HandleLineRejectsMetricsWithoutTransport) {
  // Like EVALB/SIMB: the one-line text entry point cannot carry the
  // multi-line page.
  Session session(1);
  Server server(session);
  EXPECT_TRUE(starts_with(server.handle_line("METRICS"), "ERR METRICS"));
}

TEST(ServerTest, ErrorResponsesBumpTheErrorCounter) {
  Session session(1);
  metrics::Registry registry;
  ServerOptions options;
  options.registry = &registry;
  Server server(session, options);
  std::istringstream in("EVAL ghost ff\nNONSENSE\nSTATS\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 4u);
  if (!metrics::metrics_enabled()) {
    return;
  }
  const metrics::Counter* errors =
      registry.find_counter("ambit_serve_request_errors_total");
  ASSERT_NE(errors, nullptr);
  EXPECT_EQ(errors->value(), 2u);  // the bad EVAL and the unknown verb
  // An unparseable line counts as malformed, not under any verb.
  const metrics::Counter* malformed =
      registry.find_counter("ambit_serve_malformed_requests_total");
  ASSERT_NE(malformed, nullptr);
  EXPECT_EQ(malformed->value(), 1u);
}

TEST(ServerTest, SlowRequestsDumpTheirPhaseTrace) {
  if (!metrics::metrics_enabled()) {
    GTEST_SKIP() << "phase tracing is compiled out";
  }
  // --slow-request-us 1 makes every request "slow": the warn record
  // must carry the full phase decomposition, rate-limited to one line.
  const std::string log_path = testing::TempDir() + "/serve_slow.log";
  std::remove(log_path.c_str());
  ASSERT_TRUE(logs::set_file(log_path));

  const std::string path = write_sample_pla("serve_slow.pla");
  Session session(1);
  metrics::Registry registry;
  ServerOptions options;
  options.registry = &registry;
  options.slow_request_us = 1;
  Server server(session, options);
  std::istringstream in("LOAD s " + path + "\nEVAL s 7\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 3u);

  logs::set_file("");  // restore stderr before asserting
  std::ifstream log(log_path);
  std::ostringstream text_stream;
  text_stream << log.rdbuf();
  const std::string text = text_stream.str();
  EXPECT_NE(text.find("event=serve.slow_request"), std::string::npos) << text;
  for (const char* key :
       {"verb=", "total_us=", "parse_us=", "coalesce_wait_us=",
        "queue_wait_us=", "evaluate_us=", "serialize_us="}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "slow-request record missing " << key << ": " << text;
  }
}

// ---------------------------------------------------------------------------
// The EVALB binary bulk frame, over the stream transport.
// ---------------------------------------------------------------------------

/// Raw little-endian bytes of a batch's packed lanes — the EVALB wire
/// payload.
std::string frame_payload(const PatternBatch& batch) {
  std::vector<std::uint64_t> words(batch.total_words());
  batch.store_words(words.data(), words.size());
  return std::string(reinterpret_cast<const char*>(words.data()),
                     words.size() * sizeof(std::uint64_t));
}

TEST(ServerTest, StreamEvalbRoundTrip) {
  const std::string path = write_sample_pla("serve_evalb.pla");
  Session session(1);
  Server server(session);

  // 130 patterns force a partial final word (130 % 64 != 0).
  constexpr std::uint64_t kPatterns = 130;
  PatternBatch inputs(3, kPatterns);
  for (std::uint64_t p = 0; p < kPatterns; ++p) {
    inputs.set_pattern(p, {(p & 1) != 0, (p & 2) != 0, (p & 4) != 0});
  }
  std::ostringstream request;
  request << "LOAD s " << path << "\n"
          << "EVALB s " << kPatterns << " " << inputs.total_words() << "\n"
          << frame_payload(inputs) << "QUIT\n";
  std::istringstream in(request.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 3u);

  // Response stream: LOAD line, EVALB header line, raw payload, QUIT
  // line.
  const core::GnorPla pla = core::GnorPla::map_cover(
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"}));
  const PatternBatch expected = pla.evaluate_batch(inputs);
  std::istringstream response(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK loaded s"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_EQ(line, evalb_response_header(kPatterns, expected.total_words()));
  std::vector<std::uint64_t> out_words(expected.total_words());
  response.read(reinterpret_cast<char*>(out_words.data()),
                static_cast<std::streamsize>(out_words.size() *
                                             sizeof(std::uint64_t)));
  ASSERT_EQ(response.gcount(),
            static_cast<std::streamsize>(out_words.size() *
                                         sizeof(std::uint64_t)));
  PatternBatch outputs(expected.num_signals(), kPatterns);
  outputs.load_words(out_words.data(), out_words.size());
  EXPECT_EQ(outputs, expected);
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_EQ(line, "OK bye");

  // The session counted the bulk patterns exactly.
  EXPECT_EQ(session.stats().patterns, kPatterns);
}

TEST(ServerTest, EvalbLengthPrefixKeepsStreamFramedOnErrors) {
  // An unknown circuit and a wrong word count both consume exactly the
  // declared payload, answer ERR, and leave the NEXT request intact.
  const std::string path = write_sample_pla("serve_evalb_err.pla");
  Session session(1);
  Server server(session);
  PatternBatch inputs = PatternBatch::exhaustive(3);  // 8 patterns, 3 words

  std::ostringstream request;
  request << "EVALB ghost 8 3\n" << frame_payload(inputs)      // unknown name
          << "LOAD s " << path << "\n"
          << "EVALB s 8 7\n"                                   // wrong count
          << std::string(7 * sizeof(std::uint64_t), '\xab')
          << "EVALB s 0 0\n"                                   // no patterns
          << "STATS\nQUIT\n";
  std::istringstream in(request.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 6u);

  std::istringstream response(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR no circuit loaded under 'ghost'"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK loaded s"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR EVALB"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR EVALB needs at least one pattern"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK circuits=1"));
  EXPECT_EQ(session.stats().evals, 0u);  // no bulk request ever evaluated
}

TEST(ServerTest, EvalbHugePatternCountIsRejectedNotCrashing) {
  // A pattern count near 2^64 wraps (np + 63) / 64 to zero words; the
  // framing checks would all pass and the lane load would write out of
  // bounds. It must come back as a plain ERR on a live connection.
  const std::string path = write_sample_pla("serve_evalb_huge.pla");
  Session session(1);
  Server server(session);
  std::istringstream in("LOAD s " + path +
                        "\nEVALB s 18446744073709551553 0\nSTATS\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 4u);
  std::istringstream response(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(response, line));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR EVALB pattern count")) << line;
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK circuits=1"));
}

TEST(ServerTest, EvalbPrefixedTypoVerbDoesNotDropConnection) {
  // Only the exact "EVALB" verb is unframed on a parse failure; a typo
  // sharing the prefix is an ordinary one-line request and serving
  // continues.
  Session session(1);
  Server server(session);
  std::istringstream in("EVALBATCH x ff\nSTATS\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 3u);
  EXPECT_NE(out.str().find("OK circuits=0"), std::string::npos);
}

TEST(ServerTest, EvalbOversizedHeaderDropsConnection) {
  // A header announcing more than kMaxEvalbWords must be refused
  // BEFORE any allocation, and the connection closed (the stream can
  // no longer be trusted).
  Session session(1);
  Server server(session);
  std::istringstream in("EVALB f 1 99999999999\nSTATS\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 1u);
  EXPECT_TRUE(starts_with(out.str(), "ERR EVALB payload"));
  EXPECT_EQ(out.str().find("OK circuits"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SIM / SIMB: switch-level timing queries over the serve layer.
// ---------------------------------------------------------------------------

/// Expected SIM token for pattern `bits` through a scalar simulation of
/// `gnor` — the independent oracle the served answers are checked
/// against (same formatting helper, values from per-pattern settles).
std::string expected_sim_token(const core::GnorPla& gnor,
                               const std::vector<bool>& bits) {
  simulate::GnorPlaSimulator sim(gnor, tech::default_cnfet_electrical());
  const simulate::PlaSimResult r = sim.simulate(bits);
  std::vector<bool> outputs;
  for (const simulate::Logic v : r.outputs) {
    outputs.push_back(v == simulate::Logic::k1);
  }
  return sim_token(outputs, r.precharge_delay_s, r.plane1_eval_delay_s,
                   r.plane2_eval_delay_s);
}

TEST(ServerTest, StreamSimRoundTripMatchesScalarSimulator) {
  const std::string path = write_sample_pla("serve_sim_stream.pla");
  Session session(1);
  Server server(session);
  std::istringstream in("LOAD s " + path + "\nSIM s 0 7 3\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 3u);

  std::vector<std::string> lines;
  std::istringstream responses(out.str());
  for (std::string line; std::getline(responses, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  const core::GnorPla& gnor = session.get("s")->gnor;
  const std::string expected = "OK " +
                               expected_sim_token(gnor, hex_decode("0", 3)) +
                               " " +
                               expected_sim_token(gnor, hex_decode("7", 3)) +
                               " " +
                               expected_sim_token(gnor, hex_decode("3", 3));
  EXPECT_EQ(lines[1], expected);
  EXPECT_EQ(session.stats().sims, 1u);
  EXPECT_EQ(session.stats().sim_patterns, 3u);
}

TEST(ServerTest, SimErrorLines) {
  const std::string path = write_sample_pla("serve_sim_err.pla");
  Session session(1);
  Server server(session);
  // Unknown circuit.
  EXPECT_TRUE(starts_with(server.handle_line("SIM ghost 0"), "ERR no circuit"));
  ASSERT_TRUE(starts_with(server.handle_line("LOAD s " + path), "OK"));
  // Width mismatch: bit 3 set on a 3-input circuit.
  EXPECT_TRUE(starts_with(server.handle_line("SIM s 8"), "ERR"));
  // SIMB is binary-only in the text entry point, like EVALB.
  EXPECT_TRUE(starts_with(server.handle_line("SIMB s 8 3"), "ERR SIMB"));
  EXPECT_EQ(session.stats().sims, 0u);
}

TEST(ServerTest, StreamSimbRoundTrip) {
  const std::string path = write_sample_pla("serve_simb.pla");
  Session session(1);
  Server server(session);

  // 130 patterns force a partial final word.
  constexpr std::uint64_t kPatterns = 130;
  PatternBatch inputs(3, kPatterns);
  for (std::uint64_t p = 0; p < kPatterns; ++p) {
    inputs.set_pattern(p, {(p & 1) != 0, (p & 2) != 0, (p & 4) != 0});
  }
  std::ostringstream request;
  request << "LOAD s " << path << "\n"
          << "SIMB s " << kPatterns << " " << inputs.total_words() << "\n"
          << frame_payload(inputs) << "QUIT\n";
  std::istringstream in(request.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 3u);

  // Reference: direct batch simulation of the loaded array.
  simulate::GnorPlaSimulator direct(session.get("s")->gnor,
                                    tech::default_cnfet_electrical());
  const simulate::BatchSimResult expected = direct.simulate_batch(inputs);
  const std::uint64_t lane_words = expected.outputs.total_words();
  const std::uint64_t response_words = lane_words + 3 * kPatterns;

  std::istringstream response(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK loaded s"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_EQ(line, simb_response_header(kPatterns, response_words));
  std::vector<std::uint64_t> out_words(response_words);
  response.read(reinterpret_cast<char*>(out_words.data()),
                static_cast<std::streamsize>(out_words.size() *
                                             sizeof(std::uint64_t)));
  ASSERT_EQ(response.gcount(),
            static_cast<std::streamsize>(out_words.size() *
                                         sizeof(std::uint64_t)));
  PatternBatch outputs(expected.outputs.num_signals(), kPatterns);
  outputs.load_words(out_words.data(), lane_words);
  EXPECT_EQ(outputs, expected.outputs);
  std::vector<double> pre(kPatterns), e1(kPatterns), e2(kPatterns);
  std::memcpy(pre.data(), out_words.data() + lane_words,
              kPatterns * sizeof(double));
  std::memcpy(e1.data(), out_words.data() + lane_words + kPatterns,
              kPatterns * sizeof(double));
  std::memcpy(e2.data(), out_words.data() + lane_words + 2 * kPatterns,
              kPatterns * sizeof(double));
  EXPECT_EQ(pre, expected.precharge_delay_s);
  EXPECT_EQ(e1, expected.plane1_eval_delay_s);
  EXPECT_EQ(e2, expected.plane2_eval_delay_s);
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_EQ(line, "OK bye");
  EXPECT_EQ(session.stats().sim_patterns, kPatterns);
  EXPECT_EQ(session.stats().patterns, 0u);  // EVAL counters untouched
}

TEST(ServerTest, SimbErrorsKeepStreamFramed) {
  // Unknown name, wrong word count, zero patterns and an over-cap
  // pattern count all consume exactly the declared payload, answer one
  // ERR line, and leave the following requests intact.
  const std::string path = write_sample_pla("serve_simb_err.pla");
  Session session(1);
  Server server(session);
  PatternBatch inputs = PatternBatch::exhaustive(3);  // 8 patterns, 3 words

  std::ostringstream request;
  request << "SIMB ghost 8 3\n" << frame_payload(inputs)      // unknown name
          << "LOAD s " << path << "\n"
          << "SIMB s 8 7\n"                                   // wrong count
          << std::string(7 * sizeof(std::uint64_t), '\xcd')
          << "SIMB s 0 0\n"                                   // no patterns
          << "SIMB s " << (kMaxSimbPatterns + 1) << " 1\n"    // over the cap
          << std::string(sizeof(std::uint64_t), '\x11')
          << "STATS\nQUIT\n";
  std::istringstream in(request.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 7u);

  std::istringstream response(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR no circuit loaded under 'ghost'"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK loaded s"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR SIMB"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR SIMB needs at least one pattern"));
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "ERR SIMB pattern count")) << line;
  EXPECT_NE(line.find("simulation limit"), std::string::npos) << line;
  ASSERT_TRUE(std::getline(response, line));
  EXPECT_TRUE(starts_with(line, "OK circuits=1"));
  EXPECT_EQ(session.stats().sims, 0u);  // no bulk request ever simulated
}

TEST(ServerTest, SimbOversizedHeaderDropsConnection) {
  Session session(1);
  Server server(session);
  std::istringstream in("SIMB f 1 99999999999\nSTATS\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 1u);
  EXPECT_TRUE(starts_with(out.str(), "ERR SIMB payload"));
  EXPECT_EQ(out.str().find("OK circuits"), std::string::npos);
}

TEST(ServerTest, MalformedSimbHeaderDropsConnection) {
  // Like EVALB: an unparseable SIMB header unframes the byte stream, so
  // the server answers ERR once and closes; a typo'd "SIMBx" verb stays
  // an ordinary one-line failure.
  Session session(1);
  Server server(session);
  {
    std::istringstream in("SIMB f nonsense 3\nSTATS\n");
    std::ostringstream out;
    EXPECT_EQ(server.serve_stream(in, out), 1u);
    EXPECT_EQ(out.str().find("OK circuits"), std::string::npos);
  }
  {
    std::istringstream in("SIMBATCH f 8 3\nSTATS\nQUIT\n");
    std::ostringstream out;
    EXPECT_EQ(server.serve_stream(in, out), 3u);
    EXPECT_NE(out.str().find("OK circuits=0"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Server over a Unix-domain socket: a real client connection.
// ---------------------------------------------------------------------------

#ifndef _WIN32

// connect_with_retry / socket_transact come from serve/client.h — the
// one shared Unix-socket client implementation used by these tests AND
// bench_serve_throughput.

/// The dual-path conformance matrix: every socket test below is
/// parameterized over BOTH io models (thread-per-connection and the
/// epoll event loop) and must pass byte-identically on each — the
/// framing, the EVALB/SIMB exchanges, the drop boundaries, the drain
/// semantics, and the exact counters are all model-independent
/// contract, not implementation accidents. (When AMBIT_IO_MODEL is set
/// — the CI fallback leg — resolve_io_model collapses both parameter
/// values onto the forced model; the matrix then proves that model
/// twice rather than proving nothing.)
class SocketMatrixTest : public ::testing::TestWithParam<IoModel> {
 protected:
  /// ServerOptions pinned to the parameterized io model.
  ServerOptions opts() const {
    ServerOptions options;
    options.io_model = GetParam();
    return options;
  }
};

/// Unix-domain socket transport matrix.
class ServerSocketTest : public SocketMatrixTest {};
/// TCP transport matrix.
class TcpSocketTest : public SocketMatrixTest {};
/// Observability-surface matrix (counters, drops, HTTP side listener).
class ObservabilitySocketTest : public SocketMatrixTest {};

std::string io_model_param_name(
    const ::testing::TestParamInfo<IoModel>& info) {
  return io_model_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(IoModels, ServerSocketTest,
                         ::testing::Values(IoModel::kThreads, IoModel::kEpoll),
                         io_model_param_name);
INSTANTIATE_TEST_SUITE_P(IoModels, TcpSocketTest,
                         ::testing::Values(IoModel::kThreads, IoModel::kEpoll),
                         io_model_param_name);
INSTANTIATE_TEST_SUITE_P(IoModels, ObservabilitySocketTest,
                         ::testing::Values(IoModel::kThreads, IoModel::kEpoll),
                         io_model_param_name);

TEST_P(ServerSocketTest, UnixSocketSessionEndToEnd) {
  const std::string path = write_sample_pla("serve_socket.pla");
  const std::string socket_path = testing::TempDir() + "/ambit_serve_test.sock";
  Session session(2);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;
  const std::vector<std::string> lines = socket_transact(
      fd,
      "LOAD s " + path + "\nEVAL s 7 0\nVERIFY s\nSTATS\nSHUTDOWN\n", 5);
  ::close(fd);
  server_thread.join();

  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(starts_with(lines[0], "OK loaded s"));
  EXPECT_TRUE(starts_with(lines[1], "OK "));
  EXPECT_TRUE(starts_with(lines[2], "OK verified s"));
  EXPECT_TRUE(starts_with(lines[3], "OK circuits=1"));
  EXPECT_EQ(lines[4], "OK shutting down");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST_P(ServerSocketTest, UnixSocketServesConsecutiveConnections) {
  const std::string path = write_sample_pla("serve_socket2.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_test2.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  // Connection 1 loads and quits; connection 2 still sees the circuit
  // (the session outlives connections), then shuts the server down.
  const int first = connect_with_retry(socket_path);
  ASSERT_GE(first, 0);
  const auto lines1 =
      socket_transact(first, "LOAD s " + path + "\nQUIT\n", 2);
  ::close(first);
  ASSERT_EQ(lines1.size(), 2u);
  EXPECT_TRUE(starts_with(lines1[0], "OK loaded s"));

  const int second = connect_with_retry(socket_path);
  ASSERT_GE(second, 0);
  const auto lines2 = socket_transact(second, "EVAL s 5\nSHUTDOWN\n", 2);
  ::close(second);
  server_thread.join();
  ASSERT_EQ(lines2.size(), 2u);
  EXPECT_TRUE(starts_with(lines2[0], "OK "));
}

TEST_P(ServerSocketTest, ConnectionsAreServedConcurrently) {
  // Regression for the sequential-accept prototype: with one client
  // connected and IDLE, a second client must still get answers. Under
  // sequential accept this deadlocks (the second connection sits in the
  // backlog until the first closes).
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_conc.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int idle = connect_with_retry(socket_path);
  ASSERT_GE(idle, 0);
  const int active = connect_with_retry(socket_path);
  ASSERT_GE(active, 0);
  const auto lines = socket_transact(active, "STATS\nQUIT\n", 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[0], "OK circuits=0"));
  ::close(active);

  // The idle connection still works afterwards, then shuts down.
  const auto idle_lines = socket_transact(idle, "SHUTDOWN\n", 1);
  ASSERT_EQ(idle_lines.size(), 1u);
  EXPECT_EQ(idle_lines[0], "OK shutting down");
  ::close(idle);
  server_thread.join();
}

TEST_P(ServerSocketTest, ResidualEvalbHeaderAtEofFailsCleanly) {
  // An EVALB header that arrives WITHOUT its newline and payload before
  // the peer half-closes must not re-read its own header text as
  // payload — the payload read hits EOF and the connection just ends.
  const std::string path = write_sample_pla("serve_resid_evalb.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_residb.sock";
  Session session(1);
  session.load("s", path);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const std::string request = "EVALB s 8 3";  // header only, no newline
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ::shutdown(fd, SHUT_WR);
  std::string buffer;
  char chunk[256];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(buffer, "");  // no bogus OK EVALB from self-consumed bytes
  EXPECT_EQ(session.stats().evals, 0u);

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();
}

TEST_P(ServerSocketTest, OversizedRequestLineDropsConnection) {
  // A newline-free byte stream must not grow the receive buffer
  // without bound: past kMaxLineBytes the server answers ERR once and
  // drops the connection.
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_longline.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const std::string blob(kMaxLineBytes + (1 << 16), 'a');  // no newline
  std::size_t sent = 0;
  while (sent < blob.size()) {
    // MSG_NOSIGNAL: the server drops us mid-send (that's the point)
    // and EPIPE must not SIGPIPE the test process.
    const ssize_t n = ::send(fd, blob.data() + sent, blob.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_TRUE(starts_with(buffer, "ERR request line exceeds")) << buffer;

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();
}

TEST_P(ServerSocketTest, ShutdownInterruptsSlotWait) {
  // max_connections=1: connection B is accepted but waits for A's
  // slot. A then issues SHUTDOWN — the accept loop must abandon the
  // slot wait and close B instead of serving one more connection.
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_slotwait.sock";
  Session session(1);
  ServerOptions slot_options;
  slot_options.io_model = GetParam();
  slot_options.max_connections = 1;
  Server server(session, slot_options);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int a = connect_with_retry(socket_path);
  ASSERT_GE(a, 0);
  // Make sure A owns the slot before B arrives.
  ASSERT_EQ(socket_transact(a, "STATS\n", 1).size(), 1u);
  const int b = connect_with_retry(socket_path);
  ASSERT_GE(b, 0);
  const std::string probe = "STATS\n";
  ASSERT_EQ(::send(b, probe.data(), probe.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(probe.size()));

  const auto lines = socket_transact(a, "SHUTDOWN\n", 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "OK shutting down");
  ::close(a);
  server_thread.join();

  // B was dropped, never served: EOF — or ECONNRESET when the close
  // discarded B's unread request bytes — but never a response.
  char extra;
  EXPECT_LE(::read(b, &extra, 1), 0);
  ::close(b);
}

TEST_P(ServerSocketTest, ResidualLineWithoutNewlineIsServed) {
  // A final request that arrives without a trailing '\n' before the
  // peer half-closes must be served, not silently dropped.
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_resid.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const std::string request = "STATS";  // no newline
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ::shutdown(fd, SHUT_WR);  // EOF on the server's read side
  std::string buffer;
  char chunk[256];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_TRUE(starts_with(buffer, "OK circuits=0")) << buffer;

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();
}

TEST_P(ServerSocketTest, PipelinedLinesAfterQuitAreDiscarded) {
  // Complete lines already buffered behind a QUIT (or SHUTDOWN) must
  // not be half-processed: the quit response is the last one, and the
  // pipelined LOAD never happens.
  const std::string path = write_sample_pla("serve_postquit.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_postquit.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  // One write carries QUIT plus a trailing LOAD in the same buffer.
  const auto lines =
      socket_transact(fd, "QUIT\nLOAD s " + path + "\n", 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "OK bye");
  // The connection is closed: no further response ever arrives.
  char extra;
  EXPECT_EQ(::read(fd, &extra, 1), 0);
  ::close(fd);
  EXPECT_EQ(session.stats().loads, 0u);

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  // Same drain contract for SHUTDOWN: the pipelined LOAD is discarded.
  const auto ctl_lines =
      socket_transact(ctl, "SHUTDOWN\nLOAD s " + path + "\n", 1);
  ASSERT_EQ(ctl_lines.size(), 1u);
  EXPECT_EQ(ctl_lines[0], "OK shutting down");
  ::close(ctl);
  server_thread.join();
  EXPECT_EQ(session.stats().loads, 0u);
}

TEST_P(ServerSocketTest, RefusesToStealLiveSocket) {
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_live.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });
  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);  // the first server is live

  // A second server must fail loudly instead of silently unlinking the
  // live listener's socket.
  Session session2(1);
  Server server2(session2);
  EXPECT_THROW(server2.serve_unix(socket_path), Error);

  // The first server is unharmed.
  const auto lines = socket_transact(fd, "SHUTDOWN\n", 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "OK shutting down");
  ::close(fd);
  server_thread.join();
}

TEST_P(ServerSocketTest, ReplacesStaleSocketFile) {
  // A leftover socket file with no listener behind it (e.g. after a
  // crash) must be replaced, not reported as a conflict.
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_stale.sock";
  ::unlink(socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(stale);  // socket file remains, nobody listens

  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });
  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const auto lines = socket_transact(fd, "HELP\nSHUTDOWN\n", 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[0], "OK commands:"));
  ::close(fd);
  server_thread.join();
}

TEST_P(ServerSocketTest, MultiClientHammerMatchesSequentialServing) {
  // >= 4 client threads hammer one server; every response must be
  // bit-identical to what sequential serving (== direct evaluation of
  // the mapped array) would produce, and the exact-request counters
  // must add up.
  const std::string path = write_sample_pla("serve_hammer.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_hammer.sock";
  Session session(/*workers=*/2);
  session.load("s", path);
  const core::GnorPla pla = core::GnorPla::map_cover(
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"}));
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_with_retry(socket_path);
      if (fd < 0) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      std::string requests;
      std::vector<std::string> expected;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        // Client-distinct pattern pairs covering the whole input space.
        const int a = (c + r) % 8;
        const int b = (c * 3 + r * 5) % 8;
        const std::string ha = hex_encode(
            {(a & 1) != 0, (a & 2) != 0, (a & 4) != 0});
        const std::string hb = hex_encode(
            {(b & 1) != 0, (b & 2) != 0, (b & 4) != 0});
        requests += "EVAL s " + ha + " " + hb + "\n";
        expected.push_back(
            "OK " +
            hex_encode(pla.evaluate(hex_decode(ha, 3))) + " " +
            hex_encode(pla.evaluate(hex_decode(hb, 3))));
      }
      requests += "QUIT\n";
      const std::vector<std::string> lines = socket_transact(
          fd, requests, static_cast<std::size_t>(kRequestsPerClient) + 1);
      ::close(fd);
      if (lines.size() != static_cast<std::size_t>(kRequestsPerClient) + 1) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        if (lines[static_cast<std::size_t>(r)] !=
            expected[static_cast<std::size_t>(r)]) {
          ++mismatches[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();

  // Counters stayed exact under concurrency.
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.evals,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(stats.patterns,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient * 2);
}

TEST_P(ServerSocketTest, UnixSocketEvalbRoundTrip) {
  // The binary bulk frame over the real socket transport, pipelined in
  // one write together with its header and a QUIT.
  const std::string path = write_sample_pla("serve_evalb_sock.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_evalb.sock";
  Session session(1);
  session.load("s", path);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  PatternBatch inputs = PatternBatch::exhaustive(3);
  const core::GnorPla pla = core::GnorPla::map_cover(
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"}));
  const PatternBatch expected = pla.evaluate_batch(inputs);

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  std::ostringstream request;
  request << "EVALB s " << inputs.num_patterns() << " "
          << inputs.total_words() << "\n"
          << frame_payload(inputs) << "SHUTDOWN\n";
  const std::string wire = request.str();
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));

  std::string buffer;
  char chunk[4096];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server_thread.join();

  std::vector<std::uint64_t> out_words;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_evalb_response(buffer, expected.num_patterns(),
                                    expected.total_words(), out_words,
                                    consumed))
      << buffer;
  PatternBatch outputs(expected.num_signals(), expected.num_patterns());
  outputs.load_words(out_words.data(), out_words.size());
  EXPECT_EQ(outputs, expected);
  EXPECT_EQ(buffer.substr(consumed), "OK shutting down\n");
}

TEST_P(ServerSocketTest, UnixSocketSimAndSimbRoundTrip) {
  // SIM (text) and SIMB (binary frame) over the real socket transport,
  // checked against scalar and batch simulation of the loaded array.
  const std::string path = write_sample_pla("serve_sim_sock.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_simb.sock";
  Session session(1);
  session.load("s", path);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const core::GnorPla& gnor = session.get("s")->gnor;

  // Text SIM first: one request line, one token per pattern.
  const int sim_fd = connect_with_retry(socket_path);
  ASSERT_GE(sim_fd, 0);
  const auto sim_lines = socket_transact(sim_fd, "SIM s 7 0\nQUIT\n", 2);
  ::close(sim_fd);
  ASSERT_EQ(sim_lines.size(), 2u);
  EXPECT_EQ(sim_lines[0], "OK " + expected_sim_token(gnor, hex_decode("7", 3)) +
                              " " + expected_sim_token(gnor, hex_decode("0", 3)));

  // Binary SIMB, pipelined with SHUTDOWN in one write.
  PatternBatch inputs = PatternBatch::exhaustive(3);
  simulate::GnorPlaSimulator direct(gnor, tech::default_cnfet_electrical());
  const simulate::BatchSimResult expected = direct.simulate_batch(inputs);
  const std::uint64_t lane_words = expected.outputs.total_words();
  const std::uint64_t response_words =
      lane_words + 3 * inputs.num_patterns();

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  std::ostringstream request;
  request << "SIMB s " << inputs.num_patterns() << " "
          << inputs.total_words() << "\n"
          << frame_payload(inputs) << "SHUTDOWN\n";
  const std::string wire = request.str();
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  std::string buffer;
  char chunk[4096];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server_thread.join();

  std::vector<std::uint64_t> out_words;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_simb_response(buffer, inputs.num_patterns(),
                                   response_words, out_words, consumed))
      << buffer;
  PatternBatch outputs(expected.outputs.num_signals(), inputs.num_patterns());
  outputs.load_words(out_words.data(), lane_words);
  EXPECT_EQ(outputs, expected.outputs);
  std::vector<double> pre(inputs.num_patterns());
  std::memcpy(pre.data(), out_words.data() + lane_words,
              pre.size() * sizeof(double));
  EXPECT_EQ(pre, expected.precharge_delay_s);
  EXPECT_EQ(buffer.substr(consumed), "OK shutting down\n");
  EXPECT_EQ(session.stats().sims, 2u);  // one SIM + one SIMB
  EXPECT_EQ(session.stats().sim_patterns, 10u);
}

TEST_P(ServerSocketTest, MultiClientHammerMixesEvalbAndSimb) {
  // >= 4 clients interleave EVALB and SIMB bulk frames against the SAME
  // loaded circuit on one shared session: every binary response must be
  // bit-identical to direct evaluation/simulation, and the exact
  // counters must add up afterwards.
  const std::string path = write_sample_pla("serve_mixed_hammer.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_mixhammer.sock";
  Session session(/*workers=*/2);
  session.load("s", path);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  PatternBatch inputs = PatternBatch::exhaustive(3);
  const core::GnorPla& gnor = session.get("s")->gnor;
  const PatternBatch expected_eval = gnor.evaluate_batch(inputs);
  simulate::GnorPlaSimulator direct(gnor, tech::default_cnfet_electrical());
  const simulate::BatchSimResult expected_sim = direct.simulate_batch(inputs);
  std::vector<std::uint64_t> expected_eval_words(
      expected_eval.total_words());
  expected_eval.store_words(expected_eval_words.data(),
                            expected_eval_words.size());
  const std::uint64_t lane_words = expected_sim.outputs.total_words();
  const std::uint64_t simb_words = lane_words + 3 * inputs.num_patterns();
  std::vector<std::uint64_t> expected_simb_words(simb_words);
  expected_sim.outputs.store_words(expected_simb_words.data(), lane_words);
  std::memcpy(expected_simb_words.data() + lane_words,
              expected_sim.precharge_delay_s.data(),
              inputs.num_patterns() * sizeof(double));
  std::memcpy(expected_simb_words.data() + lane_words + inputs.num_patterns(),
              expected_sim.plane1_eval_delay_s.data(),
              inputs.num_patterns() * sizeof(double));
  std::memcpy(
      expected_simb_words.data() + lane_words + 2 * inputs.num_patterns(),
      expected_sim.plane2_eval_delay_s.data(),
      inputs.num_patterns() * sizeof(double));

  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 20;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_with_retry(socket_path);
      if (fd < 0) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      std::ostringstream request;
      for (int r = 0; r < kRoundsPerClient; ++r) {
        request << "EVALB s " << inputs.num_patterns() << " "
                << inputs.total_words() << "\n"
                << frame_payload(inputs)
                << "SIMB s " << inputs.num_patterns() << " "
                << inputs.total_words() << "\n"
                << frame_payload(inputs);
      }
      request << "QUIT\n";
      const std::string wire = request.str();
      std::size_t sent = 0;
      while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n <= 0) {
          break;
        }
        sent += static_cast<std::size_t>(n);
      }
      std::string buffer;
      char chunk[65536];
      for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      ::close(fd);
      // Parse the pipelined responses in order; any deviation from the
      // expected frames counts as a failure.
      std::size_t cursor = 0;
      for (int r = 0; r < kRoundsPerClient; ++r) {
        std::vector<std::uint64_t> words;
        std::size_t consumed = 0;
        if (!decode_evalb_response(buffer.substr(cursor),
                                   inputs.num_patterns(),
                                   expected_eval_words.size(), words,
                                   consumed) ||
            words != expected_eval_words) {
          failures[static_cast<std::size_t>(c)] = 1;
          return;
        }
        cursor += consumed;
        if (!decode_simb_response(buffer.substr(cursor),
                                  inputs.num_patterns(), simb_words, words,
                                  consumed) ||
            words != expected_simb_words) {
          failures[static_cast<std::size_t>(c)] = 1;
          return;
        }
        cursor += consumed;
      }
      if (buffer.substr(cursor) != "OK bye\n") {
        failures[static_cast<std::size_t>(c)] = 1;
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();

  // Counters stayed exact under mixed concurrent bulk traffic.
  const SessionStats stats = session.stats();
  const std::uint64_t rounds =
      static_cast<std::uint64_t>(kClients) * kRoundsPerClient;
  EXPECT_EQ(stats.evals, rounds);
  EXPECT_EQ(stats.patterns, rounds * inputs.num_patterns());
  EXPECT_EQ(stats.sims, rounds);
  EXPECT_EQ(stats.sim_patterns, rounds * inputs.num_patterns());
}

// ---------------------------------------------------------------------------
// TCP transport: the same connection loop, framing, drain and limits
// over AF_INET (serve_tcp shares serve_listener with serve_unix).
// ---------------------------------------------------------------------------

/// Starts `server` on an ephemeral TCP port on its own thread. Any
/// server-side exception (e.g. a sandbox that refuses the bind) is
/// caught and signalled as port = -1 — escaping a bare thread body
/// would std::terminate the whole test binary instead of failing one
/// test. Callers learn the port with serve::await_bound_port(port)
/// and must ASSERT it positive.
std::thread start_tcp_server(Server& server, std::atomic<int>& port,
                             const std::string& host = "127.0.0.1") {
  return std::thread([&server, &port, host] {
    try {
      server.serve_tcp(host, 0, &port);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve_tcp failed: %s\n", e.what());
      port.store(-1, std::memory_order_release);
    }
  });
}

TEST_P(TcpSocketTest, SessionEndToEnd) {
  const std::string path = write_sample_pla("serve_tcp.pla");
  Session session(2);
  Server server(session, opts());
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port);
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  const int fd = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(fd, 0) << "could not connect to 127.0.0.1:" << bound;
  const std::vector<std::string> lines = socket_transact(
      fd,
      "LOAD s " + path + "\nEVAL s 7 0\nVERIFY s\nSTATS\nSHUTDOWN\n", 5);
  ::close(fd);
  server_thread.join();

  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(starts_with(lines[0], "OK loaded s"));
  EXPECT_TRUE(starts_with(lines[1], "OK "));
  EXPECT_TRUE(starts_with(lines[2], "OK verified s"));
  EXPECT_TRUE(starts_with(lines[3], "OK circuits=1"));
  EXPECT_EQ(lines[4], "OK shutting down");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST_P(TcpSocketTest, ConnectionsAreServedConcurrently) {
  // Same regression as the Unix transport: one idle connected client
  // must not starve a second one — they share the concurrent accept
  // loop, not a sequential prototype.
  Session session(1);
  Server server(session, opts());
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port, "localhost");
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  const int idle = connect_tcp_with_retry("localhost", bound);
  ASSERT_GE(idle, 0);
  const int active = connect_tcp_with_retry("localhost", bound);
  ASSERT_GE(active, 0);
  const auto lines = socket_transact(active, "STATS\nQUIT\n", 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[0], "OK circuits=0"));
  ::close(active);

  // The idle connection still works afterwards — and its SHUTDOWN
  // drains the server gracefully while it is itself still connected.
  const auto idle_lines = socket_transact(idle, "SHUTDOWN\n", 1);
  ASSERT_EQ(idle_lines.size(), 1u);
  EXPECT_EQ(idle_lines[0], "OK shutting down");
  ::close(idle);
  server_thread.join();
}

TEST_P(TcpSocketTest, EvalbAndSimbRoundTrip) {
  // Both binary bulk frames over a real TCP socket, pipelined with the
  // SHUTDOWN that drains the server: decoded lanes (and SIMB's delay
  // arrays) must match direct evaluation/simulation bit for bit.
  const std::string path = write_sample_pla("serve_tcp_bulk.pla");
  Session session(1);
  session.load("s", path);
  Server server(session, opts());
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port);
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  PatternBatch inputs = PatternBatch::exhaustive(3);
  const core::GnorPla& gnor = session.get("s")->gnor;
  const PatternBatch expected = gnor.evaluate_batch(inputs);
  simulate::GnorPlaSimulator direct(gnor, tech::default_cnfet_electrical());
  const simulate::BatchSimResult expected_sim = direct.simulate_batch(inputs);
  const std::uint64_t lane_words = expected_sim.outputs.total_words();
  const std::uint64_t simb_words = lane_words + 3 * inputs.num_patterns();

  const int fd = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(fd, 0);
  std::ostringstream request;
  request << "EVALB s " << inputs.num_patterns() << " "
          << inputs.total_words() << "\n"
          << frame_payload(inputs) << "SIMB s " << inputs.num_patterns()
          << " " << inputs.total_words() << "\n"
          << frame_payload(inputs) << "SHUTDOWN\n";
  const std::string wire = request.str();
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string buffer;
  char chunk[4096];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server_thread.join();

  std::vector<std::uint64_t> out_words;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_evalb_response(buffer, expected.num_patterns(),
                                    expected.total_words(), out_words,
                                    consumed))
      << buffer;
  PatternBatch outputs(expected.num_signals(), expected.num_patterns());
  outputs.load_words(out_words.data(), out_words.size());
  EXPECT_EQ(outputs, expected);
  std::size_t sim_consumed = 0;
  ASSERT_TRUE(decode_simb_response(buffer.substr(consumed),
                                   inputs.num_patterns(), simb_words,
                                   out_words, sim_consumed))
      << buffer.substr(consumed);
  PatternBatch sim_outputs(expected_sim.outputs.num_signals(),
                           inputs.num_patterns());
  sim_outputs.load_words(out_words.data(), lane_words);
  EXPECT_EQ(sim_outputs, expected_sim.outputs);
  std::vector<double> pre(inputs.num_patterns());
  std::memcpy(pre.data(), out_words.data() + lane_words,
              pre.size() * sizeof(double));
  EXPECT_EQ(pre, expected_sim.precharge_delay_s);
  EXPECT_EQ(buffer.substr(consumed + sim_consumed), "OK shutting down\n");
}

TEST_P(TcpSocketTest, OversizedRequestLineDropsConnection) {
  // The kMaxLineBytes boundary is transport-agnostic: the TCP side
  // must answer ERR once and drop, exactly like the Unix side.
  Session session(1);
  Server server(session, opts());
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port);
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  const int fd = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(fd, 0);
  const std::string blob(kMaxLineBytes + (1 << 16), 'a');  // no newline
  std::size_t sent = 0;
  while (sent < blob.size()) {
    const ssize_t n = ::send(fd, blob.data() + sent, blob.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_TRUE(starts_with(buffer, "ERR request line exceeds")) << buffer;

  const int ctl = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();
}

TEST_P(TcpSocketTest, IdleTimeoutDropsSilentPeer) {
  // ServerOptions::idle_timeout_secs reaches the TCP transport through
  // the shared listener loop: a peer that never sends is dropped after
  // the timeout, and the freed slot still serves new connections.
  Session session(1);
  ServerOptions options;
  options.io_model = GetParam();
  options.idle_timeout_secs = 1;
  Server server(session, options);
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port);
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  const int silent = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(silent, 0);
  // Say nothing: the server's SO_RCVTIMEO must cut us loose. A clean
  // drop shows up as EOF (or a reset) on our read side within a couple
  // of timeout periods.
  char byte;
  const ssize_t n = ::read(silent, &byte, 1);
  EXPECT_LE(n, 0);
  ::close(silent);

  const int ctl = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(ctl, 0);
  const auto lines = socket_transact(ctl, "STATS\nSHUTDOWN\n", 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[0], "OK circuits=0"));
  ::close(ctl);
  server_thread.join();
}

TEST_P(TcpSocketTest, MultiClientHammerMatchesDirectEvaluation) {
  // The concurrent hammer of the Unix matrix over TCP: four clients,
  // client-distinct patterns, every response checked against direct
  // evaluation, exact counters, graceful SHUTDOWN drain at the end.
  const std::string path = write_sample_pla("serve_tcp_hammer.pla");
  Session session(/*workers=*/2);
  session.load("s", path);
  const core::GnorPla pla = core::GnorPla::map_cover(
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"}));
  Server server(session, opts());
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port);
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_tcp_with_retry("127.0.0.1", bound);
      if (fd < 0) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      std::string requests;
      std::vector<std::string> expected;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int a = (c + r) % 8;
        const int b = (c * 3 + r * 5) % 8;
        const std::string ha = hex_encode(
            {(a & 1) != 0, (a & 2) != 0, (a & 4) != 0});
        const std::string hb = hex_encode(
            {(b & 1) != 0, (b & 2) != 0, (b & 4) != 0});
        requests += "EVAL s " + ha + " " + hb + "\n";
        expected.push_back(
            "OK " +
            hex_encode(pla.evaluate(hex_decode(ha, 3))) + " " +
            hex_encode(pla.evaluate(hex_decode(hb, 3))));
      }
      requests += "QUIT\n";
      const std::vector<std::string> lines = socket_transact(
          fd, requests, static_cast<std::size_t>(kRequestsPerClient) + 1);
      ::close(fd);
      if (lines.size() != static_cast<std::size_t>(kRequestsPerClient) + 1) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        if (lines[static_cast<std::size_t>(r)] !=
            expected[static_cast<std::size_t>(r)]) {
          ++mismatches[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  const int ctl = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.evals,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(stats.patterns,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient * 2);
}

TEST_P(TcpSocketTest, CoalescedHammerBitIdenticalWithExactStats) {
  // Coalescing enabled over the TCP transport: four clients of small
  // EVAL and EVALB requests; every response must match direct
  // evaluation, the counters must equal the uncoalesced run's, and
  // STATS must expose the coalescing fields.
  const std::string path = write_sample_pla("serve_tcp_coal.pla");
  Session session(1);
  session.load("s", path);
  const auto circuit = session.get("s");
  ServerOptions options;
  options.io_model = GetParam();
  options.coalesce.window_us = 2000;
  options.coalesce.min_patterns = 4;
  Server server(session, options);
  std::atomic<int> port{0};
  std::thread server_thread = start_tcp_server(server, port);
  const int bound = await_bound_port(port);
  ASSERT_GT(bound, 0);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Odd clients speak EVALB (2-pattern binary frames), even ones
      // hex EVAL — both ride the same coalescer.
      const int fd = connect_tcp_with_retry("127.0.0.1", bound);
      if (fd < 0) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const PatternBatch batch = make_request_batch(
            3, 2, static_cast<std::uint64_t>(c * 1000 + r));
        const PatternBatch expected = circuit->gnor.evaluate_batch(batch);
        if (c % 2 == 0) {
          const std::string request = "EVAL s " +
                                      hex_encode(batch.pattern(0)) + " " +
                                      hex_encode(batch.pattern(1)) + "\n";
          const auto lines = socket_transact(fd, request, 1);
          const std::string want = "OK " + hex_encode(expected.pattern(0)) +
                                   " " + hex_encode(expected.pattern(1));
          if (lines.size() != 1 || lines[0] != want) {
            failures[static_cast<std::size_t>(c)] = 1;
            return;
          }
        } else {
          std::ostringstream request;
          request << "EVALB s " << batch.num_patterns() << " "
                  << batch.total_words() << "\n" << frame_payload(batch);
          const std::string wire = request.str();
          if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
              static_cast<ssize_t>(wire.size())) {
            failures[static_cast<std::size_t>(c)] = 1;
            return;
          }
          // One EVALB response frame: header line + payload.
          std::string buffer;
          char chunk[4096];
          std::vector<std::uint64_t> words;
          std::size_t consumed = 0;
          bool decoded = false;
          for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            if (decode_evalb_response(buffer, batch.num_patterns(),
                                      expected.total_words(), words,
                                      consumed)) {
              decoded = true;
              break;
            }
            if (buffer.size() > (1u << 16)) {
              break;  // some other (wrong) response is accumulating
            }
          }
          PatternBatch got(expected.num_signals(), batch.num_patterns());
          if (decoded) {
            got.load_words(words.data(), words.size());
          }
          if (!decoded || got != expected) {
            failures[static_cast<std::size_t>(c)] = 1;
            return;
          }
        }
      }
      socket_transact(fd, "QUIT\n", 1);
      ::close(fd);
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  const int ctl = connect_tcp_with_retry("127.0.0.1", bound);
  ASSERT_GE(ctl, 0);
  const auto stats_lines = socket_transact(ctl, "STATS\nSHUTDOWN\n", 2);
  ::close(ctl);
  server_thread.join();

  // Exact per-request accounting regardless of how much fusion the
  // timing produced — and the STATS line advertises the feature.
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.evals,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(stats.patterns,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient * 2);
  ASSERT_EQ(stats_lines.size(), 2u);
  EXPECT_NE(stats_lines[0].find("coalesced_requests="), std::string::npos)
      << stats_lines[0];
  EXPECT_NE(stats_lines[0].find("coalesced_batches="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Observability over real transports: STATS connection counts, the
// HTTP side listener, and exact per-verb accounting under a
// concurrent mixed-verb hammer.
// ---------------------------------------------------------------------------

TEST_P(ObservabilitySocketTest, StatsReportsConnectionCounts) {
  // The append-only STATS extension: " connections=<active>/<accepted>"
  // closes the line, exact regardless of -DAMBIT_METRICS (the counts
  // are plain Server atomics, not metrics-layer objects).
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_connstats.sock";
  Session session(1);
  Server server(session, opts());
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const auto lines = socket_transact(fd, "STATS\n", 1);
  ASSERT_EQ(lines.size(), 1u);
  // This connection is the only one ever accepted, and it is live.
  const std::string suffix = " connections=1/1";
  ASSERT_GE(lines[0].size(), suffix.size());
  EXPECT_EQ(lines[0].substr(lines[0].size() - suffix.size()), suffix)
      << lines[0];

  // A second connection: active stays 1 after the first quits, accepted
  // keeps counting.
  const auto quit = socket_transact(fd, "QUIT\n", 1);
  ASSERT_EQ(quit.size(), 1u);
  ::close(fd);
  const int second = connect_with_retry(socket_path);
  ASSERT_GE(second, 0);
  std::vector<std::string> lines2;
  // The first connection's teardown (connections_active_ decrement)
  // races our connect; poll STATS until it settles.
  for (int attempt = 0; attempt < 100; ++attempt) {
    lines2 = socket_transact(second, "STATS\n", 1);
    ASSERT_EQ(lines2.size(), 1u);
    if (lines2[0].find(" connections=1/2") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(lines2[0].find(" connections=1/2"), std::string::npos)
      << lines2[0];
  socket_transact(second, "SHUTDOWN\n", 1);
  ::close(second);
  server_thread.join();
}

/// One raw HTTP exchange against the side listener: connect, send
/// `request`, read to EOF (the listener answers Connection: close).
std::string http_transact(int port, const std::string& request) {
  const int fd = connect_tcp_with_retry("127.0.0.1", port);
  EXPECT_GE(fd, 0);
  if (fd < 0) {
    return "";
  }
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// The body of an HTTP response, verifying Content-Length framing.
std::string http_body(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  EXPECT_NE(head_end, std::string::npos) << response.substr(0, 200);
  if (head_end == std::string::npos) {
    return "";
  }
  const std::string body = response.substr(head_end + 4);
  const std::size_t cl = response.find("Content-Length: ");
  EXPECT_NE(cl, std::string::npos);
  if (cl != std::string::npos) {
    EXPECT_EQ(static_cast<std::size_t>(
                  std::stoull(response.substr(cl + 16))),
              body.size());
  }
  return body;
}

TEST_P(ObservabilitySocketTest, HttpSideListenerServesScrapesMidTraffic) {
  // The --metrics side listener wired exactly as ambit_serve wires it:
  // render = Server::metrics_page, its own ephemeral port, scraped
  // while the line protocol serves a connection.
  const std::string path = write_sample_pla("serve_http_scrape.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_scrape.sock";
  Session session(1);
  metrics::Registry registry;
  ServerOptions options;
  options.io_model = GetParam();
  options.registry = &registry;
  Server server(session, options);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  MetricsHttpListener listener;
  int http_port = 0;
  listener.start("127.0.0.1", 0, [&server] { return server.metrics_page(); },
                 &http_port);
  ASSERT_GT(http_port, 0);

  // Drive some traffic first so the page has non-trivial counts.
  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const auto lines =
      socket_transact(fd, "LOAD s " + path + "\nEVAL s 7\nEVAL s 3\n", 3);
  ASSERT_EQ(lines.size(), 3u);

  // Counters bump AFTER the response bytes go out (self-scrape
  // exclusion), so the client holding both EVAL responses does not yet
  // guarantee the second add is visible — poll the scrape until it is.
  std::string ok;
  std::string page;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ok = http_transact(http_port, "GET /metrics HTTP/1.0\r\n\r\n");
    page = http_body(ok);
    if (!metrics::metrics_enabled() ||
        page.find("ambit_serve_requests_total{verb=\"EVAL\"} 2") !=
            std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(starts_with(ok, "HTTP/1.0 200 OK\r\n")) << ok.substr(0, 120);
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const auto samples = testing_support::lint_prometheus_page(page);
  if (metrics::metrics_enabled()) {
    EXPECT_EQ(testing_support::prom_value(
                  samples, "ambit_serve_requests_total", "verb=\"EVAL\""),
              2.0);
    EXPECT_EQ(testing_support::prom_value(
                  samples, "ambit_serve_requests_total", "verb=\"LOAD\""),
              1.0);
    // The side listener is NOT a protocol connection: gauges see only
    // the one line-protocol client.
    EXPECT_EQ(testing_support::prom_value(samples,
                                          "ambit_serve_connections_active"),
              1.0);
  }

  const std::string health =
      http_transact(http_port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_TRUE(starts_with(health, "HTTP/1.0 200 OK\r\n"));
  EXPECT_EQ(http_body(health), "ok\n");

  EXPECT_TRUE(starts_with(
      http_transact(http_port, "GET /nope HTTP/1.0\r\n\r\n"),
      "HTTP/1.0 404 Not Found\r\n"));
  EXPECT_TRUE(starts_with(
      http_transact(http_port, "DELETE /metrics HTTP/1.0\r\n\r\n"),
      "HTTP/1.0 405 Method Not Allowed\r\n"));
  const std::string bad = http_transact(http_port, "not http at all\r\n\r\n");
  EXPECT_TRUE(starts_with(bad, "HTTP/1.0 400 Bad Request\r\n"));
  EXPECT_NE(bad.find("bad HTTP request line"), std::string::npos);

  // The listener survived the abuse and still scrapes.
  EXPECT_TRUE(starts_with(
      http_transact(http_port, "GET /metrics HTTP/1.0\r\n\r\n"),
      "HTTP/1.0 200 OK\r\n"));
  listener.stop();

  socket_transact(fd, "SHUTDOWN\n", 1);
  ::close(fd);
  server_thread.join();
}

TEST_P(ObservabilitySocketTest, MixedVerbHammerCountsEveryRequestExactly) {
  // Four clients interleave EVAL, EVALB and SIMB against one server
  // with a fresh registry: afterwards every per-verb counter and
  // latency-histogram _count must equal the number of requests sent —
  // under concurrency, not approximately.
  const std::string path = write_sample_pla("serve_obs_hammer.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_obshammer.sock";
  Session session(/*workers=*/2);
  session.load("s", path);
  metrics::Registry registry;
  ServerOptions options;
  options.io_model = GetParam();
  options.registry = &registry;
  Server server(session, options);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  PatternBatch inputs = PatternBatch::exhaustive(3);
  const core::GnorPla& gnor = session.get("s")->gnor;
  const PatternBatch expected_eval = gnor.evaluate_batch(inputs);
  simulate::GnorPlaSimulator direct(gnor, tech::default_cnfet_electrical());
  const simulate::BatchSimResult expected_sim = direct.simulate_batch(inputs);
  const std::uint64_t lane_words = expected_sim.outputs.total_words();
  const std::uint64_t simb_words = lane_words + 3 * inputs.num_patterns();

  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 15;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_with_retry(socket_path);
      if (fd < 0) {
        failures[static_cast<std::size_t>(c)] = 1;
        return;
      }
      std::ostringstream request;
      for (int r = 0; r < kRoundsPerClient; ++r) {
        const int a = (c * 5 + r * 3) % 8;
        request << "EVAL s "
                << hex_encode({(a & 1) != 0, (a & 2) != 0, (a & 4) != 0})
                << "\n"
                << "EVALB s " << inputs.num_patterns() << " "
                << inputs.total_words() << "\n" << frame_payload(inputs)
                << "SIMB s " << inputs.num_patterns() << " "
                << inputs.total_words() << "\n" << frame_payload(inputs);
      }
      request << "QUIT\n";
      const std::string wire = request.str();
      std::size_t sent = 0;
      while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n <= 0) {
          break;
        }
        sent += static_cast<std::size_t>(n);
      }
      std::string buffer;
      char chunk[65536];
      for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      ::close(fd);
      // Walk the pipelined responses: an EVAL line, an EVALB frame and
      // a SIMB frame per round — all bit-exact.
      std::size_t cursor = 0;
      for (int r = 0; r < kRoundsPerClient; ++r) {
        const int a = (c * 5 + r * 3) % 8;
        const std::vector<bool> bits{(a & 1) != 0, (a & 2) != 0, (a & 4) != 0};
        const std::string want = "OK " + hex_encode(gnor.evaluate(bits));
        const std::size_t eol = buffer.find('\n', cursor);
        if (eol == std::string::npos ||
            buffer.substr(cursor, eol - cursor) != want) {
          failures[static_cast<std::size_t>(c)] = 1;
          return;
        }
        cursor = eol + 1;
        std::vector<std::uint64_t> words;
        std::size_t consumed = 0;
        if (!decode_evalb_response(buffer.substr(cursor),
                                   inputs.num_patterns(),
                                   expected_eval.total_words(), words,
                                   consumed)) {
          failures[static_cast<std::size_t>(c)] = 1;
          return;
        }
        cursor += consumed;
        if (!decode_simb_response(buffer.substr(cursor),
                                  inputs.num_patterns(), simb_words, words,
                                  consumed)) {
          failures[static_cast<std::size_t>(c)] = 1;
          return;
        }
        cursor += consumed;
      }
      if (buffer.substr(cursor) != "OK bye\n") {
        failures[static_cast<std::size_t>(c)] = 1;
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();

  if (!metrics::metrics_enabled()) {
    return;  // session counters above already validated the traffic
  }
  // Every counter and histogram count, exactly — scraped AFTER the
  // server drained, so the bump-after-respond window is closed.
  const std::string page = server.metrics_page();
  const auto samples = testing_support::lint_prometheus_page(page);
  const double rounds = kClients * kRoundsPerClient;
  const auto count = [&samples](const std::string& name,
                                const std::string& labels) {
    return testing_support::prom_value(samples, name, labels);
  };
  EXPECT_EQ(count("ambit_serve_requests_total", "verb=\"EVAL\""), rounds);
  EXPECT_EQ(count("ambit_serve_requests_total", "verb=\"EVALB\""), rounds);
  EXPECT_EQ(count("ambit_serve_requests_total", "verb=\"SIMB\""), rounds);
  EXPECT_EQ(count("ambit_serve_requests_total", "verb=\"QUIT\""),
            static_cast<double>(kClients));
  EXPECT_EQ(count("ambit_serve_requests_total", "verb=\"SHUTDOWN\""), 1.0);
  for (const char* idle_verb :
       {"LOAD", "SIM", "VERIFY", "STATS", "METRICS", "UNLOAD", "HELP"}) {
    EXPECT_EQ(count("ambit_serve_requests_total",
                    "verb=\"" + std::string(idle_verb) + "\""),
              0.0)
        << idle_verb;
  }
  EXPECT_EQ(count("ambit_serve_request_us_count", "verb=\"EVAL\""), rounds);
  EXPECT_EQ(count("ambit_serve_request_us_count", "verb=\"EVALB\""), rounds);
  EXPECT_EQ(count("ambit_serve_request_us_count", "verb=\"SIMB\""), rounds);
  EXPECT_EQ(count("ambit_serve_request_errors_total", ""), 0.0);
  EXPECT_EQ(count("ambit_serve_malformed_requests_total", ""), 0.0);
  EXPECT_EQ(count("ambit_serve_connections_accepted_total", ""),
            static_cast<double>(kClients) + 1);  // clients + the ctl
  EXPECT_EQ(count("ambit_serve_connections_active", ""), 0.0);
  for (const char* reason : {"idle", "send", "malformed"}) {
    EXPECT_EQ(count("ambit_serve_connections_dropped_total",
                    "reason=\"" + std::string(reason) + "\""),
              0.0)
        << reason;
  }
  // Coalescing was off: its counters exist but never moved.
  EXPECT_EQ(count("ambit_serve_coalesce_requests_total", ""), 0.0);
  // And the totals agree with the session's own exact accounting.
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.evals, static_cast<std::uint64_t>(rounds) * 2);  // EVAL+EVALB
  EXPECT_EQ(stats.sims, static_cast<std::uint64_t>(rounds));
}

TEST_P(ObservabilitySocketTest, DroppedConnectionsAreClassified) {
  // An oversized request line is a server-initiated drop with
  // reason="malformed"; a clean QUIT is peer-initiated and counts
  // under no reason at all.
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_dropclass.sock";
  Session session(1);
  metrics::Registry registry;
  ServerOptions options;
  options.io_model = GetParam();
  options.registry = &registry;
  Server server(session, options);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);
  const std::string blob(kMaxLineBytes + (1 << 16), 'a');  // no newline
  std::size_t sent = 0;
  while (sent < blob.size()) {
    const ssize_t n = ::send(fd, blob.data() + sent, blob.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  while (::read(fd, chunk, sizeof(chunk)) > 0) {
  }
  ::close(fd);

  const int ctl = connect_with_retry(socket_path);
  ASSERT_GE(ctl, 0);
  socket_transact(ctl, "QUIT\n", 1);
  ::close(ctl);
  const int shut = connect_with_retry(socket_path);
  ASSERT_GE(shut, 0);
  socket_transact(shut, "SHUTDOWN\n", 1);
  ::close(shut);
  server_thread.join();

  if (!metrics::metrics_enabled()) {
    return;
  }
  const metrics::Counter* malformed = registry.find_counter(
      "ambit_serve_connections_dropped_total", {{"reason", "malformed"}});
  ASSERT_NE(malformed, nullptr);
  EXPECT_EQ(malformed->value(), 1u);
  for (const char* reason : {"idle", "send"}) {
    const metrics::Counter* counter = registry.find_counter(
        "ambit_serve_connections_dropped_total", {{"reason", reason}});
    ASSERT_NE(counter, nullptr) << reason;
    EXPECT_EQ(counter->value(), 0u) << reason;
  }
}

// ---------------------------------------------------------------------------
// Cross-model byte identity: the same wire input produces the same
// wire output under both io models, compared directly.
// ---------------------------------------------------------------------------

namespace {

/// Runs one server under `model`, plays three canned connections
/// against it (a mixed happy-path pipeline ending in QUIT, an unframed
/// bulk header that drops the connection, and a residual line at clean
/// EOF), and returns each connection's complete response byte stream.
std::vector<std::string> capture_model_responses(IoModel model,
                                                 const std::string& pla_path,
                                                 const std::string& tag) {
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_ident_" + tag + ".sock";
  Session session(2);
  ServerOptions options;
  options.io_model = model;
  Server server(session, options);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const auto drain = [](int fd) {
    std::string buffer;
    char chunk[65536];
    for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;) {
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    return buffer;
  };
  const auto send_all = [](int fd, const std::string& wire) {
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
  };
  std::vector<std::string> captures;

  // Connection 1: every response-shape the protocol has — text OK
  // lines, an ERR line, both binary bulk frames — pipelined, ending in
  // QUIT.
  {
    PatternBatch inputs = PatternBatch::exhaustive(3);
    std::ostringstream wire;
    wire << "LOAD s " << pla_path << "\n"
         << "EVAL s 7 0\n"
         << "SIM s 5\n"
         << "FROBNICATE nope\n"
         << "EVALB s " << inputs.num_patterns() << " " << inputs.total_words()
         << "\n"
         << frame_payload(inputs) << "SIMB s " << inputs.num_patterns() << " "
         << inputs.total_words() << "\n"
         << frame_payload(inputs) << "VERIFY s\nSTATS\nQUIT\n";
    const int fd = connect_with_retry(socket_path);
    EXPECT_GE(fd, 0);
    send_all(fd, wire.str());
    ::shutdown(fd, SHUT_WR);
    captures.push_back(drain(fd));
    ::close(fd);
  }

  // Connection 2: an unframed bulk header — one ERR response, then the
  // server drops the connection.
  {
    const int fd = connect_with_retry(socket_path);
    EXPECT_GE(fd, 0);
    send_all(fd, "EVALB s not_a_number 4\n");
    captures.push_back(drain(fd));
    ::close(fd);
  }

  // Connection 3: a residual unterminated line at clean EOF is served.
  {
    const int fd = connect_with_retry(socket_path);
    EXPECT_GE(fd, 0);
    send_all(fd, "EVAL s 3");
    ::shutdown(fd, SHUT_WR);
    captures.push_back(drain(fd));
    ::close(fd);
  }

  const int ctl = connect_with_retry(socket_path);
  EXPECT_GE(ctl, 0);
  socket_transact(ctl, "SHUTDOWN\n", 1);
  ::close(ctl);
  server_thread.join();
  return captures;
}

/// The LOAD response embeds the measured load time ("…, 0.6 ms") — the
/// one legitimately non-deterministic byte range in the script — so the
/// identity comparison canonicalizes that number to "T" on both sides.
std::string normalize_load_time(std::string s) {
  const std::string key = " cells, ";
  const std::size_t at = s.find(key);
  if (at == std::string::npos) {
    return s;
  }
  const std::size_t start = at + key.size();
  const std::size_t end = s.find(" ms", start);
  if (end == std::string::npos) {
    return s;
  }
  return s.replace(start, end - start, "T");
}

}  // namespace

TEST(IoModelIdentityTest, BothModelsProduceByteIdenticalResponses) {
  // The conformance matrix above asserts each model against expected
  // values; this asserts them against EACH OTHER, byte for byte, over
  // one mixed script — any framing or text drift between the paths
  // fails here even if both happen to satisfy the per-test predicates.
  const std::string path = write_sample_pla("serve_ident.pla");
  const std::vector<std::string> threads =
      capture_model_responses(IoModel::kThreads, path, "threads");
  const std::vector<std::string> epoll =
      capture_model_responses(IoModel::kEpoll, path, "epoll");
  ASSERT_EQ(threads.size(), epoll.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    EXPECT_EQ(normalize_load_time(threads[i]), normalize_load_time(epoll[i]))
        << "connection " << i;
  }
  // And the happy-path capture is non-trivial: it holds every response
  // shape (OK text, ERR text, both bulk frame headers).
  EXPECT_NE(threads[0].find("OK loaded s"), std::string::npos);
  EXPECT_NE(threads[0].find("ERR "), std::string::npos);
  EXPECT_NE(threads[0].find("OK EVALB "), std::string::npos);
  EXPECT_NE(threads[0].find("OK SIMB "), std::string::npos);
  EXPECT_NE(threads[0].find("OK bye"), std::string::npos);
  EXPECT_NE(threads[2].find("OK "), std::string::npos);  // residual served
}

#endif  // !_WIN32

}  // namespace
}  // namespace ambit::serve
