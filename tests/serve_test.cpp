// Tests for the ambit::serve subsystem: protocol parsing and hex
// codecs, the session registry (LOAD pipeline, sharded EVAL, cached
// VERIFY), and the server driven end-to-end over both transports — a
// stream pipe and a Unix-domain socket.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gnor_pla.h"
#include "logic/pla_io.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/error.h"
#include "util/strings.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#endif

namespace ambit::serve {
namespace {

using logic::Cover;
using logic::PatternBatch;

/// Writes a small 3-input/2-output cover to a temp .pla file and
/// returns its path.
std::string write_sample_pla(const std::string& filename) {
  const Cover f = Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"});
  const std::string path = testing::TempDir() + "/" + filename;
  logic::write_pla_file(path, logic::make_pla(f, "sample"));
  return path;
}

// ---------------------------------------------------------------------------
// Protocol: request parsing and the hex codec.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParsesEveryVerb) {
  EXPECT_EQ(parse_request("LOAD adder /tmp/a.pla").verb, Verb::kLoad);
  EXPECT_EQ(parse_request("EVAL adder ff 0").verb, Verb::kEval);
  EXPECT_EQ(parse_request("VERIFY adder").verb, Verb::kVerify);
  EXPECT_EQ(parse_request("STATS").verb, Verb::kStats);
  EXPECT_EQ(parse_request("UNLOAD adder").verb, Verb::kUnload);
  EXPECT_EQ(parse_request("HELP").verb, Verb::kHelp);
  EXPECT_EQ(parse_request("QUIT").verb, Verb::kQuit);
  EXPECT_EQ(parse_request("SHUTDOWN").verb, Verb::kShutdown);
}

TEST(ProtocolTest, LoadCarriesNameAndPath) {
  const Request r = parse_request("  LOAD  c17   /data/c17.pla ");
  EXPECT_EQ(r.name, "c17");
  EXPECT_EQ(r.path, "/data/c17.pla");
}

TEST(ProtocolTest, EvalCarriesAllPatterns) {
  const Request r = parse_request("EVAL f 0 1f 0x2a");
  EXPECT_EQ(r.name, "f");
  EXPECT_EQ(r.patterns, (std::vector<std::string>{"0", "1f", "0x2a"}));
}

TEST(ProtocolTest, MalformedRequestsRejected) {
  EXPECT_THROW(parse_request(""), Error);
  EXPECT_THROW(parse_request("FROBNICATE x"), Error);
  EXPECT_THROW(parse_request("LOAD just_a_name"), Error);
  EXPECT_THROW(parse_request("EVAL name_but_no_patterns"), Error);
  EXPECT_THROW(parse_request("VERIFY"), Error);
  EXPECT_THROW(parse_request("STATS extra"), Error);
}

TEST(ProtocolTest, HexRoundTrip) {
  for (const int width : {1, 3, 4, 8, 13, 64, 70}) {
    std::vector<bool> bits(static_cast<std::size_t>(width));
    for (int i = 0; i < width; i += 3) {
      bits[static_cast<std::size_t>(i)] = true;
    }
    EXPECT_EQ(hex_decode(hex_encode(bits), width), bits) << "width " << width;
  }
}

TEST(ProtocolTest, HexEncodeIsFixedWidth) {
  EXPECT_EQ(hex_encode({false, false, false, false, false}), "00");
  EXPECT_EQ(hex_encode({true, false, true}), "5");
  EXPECT_EQ(hex_encode(std::vector<bool>(8, true)), "ff");
}

TEST(ProtocolTest, HexDecodeAcceptsPrefixAndCase) {
  EXPECT_EQ(hex_decode("0x2A", 6), hex_decode("2a", 6));
}

TEST(ProtocolTest, HexDecodeRejectsBadInput) {
  EXPECT_THROW(hex_decode("zz", 8), Error);
  EXPECT_THROW(hex_decode("", 8), Error);
  EXPECT_THROW(hex_decode("0x", 8), Error);
  // Bit 4 set, but only 3 inputs wide.
  EXPECT_THROW(hex_decode("10", 3), Error);
}

TEST(ProtocolTest, ResponseFormatting) {
  EXPECT_EQ(ok_response(), "OK");
  EXPECT_EQ(ok_response("loaded x"), "OK loaded x");
  EXPECT_EQ(err_response("bad\nthing"), "ERR bad thing");
}

// ---------------------------------------------------------------------------
// Session: the LOAD pipeline and the sharded answer paths.
// ---------------------------------------------------------------------------

TEST(SessionTest, LoadEvalVerifyUnload) {
  const std::string path = write_sample_pla("serve_session.pla");
  Session session(/*workers=*/2);
  const LoadedCircuit& circuit = session.load("s", path);
  EXPECT_EQ(circuit.gnor.num_inputs(), 3);
  EXPECT_EQ(circuit.gnor.num_outputs(), 2);

  // EVAL answers must match direct evaluation of the mapped array.
  PatternBatch inputs = PatternBatch::exhaustive(3);
  const PatternBatch outputs = session.eval("s", inputs);
  EXPECT_EQ(outputs, circuit.gnor.evaluate_batch(inputs));

  EXPECT_TRUE(session.verify("s"));
  // Second verify rides the cached reference tables.
  EXPECT_TRUE(session.verify("s"));
  EXPECT_EQ(session.get("s").verifies, 2u);

  session.unload("s");
  EXPECT_EQ(session.find("s"), nullptr);
  EXPECT_THROW(session.eval("s", inputs), Error);
}

TEST(SessionTest, VerifyCatchesCorruptedArray) {
  const std::string path = write_sample_pla("serve_corrupt.pla");
  Session session(1);
  session.load("s", path);
  ASSERT_TRUE(session.verify("s"));
  // Sabotage the mapped array behind the session's back; VERIFY must
  // notice. (The const_cast stands in for radiation/defect drift — the
  // protocol has no mutation verb.)
  auto& gnor = const_cast<core::GnorPla&>(session.get("s").gnor);
  gnor.set_buffer_inverted(0, !gnor.buffer_inverted(0));
  EXPECT_FALSE(session.verify("s"));
}

TEST(SessionTest, UnknownNamesThrow) {
  Session session(1);
  EXPECT_THROW(session.get("ghost"), Error);
  EXPECT_THROW(session.verify("ghost"), Error);
  EXPECT_THROW(session.unload("ghost"), Error);
}

TEST(SessionTest, ReloadReplacesCircuit) {
  const std::string path = write_sample_pla("serve_reload.pla");
  Session session(1);
  session.load("s", path);
  const Cover g = Cover::parse(2, 1, {"11 1"});
  const std::string path2 = testing::TempDir() + "/serve_reload2.pla";
  logic::write_pla_file(path2, logic::make_pla(g, "g"));
  session.load("s", path2);
  EXPECT_EQ(session.get("s").gnor.num_inputs(), 2);
  EXPECT_EQ(session.stats().loads, 2u);
  EXPECT_EQ(session.stats().circuits, 1);
}

TEST(SessionTest, FailedLoadKeepsExistingCircuit) {
  const std::string path = write_sample_pla("serve_keep.pla");
  Session session(1);
  session.load("s", path);
  EXPECT_THROW(session.load("s", "/nonexistent/nope.pla"), Error);
  EXPECT_EQ(session.get("s").gnor.num_inputs(), 3);
}

TEST(SessionTest, StatsAccumulate) {
  const std::string path = write_sample_pla("serve_stats.pla");
  Session session(1);
  session.load("a", path);
  session.load("b", path);
  session.eval("a", PatternBatch::exhaustive(3));
  session.eval("b", PatternBatch::exhaustive(3));
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.circuits, 2);
  EXPECT_EQ(stats.evals, 2u);
  EXPECT_EQ(stats.patterns, 16u);
  // Counters are session-cumulative: dropping or replacing circuits
  // must never make STATS go backwards.
  session.unload("a");
  session.load("b", path);
  EXPECT_EQ(session.stats().evals, 2u);
  EXPECT_EQ(session.stats().patterns, 16u);
  EXPECT_EQ(session.stats().circuits, 1);
}

// ---------------------------------------------------------------------------
// Server over a stream pipe: the full protocol round trip.
// ---------------------------------------------------------------------------

TEST(ServerTest, StreamSessionRoundTrip) {
  const std::string path = write_sample_pla("serve_stream.pla");
  Session session(2);
  Server server(session);

  std::istringstream in("HELP\n"
                        "LOAD s " + path + "\n"
                        "EVAL s 0 7 3\n"
                        "VERIFY s\n"
                        "STATS\n"
                        "UNLOAD s\n"
                        "QUIT\n"
                        "EVAL s 0\n");  // after QUIT: must not be served
  std::ostringstream out;
  const std::uint64_t served = server.serve_stream(in, out);
  EXPECT_EQ(served, 7u);

  std::vector<std::string> lines;
  std::istringstream responses(out.str());
  for (std::string line; std::getline(responses, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_TRUE(starts_with(lines[0], "OK commands:"));
  EXPECT_TRUE(starts_with(lines[1], "OK loaded s: 3 inputs, 2 outputs"));
  // The sample cover on {000, 111, 110}: check against the real array.
  const core::GnorPla pla = core::GnorPla::map_cover(
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"}));
  const std::string expected =
      "OK " + hex_encode(pla.evaluate(hex_decode("0", 3))) + " " +
      hex_encode(pla.evaluate(hex_decode("7", 3))) + " " +
      hex_encode(pla.evaluate(hex_decode("3", 3)));
  EXPECT_EQ(lines[2], expected);
  EXPECT_TRUE(starts_with(lines[3], "OK verified s: equivalent over 8"));
  EXPECT_TRUE(starts_with(lines[4], "OK circuits=1"));
  EXPECT_EQ(lines[5], "OK unloaded s");
  EXPECT_EQ(lines[6], "OK bye");
}

TEST(ServerTest, ErrorsAreResponsesNotCrashes) {
  Session session(1);
  Server server(session);
  EXPECT_TRUE(starts_with(server.handle_line("NONSENSE"), "ERR"));
  EXPECT_TRUE(starts_with(server.handle_line("EVAL ghost ff"), "ERR"));
  EXPECT_TRUE(
      starts_with(server.handle_line("LOAD x /nonexistent/x.pla"), "ERR"));
}

TEST(ServerTest, MalformedPlaLoadReportsFileAndLine) {
  // A cube row wider than .i/.o declares must come back as an ERR
  // response carrying file:line context — the serve LOAD path makes
  // malformed input a routine event.
  const std::string path = testing::TempDir() + "/serve_malformed.pla";
  std::ofstream file(path);
  file << ".i 2\n.o 1\n101 1\n.e\n";
  file.close();
  Session session(1);
  Server server(session);
  const std::string response = server.handle_line("LOAD bad " + path);
  EXPECT_TRUE(starts_with(response, "ERR"));
  EXPECT_NE(response.find("serve_malformed:3"), std::string::npos) << response;
  EXPECT_NE(response.find(".i declares 2"), std::string::npos) << response;
}

TEST(ServerTest, BlankLinesAreIgnored) {
  Session session(1);
  Server server(session);
  std::istringstream in("\n   \nHELP\nQUIT\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 2u);
}

// ---------------------------------------------------------------------------
// Server over a Unix-domain socket: a real client connection.
// ---------------------------------------------------------------------------

#ifndef _WIN32

/// Connects to `socket_path`, retrying until the server thread has
/// bound it. Returns the connected fd (or -1 after the deadline).
int connect_with_retry(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (fd >= 0) {
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

/// Sends `request` lines and reads exactly `expected_lines` response
/// lines back.
std::vector<std::string> socket_transact(int fd, const std::string& requests,
                                         std::size_t expected_lines) {
  std::size_t sent = 0;
  while (sent < requests.size()) {
    const ssize_t n =
        ::write(fd, requests.data() + sent, requests.size() - sent);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  std::vector<std::string> lines;
  while (lines.size() < expected_lines) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      lines.push_back(buffer.substr(0, newline));
      buffer.erase(0, newline + 1);
    }
  }
  return lines;
}

TEST(ServerTest, UnixSocketSessionEndToEnd) {
  const std::string path = write_sample_pla("serve_socket.pla");
  const std::string socket_path = testing::TempDir() + "/ambit_serve_test.sock";
  Session session(2);
  Server server(session);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;
  const std::vector<std::string> lines = socket_transact(
      fd,
      "LOAD s " + path + "\nEVAL s 7 0\nVERIFY s\nSTATS\nSHUTDOWN\n", 5);
  ::close(fd);
  server_thread.join();

  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(starts_with(lines[0], "OK loaded s"));
  EXPECT_TRUE(starts_with(lines[1], "OK "));
  EXPECT_TRUE(starts_with(lines[2], "OK verified s"));
  EXPECT_TRUE(starts_with(lines[3], "OK circuits=1"));
  EXPECT_EQ(lines[4], "OK shutting down");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(ServerTest, UnixSocketServesConsecutiveConnections) {
  const std::string path = write_sample_pla("serve_socket2.pla");
  const std::string socket_path =
      testing::TempDir() + "/ambit_serve_test2.sock";
  Session session(1);
  Server server(session);
  std::thread server_thread([&] { server.serve_unix(socket_path); });

  // Connection 1 loads and quits; connection 2 still sees the circuit
  // (the session outlives connections), then shuts the server down.
  const int first = connect_with_retry(socket_path);
  ASSERT_GE(first, 0);
  const auto lines1 =
      socket_transact(first, "LOAD s " + path + "\nQUIT\n", 2);
  ::close(first);
  ASSERT_EQ(lines1.size(), 2u);
  EXPECT_TRUE(starts_with(lines1[0], "OK loaded s"));

  const int second = connect_with_retry(socket_path);
  ASSERT_GE(second, 0);
  const auto lines2 = socket_transact(second, "EVAL s 5\nSHUTDOWN\n", 2);
  ::close(second);
  server_thread.join();
  ASSERT_EQ(lines2.size(), 2u);
  EXPECT_TRUE(starts_with(lines2[0], "OK "));
}

#endif  // !_WIN32

}  // namespace
}  // namespace ambit::serve
