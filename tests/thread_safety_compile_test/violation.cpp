// NEGATIVE-COMPILE FIXTURE — this file MUST NOT compile under
// -Werror=thread-safety-analysis. It reads a AMBIT_GUARDED_BY member
// without holding its mutex, the exact bug class the annotation layer
// exists to reject. The thread_safety_compile_violation ctest entry
// (clang builds only) builds this translation unit and asserts the
// build FAILS; tests/thread_safety_compile_test/clean.cpp is the
// control proving the harness passes lawful code, so a pass here can
// only mean the analysis actually fired.
//
// This directory is deliberately OUTSIDE the tests/*_test.cpp glob —
// the file must never end up in a normally-built target.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ambit {

class Counter {
 public:
  void add(std::uint64_t n) {
    const MutexLock lock(mutex_);
    value_ += n;
  }

  std::uint64_t value() const {
    return value_;  // BUG: reads value_ without holding mutex_
  }

 private:
  mutable Mutex mutex_{LockRank::kTest};
  std::uint64_t value_ AMBIT_GUARDED_BY(mutex_) = 0;
};

std::uint64_t read_counter(const Counter& counter) { return counter.value(); }

}  // namespace ambit
