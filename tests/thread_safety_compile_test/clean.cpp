// Positive control for the negative-compile test: the same shape as
// violation.cpp with the one bug fixed (the read holds the mutex).
// The thread_safety_compile_clean ctest entry asserts this compiles
// cleanly under -Werror=thread-safety-analysis — so a "failure" from
// violation.cpp demonstrably comes from the guarded-by violation, not
// from a broken harness, missing include, or bad flag.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ambit {

class Counter {
 public:
  void add(std::uint64_t n) {
    const MutexLock lock(mutex_);
    value_ += n;
  }

  std::uint64_t value() const {
    const MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable Mutex mutex_{LockRank::kTest};
  std::uint64_t value_ AMBIT_GUARDED_BY(mutex_) = 0;
};

std::uint64_t read_counter(const Counter& counter) { return counter.value(); }

}  // namespace ambit
